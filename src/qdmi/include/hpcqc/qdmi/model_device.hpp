#pragma once

#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::qdmi {

/// QDMI device backed directly by the live DeviceModel — the integration
/// used when the compiler and scheduler run co-located with the QPU control
/// software. Status is owned by whoever operates the device (the QRM /
/// calibration controller flips it around jobs and calibration windows).
class ModelBackedDevice final : public DeviceInterface {
public:
  /// Both referents must outlive this adapter.
  ModelBackedDevice(const device::DeviceModel& model, const SimClock& clock);

  std::string name() const override;
  int num_qubits() const override;
  std::vector<std::pair<int, int>> coupling_map() const override;
  std::vector<std::string> native_gates() const override;
  double qubit_property(QubitProperty prop, int qubit) const override;
  double coupler_property(CouplerProperty prop, int a, int b) const override;
  double device_property(DeviceProperty prop) const override;
  DeviceStatus status() const override { return status_; }

  void set_status(DeviceStatus status) { status_ = status; }

private:
  const device::DeviceModel* model_;
  const SimClock* clock_;
  DeviceStatus status_ = DeviceStatus::kIdle;
};

}  // namespace hpcqc::qdmi
