#pragma once

#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::qdmi {

/// QDMI device backed directly by the live DeviceModel — the integration
/// used when the compiler and scheduler run co-located with the QPU control
/// software. Status is owned by whoever operates the device (the QRM /
/// calibration controller flips it around jobs and calibration windows).
class ModelBackedDevice final : public DeviceInterface {
public:
  /// Both referents must outlive this adapter.
  ModelBackedDevice(const device::DeviceModel& model, const SimClock& clock);

  std::string name() const override;
  int num_qubits() const override;
  std::vector<std::pair<int, int>> coupling_map() const override;
  std::vector<std::string> native_gates() const override;
  double qubit_property(QubitProperty prop, int qubit) const override;
  double coupler_property(CouplerProperty prop, int a, int b) const override;
  double device_property(DeviceProperty prop) const override;
  DeviceStatus status() const override {
    if (m_status_queries_ != nullptr) m_status_queries_->inc();
    return status_;
  }

  void set_status(DeviceStatus status) { status_ = status; }

  /// Attaches a metrics registry counting QDMI traffic
  /// (qdmi.property_queries across the three property scopes, and
  /// qdmi.status_queries). Must outlive the adapter; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

private:
  const device::DeviceModel* model_;
  const SimClock* clock_;
  DeviceStatus status_ = DeviceStatus::kIdle;
  obs::Counter* m_property_queries_ = nullptr;
  obs::Counter* m_status_queries_ = nullptr;
};

}  // namespace hpcqc::qdmi
