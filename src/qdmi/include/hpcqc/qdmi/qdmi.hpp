#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hpcqc::qdmi {

/// Queryable per-qubit metrics (QDMI "device properties" at qubit scope).
enum class QubitProperty {
  kT1Us,
  kT2Us,
  kFidelity1q,
  kReadoutFidelity,
  kHasTlsDefect,  // 1.0 / 0.0
  kOperational,   // 1.0 = in the serving set, 0.0 = masked out (degraded)
};

/// Queryable per-coupler metrics.
enum class CouplerProperty {
  kFidelityCz,
  kOperational,  // 1.0 only when the coupler AND both endpoints are up
};

/// Queryable device-scope metrics.
enum class DeviceProperty {
  kNumQubits,
  kNumCouplers,
  kMedianFidelity1q,
  kMedianFidelityCz,
  kMedianReadoutFidelity,
  kCalibrationAgeHours,
  kShotResetUs,  ///< passive reset period dominating the shot duration
  /// Degraded capability set (masked-topology serving): how many qubits are
  /// currently operational, and the widest job the device can still accept
  /// (size of the largest connected component of the healthy subgraph).
  kHealthyQubits,
  kLargestHealthyComponent,
};

/// Operational state of the backend, as exposed to schedulers and clients.
enum class DeviceStatus {
  kIdle,
  kExecuting,
  kCalibrating,
  kMaintenance,
  kOffline,
};

const char* to_string(DeviceStatus status);

/// The Quantum Device Management Interface: a narrow, query-based contract
/// between hardware backends and software tools (compilers, schedulers,
/// monitoring). Mirrors the published QDMI design: "software tools query
/// backend-specific metrics, including topology, gate fidelities, noise
/// characteristics, and resource constraints, at runtime", enabling JIT
/// adaptation of compilation and scheduling.
class DeviceInterface {
public:
  virtual ~DeviceInterface() = default;

  virtual std::string name() const = 0;
  virtual int num_qubits() const = 0;
  virtual std::vector<std::pair<int, int>> coupling_map() const = 0;
  virtual std::vector<std::string> native_gates() const = 0;

  virtual double qubit_property(QubitProperty prop, int qubit) const = 0;
  virtual double coupler_property(CouplerProperty prop, int a, int b) const = 0;
  virtual double device_property(DeviceProperty prop) const = 0;
  virtual DeviceStatus status() const = 0;
};

}  // namespace hpcqc::qdmi
