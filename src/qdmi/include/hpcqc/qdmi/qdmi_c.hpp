#pragma once

#include <cstddef>
#include <map>

#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::qdmi::c {

/// Status codes of the C-style QDMI shim. The published QDMI is "a
/// lightweight header-only C interface"; this shim exposes the same
/// query-based contract with integer handles, out-parameters and status
/// codes so that C tools (or FFI bindings) could consume the stack without
/// touching C++ types or exceptions.
enum Status : int {
  kSuccess = 0,
  kErrorInvalidHandle = 1,
  kErrorOutOfRange = 2,
  kErrorInvalidArgument = 3,
  kErrorBufferTooSmall = 4,
};

using DeviceHandle = int;

/// Owns the handle table of one QDMI session. Devices are borrowed (the
/// session never owns backends) and must outlive their handles.
class Session {
public:
  /// Registers a backend; returns a positive handle.
  DeviceHandle open_device(const DeviceInterface& device);

  /// Unregisters; later queries on the handle return kErrorInvalidHandle.
  Status close_device(DeviceHandle handle);

  std::size_t open_device_count() const { return devices_.size(); }

  Status query_device_property(DeviceHandle handle, DeviceProperty prop,
                               double* out) const;
  Status query_qubit_property(DeviceHandle handle, QubitProperty prop,
                              int qubit, double* out) const;
  Status query_coupler_property(DeviceHandle handle, CouplerProperty prop,
                                int qubit_a, int qubit_b, double* out) const;

  /// Writes the coupling map as flat (a, b) pairs into `buffer` (capacity in
  /// ints). `*written` receives the number of ints needed; returns
  /// kErrorBufferTooSmall (with *written set) when capacity is insufficient.
  Status query_coupling_map(DeviceHandle handle, int* buffer,
                            std::size_t capacity, std::size_t* written) const;

  /// Writes the NUL-terminated device name; same buffer protocol.
  Status query_name(DeviceHandle handle, char* buffer, std::size_t capacity,
                    std::size_t* written) const;

  /// Writes the DeviceStatus as an int.
  Status query_status(DeviceHandle handle, int* out) const;

private:
  const DeviceInterface* find(DeviceHandle handle) const;

  DeviceHandle next_handle_ = 1;
  std::map<DeviceHandle, const DeviceInterface*> devices_;
};

}  // namespace hpcqc::qdmi::c
