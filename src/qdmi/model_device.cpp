#include "hpcqc/qdmi/model_device.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::qdmi {

const char* to_string(DeviceStatus status) {
  switch (status) {
    case DeviceStatus::kIdle: return "idle";
    case DeviceStatus::kExecuting: return "executing";
    case DeviceStatus::kCalibrating: return "calibrating";
    case DeviceStatus::kMaintenance: return "maintenance";
    case DeviceStatus::kOffline: return "offline";
  }
  return "?";
}

ModelBackedDevice::ModelBackedDevice(const device::DeviceModel& model,
                                     const SimClock& clock)
    : model_(&model), clock_(&clock) {}

void ModelBackedDevice::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_property_queries_ = nullptr;
    m_status_queries_ = nullptr;
    return;
  }
  m_property_queries_ = &registry->counter("qdmi.property_queries");
  m_status_queries_ = &registry->counter("qdmi.status_queries");
}

std::string ModelBackedDevice::name() const { return model_->name(); }

int ModelBackedDevice::num_qubits() const { return model_->num_qubits(); }

std::vector<std::pair<int, int>> ModelBackedDevice::coupling_map() const {
  return model_->topology().edges();
}

std::vector<std::string> ModelBackedDevice::native_gates() const {
  return {"prx", "cz"};
}

double ModelBackedDevice::qubit_property(QubitProperty prop, int qubit) const {
  if (m_property_queries_ != nullptr) m_property_queries_->inc();
  expects(qubit >= 0 && qubit < model_->num_qubits(),
          "qubit_property: qubit out of range");
  const auto& metrics =
      model_->calibration().qubits[static_cast<std::size_t>(qubit)];
  switch (prop) {
    case QubitProperty::kT1Us: return metrics.t1_us;
    case QubitProperty::kT2Us: return metrics.t2_us;
    case QubitProperty::kFidelity1q: return metrics.fidelity_1q;
    case QubitProperty::kReadoutFidelity: return metrics.readout_fidelity;
    case QubitProperty::kHasTlsDefect: return metrics.tls_defect ? 1.0 : 0.0;
    case QubitProperty::kOperational:
      return model_->health().qubit_up(qubit) ? 1.0 : 0.0;
  }
  throw PermanentError("qubit_property: unhandled property",
                       ErrorCode::kInternal);
}

double ModelBackedDevice::coupler_property(CouplerProperty prop, int a,
                                           int b) const {
  if (m_property_queries_ != nullptr) m_property_queries_->inc();
  const int edge = model_->topology().edge_index(a, b);
  switch (prop) {
    case CouplerProperty::kFidelityCz:
      return model_->calibration()
          .couplers[static_cast<std::size_t>(edge)]
          .fidelity_cz;
    case CouplerProperty::kOperational:
      return model_->health().coupler_usable(model_->topology(), edge) ? 1.0
                                                                       : 0.0;
  }
  throw PermanentError("coupler_property: unhandled property",
                       ErrorCode::kInternal);
}

double ModelBackedDevice::device_property(DeviceProperty prop) const {
  if (m_property_queries_ != nullptr) m_property_queries_->inc();
  const auto& cal = model_->calibration();
  switch (prop) {
    case DeviceProperty::kNumQubits:
      return static_cast<double>(model_->num_qubits());
    case DeviceProperty::kNumCouplers:
      return static_cast<double>(model_->topology().num_edges());
    case DeviceProperty::kMedianFidelity1q: return cal.median_fidelity_1q();
    case DeviceProperty::kMedianFidelityCz: return cal.median_fidelity_cz();
    case DeviceProperty::kMedianReadoutFidelity:
      return cal.median_readout_fidelity();
    case DeviceProperty::kCalibrationAgeHours:
      return to_hours(clock_->now() - cal.calibrated_at);
    case DeviceProperty::kShotResetUs:
      return model_->spec().passive_reset_us;
    case DeviceProperty::kHealthyQubits:
      return static_cast<double>(model_->health().healthy_qubit_count());
    case DeviceProperty::kLargestHealthyComponent:
      return static_cast<double>(
          model_->health().largest_component(model_->topology()).size());
  }
  throw PermanentError("device_property: unhandled property",
                       ErrorCode::kInternal);
}

}  // namespace hpcqc::qdmi
