#include "hpcqc/qdmi/qdmi_c.hpp"

#include <cstring>

#include "hpcqc/common/error.hpp"

namespace hpcqc::qdmi::c {

DeviceHandle Session::open_device(const DeviceInterface& device) {
  const DeviceHandle handle = next_handle_++;
  devices_.emplace(handle, &device);
  return handle;
}

Status Session::close_device(DeviceHandle handle) {
  return devices_.erase(handle) == 1 ? kSuccess : kErrorInvalidHandle;
}

const DeviceInterface* Session::find(DeviceHandle handle) const {
  const auto it = devices_.find(handle);
  return it == devices_.end() ? nullptr : it->second;
}

Status Session::query_device_property(DeviceHandle handle, DeviceProperty prop,
                                      double* out) const {
  if (out == nullptr) return kErrorInvalidArgument;
  const DeviceInterface* device = find(handle);
  if (device == nullptr) return kErrorInvalidHandle;
  try {
    *out = device->device_property(prop);
  } catch (const Error&) {
    return kErrorInvalidArgument;
  }
  return kSuccess;
}

Status Session::query_qubit_property(DeviceHandle handle, QubitProperty prop,
                                     int qubit, double* out) const {
  if (out == nullptr) return kErrorInvalidArgument;
  const DeviceInterface* device = find(handle);
  if (device == nullptr) return kErrorInvalidHandle;
  if (qubit < 0 || qubit >= device->num_qubits()) return kErrorOutOfRange;
  try {
    *out = device->qubit_property(prop, qubit);
  } catch (const Error&) {
    return kErrorInvalidArgument;
  }
  return kSuccess;
}

Status Session::query_coupler_property(DeviceHandle handle,
                                       CouplerProperty prop, int qubit_a,
                                       int qubit_b, double* out) const {
  if (out == nullptr) return kErrorInvalidArgument;
  const DeviceInterface* device = find(handle);
  if (device == nullptr) return kErrorInvalidHandle;
  try {
    *out = device->coupler_property(prop, qubit_a, qubit_b);
  } catch (const NotFoundError&) {
    return kErrorOutOfRange;
  } catch (const Error&) {
    return kErrorInvalidArgument;
  }
  return kSuccess;
}

Status Session::query_coupling_map(DeviceHandle handle, int* buffer,
                                   std::size_t capacity,
                                   std::size_t* written) const {
  if (written == nullptr) return kErrorInvalidArgument;
  const DeviceInterface* device = find(handle);
  if (device == nullptr) return kErrorInvalidHandle;
  const auto edges = device->coupling_map();
  *written = 2 * edges.size();
  if (capacity < *written) return kErrorBufferTooSmall;
  if (buffer == nullptr) return kErrorInvalidArgument;
  std::size_t i = 0;
  for (const auto& [a, b] : edges) {
    buffer[i++] = a;
    buffer[i++] = b;
  }
  return kSuccess;
}

Status Session::query_name(DeviceHandle handle, char* buffer,
                           std::size_t capacity, std::size_t* written) const {
  if (written == nullptr) return kErrorInvalidArgument;
  const DeviceInterface* device = find(handle);
  if (device == nullptr) return kErrorInvalidHandle;
  const std::string name = device->name();
  *written = name.size() + 1;
  if (capacity < *written) return kErrorBufferTooSmall;
  if (buffer == nullptr) return kErrorInvalidArgument;
  std::memcpy(buffer, name.c_str(), *written);
  return kSuccess;
}

Status Session::query_status(DeviceHandle handle, int* out) const {
  if (out == nullptr) return kErrorInvalidArgument;
  const DeviceInterface* device = find(handle);
  if (device == nullptr) return kErrorInvalidHandle;
  *out = static_cast<int>(device->status());
  return kSuccess;
}

}  // namespace hpcqc::qdmi::c
