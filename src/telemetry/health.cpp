#include "hpcqc/telemetry/health.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "hpcqc/common/error.hpp"
#include "hpcqc/telemetry/collectors.hpp"

namespace hpcqc::telemetry {

const char* to_string(QubitHealthClass cls) {
  switch (cls) {
    case QubitHealthClass::kHealthy: return "healthy";
    case QubitHealthClass::kDrifting: return "drifting";
    case QubitHealthClass::kDegraded: return "degraded";
    case QubitHealthClass::kTlsSuspect: return "tls-suspect";
  }
  return "?";
}

std::vector<int> HealthSummary::attention_list() const {
  std::vector<int> out;
  for (const auto& report : qubits)
    if (report.classification != QubitHealthClass::kHealthy)
      out.push_back(report.qubit);
  return out;
}

void HealthSummary::print(std::ostream& os) const {
  os << "Qubit health: " << healthy << " healthy, " << drifting
     << " drifting, " << degraded << " degraded, " << tls_suspect
     << " TLS-suspect\n";
  for (const auto& report : qubits) {
    if (report.classification == QubitHealthClass::kHealthy) continue;
    os << "  q" << report.qubit << ": " << to_string(report.classification)
       << " (score " << report.score << ", 1q " << report.fidelity_1q
       << ", readout " << report.readout_fidelity << ", trend "
       << report.error_trend_per_day << "/day)\n";
  }
}

AvailabilityReport availability_from_store(const TimeSeriesStore& store,
                                           const std::string& sensor,
                                           Seconds t0, Seconds t1) {
  expects(t1 >= t0, "availability_from_store: window must not be negative");
  AvailabilityReport report;
  report.window = t1 - t0;

  // Walk the 1/0 step function; samples before t0 only establish the state
  // at the window start.
  double value = 1.0;
  Seconds cursor = t0;
  for (const Sample& sample : store.range(sensor, 0.0, t1)) {
    if (sample.time <= t0) {
      value = sample.value;
      continue;
    }
    if (value < 0.5) report.downtime += sample.time - cursor;
    if (value >= 0.5 && sample.value < 0.5) report.outages += 1;
    cursor = sample.time;
    value = sample.value;
  }
  if (value < 0.5 && t1 > cursor) report.downtime += t1 - cursor;
  return report;
}

double FleetAvailabilityReport::mean_availability() const {
  if (devices.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& device : devices) sum += device.availability();
  return sum / static_cast<double>(devices.size());
}

FleetAvailabilityReport fleet_availability_from_store(
    const TimeSeriesStore& store, const std::vector<std::string>& sensors,
    Seconds t0, Seconds t1) {
  expects(t1 >= t0,
          "fleet_availability_from_store: window must not be negative");
  FleetAvailabilityReport report;
  report.window = t1 - t0;
  if (sensors.empty()) return report;

  // Per-device reports reuse the single-sensor walk; the fleet-wide
  // all-down time needs the merged step function, so sweep the union of
  // sample times tracking how many devices are online.
  struct Event {
    Seconds time = 0.0;
    std::size_t device = 0;
    double value = 0.0;
  };
  std::vector<double> state(sensors.size(), 1.0);
  std::vector<Event> events;
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    report.devices.push_back(
        availability_from_store(store, sensors[i], t0, t1));
    for (const Sample& sample : store.range(sensors[i], 0.0, t1)) {
      if (sample.time <= t0)
        state[i] = sample.value;
      else
        events.push_back({sample.time, i, sample.value});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.device < b.device;
                   });

  const auto any_online = [&state] {
    for (double value : state)
      if (value >= 0.5) return true;
    return false;
  };
  Seconds cursor = t0;
  bool up = any_online();
  for (const Event& event : events) {
    if (!up) report.all_down += event.time - cursor;
    cursor = event.time;
    state[event.device] = event.value;
    up = any_online();
  }
  if (!up && t1 > cursor) report.all_down += t1 - cursor;
  return report;
}

HealthAnalyzer::HealthAnalyzer() : HealthAnalyzer(Params{}) {}

HealthAnalyzer::HealthAnalyzer(Params params) : params_(params) {
  expects(params_.window > 0.0, "HealthAnalyzer: window must be positive");
  expects(params_.degraded_score > 0.0 && params_.degraded_score < 1.0,
          "HealthAnalyzer: degraded score in (0,1)");
}

namespace {

/// Least-squares slope of (time, value) samples, per day; 0 with < 2 points.
double slope_per_day(const std::vector<Sample>& samples) {
  if (samples.size() < 2) return 0.0;
  double st = 0.0;
  double sv = 0.0;
  double stt = 0.0;
  double stv = 0.0;
  const double n = static_cast<double>(samples.size());
  for (const auto& sample : samples) {
    const double t = to_days(sample.time);
    st += t;
    sv += sample.value;
    stt += t * t;
    stv += t * sample.value;
  }
  const double denom = n * stt - st * st;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * stv - st * sv) / denom;
}

}  // namespace

QubitHealthReport HealthAnalyzer::analyze_qubit(const TimeSeriesStore& store,
                                                int qubit, Seconds now) const {
  const std::string base = "qpu." + element_path('q', qubit);
  QubitHealthReport report;
  report.qubit = qubit;

  const auto f1q = store.latest(base + ".fidelity_1q");
  const auto readout = store.latest(base + ".readout_fidelity");
  if (!f1q.has_value() || !readout.has_value()) {
    report.classification = QubitHealthClass::kDegraded;
    report.score = 0.0;
    return report;
  }
  report.fidelity_1q = f1q->value;
  report.readout_fidelity = readout->value;

  // Score: error ratios vs nominal, clamped; 1.0 == at nominal or better.
  const auto error_ratio = [](double fidelity, double nominal) {
    const double err = 1.0 - fidelity;
    const double nominal_err = 1.0 - nominal;
    return std::max(1.0, err / nominal_err);
  };
  report.score =
      1.0 / (error_ratio(report.fidelity_1q, params_.nominal_fidelity_1q) *
             error_ratio(report.readout_fidelity,
                         params_.nominal_readout_fidelity));

  // Trend of the 1q *error* over the window.
  auto history =
      store.range(base + ".fidelity_1q", now - params_.window, now);
  for (auto& sample : history) sample.value = 1.0 - sample.value;
  report.error_trend_per_day = slope_per_day(history);

  // Classification, most severe first.
  const auto tls = store.aggregate(base + ".tls_defect",
                                   now - params_.window, now);
  if (tls.count > 0 && tls.max > 0.5) {
    report.classification = QubitHealthClass::kTlsSuspect;
  } else if (report.score < params_.degraded_score) {
    report.classification = QubitHealthClass::kDegraded;
  } else if (report.error_trend_per_day > params_.drifting_error_per_day) {
    report.classification = QubitHealthClass::kDrifting;
  } else {
    report.classification = QubitHealthClass::kHealthy;
  }
  return report;
}

HealthSummary HealthAnalyzer::analyze(const TimeSeriesStore& store,
                                      int num_qubits, Seconds now) const {
  expects(num_qubits >= 1, "HealthAnalyzer: need qubits");
  HealthSummary summary;
  for (int q = 0; q < num_qubits; ++q) {
    summary.qubits.push_back(analyze_qubit(store, q, now));
    switch (summary.qubits.back().classification) {
      case QubitHealthClass::kHealthy: ++summary.healthy; break;
      case QubitHealthClass::kDrifting: ++summary.drifting; break;
      case QubitHealthClass::kDegraded: ++summary.degraded; break;
      case QubitHealthClass::kTlsSuspect: ++summary.tls_suspect; break;
    }
  }
  return summary;
}

}  // namespace hpcqc::telemetry
