#include "hpcqc/telemetry/store.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "hpcqc/common/error.hpp"

namespace hpcqc::telemetry {

void TimeSeriesStore::append(const std::string& sensor, Sample sample) {
  expects(!sensor.empty(), "TimeSeriesStore: sensor name cannot be empty");
  auto& series = series_[sensor];
  expects(series.empty() || series.back().time <= sample.time,
          "TimeSeriesStore: timestamps must be non-decreasing per sensor");
  series.push_back(sample);
}

bool TimeSeriesStore::has_sensor(const std::string& sensor) const {
  return series_.contains(sensor);
}

std::size_t TimeSeriesStore::total_samples() const {
  std::size_t total = 0;
  for (const auto& [name, series] : series_) total += series.size();
  return total;
}

std::vector<std::string> TimeSeriesStore::sensors(
    const std::string& prefix) const {
  std::vector<std::string> names;
  for (const auto& [name, series] : series_)
    if (name.starts_with(prefix)) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

const std::vector<Sample>* TimeSeriesStore::find(
    const std::string& sensor) const {
  const auto it = series_.find(sensor);
  return it == series_.end() ? nullptr : &it->second;
}

std::optional<Sample> TimeSeriesStore::latest(const std::string& sensor) const {
  const auto* series = find(sensor);
  if (series == nullptr || series->empty()) return std::nullopt;
  return series->back();
}

std::vector<Sample> TimeSeriesStore::range(const std::string& sensor,
                                           Seconds t0, Seconds t1) const {
  const auto* series = find(sensor);
  if (series == nullptr) return {};
  const auto lo = std::lower_bound(
      series->begin(), series->end(), t0,
      [](const Sample& s, Seconds t) { return s.time < t; });
  const auto hi = std::upper_bound(
      series->begin(), series->end(), t1,
      [](Seconds t, const Sample& s) { return t < s.time; });
  return {lo, hi};
}

Aggregate TimeSeriesStore::aggregate(const std::string& sensor, Seconds t0,
                                     Seconds t1) const {
  Aggregate agg;
  for (const Sample& sample : range(sensor, t0, t1)) {
    if (agg.count == 0) {
      agg.min = sample.value;
      agg.max = sample.value;
    } else {
      agg.min = std::min(agg.min, sample.value);
      agg.max = std::max(agg.max, sample.value);
    }
    ++agg.count;
    agg.mean += (sample.value - agg.mean) / static_cast<double>(agg.count);
    agg.last = sample.value;
  }
  return agg;
}

std::vector<Sample> TimeSeriesStore::downsample(const std::string& sensor,
                                                Seconds t0, Seconds t1,
                                                Seconds bucket) const {
  expects(bucket > 0.0, "downsample: bucket width must be positive");
  std::vector<Sample> out;
  for (Seconds start = t0; start < t1; start += bucket) {
    const Aggregate agg =
        aggregate(sensor, start, std::min(t1, start + bucket) -
                                     1e-9 /* right-open bucket */);
    if (agg.count > 0) out.push_back({start + bucket / 2.0, agg.mean});
  }
  return out;
}

std::size_t TimeSeriesStore::compact(Seconds before, Seconds bucket) {
  expects(bucket > 0.0, "compact: bucket width must be positive");
  std::size_t removed = 0;
  for (auto& [name, series] : series_) {
    // Split at the retention boundary.
    const auto boundary = std::lower_bound(
        series.begin(), series.end(), before,
        [](const Sample& s, Seconds t) { return s.time < t; });
    const auto old_count =
        static_cast<std::size_t>(std::distance(series.begin(), boundary));
    if (old_count < 2) continue;

    std::vector<Sample> compacted;
    std::size_t i = 0;
    while (i < old_count) {
      const Seconds bucket_start =
          std::floor(series[i].time / bucket) * bucket;
      const Seconds bucket_end = bucket_start + bucket;
      double sum = 0.0;
      std::size_t count = 0;
      while (i < old_count && series[i].time < bucket_end) {
        sum += series[i].value;
        ++count;
        ++i;
      }
      compacted.push_back(
          {bucket_start + bucket / 2.0, sum / static_cast<double>(count)});
    }
    // Compacted timestamps (bucket centers) may exceed the first retained
    // sample's time; clamp the last center to preserve monotonicity in
    // both directions.
    if (boundary != series.end() && !compacted.empty()) {
      compacted.back().time = std::min(compacted.back().time, boundary->time);
      if (compacted.size() >= 2)
        compacted.back().time = std::max(
            compacted.back().time, compacted[compacted.size() - 2].time);
    }

    removed += old_count - compacted.size();
    compacted.insert(compacted.end(), boundary, series.end());
    series = std::move(compacted);
  }
  return removed;
}

void TimeSeriesStore::export_csv(std::ostream& os,
                                 const std::string& prefix) const {
  os << "sensor,time_s,value\n";
  const auto previous = os.precision(17);
  for (const auto& [name, series] : series_) {
    if (!name.starts_with(prefix)) continue;
    for (const Sample& sample : series)
      os << name << ',' << sample.time << ',' << sample.value << '\n';
  }
  os.precision(previous);
}

std::size_t TimeSeriesStore::import_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "sensor,time_s,value")
    throw ParseError("import_csv: missing 'sensor,time_s,value' header");
  std::size_t imported = 0;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto first = line.find(',');
    const auto second = line.find(',', first + 1);
    if (first == std::string::npos || second == std::string::npos)
      throw ParseError("import_csv: malformed row at line " +
                       std::to_string(line_number));
    const std::string sensor = line.substr(0, first);
    try {
      const double time = std::stod(line.substr(first + 1, second - first - 1));
      const double value = std::stod(line.substr(second + 1));
      append(sensor, time, value);
    } catch (const std::invalid_argument&) {
      throw ParseError("import_csv: non-numeric field at line " +
                       std::to_string(line_number));
    }
    ++imported;
  }
  return imported;
}

}  // namespace hpcqc::telemetry
