#include "hpcqc/telemetry/obs_bridge.hpp"

namespace hpcqc::telemetry {

std::size_t bridge_metrics(const obs::MetricsRegistry& registry,
                           TimeSeriesStore& store, Seconds now,
                           const std::string& prefix) {
  const obs::MetricsSnapshot snap = registry.snapshot();
  std::size_t appended = 0;
  for (const auto& c : snap.counters) {
    store.append(prefix + "." + c.name, now, c.value);
    ++appended;
  }
  for (const auto& g : snap.gauges) {
    store.append(prefix + "." + g.name, now, g.value);
    ++appended;
  }
  for (const auto& h : snap.histograms) {
    const std::string base = prefix + "." + h.name;
    store.append(base + ".count", now, static_cast<double>(h.count));
    store.append(base + ".p50", now, h.p50);
    store.append(base + ".p95", now, h.p95);
    store.append(base + ".p99", now, h.p99);
    appended += 4;
  }
  return appended;
}

void install_obs_alert_rules(AlertEngine& engine, const std::string& prefix) {
  // Dead letters are cumulative: any level above zero means at least one job
  // exhausted its retries, which §3 operations treat as page-worthy.
  engine.add_rule({"obs_dead_letters", prefix + ".qrm.dead_letters_dropped",
                   AlertCondition::kAbove, 0.5, 0.0});
  // Brownout shedding sustained for 10 simulated minutes: the admission
  // controller is rejecting work faster than the backlog drains.
  engine.add_rule({"obs_brownout_sustained", prefix + ".qrm.brownout",
                   AlertCondition::kAbove, 0.5, 600.0});
  // Queue-wait p95 above an hour — the paper's shared-queue pain point.
  engine.add_rule({"obs_queue_wait_p95_high", prefix + ".qrm.queue_wait_s.p95",
                   AlertCondition::kAbove, 3600.0, 0.0});
}

}  // namespace hpcqc::telemetry
