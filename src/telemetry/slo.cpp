#include "hpcqc/telemetry/slo.hpp"

#include <algorithm>

namespace hpcqc::telemetry {

namespace {

/// A target of 1.0 leaves no budget at all; bound the divisor so the math
/// stays finite and any failure shows up as a very large burn instead of
/// an inf/NaN that would poison report diffs.
constexpr double kMinBudget = 1.0e-9;

}  // namespace

double ErrorBudget::consumed() const {
  const std::size_t total = good + bad;
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / std::max(budget(), kMinBudget);
}

double burn_rate(std::size_t good, std::size_t bad, double target) {
  const std::size_t total = good + bad;
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / std::max(1.0 - target, kMinBudget);
}

void install_slo_alert_rules(AlertEngine& alerts, const std::string& prefix,
                             const SloTargets& targets) {
  AlertRule fast;
  fast.name = prefix + ".fast_burn";
  fast.sensor = prefix + ".burn_rate";
  fast.condition = AlertCondition::kAbove;
  fast.threshold = targets.fast_burn;
  alerts.add_rule(fast);

  AlertRule slow;
  slow.name = prefix + ".slow_burn";
  slow.sensor = prefix + ".burn_rate";
  slow.condition = AlertCondition::kAbove;
  slow.threshold = targets.slow_burn;
  slow.hold = 2.0 * targets.burn_window;
  alerts.add_rule(slow);

  AlertRule availability;
  availability.name = prefix + ".availability_slo";
  availability.sensor = prefix + ".availability";
  availability.condition = AlertCondition::kBelow;
  availability.threshold = targets.availability_target;
  alerts.add_rule(availability);
}

}  // namespace hpcqc::telemetry
