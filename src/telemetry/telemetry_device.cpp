#include "hpcqc/telemetry/telemetry_device.hpp"

#include "hpcqc/common/error.hpp"
#include "hpcqc/device/health_mask.hpp"
#include "hpcqc/telemetry/collectors.hpp"

namespace hpcqc::telemetry {

TelemetryBackedDevice::TelemetryBackedDevice(std::string name,
                                             device::Topology topology,
                                             const TimeSeriesStore& store)
    : name_(std::move(name)), topology_(std::move(topology)), store_(&store) {}

double TelemetryBackedDevice::latest_or_throw(const std::string& sensor) const {
  const auto sample = store_->latest(sensor);
  if (!sample.has_value())
    throw NotFoundError("TelemetryBackedDevice: no telemetry for sensor '" +
                        sensor + "' yet");
  return sample->value;
}

double TelemetryBackedDevice::latest_or(const std::string& sensor,
                                        double fallback) const {
  const auto sample = store_->latest(sensor);
  return sample.has_value() ? sample->value : fallback;
}

device::HealthMask TelemetryBackedDevice::health_from_sensors() const {
  // Elements that never reported an `.operational` sample count as up: a
  // backend that has not exported degradation telemetry is serving normally.
  device::HealthMask mask(topology_);
  for (int q = 0; q < topology_.num_qubits(); ++q) {
    if (latest_or("qpu." + element_path('q', q) + ".operational", 1.0) < 0.5)
      mask.set_qubit(q, false);
  }
  for (int e = 0; e < topology_.num_edges(); ++e) {
    if (latest_or("qpu." + element_path('c', e) + ".operational", 1.0) < 0.5)
      mask.set_coupler(e, false);
  }
  return mask;
}

double TelemetryBackedDevice::qubit_property(qdmi::QubitProperty prop,
                                             int qubit) const {
  expects(qubit >= 0 && qubit < num_qubits(),
          "qubit_property: qubit out of range");
  const std::string base = "qpu." + element_path('q', qubit);
  switch (prop) {
    case qdmi::QubitProperty::kT1Us: return latest_or_throw(base + ".t1_us");
    case qdmi::QubitProperty::kT2Us:
      // T2 is not exported by the calibration collector; approximate with
      // the typical T2/T1 ratio of the device class.
      return 0.6 * latest_or_throw(base + ".t1_us");
    case qdmi::QubitProperty::kFidelity1q:
      return latest_or_throw(base + ".fidelity_1q");
    case qdmi::QubitProperty::kReadoutFidelity:
      return latest_or_throw(base + ".readout_fidelity");
    case qdmi::QubitProperty::kHasTlsDefect:
      return latest_or_throw(base + ".tls_defect");
    case qdmi::QubitProperty::kOperational:
      return latest_or(base + ".operational", 1.0) < 0.5 ? 0.0 : 1.0;
  }
  throw Error("qubit_property: unhandled property");
}

double TelemetryBackedDevice::coupler_property(qdmi::CouplerProperty prop,
                                               int a, int b) const {
  const int edge = topology_.edge_index(a, b);
  switch (prop) {
    case qdmi::CouplerProperty::kFidelityCz:
      return latest_or_throw("qpu." + element_path('c', edge) +
                             ".fidelity_cz");
    case qdmi::CouplerProperty::kOperational:
      return health_from_sensors().coupler_usable(topology_, edge) ? 1.0 : 0.0;
  }
  throw Error("coupler_property: unhandled property");
}

double TelemetryBackedDevice::device_property(qdmi::DeviceProperty prop) const {
  switch (prop) {
    case qdmi::DeviceProperty::kNumQubits:
      return static_cast<double>(topology_.num_qubits());
    case qdmi::DeviceProperty::kNumCouplers:
      return static_cast<double>(topology_.num_edges());
    case qdmi::DeviceProperty::kMedianFidelity1q:
      return latest_or_throw("qpu.median_fidelity_1q");
    case qdmi::DeviceProperty::kMedianFidelityCz:
      return latest_or_throw("qpu.median_fidelity_cz");
    case qdmi::DeviceProperty::kMedianReadoutFidelity:
      return latest_or_throw("qpu.median_readout_fidelity");
    case qdmi::DeviceProperty::kCalibrationAgeHours: {
      const auto sample = store_->latest("qpu.calibration_age_hours");
      return sample.has_value() ? sample->value : 0.0;
    }
    case qdmi::DeviceProperty::kShotResetUs: {
      const auto sample = store_->latest("qpu.shot_reset_us");
      return sample.has_value() ? sample->value : 300.0;
    }
    case qdmi::DeviceProperty::kHealthyQubits:
      return static_cast<double>(health_from_sensors().healthy_qubit_count());
    case qdmi::DeviceProperty::kLargestHealthyComponent:
      return static_cast<double>(
          health_from_sensors().largest_component(topology_).size());
  }
  throw Error("device_property: unhandled property");
}

qdmi::DeviceStatus TelemetryBackedDevice::status() const {
  const auto sample = store_->latest(kStatusSensor);
  if (!sample.has_value()) return qdmi::DeviceStatus::kIdle;
  return static_cast<qdmi::DeviceStatus>(static_cast<int>(sample->value));
}

}  // namespace hpcqc::telemetry
