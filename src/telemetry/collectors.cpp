#include "hpcqc/telemetry/collectors.hpp"

namespace hpcqc::telemetry {

std::string element_path(char prefix, int index) {
  std::string out(1, prefix);
  if (index < 10) out += '0';
  out += std::to_string(index);
  return out;
}

void CryostatCollector::collect(Seconds now, TimeSeriesStore& store) {
  store.append("cryo.mxc_temperature_k", now, cryostat_->temperature());
  store.append("cryo.peak_temperature_k", now,
               cryostat_->peak_since_operating());
  store.append("cryo.cooling_active", now,
               cryostat_->cooling_active() ? 1.0 : 0.0);
  store.append("cryo.vacuum_intact", now,
               cryostat_->vacuum_intact() ? 1.0 : 0.0);
}

void GasHandlingCollector::collect(Seconds now, TimeSeriesStore& store) {
  store.append("ghs.pumps_running", now, ghs_->running() ? 1.0 : 0.0);
  store.append("ghs.water_temperature_c", now, ghs_->water_temperature());
  store.append("ghs.ln2_level_l", now, ghs_->ln2_level_l());
  store.append("ghs.tip_seal_health", now, ghs_->tip_seal_health());
}

void CoolingLoopCollector::collect(Seconds now, TimeSeriesStore& store) {
  store.append("facility.water_supply_c", now, loop_->supply_temperature_c());
  store.append("facility.chiller_ok", now,
               loop_->primary_chiller_ok() ? 1.0 : 0.0);
  store.append("facility.backup_engaged", now,
               loop_->backup_engaged() ? 1.0 : 0.0);
}

void PowerCollector::collect(Seconds now, TimeSeriesStore& store) {
  store.append("power.draw_kw", now, to_kilowatts(model_->draw(*state_)));
  store.append("power.heat_to_water_kw", now,
               to_kilowatts(model_->heat_to_water(*state_)));
}

void DeviceCalibrationCollector::collect(Seconds now, TimeSeriesStore& store) {
  const auto& cal = model_->calibration();
  for (std::size_t q = 0; q < cal.qubits.size(); ++q) {
    const std::string base = "qpu." + element_path('q', static_cast<int>(q));
    store.append(base + ".fidelity_1q", now, cal.qubits[q].fidelity_1q);
    store.append(base + ".readout_fidelity", now,
                 cal.qubits[q].readout_fidelity);
    store.append(base + ".t1_us", now, cal.qubits[q].t1_us);
    store.append(base + ".tls_defect", now,
                 cal.qubits[q].tls_defect ? 1.0 : 0.0);
  }
  for (std::size_t c = 0; c < cal.couplers.size(); ++c) {
    const std::string base = "qpu." + element_path('c', static_cast<int>(c));
    store.append(base + ".fidelity_cz", now, cal.couplers[c].fidelity_cz);
  }
  store.append("qpu.median_fidelity_1q", now, cal.median_fidelity_1q());
  store.append("qpu.median_fidelity_cz", now, cal.median_fidelity_cz());
  store.append("qpu.median_readout_fidelity", now,
               cal.median_readout_fidelity());
  store.append("qpu.tls_defect_count", now,
               static_cast<double>(cal.tls_defect_count()));
}

}  // namespace hpcqc::telemetry
