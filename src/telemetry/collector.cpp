#include "hpcqc/telemetry/collector.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::telemetry {

void TelemetryHub::add_collector(std::unique_ptr<Collector> collector,
                                 Seconds period) {
  expects(collector != nullptr, "TelemetryHub: null collector");
  expects(period > 0.0, "TelemetryHub: polling period must be positive");
  entries_.push_back({std::move(collector), period, -1.0});
}

std::size_t TelemetryHub::poll(Seconds now) {
  std::size_t fired = 0;
  for (auto& entry : entries_) {
    if (entry.last_run < 0.0 || now - entry.last_run >= entry.period) {
      entry.collector->collect(now, store_);
      entry.last_run = now;
      ++fired;
    }
  }
  return fired;
}

void TelemetryHub::collect_all(Seconds now) {
  for (auto& entry : entries_) {
    entry.collector->collect(now, store_);
    entry.last_run = now;
  }
}

}  // namespace hpcqc::telemetry
