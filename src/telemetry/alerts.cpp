#include "hpcqc/telemetry/alerts.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::telemetry {

void AlertEngine::add_rule(AlertRule rule) {
  expects(!rule.name.empty() && !rule.sensor.empty(),
          "AlertEngine: rule needs a name and a sensor");
  expects(std::none_of(rules_.begin(), rules_.end(),
                       [&](const RuleState& rs) {
                         return rs.rule.name == rule.name;
                       }),
          "AlertEngine: duplicate rule name '" + rule.name + "'");
  rules_.push_back({std::move(rule), false, std::nullopt});
}

std::vector<AlertEvent> AlertEngine::evaluate(const TimeSeriesStore& store,
                                              Seconds now) {
  std::vector<AlertEvent> events;
  for (auto& state : rules_) {
    const auto sample = store.latest(state.rule.sensor);
    if (!sample.has_value()) continue;
    const bool breached =
        state.rule.condition == AlertCondition::kAbove
            ? sample->value > state.rule.threshold
            : sample->value < state.rule.threshold;

    if (breached) {
      if (!state.breach_since.has_value()) state.breach_since = now;
      const bool held = now - *state.breach_since >= state.rule.hold;
      if (held && !state.active) {
        state.active = true;
        events.push_back({state.rule.name, now, true, sample->value});
      }
    } else {
      state.breach_since.reset();
      if (state.active) {
        state.active = false;
        events.push_back({state.rule.name, now, false, sample->value});
      }
    }
  }
  history_.insert(history_.end(), events.begin(), events.end());
  return events;
}

bool AlertEngine::is_active(const std::string& rule_name) const {
  for (const auto& state : rules_)
    if (state.rule.name == rule_name) return state.active;
  throw NotFoundError("AlertEngine: unknown rule '" + rule_name + "'");
}

std::size_t AlertEngine::active_count() const {
  return static_cast<std::size_t>(
      std::count_if(rules_.begin(), rules_.end(),
                    [](const RuleState& rs) { return rs.active; }));
}

}  // namespace hpcqc::telemetry
