#pragma once

#include <string>

#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/telemetry/alerts.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::telemetry {

/// Re-exports a metrics registry snapshot into the time-series store, so
/// that job-level observability metrics land next to the facility sensors
/// and become correlatable / alertable through the same DCDB-style paths.
/// Sensor naming: "<prefix>.<metric>" for counters (cumulative value) and
/// gauges, and "<prefix>.<metric>.p50|p95|p99|count" for histograms.
/// Returns the number of sensor samples appended. Call after each
/// operational poll step, like the collectors.
std::size_t bridge_metrics(const obs::MetricsRegistry& registry,
                           TimeSeriesStore& store, Seconds now,
                           const std::string& prefix = "obs");

/// Alert rules over the bridged observability sensors: sustained dead-letter
/// growth, brownout shedding, and queue-wait p95 breaches. `prefix` must
/// match the one given to bridge_metrics().
void install_obs_alert_rules(AlertEngine& engine,
                             const std::string& prefix = "obs");

}  // namespace hpcqc::telemetry
