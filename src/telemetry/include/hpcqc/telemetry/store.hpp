#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::telemetry {

/// One timestamped reading of one sensor.
struct Sample {
  Seconds time = 0.0;
  double value = 0.0;
};

/// Window aggregate of one sensor.
struct Aggregate {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
};

/// Append-only, in-memory time-series store — the stand-in for DCDB's
/// "distributed noSQL data store" (§3.1). Sensors are named hierarchically
/// with dot-separated paths ("cryo.mxc_temperature_k",
/// "qpu.q03.fidelity_1q") so that subsystems can be queried by prefix, which
/// is what enables the cross-system correlation the paper describes.
class TimeSeriesStore {
public:
  /// Appends one sample; timestamps per sensor must be non-decreasing.
  void append(const std::string& sensor, Sample sample);
  void append(const std::string& sensor, Seconds time, double value) {
    append(sensor, Sample{time, value});
  }

  bool has_sensor(const std::string& sensor) const;
  std::size_t total_samples() const;

  /// All sensor names, sorted; optionally filtered by path prefix.
  std::vector<std::string> sensors(const std::string& prefix = "") const;

  /// Latest sample of a sensor, if any.
  std::optional<Sample> latest(const std::string& sensor) const;

  /// Samples with t0 <= time <= t1, in time order.
  std::vector<Sample> range(const std::string& sensor, Seconds t0,
                            Seconds t1) const;

  /// Aggregate over [t0, t1]; count==0 when the window is empty.
  Aggregate aggregate(const std::string& sensor, Seconds t0, Seconds t1) const;

  /// Mean-downsampled series with the given bucket width, covering
  /// [t0, t1); empty buckets are skipped. Bucket timestamps are centers.
  std::vector<Sample> downsample(const std::string& sensor, Seconds t0,
                                 Seconds t1, Seconds bucket) const;

  /// Writes "sensor,time_s,value" CSV rows for the selected prefix.
  void export_csv(std::ostream& os, const std::string& prefix = "") const;

  /// Reads rows in export_csv's format (header required) and appends them.
  /// Returns the number of samples imported; throws ParseError on
  /// malformed rows and PreconditionError on per-sensor time regressions.
  std::size_t import_csv(std::istream& is);

  /// Retention policy: samples older than `before` are replaced by their
  /// per-bucket means (bucket centers become the timestamps). A months-long
  /// campaign keeps full-resolution recent data and coarse history — the
  /// practical shape of a DCDB-scale operational store. Returns the number
  /// of samples removed.
  std::size_t compact(Seconds before, Seconds bucket);

private:
  const std::vector<Sample>* find(const std::string& sensor) const;

  std::map<std::string, std::vector<Sample>> series_;
};

}  // namespace hpcqc::telemetry
