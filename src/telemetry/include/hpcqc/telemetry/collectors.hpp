#pragma once

#include <string>

#include "hpcqc/cryo/cryostat.hpp"
#include "hpcqc/cryo/gas_handling.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/facility/cooling.hpp"
#include "hpcqc/facility/power.hpp"
#include "hpcqc/telemetry/collector.hpp"

namespace hpcqc::telemetry {

/// Cryogenic sensors: MXC temperature, cooling/vacuum state, peak excursion.
/// Sensor paths: cryo.mxc_temperature_k, cryo.cooling_active,
/// cryo.vacuum_intact, cryo.peak_temperature_k.
class CryostatCollector final : public Collector {
public:
  explicit CryostatCollector(const cryo::Cryostat& cryostat)
      : cryostat_(&cryostat) {}
  std::string name() const override { return "cryostat"; }
  void collect(Seconds now, TimeSeriesStore& store) override;

private:
  const cryo::Cryostat* cryostat_;
};

/// Gas handling sensors: pump state, cooling-water temperature, LN2 level.
class GasHandlingCollector final : public Collector {
public:
  explicit GasHandlingCollector(const cryo::GasHandlingSystem& ghs)
      : ghs_(&ghs) {}
  std::string name() const override { return "gas-handling"; }
  void collect(Seconds now, TimeSeriesStore& store) override;

private:
  const cryo::GasHandlingSystem* ghs_;
};

/// Facility sensors: cooling-loop supply temperature, chiller/backup state.
class CoolingLoopCollector final : public Collector {
public:
  explicit CoolingLoopCollector(const facility::CoolingLoop& loop)
      : loop_(&loop) {}
  std::string name() const override { return "cooling-loop"; }
  void collect(Seconds now, TimeSeriesStore& store) override;

private:
  const facility::CoolingLoop* loop_;
};

/// Power sensors: system draw for the current power state.
class PowerCollector final : public Collector {
public:
  PowerCollector(const facility::QcPowerModel& model,
                 const facility::QcPowerState& state)
      : model_(&model), state_(&state) {}
  std::string name() const override { return "power"; }
  void collect(Seconds now, TimeSeriesStore& store) override;

private:
  const facility::QcPowerModel* model_;
  const facility::QcPowerState* state_;
};

/// QPU calibration telemetry: per-qubit and per-coupler fidelities plus the
/// device medians — the "fine-grained real-time data, for example, qubit
/// fidelities" the Fig. 3 integration consumes. Paths:
/// qpu.q<NN>.fidelity_1q, qpu.q<NN>.readout_fidelity, qpu.q<NN>.t1_us,
/// qpu.c<NN>.fidelity_cz, qpu.median_fidelity_1q, ...
class DeviceCalibrationCollector final : public Collector {
public:
  explicit DeviceCalibrationCollector(const device::DeviceModel& model)
      : model_(&model) {}
  std::string name() const override { return "qpu-calibration"; }
  void collect(Seconds now, TimeSeriesStore& store) override;

private:
  const device::DeviceModel* model_;
};

/// Zero-padded sensor path fragment: q03, c11, ...
std::string element_path(char prefix, int index);

}  // namespace hpcqc::telemetry
