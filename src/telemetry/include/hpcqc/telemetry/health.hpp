#pragma once

#include <iosfwd>
#include <vector>

#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::telemetry {

/// Health classification of one qubit, derived from its telemetry history —
/// the "advanced operational analytics" DCDB lays the foundation for
/// (§3.1), in the spirit of the qubit-health-analytics companion work the
/// paper cites.
enum class QubitHealthClass {
  kHealthy,     ///< at its calibrated working point, stable
  kDrifting,    ///< fidelity trending down faster than the fleet
  kDegraded,    ///< fidelity below the acceptable floor
  kTlsSuspect,  ///< TLS-defect flag seen in the window
};

const char* to_string(QubitHealthClass cls);

/// Assessment of one qubit over the analysis window.
struct QubitHealthReport {
  int qubit = 0;
  QubitHealthClass classification = QubitHealthClass::kHealthy;
  /// Composite score in [0, 1]: gate x readout quality vs nominal.
  double score = 1.0;
  double fidelity_1q = 0.0;
  double readout_fidelity = 0.0;
  /// Fitted 1q-error growth per day over the window (positive = degrading).
  double error_trend_per_day = 0.0;
};

/// Fleet-level summary.
struct HealthSummary {
  std::vector<QubitHealthReport> qubits;
  int healthy = 0;
  int drifting = 0;
  int degraded = 0;
  int tls_suspect = 0;

  /// Qubits to avoid in placement / to prioritize at the next calibration.
  std::vector<int> attention_list() const;
  void print(std::ostream& os) const;
};

/// Service-availability view of a campaign window, reconstructed from an
/// online/offline (1/0) step sensor such as the ResilienceSupervisor's
/// "resilience.qpu_online" — the paper's multi-day integration campaigns
/// report exactly this pair of numbers (uptime fraction and how long each
/// §3.5 recovery took).
struct AvailabilityReport {
  Seconds window = 0.0;    ///< analysis window length
  Seconds downtime = 0.0;  ///< time the sensor read offline
  std::size_t outages = 0;  ///< online -> offline transitions in the window

  double availability() const {
    return window <= 0.0 ? 1.0 : 1.0 - downtime / window;
  }
  /// Mean time to recovery over the window's outages.
  Seconds mttr() const {
    return outages == 0 ? 0.0 : downtime / static_cast<double>(outages);
  }
};

/// Walks the step function of a 1/0 availability sensor over [t0, t1].
/// Samples before t0 establish the state at the window start (online is
/// assumed when no earlier sample exists); an outage still open at t1
/// contributes downtime up to t1.
AvailabilityReport availability_from_store(const TimeSeriesStore& store,
                                           const std::string& sensor,
                                           Seconds t0, Seconds t1);

/// Fleet-level availability over one campaign window: per-device reports
/// plus the two numbers a fleet exists to improve — mean device
/// availability, and the fraction of the window *at least one* device was
/// serving (its complement, `all_down`, is the availability cliff a
/// single-device site falls off).
struct FleetAvailabilityReport {
  std::vector<AvailabilityReport> devices;
  Seconds window = 0.0;
  Seconds all_down = 0.0;  ///< time with zero devices in service

  double mean_availability() const;
  double fleet_availability() const {
    return window <= 0.0 ? 1.0 : 1.0 - all_down / window;
  }
};

/// Merges the 1/0 step functions of one availability sensor per device
/// (e.g. "fleet.qpu0.qpu_online", ...) over [t0, t1]. Devices with no
/// samples before t0 start online, matching availability_from_store.
FleetAvailabilityReport fleet_availability_from_store(
    const TimeSeriesStore& store, const std::vector<std::string>& sensors,
    Seconds t0, Seconds t1);

/// Analyzes the per-qubit calibration telemetry written by
/// DeviceCalibrationCollector (paths qpu.qNN.*).
class HealthAnalyzer {
public:
  struct Params {
    Seconds window = hours(24.0);
    /// Score floor below which a qubit is kDegraded. The score is the
    /// inverse product of the error ratios vs nominal, so 0.25 means the
    /// combined (gate x readout) error grew ~4x past its calibrated
    /// values — well beyond routine between-calibration drift (which sits
    /// near a combined ratio of ~3 under the default drift model).
    double degraded_score = 0.25;
    /// 1q-error growth (absolute, per day) beyond which it is kDrifting.
    double drifting_error_per_day = 0.002;
    /// Nominal targets for score normalization.
    double nominal_fidelity_1q = 0.9991;
    double nominal_readout_fidelity = 0.98;
  };

  HealthAnalyzer();
  explicit HealthAnalyzer(Params params);

  const Params& params() const { return params_; }

  /// Assesses qubits 0..num_qubits-1 from the store at time `now`.
  /// Qubits without telemetry yet are reported kDegraded with score 0.
  HealthSummary analyze(const TimeSeriesStore& store, int num_qubits,
                        Seconds now) const;

private:
  QubitHealthReport analyze_qubit(const TimeSeriesStore& store, int qubit,
                                  Seconds now) const;

  Params params_;
};

}  // namespace hpcqc::telemetry
