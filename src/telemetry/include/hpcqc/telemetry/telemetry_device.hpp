#pragma once

#include "hpcqc/device/health_mask.hpp"
#include "hpcqc/device/topology.hpp"
#include "hpcqc/qdmi/qdmi.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::telemetry {

/// The Fig. 3 integration: a QDMI device whose property queries are served
/// from live telemetry rather than from the control software directly.
/// "A QDMI Device has been developed that interfaces with DCDB to acquire
/// telemetry from quantum hardware and its operational environment" — this
/// adapter lets the JIT compiler and external tools consume the same data
/// stream the monitoring stack records, without altering their workflows.
class TelemetryBackedDevice final : public qdmi::DeviceInterface {
public:
  /// `store` must outlive the adapter; the topology is copied because the
  /// telemetry consumer may outlive the control-side device object.
  TelemetryBackedDevice(std::string name, device::Topology topology,
                        const TimeSeriesStore& store);

  std::string name() const override { return name_; }
  int num_qubits() const override { return topology_.num_qubits(); }
  std::vector<std::pair<int, int>> coupling_map() const override {
    return topology_.edges();
  }
  std::vector<std::string> native_gates() const override {
    return {"prx", "cz"};
  }
  double qubit_property(qdmi::QubitProperty prop, int qubit) const override;
  double coupler_property(qdmi::CouplerProperty prop, int a,
                          int b) const override;
  double device_property(qdmi::DeviceProperty prop) const override;
  qdmi::DeviceStatus status() const override;

  /// Sensor path carrying the device status (written by the operations
  /// layer as a numeric DeviceStatus).
  static constexpr const char* kStatusSensor = "qpu.status";

  /// Health mask reconstructed from `.operational` sensors; elements with no
  /// sample yet count as up.
  device::HealthMask health_from_sensors() const;

private:
  double latest_or_throw(const std::string& sensor) const;
  double latest_or(const std::string& sensor, double fallback) const;

  std::string name_;
  device::Topology topology_;
  const TimeSeriesStore* store_;
};

}  // namespace hpcqc::telemetry
