#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::telemetry {

/// One telemetry plugin: reads a subsystem and appends samples to the
/// store. Mirrors DCDB's "open-source, plugin-based system designed for
/// continuous and holistic collection of operational and environmental
/// metrics" (§3.1).
class Collector {
public:
  virtual ~Collector() = default;
  virtual std::string name() const = 0;
  virtual void collect(Seconds now, TimeSeriesStore& store) = 0;
};

/// Owns the store and a set of collectors, each with its own polling
/// period, and drives them from the simulation loop.
class TelemetryHub {
public:
  TelemetryHub() = default;

  TimeSeriesStore& store() { return store_; }
  const TimeSeriesStore& store() const { return store_; }

  /// Registers a plugin with a polling period.
  void add_collector(std::unique_ptr<Collector> collector, Seconds period);

  std::size_t collector_count() const { return entries_.size(); }

  /// Runs every collector whose period has elapsed since its last run.
  /// Returns the number of collectors that fired.
  std::size_t poll(Seconds now);

  /// Forces every collector to run now.
  void collect_all(Seconds now);

private:
  struct Entry {
    std::unique_ptr<Collector> collector;
    Seconds period = 0.0;
    Seconds last_run = -1.0;
  };

  TimeSeriesStore store_;
  std::vector<Entry> entries_;
};

}  // namespace hpcqc::telemetry
