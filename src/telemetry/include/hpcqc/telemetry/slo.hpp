#pragma once

#include <cstddef>
#include <string>

#include "hpcqc/common/units.hpp"
#include "hpcqc/telemetry/alerts.hpp"

namespace hpcqc::telemetry {

/// Service-level objectives of a serving campaign. `success_target` is the
/// SLO on the good-outcome fraction of offered work (completed vs
/// dead-lettered / shed / fallen back to the emulator);
/// `availability_target` is the SLO on the fraction of wall time at least
/// one device is in service; `p99_turnaround_target` bounds the tail
/// submit-to-result latency. Burn-rate alerting follows the standard
/// multi-window shape: the error budget is consumed at rate 1.0 when the
/// service exactly meets its target, `fast_burn`/`slow_burn` are the
/// paging thresholds evaluated over `burn_window` slices.
struct SloTargets {
  double success_target = 0.97;
  double availability_target = 0.99;
  Seconds p99_turnaround_target = hours(6.0);
  Seconds burn_window = days(1.0);
  double fast_burn = 14.4;  ///< page: budget gone in ~2.5 days at this rate
  double slow_burn = 6.0;   ///< ticket: budget gone in ~2 months
};

/// Running error budget against one SLO target: `good`/`bad` count
/// outcomes, the budget is the allowed bad fraction (1 - target), and
/// `consumed()` reports how much of it the campaign has spent (1.0 =
/// exactly exhausted). Empty budgets report a perfect SLI and zero burn.
struct ErrorBudget {
  double target = 0.97;
  std::size_t good = 0;
  std::size_t bad = 0;

  /// Good-outcome fraction so far; 1.0 when nothing happened yet.
  double sli() const {
    const std::size_t total = good + bad;
    return total == 0 ? 1.0
                      : static_cast<double>(good) / static_cast<double>(total);
  }
  /// Allowed bad fraction (clamped away from zero for a degenerate
  /// target >= 1, where any failure exhausts the budget).
  double budget() const { return 1.0 - target; }
  /// Fraction of the error budget consumed; > 1 means overspent.
  double consumed() const;
  bool exhausted() const { return consumed() > 1.0; }
};

/// Burn rate of one observation window: the bad fraction divided by the
/// budgeted bad fraction. 1.0 = consuming the budget exactly as fast as
/// the SLO allows; an empty window burns nothing.
double burn_rate(std::size_t good, std::size_t bad, double target);

/// Installs the standard SLO alert rules over "<prefix>.burn_rate" and
/// "<prefix>.availability" sensors: a fast-burn page (no hold), a
/// slow-burn ticket (must persist two burn windows), and an availability
/// breach. Campaigns append one sample per burn window and then call
/// AlertEngine::evaluate.
void install_slo_alert_rules(AlertEngine& alerts, const std::string& prefix,
                             const SloTargets& targets);

}  // namespace hpcqc::telemetry
