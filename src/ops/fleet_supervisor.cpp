#include "hpcqc/ops/fleet_supervisor.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::ops {

FleetSupervisor::FleetSupervisor(sched::Fleet& fleet,
                                 std::vector<fault::FaultPlan> plans, Rng& rng,
                                 EventLog* log,
                                 telemetry::TimeSeriesStore* store,
                                 Params params)
    : fleet_(&fleet), store_(store), params_(std::move(params)) {
  if (plans.size() != fleet.num_devices())
    throw PermanentError("FleetSupervisor: need one fault plan per device (" +
                         std::to_string(plans.size()) + " plans, " +
                         std::to_string(fleet.num_devices()) + " devices)");

  auto& fleet_registry = fleet.metrics_registry();
  m_outages_ = &fleet_registry.counter("fleet.outages");
  m_downtime_ = &fleet_registry.counter("fleet.downtime_s");

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const int device = static_cast<int>(i);
    const std::string& name = fleet.device_name(device);
    auto unit = std::make_unique<Unit>();
    unit->cryostat = std::make_unique<cryo::Cryostat>();
    unit->injector =
        std::make_unique<fault::FaultInjector>(std::move(plans[i]));
    fleet.qrm(device).set_fault_injector(unit->injector.get());

    SupervisorParams device_params = params_.device;
    device_params.sensor_prefix = params_.sensor_prefix + "." + name;
    device_params.metrics = &fleet.qrm(device).metrics_registry();
    unit->supervisor = std::make_unique<ResilienceSupervisor>(
        fleet.qrm(device), *unit->cryostat, fleet.device_model(device),
        *unit->injector, rng, log, store, device_params);

    unit->m_outages = &fleet_registry.counter(params_.sensor_prefix + "." +
                                              name + ".outages");
    unit->m_downtime = &fleet_registry.counter(params_.sensor_prefix + "." +
                                               name + ".downtime_s");
    units_.push_back(std::move(unit));
  }
}

FleetSupervisor::Unit& FleetSupervisor::unit(int device) {
  expects(device >= 0 && static_cast<std::size_t>(device) < units_.size(),
          "FleetSupervisor: device index out of range");
  return *units_[static_cast<std::size_t>(device)];
}

ResilienceSupervisor& FleetSupervisor::supervisor(int device) {
  return *unit(device).supervisor;
}

fault::FaultInjector& FleetSupervisor::injector(int device) {
  return *unit(device).injector;
}

cryo::Cryostat& FleetSupervisor::cryostat(int device) {
  return *unit(device).cryostat;
}

ResilienceStats FleetSupervisor::device_stats(int device) {
  return unit(device).supervisor->stats();
}

std::string FleetSupervisor::online_sensor(int device) const {
  return params_.sensor_prefix + "." +
         fleet_->device_name(device) + ".qpu_online";
}

void FleetSupervisor::sync_counters() {
  // Mirror each device supervisor's outage/downtime deltas into the fleet
  // registry, per device and fleet-wide, so one MetricsSnapshot of the
  // fleet registry tells the whole availability story.
  for (auto& unit : units_) {
    const ResilienceStats stats = unit->supervisor->stats();
    if (stats.outages > unit->outages_seen) {
      const double delta =
          static_cast<double>(stats.outages - unit->outages_seen);
      unit->m_outages->inc(delta);
      m_outages_->inc(delta);
      unit->outages_seen = stats.outages;
    }
    if (stats.total_downtime > unit->downtime_seen) {
      const Seconds delta = stats.total_downtime - unit->downtime_seen;
      unit->m_downtime->inc(delta);
      m_downtime_->inc(delta);
      unit->downtime_seen = stats.total_downtime;
    }
  }
}

void FleetSupervisor::step(Seconds t) {
  for (auto& unit : units_) unit->supervisor->step(t);
  fleet_->advance_to(t);
  sync_counters();
  if (store_ != nullptr)
    store_->append(params_.sensor_prefix + ".devices_online", t,
                   static_cast<double>(fleet_->devices_online()));
}

FleetResilienceStats FleetSupervisor::stats() {
  sync_counters();
  FleetResilienceStats out;
  out.devices = units_.size();
  for (auto& unit : units_) {
    const ResilienceStats stats = unit->supervisor->stats();
    out.outages += stats.outages;
    out.recoveries += stats.recoveries;
    out.total_downtime += stats.total_downtime;
  }
  auto& registry = fleet_->metrics_registry();
  out.migrations =
      static_cast<std::size_t>(registry.counter("fleet.migrations").value());
  out.migration_dead_letters = static_cast<std::size_t>(
      registry.counter("fleet.migration_dead_letters").value());
  return out;
}

}  // namespace hpcqc::ops
