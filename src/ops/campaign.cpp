#include "hpcqc/ops/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"
#include "hpcqc/telemetry/collectors.hpp"
#include "hpcqc/telemetry/telemetry_device.hpp"

namespace hpcqc::ops {

OperationsCampaign::OperationsCampaign(CampaignConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      cooling_([&] {
        facility::CoolingLoop::Params params;
        params.redundant = config_.redundant_cooling;
        return facility::CoolingLoop(params);
      }()) {
  expects(config_.duration > 0.0 && config_.step > 0.0,
          "OperationsCampaign: duration and step must be positive");

  // Month-scale simulation: per-job distributions and sampled benchmarks
  // would dominate the runtime without changing any campaign metric.
  config_.qrm.execution_mode = device::ExecutionMode::kEstimateOnly;
  config_.qrm.benchmark.analytic = true;
  config_.workload.duration = config_.duration;

  device_ = std::make_unique<device::DeviceModel>(device::make_iqm20(rng_));
  qrm_ = std::make_unique<sched::Qrm>(*device_, config_.qrm, rng_, &log_);

  hub_.add_collector(std::make_unique<telemetry::CryostatCollector>(cryostat_),
                     config_.telemetry_period);
  hub_.add_collector(
      std::make_unique<telemetry::GasHandlingCollector>(ghs_),
      config_.telemetry_period);
  hub_.add_collector(
      std::make_unique<telemetry::CoolingLoopCollector>(cooling_),
      config_.telemetry_period);
  hub_.add_collector(std::make_unique<telemetry::PowerCollector>(power_model_,
                                                                 power_state_),
                     config_.telemetry_period);
  hub_.add_collector(
      std::make_unique<telemetry::DeviceCalibrationCollector>(*device_),
      config_.telemetry_period);

  // Standard operational alert rules over the recorded sensors.
  alerts_.add_rule({"water-over-temperature", "facility.water_supply_c",
                    telemetry::AlertCondition::kAbove, 25.0, 0.0});
  alerts_.add_rule({"qpu-warm", "cryo.mxc_temperature_k",
                    telemetry::AlertCondition::kAbove, 1.0, 0.0});
  alerts_.add_rule({"readout-degraded", "qpu.median_readout_fidelity",
                    telemetry::AlertCondition::kBelow, 0.94, hours(1.0)});
  alerts_.add_rule({"ln2-trap-low", "ghs.ln2_level_l",
                    telemetry::AlertCondition::kBelow, 3.0, 0.0});
}

CampaignResult OperationsCampaign::run() {
  CampaignResult result;
  auto workload =
      sched::generate_quantum_workload(*device_, config_.workload, rng_);
  std::size_t next_job = 0;

  std::size_t next_outage = 0;
  bool outage_active = false;
  Seconds repair_time = 0.0;
  Seconds fault_started_at = 0.0;
  double cooling_restored_at = -1.0;

  Seconds next_maintenance = config_.maintenance_period;
  Seconds maintenance_until = -1.0;
  bool maintenance_deferred = false;

  Seconds online_time = 0.0;
  int last_day = 0;

  for (Seconds t = config_.step; t <= config_.duration; t += config_.step) {
    // --- User workload arrivals ------------------------------------------
    while (next_job < workload.size() && workload[next_job].first <= t) {
      qrm_->submit(std::move(workload[next_job].second));
      ++next_job;
    }

    // --- Fault injection / repair ------------------------------------------
    if (!outage_active && next_outage < config_.outages.size() &&
        t >= config_.outages[next_outage].at) {
      const auto& outage = config_.outages[next_outage];
      outage_active = true;
      fault_started_at = t;
      repair_time = t + outage.repair_after;
      cooling_restored_at = -1.0;
      if (outage.kind == OutageEvent::Kind::kCoolingFailure) {
        cooling_.fail_primary_chiller();
        log_.error(t, "facility", "primary chiller failure");
      } else {
        ups_.set_mains(false);
        log_.error(t, "facility", "site power cut — UPS carrying the load");
      }
      ++next_outage;
    }
    if (outage_active && t >= repair_time) {
      cooling_.repair_primary_chiller();
      ups_.set_mains(true);
      outage_active = false;
      log_.info(t, "facility", "fault resolved");
    }

    // --- Facility physics -----------------------------------------------------
    cooling_.step(config_.step);
    ups_.step(config_.step, power_model_.draw(power_state_));
    const bool power_ok = ups_.output_ok();

    if (ghs_.update_water_temperature(cooling_.supply_temperature_c()))
      log_.error(t, "ghs",
                 "cooling water over temperature — cryo pumps tripped");
    if (!power_ok && ghs_.running()) {
      ghs_.trip();
      log_.error(t, "ghs", "UPS depleted — cryo pumps lost power");
    }
    if (!ghs_.running() && power_ok && !cooling_.over_temperature() &&
        (!outage_active || cooling_.backup_engaged())) {
      ghs_.restart();
      log_.info(t, "ghs", "cryo pumps restarted");
    }

    // --- Cryostat follows the pumps ------------------------------------------
    if (cryostat_.cooling_active() != ghs_.running()) {
      if (ghs_.running() && cryostat_.vacuum_intact()) {
        cryostat_.set_cooling(true);
        if (cooling_restored_at < 0.0) cooling_restored_at = t;
        log_.info(t, "cryo", "active cooling restored — cooldown started");
      } else if (!ghs_.running()) {
        cryostat_.set_cooling(false);
        if (qrm_->online()) qrm_->set_offline("active cooling lost");
        log_.warning(t, "cryo", "active cooling lost — QPU warming up");
      }
    }
    cryostat_.step(config_.step);
    power_state_ = !cryostat_.cooling_active()
                       ? facility::QcPowerState::kMaintenance
                       : (cryostat_.at_base()
                              ? facility::QcPowerState::kSteady
                              : facility::QcPowerState::kCooldown);

    // --- Preventive maintenance (§3.4) ----------------------------------------
    if (t >= next_maintenance) {
      if (qrm_->online() && !outage_active) {
        maintenance_until = t + config_.maintenance_duration;
        // Schedule the next window from the actual start, not the nominal
        // due time: a window deferred past a long outage must not make the
        // following windows fire back-to-back to "catch up".
        next_maintenance = t + config_.maintenance_period;
        qrm_->set_offline("preventive maintenance window");
        ghs_.flush_ln2_system();
        if (ups_.battery_health() < 0.8) ups_.replace_batteries();
        if (ghs_.tip_seal_health() < 0.4) ghs_.replace_tip_seals();
        ++result.maintenance_windows;
        maintenance_deferred = false;
        log_.info(t, "ops", "one-day preventive maintenance started");
      } else if (!maintenance_deferred) {
        // Due while the QPU is already down: defer until it is back in
        // service (counted once per due window).
        maintenance_deferred = true;
        ++result.maintenance_deferrals;
        log_.info(t, "ops",
                  std::string("preventive maintenance deferred: ") +
                      (outage_active ? "outage in progress"
                                     : "QPU out of service"));
      }
    }

    // --- Return to service ------------------------------------------------------
    if (!qrm_->online() && cryostat_.at_base() &&
        cryostat_.cooling_active() && t >= maintenance_until) {
      const bool preserved = cryostat_.calibration_preserved();
      RecoveryReport report;
      report.peak_temperature = cryostat_.peak_since_operating();
      report.calibration_preserved = preserved;
      report.fault_resolution =
          cooling_restored_at > 0.0 ? cooling_restored_at - fault_started_at
                                    : 0.0;
      report.cooldown =
          cooling_restored_at > 0.0 ? t - cooling_restored_at : 0.0;
      report.calibration_used = preserved
                                    ? calibration::CalibrationKind::kQuick
                                    : calibration::CalibrationKind::kFull;
      // Maintenance windows keep the cryostat cold; only real thermal
      // excursions count as recoveries and need a recalibration.
      if (report.peak_temperature > cryostat_.params().operating_threshold) {
        result.recoveries.push_back(report);
        qrm_->request_calibration(report.calibration_used);
      }
      cryostat_.acknowledge_recovery();
      qrm_->set_online();
    }

    // --- Weekly on-site task: LN2 top-up (§3.3) ---------------------------------
    if (ghs_.ln2_low()) {
      ghs_.refill_ln2();
      ++result.ln2_refills;
      log_.debug(t, "ops", "on-site LN2 top-up (~10 l)");
    }
    ghs_.step(config_.step);

    // --- Quantum resource manager -------------------------------------------------
    qrm_->advance_to(t);

    // --- Telemetry -----------------------------------------------------------------
    if (hub_.poll(t) > 0) {
      hub_.store().append(telemetry::TelemetryBackedDevice::kStatusSensor, t,
                          static_cast<double>(qrm_->status()));
      for (const auto& event : alerts_.evaluate(hub_.store(), t)) {
        if (event.raised) {
          ++result.alerts_raised;
          log_.warning(t, "alerts", "raised: " + event.rule);
        } else {
          log_.info(t, "alerts", "cleared: " + event.rule);
        }
      }
    }

    if (qrm_->online()) online_time += config_.step;

    // --- Daily Fig. 4 record ---------------------------------------------------------
    const int day = static_cast<int>(to_days(t));
    if (day > last_day) {
      const auto& cal = device_->calibration();
      DailyRecord record;
      record.day = day;
      record.median_fidelity_1q = cal.median_fidelity_1q();
      record.median_fidelity_cz = cal.median_fidelity_cz();
      record.median_readout_fidelity = cal.median_readout_fidelity();
      record.latest_ghz_success =
          qrm_->controller().benchmark_history().empty()
              ? 0.0
              : qrm_->controller().benchmark_history().back().ghz_success;
      record.online = qrm_->online();
      result.daily.push_back(record);
      last_day = day;
    }
  }

  result.qrm = qrm_->metrics();
  result.quick_calibrations = qrm_->controller().calibration_count(
      calibration::CalibrationKind::kQuick);
  result.full_calibrations = qrm_->controller().calibration_count(
      calibration::CalibrationKind::kFull);
  result.uptime_fraction = online_time / config_.duration;
  return result;
}

}  // namespace hpcqc::ops
