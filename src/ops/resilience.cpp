#include "hpcqc/ops/resilience.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::ops {

ResilienceSupervisor::ResilienceSupervisor(
    sched::Qrm& qrm, cryo::Cryostat& cryostat, device::DeviceModel& device,
    fault::FaultInjector& injector, Rng& rng, EventLog* log,
    telemetry::TimeSeriesStore* store, Params params)
    : qrm_(&qrm),
      cryostat_(&cryostat),
      device_(&device),
      injector_(&injector),
      rng_(&rng),
      log_(log),
      store_(store),
      recovery_(params.recovery),
      prefix_(std::move(params.sensor_prefix)) {}

void ResilienceSupervisor::step(Seconds t) {
  expects(t >= last_step_,
          "ResilienceSupervisor::step: time must not go backwards");

  // One-shot event delivery: only thermal excursions drive the outage
  // staging here (execution / calibration / query faults are handled in
  // place by the QRM and the MQSS service through the same injector).
  std::vector<fault::FaultEvent> thermal;
  for (const auto& event : injector_->poll(t))
    if (event.site == fault::FaultSite::kThermalExcursion)
      thermal.push_back(event);

  // Walk the interval [last_step_, t] segment by segment so the cryostat is
  // in the right cooling state across each boundary: an excursion flips
  // cooling off at its onset; the repair boundary flips it back on and runs
  // the staged recovery.
  std::size_t next_event = 0;
  while (true) {
    Seconds boundary = t;
    if (next_event < thermal.size())
      boundary = std::min(boundary, std::max(last_step_,
                                             thermal[next_event].at));
    if (outage_active_ && !recovery_done_)
      boundary = std::min(boundary, std::max(last_step_, repair_at_));

    if (boundary > last_step_) {
      cryostat_->step(boundary - last_step_);
      last_step_ = boundary;
    }

    if (next_event < thermal.size() &&
        thermal[next_event].at <= last_step_) {
      const fault::FaultEvent& event = thermal[next_event++];
      if (!outage_active_) {
        begin_outage(event);
      } else {
        // Overlapping excursion extends the repair window.
        repair_at_ = std::max(repair_at_, event.end());
      }
      continue;
    }
    if (outage_active_ && !recovery_done_ && last_step_ >= repair_at_) {
      repair_and_recover();
      continue;
    }
    if (last_step_ >= t && next_event >= thermal.size()) break;
  }

  if (outage_active_ && recovery_done_ && t >= online_at_) {
    const Seconds downtime = online_at_ - outage_started_;
    stats_.recoveries += 1;
    stats_.total_downtime += downtime;
    outage_active_ = false;
    recovery_done_ = false;
    qrm_->set_online();
    if (log_)
      log_->info(online_at_, "resilience",
                 "QPU returned to service after " +
                     std::to_string(downtime / hours(1.0)) + " h downtime");
    if (store_)
      store_->append(prefix_ + ".recovery_duration_s", t, downtime);
  }

  record_sensors(t);
}

void ResilienceSupervisor::begin_outage(const fault::FaultEvent& event) {
  outage_active_ = true;
  recovery_done_ = false;
  outage_started_ = event.at;
  repair_at_ = event.end();
  stats_.outages += 1;
  cryostat_->set_cooling(false);
  qrm_->set_offline(event.description.empty() ? "thermal excursion"
                                              : event.description);
  if (log_)
    log_->warning(event.at, "resilience",
                  "outage: " + event.description + "; repair expected in " +
                      std::to_string(event.duration / hours(1.0)) + " h");
}

void ResilienceSupervisor::repair_and_recover() {
  // Underlying issue fixed at repair_at_: restore cooling and run the §3.5
  // staging. RecoveryProcedure steps the cryostat to base and recalibrates
  // the device itself (quick vs full from the peak excursion temperature),
  // so we must not also schedule a QRM calibration for it.
  cryostat_->set_cooling(true);
  const Seconds fault_resolution = repair_at_ - outage_started_;
  RecoveryReport report = recovery_.execute(*cryostat_, *device_,
                                            fault_resolution, *rng_, log_,
                                            repair_at_);
  online_at_ =
      repair_at_ + report.cooldown + report.calibration + report.verification;
  recovery_done_ = true;
  stats_.reports.push_back(report);
  if (store_) {
    store_->append(prefix_ + ".recovery_cooldown_s", repair_at_,
                   report.cooldown);
    store_->append(prefix_ + ".recovery_peak_k", repair_at_,
                   report.peak_temperature);
  }
}

void ResilienceSupervisor::record_sensors(Seconds t) {
  if (store_ == nullptr) return;
  store_->append(prefix_ + ".qpu_online", t, outage_active_ ? 0.0 : 1.0);
  store_->append(prefix_ + ".dead_letters", t,
                 static_cast<double>(qrm_->dead_letters().size()));
  store_->append(prefix_ + ".retry_backlog", t,
                 static_cast<double>(qrm_->retry_backlog()));
  store_->append(prefix_ + ".queue_length", t,
                 static_cast<double>(qrm_->queue_length()));
}

void ResilienceSupervisor::install_alert_rules(telemetry::AlertEngine& alerts,
                                               const std::string& prefix) {
  alerts.add_rule({prefix + ".qpu_down", prefix + ".qpu_online",
                   telemetry::AlertCondition::kBelow, 0.5, 0.0});
  alerts.add_rule({prefix + ".jobs_lost", prefix + ".dead_letters",
                   telemetry::AlertCondition::kAbove, 0.5, 0.0});
}

}  // namespace hpcqc::ops
