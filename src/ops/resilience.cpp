#include "hpcqc/ops/resilience.hpp"

#include <algorithm>

#include "hpcqc/calibration/benchmark.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::ops {

ResilienceSupervisor::ResilienceSupervisor(
    sched::Qrm& qrm, cryo::Cryostat& cryostat, device::DeviceModel& device,
    fault::FaultInjector& injector, Rng& rng, EventLog* log,
    telemetry::TimeSeriesStore* store, Params params)
    : qrm_(&qrm),
      cryostat_(&cryostat),
      device_(&device),
      injector_(&injector),
      rng_(&rng),
      log_(log),
      store_(store),
      recovery_(params.recovery),
      prefix_(params.sensor_prefix),
      params_(std::move(params)) {
  if (params_.metrics == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  } else {
    registry_ = params_.metrics;
  }
  m_outages_ = &registry_->counter("resilience.outages");
  m_recoveries_ = &registry_->counter("resilience.recoveries");
  m_downtime_ = &registry_->counter("resilience.downtime_s");
  m_qubit_dropouts_ = &registry_->counter("resilience.qubit_dropouts");
  m_coupler_dropouts_ = &registry_->counter("resilience.coupler_dropouts");
  m_targeted_recals_ = &registry_->counter("resilience.targeted_recals");
  m_flood_submitted_ = &registry_->counter("resilience.flood_jobs_submitted");
  m_flood_rejected_ = &registry_->counter("resilience.flood_jobs_rejected");
  m_qpu_online_ = &registry_->gauge("resilience.qpu_online");
  m_qpu_online_->set(1.0);
  m_brownout_ = &registry_->gauge("resilience.brownout");
}

ResilienceStats ResilienceSupervisor::stats() const {
  ResilienceStats stats;
  stats.outages = m_outages_->count();
  stats.recoveries = m_recoveries_->count();
  stats.total_downtime = m_downtime_->value();
  stats.reports = reports_;
  stats.qubit_dropouts = m_qubit_dropouts_->count();
  stats.coupler_dropouts = m_coupler_dropouts_->count();
  stats.targeted_recals = m_targeted_recals_->count();
  stats.flood_jobs_submitted = m_flood_submitted_->count();
  stats.flood_jobs_rejected = m_flood_rejected_->count();
  return stats;
}

void ResilienceSupervisor::step(Seconds t) {
  expects(t >= last_step_,
          "ResilienceSupervisor::step: time must not go backwards");

  // One-shot event delivery: thermal excursions drive the whole-device
  // outage staging; qubit/coupler dropouts drive the partial-degrade path
  // (mask -> keep serving -> targeted recal -> unmask). Execution /
  // calibration / query faults are handled in place by the QRM and the MQSS
  // service through the same injector, and queue floods are window-checked
  // below rather than event-driven.
  std::vector<fault::FaultEvent> thermal;
  for (const auto& event : injector_->poll(t)) {
    switch (event.site) {
      case fault::FaultSite::kThermalExcursion:
        thermal.push_back(event);
        break;
      case fault::FaultSite::kQubitDropout:
      case fault::FaultSite::kCouplerDropout:
        begin_degrade(event);
        break;
      default:
        break;
    }
  }

  // Walk the interval [last_step_, t] segment by segment so the cryostat is
  // in the right cooling state across each boundary: an excursion flips
  // cooling off at its onset; the repair boundary flips it back on and runs
  // the staged recovery.
  std::size_t next_event = 0;
  while (true) {
    Seconds boundary = t;
    if (next_event < thermal.size())
      boundary = std::min(boundary, std::max(last_step_,
                                             thermal[next_event].at));
    if (outage_active_ && !recovery_done_)
      boundary = std::min(boundary, std::max(last_step_, repair_at_));

    if (boundary > last_step_) {
      cryostat_->step(boundary - last_step_);
      last_step_ = boundary;
    }

    if (next_event < thermal.size() &&
        thermal[next_event].at <= last_step_) {
      const fault::FaultEvent& event = thermal[next_event++];
      if (!outage_active_) {
        begin_outage(event);
      } else {
        // Overlapping excursion extends the repair window.
        repair_at_ = std::max(repair_at_, event.end());
      }
      continue;
    }
    if (outage_active_ && !recovery_done_ && last_step_ >= repair_at_) {
      repair_and_recover();
      continue;
    }
    if (last_step_ >= t && next_event >= thermal.size()) break;
  }

  if (outage_active_ && recovery_done_ && t >= online_at_) {
    const Seconds downtime = online_at_ - outage_started_;
    m_recoveries_->inc();
    m_downtime_->inc(downtime);
    outage_active_ = false;
    recovery_done_ = false;
    m_qpu_online_->set(1.0);
    qrm_->set_online();
    if (log_)
      log_->info(online_at_, "resilience",
                 "QPU returned to service after " +
                     std::to_string(downtime / hours(1.0)) + " h downtime");
    if (store_)
      store_->append(prefix_ + ".recovery_duration_s", t, downtime);
  }

  process_degrade_restores(t);
  generate_flood(t);
  record_sensors(t);
}

void ResilienceSupervisor::begin_degrade(const fault::FaultEvent& event) {
  const auto& topology = device_->topology();
  if (event.site == fault::FaultSite::kQubitDropout) {
    expects(event.target >= 0 && event.target < topology.num_qubits(),
            "begin_degrade: qubit target out of range");
    device_->set_qubit_health(event.target, false);
    m_qubit_dropouts_->inc();
  } else {
    expects(event.target >= 0 && event.target < topology.num_edges(),
            "begin_degrade: coupler target out of range");
    const auto& edge = topology.edges()[static_cast<std::size_t>(event.target)];
    device_->set_coupler_health(edge.first, edge.second, false);
    m_coupler_dropouts_->inc();
  }
  degrades_.push_back(
      {event, event.end() + params_.targeted_recal_duration});
  if (log_) {
    const auto& mask = device_->health();
    log_->warning(
        event.at, "resilience",
        event.description + " masked; serving degraded (" +
            std::to_string(mask.healthy_qubit_count()) + "/" +
            std::to_string(topology.num_qubits()) + " qubits, largest "
            "component " +
            std::to_string(mask.largest_component(topology).size()) + ")");
  }
}

void ResilienceSupervisor::process_degrade_restores(Seconds t) {
  // Targeted recalibration: when a dropout's fault window has closed and the
  // recal slot has elapsed, refresh ONLY the failed element's metrics and
  // return it to the serving set. The whole-device calibration cadence is
  // untouched — this is maintenance on one element while the rest serves.
  for (std::size_t i = 0; i < degrades_.size();) {
    if (degrades_[i].restore_at > t) {
      ++i;
      continue;
    }
    const ActiveDegrade degrade = degrades_[i];
    degrades_.erase(degrades_.begin() + static_cast<std::ptrdiff_t>(i));
    const auto& topology = device_->topology();
    const device::CalibrationState fresh =
        device_->sample_fresh_calibration(t, *rng_);
    device::CalibrationState live = device_->calibration();
    const int target = degrade.event.target;
    if (degrade.event.site == fault::FaultSite::kQubitDropout) {
      live.qubits[static_cast<std::size_t>(target)] =
          fresh.qubits[static_cast<std::size_t>(target)];
      device_->install_live_state(std::move(live));
      device_->set_qubit_health(target, true);
    } else {
      live.couplers[static_cast<std::size_t>(target)] =
          fresh.couplers[static_cast<std::size_t>(target)];
      device_->install_live_state(std::move(live));
      const auto& edge = topology.edges()[static_cast<std::size_t>(target)];
      device_->set_coupler_health(edge.first, edge.second, true);
    }
    m_targeted_recals_->inc();
    if (log_)
      log_->info(t, "resilience",
                 degrade.event.description +
                     " recalibrated and unmasked (targeted recal)");
  }
}

void ResilienceSupervisor::generate_flood(Seconds t) {
  if (params_.flood_jobs_per_step == 0 || outage_active_) return;
  if (!injector_->active(fault::FaultSite::kQueueFlood, t)) return;
  // The flood is the *attack*, not the response: a deterministic burst of
  // low-priority work that the QRM's admission control must absorb without
  // losing track of a single submission.
  const circuit::Circuit burst_circuit =
      calibration::GhzBenchmark::chain_circuit(*device_, 2);
  for (std::size_t i = 0; i < params_.flood_jobs_per_step; ++i) {
    sched::QuantumJob job;
    job.name = "flood-" + std::to_string(flood_counter_++);
    job.circuit = burst_circuit;
    job.shots = params_.flood_shots;
    job.priority = sched::JobPriority::kLow;
    const int id = qrm_->submit(std::move(job));
    m_flood_submitted_->inc();
    const auto state = qrm_->record(id).state;
    if (state == sched::QuantumJobState::kRejectedOverload ||
        state == sched::QuantumJobState::kRejectedTooWide)
      m_flood_rejected_->inc();
  }
  if (log_)
    log_->debug(t, "resilience",
                "queue flood: submitted " +
                    std::to_string(params_.flood_jobs_per_step) +
                    " low-priority jobs");
}

void ResilienceSupervisor::begin_outage(const fault::FaultEvent& event) {
  outage_active_ = true;
  recovery_done_ = false;
  outage_started_ = event.at;
  repair_at_ = event.end();
  m_outages_->inc();
  m_qpu_online_->set(0.0);
  cryostat_->set_cooling(false);
  qrm_->set_offline(event.description.empty() ? "thermal excursion"
                                              : event.description);
  if (log_)
    log_->warning(event.at, "resilience",
                  "outage: " + event.description + "; repair expected in " +
                      std::to_string(event.duration / hours(1.0)) + " h");
}

void ResilienceSupervisor::repair_and_recover() {
  // Underlying issue fixed at repair_at_: restore cooling and run the §3.5
  // staging. RecoveryProcedure steps the cryostat to base and recalibrates
  // the device itself (quick vs full from the peak excursion temperature),
  // so we must not also schedule a QRM calibration for it.
  cryostat_->set_cooling(true);
  const Seconds fault_resolution = repair_at_ - outage_started_;
  RecoveryReport report = recovery_.execute(*cryostat_, *device_,
                                            fault_resolution, *rng_, log_,
                                            repair_at_);
  online_at_ =
      repair_at_ + report.cooldown + report.calibration + report.verification;
  recovery_done_ = true;
  reports_.push_back(report);
  if (store_) {
    store_->append(prefix_ + ".recovery_cooldown_s", repair_at_,
                   report.cooldown);
    store_->append(prefix_ + ".recovery_peak_k", repair_at_,
                   report.peak_temperature);
  }
}

void ResilienceSupervisor::record_sensors(Seconds t) {
  if (store_ == nullptr) return;
  store_->append(prefix_ + ".qpu_online", t, outage_active_ ? 0.0 : 1.0);
  store_->append(prefix_ + ".dead_letters", t,
                 static_cast<double>(qrm_->dead_letters().size()));
  store_->append(prefix_ + ".retry_backlog", t,
                 static_cast<double>(qrm_->retry_backlog()));
  store_->append(prefix_ + ".queue_length", t,
                 static_cast<double>(qrm_->queue_length()));

  // Degraded-capability and overload gauges.
  const auto& mask = device_->health();
  const auto& topology = device_->topology();
  store_->append(prefix_ + ".healthy_qubits", t,
                 static_cast<double>(mask.healthy_qubit_count()));
  store_->append(prefix_ + ".largest_component", t,
                 static_cast<double>(mask.largest_component(topology).size()));
  const sched::JobConservation audit = qrm_->conservation();
  const double refused =
      static_cast<double>(audit.shed + audit.rejected_overload);
  store_->append(prefix_ + ".shed_jobs", t, refused);
  store_->append(
      prefix_ + ".shed_rate", t,
      audit.submitted == 0
          ? 0.0
          : refused / static_cast<double>(audit.submitted));
  store_->append(prefix_ + ".admission_wait_s", t, qrm_->estimated_wait());
  // A brownout episode can begin and end between two samples when shedding
  // empties the queue; latch on the shed counter so alerting still sees it.
  const bool shedding = qrm_->brownout() || audit.shed > last_shed_seen_;
  last_shed_seen_ = audit.shed;
  store_->append(prefix_ + ".brownout", t, shedding ? 1.0 : 0.0);
  m_brownout_->set(shedding ? 1.0 : 0.0);
}

void ResilienceSupervisor::install_alert_rules(telemetry::AlertEngine& alerts,
                                               const std::string& prefix,
                                               double min_healthy_qubits) {
  alerts.add_rule({prefix + ".qpu_down", prefix + ".qpu_online",
                   telemetry::AlertCondition::kBelow, 0.5, 0.0});
  alerts.add_rule({prefix + ".jobs_lost", prefix + ".dead_letters",
                   telemetry::AlertCondition::kAbove, 0.5, 0.0});
  alerts.add_rule({prefix + ".shedding", prefix + ".brownout",
                   telemetry::AlertCondition::kAbove, 0.5, 0.0});
  if (min_healthy_qubits > 0.0)
    alerts.add_rule({prefix + ".degraded_capacity", prefix + ".healthy_qubits",
                     telemetry::AlertCondition::kBelow, min_healthy_qubits,
                     0.0});
}

}  // namespace hpcqc::ops
