#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hpcqc/common/log.hpp"
#include "hpcqc/common/units.hpp"
#include "hpcqc/fault/fault_plan.hpp"
#include "hpcqc/load/traffic.hpp"
#include "hpcqc/ops/fleet_supervisor.hpp"
#include "hpcqc/sched/fleet.hpp"
#include "hpcqc/telemetry/health.hpp"
#include "hpcqc/telemetry/slo.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::ops {

/// Service-level outcome of one tenant over a campaign. Offered work splits
/// into completed, failed (dead-lettered), shed (brownout victims),
/// fallback (the fleet refused for capacity — the client's circuit breaker
/// serves these on the HPC emulator), and rejected (unserviceable width or
/// the tenant's own quota). The error budget counts completed as good and
/// failed + shed + fallback as bad; quota/width rejections are the tenant's
/// doing and spend no service budget.
struct TenantSlo {
  std::string tenant;
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::size_t fallback_emulated = 0;
  std::size_t rejected = 0;
  Seconds p50_turnaround = 0.0;  ///< submit -> result, completed jobs
  Seconds p99_turnaround = 0.0;
  telemetry::ErrorBudget budget;

  double fallback_fraction() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(fallback_emulated) /
                              static_cast<double>(offered);
  }
  double shed_fraction() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(shed) / static_cast<double>(offered);
  }
  double reject_fraction() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(rejected) / static_cast<double>(offered);
  }
};

/// Default fault environment of a service year. Per device: thermal
/// excursions every ~45 days, element dropouts, weekly-ish queue floods,
/// occasional execution aborts. Fleet-correlated: a cryo-plant trip every
/// ~4 months warming every device, a facility power event every ~2 months
/// hitting a subset. Element/device counts and the horizon are filled in
/// by the campaign.
fault::FaultPlan::Params default_device_fault_params();
fault::FaultPlan::Params default_fleet_fault_params();

/// Default tenant mix of a service year: a 500-tenant zipf population at a
/// modest sustained rate with a diurnal cycle and quieter weekends —
/// ~50k offered jobs per simulated year instead of the load-test default's
/// millions.
load::TrafficConfig default_service_traffic();

/// Everything a year-scale service campaign needs: the fleet shape, the
/// tenant traffic, the composed fault environment (independent per-device
/// sites plus correlated facility sites expanded across devices plus
/// optional scripted events), coordinated preventive maintenance, and the
/// SLO targets the report is graded against.
struct ServiceCampaignConfig {
  std::uint64_t seed = 2026;
  Seconds horizon = days(365.0);
  Seconds step = minutes(15.0);  ///< also the fleet coordination slice
  std::size_t devices = 3;

  /// Tenant traffic; seed and duration are overridden by the campaign.
  load::TrafficConfig traffic = default_service_traffic();
  /// Fleet tunables; the QRM is forced to analytic estimate-only execution
  /// so a year of jobs stays cheap and bit-identical at any thread count.
  sched::Fleet::Config fleet;

  /// Independent per-device fault sites (horizon and element counts are
  /// filled in by the campaign).
  fault::FaultPlan::Params device_faults = default_device_fault_params();
  /// Correlated facility sites (kCryoPlantTrip / kFacilityPower), expanded
  /// into synchronized per-device excursions.
  fault::FaultPlan::Params fleet_faults = default_fleet_fault_params();
  /// Scripted events merged into the generated fleet plan — guarantees a
  /// correlated outage in short test horizons.
  fault::FaultPlan scheduled_fleet_faults;
  FleetSupervisorParams supervisor;

  /// Fleet-coordinated preventive maintenance: per-device windows are
  /// staggered across the period, started only while the device is in
  /// service, no outage is active on it, and at least one other device
  /// keeps serving; otherwise the window is deferred (never dropped).
  Seconds maintenance_period = days(30.0);
  Seconds maintenance_duration = hours(8.0);

  telemetry::SloTargets slo;
  /// Tenants with a dedicated row in the report (by offered jobs); the
  /// tail is rolled into one "other" row.
  std::size_t report_tenants = 8;
};

/// Deterministic outcome of a service campaign: fleet-wide and per-tenant
/// SLO accounting, availability from the serving sensors, ops counters,
/// and a replay fingerprint. to_json() and print() are pure functions of
/// the member values, so byte-identical members give byte-identical
/// reports.
struct ServiceCampaignResult {
  std::uint64_t seed = 0;
  Seconds horizon = 0.0;
  std::size_t devices = 0;

  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::size_t fallback_emulated = 0;
  std::size_t rejected = 0;
  Seconds p50_turnaround = 0.0;
  Seconds p99_turnaround = 0.0;

  /// From the per-device "slo.<name>.serving" sensors (these reflect both
  /// fault outages and maintenance windows, unlike the supervisor's
  /// qpu_online sensors which track outages only).
  telemetry::FleetAvailabilityReport availability;
  double fleet_availability = 1.0;
  double mean_device_availability = 1.0;
  double worst_device_availability = 1.0;

  FleetResilienceStats resilience;
  std::size_t maintenance_windows = 0;
  std::size_t maintenance_deferrals = 0;
  std::size_t maintenance_preemptions = 0;
  /// Steps where no device was serving while at least one sat in a
  /// maintenance window — the never-drain-the-fleet invariant requires 0.
  std::size_t drained_by_maintenance_steps = 0;
  std::size_t min_devices_serving = 0;

  telemetry::ErrorBudget fleet_budget;
  double max_burn_rate = 0.0;
  std::size_t alerts_raised = 0;

  std::vector<TenantSlo> tenants;  ///< head rows + trailing "other" rollup
  sched::JobConservation conservation;
  /// FNV-1a over (ticket, terminal state, end_time, device) in ticket
  /// order — one equality check for replay identity.
  std::uint64_t fingerprint = 0;

  std::string to_json() const;
  void print(std::ostream& os) const;
};

/// Year-scale "run it as a service" driver: a sched::Fleet under an
/// ops::FleetSupervisor, fed by the zipf/diurnal traffic model, with the
/// composed fault environment, coordinated maintenance, and per-tenant SLO
/// + burn-rate error-budget accounting evaluated through the telemetry
/// alert engine. Single-threaded on the simulated clock: the same config
/// yields a bit-identical result, log, and sensor store on every rerun and
/// under any OMP_NUM_THREADS.
class ServiceCampaign {
public:
  /// Throws PermanentError on degenerate configs.
  explicit ServiceCampaign(ServiceCampaignConfig config);
  ~ServiceCampaign();

  ServiceCampaignResult run();

  const EventLog& log() const { return log_; }
  const telemetry::TimeSeriesStore& store() const { return store_; }

private:
  ServiceCampaignConfig config_;
  EventLog log_;
  telemetry::TimeSeriesStore store_;
};

}  // namespace hpcqc::ops
