#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hpcqc/common/log.hpp"
#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/cryo/cryostat.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/ops/recovery.hpp"
#include "hpcqc/sched/qrm.hpp"
#include "hpcqc/telemetry/alerts.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::ops {

/// Outage / recovery bookkeeping of one supervised campaign.
struct ResilienceStats {
  std::size_t outages = 0;
  std::size_t recoveries = 0;
  Seconds total_downtime = 0.0;
  std::vector<RecoveryReport> reports;

  /// Partial-degrade path (masked serving, §3.4-3.5): dropout events
  /// observed, and targeted single-element recalibrations completed.
  std::size_t qubit_dropouts = 0;
  std::size_t coupler_dropouts = 0;
  std::size_t targeted_recals = 0;
  /// Synthetic queue-flood submissions issued / refused by admission.
  std::size_t flood_jobs_submitted = 0;
  std::size_t flood_jobs_rejected = 0;

  /// Mean time to recovery: fault onset -> back in service.
  Seconds mttr() const {
    return recoveries == 0 ? 0.0
                           : total_downtime / static_cast<double>(recoveries);
  }
  /// Fraction of `window` the QPU was in service.
  double availability(Seconds window) const {
    return window <= 0.0 ? 1.0 : 1.0 - total_downtime / window;
  }
};

/// Tunables of the outage supervisor (namespace scope so it can serve as a
/// defaulted constructor argument).
struct SupervisorParams {
  RecoveryProcedure::Params recovery;
  std::string sensor_prefix = "resilience";
  /// Targeted recalibration: once a dropout's underlying fault clears, only
  /// the failed element is recalibrated (fresh metrics installed) before it
  /// is unmasked — this long after the fault window closes. The rest of the
  /// device keeps serving throughout.
  Seconds targeted_recal_duration = minutes(10.0);
  /// Synthetic low-priority submissions per step while a kQueueFlood window
  /// is active — the overload the QRM's admission control must absorb.
  /// 0 disables flood generation (windows are then inert).
  std::size_t flood_jobs_per_step = 4;
  std::size_t flood_shots = 100;
  /// Shared metrics registry for the resilience.* counters/gauges; null
  /// gives the supervisor a private registry (see metrics_registry()).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Wires injected facility faults to the §3.5 recovery staging. On a
/// kThermalExcursion event it takes the QPU offline (the QRM retains its
/// queue) and lets the cryostat warm; when the underlying fault is repaired
/// (the event window closes) it restores cooling and runs
/// ops::RecoveryProcedure — which picks quick vs full recalibration from
/// the peak excursion temperature — then returns the QRM to service, at
/// which point the retained queue (and any retry backlog) resumes.
/// Every transition is timestamped into the EventLog and, when a store is
/// attached, onto "<prefix>.*" telemetry sensors so campaigns can report
/// availability and MTTR through the same analytics layer as Fig. 3.
class ResilienceSupervisor {
public:
  using Params = SupervisorParams;

  /// All referents must outlive the supervisor; `log` / `store` optional.
  ResilienceSupervisor(sched::Qrm& qrm, cryo::Cryostat& cryostat,
                       device::DeviceModel& device,
                       fault::FaultInjector& injector, Rng& rng,
                       EventLog* log = nullptr,
                       telemetry::TimeSeriesStore* store = nullptr,
                       Params params = {});

  /// Advances outage orchestration to time `t` (non-decreasing): consumes
  /// due injector events, steps the cryostat thermal model, and drives the
  /// offline -> repair -> recover -> online staging. Call once per campaign
  /// step, before Qrm::advance_to(t).
  void step(Seconds t);

  bool outage_active() const { return outage_active_; }
  /// Aggregate stats assembled from the registry counters (plus the
  /// recovery reports). By-value shim kept for pre-registry callers.
  ResilienceStats stats() const;

  /// The live registry holding the resilience.* metrics.
  obs::MetricsRegistry& metrics_registry() { return *registry_; }
  const obs::MetricsRegistry& metrics_registry() const { return *registry_; }

  /// Standard alert rules over the supervisor's sensors: QPU-down,
  /// dead-letter accumulation, and brownout shedding. When
  /// `min_healthy_qubits` > 0, a degraded-capacity rule fires while the
  /// healthy-qubit gauge sits below it.
  static void install_alert_rules(telemetry::AlertEngine& alerts,
                                  const std::string& prefix = "resilience",
                                  double min_healthy_qubits = 0.0);

private:
  /// One masked element awaiting targeted recalibration.
  struct ActiveDegrade {
    fault::FaultEvent event;
    Seconds restore_at = 0.0;  ///< event.end() + targeted_recal_duration
  };

  void begin_outage(const fault::FaultEvent& event);
  void repair_and_recover();
  void begin_degrade(const fault::FaultEvent& event);
  void process_degrade_restores(Seconds t);
  void generate_flood(Seconds t);
  void record_sensors(Seconds t);

  sched::Qrm* qrm_;
  cryo::Cryostat* cryostat_;
  device::DeviceModel* device_;
  fault::FaultInjector* injector_;
  Rng* rng_;
  EventLog* log_;
  telemetry::TimeSeriesStore* store_;
  RecoveryProcedure recovery_;
  std::string prefix_;
  Params params_;

  std::vector<ActiveDegrade> degrades_;
  std::size_t flood_counter_ = 0;
  std::size_t last_shed_seen_ = 0;

  Seconds last_step_ = 0.0;
  bool outage_active_ = false;
  bool recovery_done_ = false;
  Seconds outage_started_ = 0.0;
  Seconds repair_at_ = 0.0;
  Seconds online_at_ = 0.0;
  std::vector<RecoveryReport> reports_;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* m_outages_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_downtime_ = nullptr;
  obs::Counter* m_qubit_dropouts_ = nullptr;
  obs::Counter* m_coupler_dropouts_ = nullptr;
  obs::Counter* m_targeted_recals_ = nullptr;
  obs::Counter* m_flood_submitted_ = nullptr;
  obs::Counter* m_flood_rejected_ = nullptr;
  obs::Gauge* m_qpu_online_ = nullptr;
  obs::Gauge* m_brownout_ = nullptr;
};

}  // namespace hpcqc::ops
