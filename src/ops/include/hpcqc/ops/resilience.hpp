#pragma once

#include <string>
#include <vector>

#include "hpcqc/common/log.hpp"
#include "hpcqc/cryo/cryostat.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/ops/recovery.hpp"
#include "hpcqc/sched/qrm.hpp"
#include "hpcqc/telemetry/alerts.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::ops {

/// Outage / recovery bookkeeping of one supervised campaign.
struct ResilienceStats {
  std::size_t outages = 0;
  std::size_t recoveries = 0;
  Seconds total_downtime = 0.0;
  std::vector<RecoveryReport> reports;

  /// Mean time to recovery: fault onset -> back in service.
  Seconds mttr() const {
    return recoveries == 0 ? 0.0
                           : total_downtime / static_cast<double>(recoveries);
  }
  /// Fraction of `window` the QPU was in service.
  double availability(Seconds window) const {
    return window <= 0.0 ? 1.0 : 1.0 - total_downtime / window;
  }
};

/// Tunables of the outage supervisor (namespace scope so it can serve as a
/// defaulted constructor argument).
struct SupervisorParams {
  RecoveryProcedure::Params recovery;
  std::string sensor_prefix = "resilience";
};

/// Wires injected facility faults to the §3.5 recovery staging. On a
/// kThermalExcursion event it takes the QPU offline (the QRM retains its
/// queue) and lets the cryostat warm; when the underlying fault is repaired
/// (the event window closes) it restores cooling and runs
/// ops::RecoveryProcedure — which picks quick vs full recalibration from
/// the peak excursion temperature — then returns the QRM to service, at
/// which point the retained queue (and any retry backlog) resumes.
/// Every transition is timestamped into the EventLog and, when a store is
/// attached, onto "<prefix>.*" telemetry sensors so campaigns can report
/// availability and MTTR through the same analytics layer as Fig. 3.
class ResilienceSupervisor {
public:
  using Params = SupervisorParams;

  /// All referents must outlive the supervisor; `log` / `store` optional.
  ResilienceSupervisor(sched::Qrm& qrm, cryo::Cryostat& cryostat,
                       device::DeviceModel& device,
                       fault::FaultInjector& injector, Rng& rng,
                       EventLog* log = nullptr,
                       telemetry::TimeSeriesStore* store = nullptr,
                       Params params = {});

  /// Advances outage orchestration to time `t` (non-decreasing): consumes
  /// due injector events, steps the cryostat thermal model, and drives the
  /// offline -> repair -> recover -> online staging. Call once per campaign
  /// step, before Qrm::advance_to(t).
  void step(Seconds t);

  bool outage_active() const { return outage_active_; }
  const ResilienceStats& stats() const { return stats_; }

  /// Standard alert rules over the supervisor's sensors: QPU-down and
  /// dead-letter accumulation.
  static void install_alert_rules(telemetry::AlertEngine& alerts,
                                  const std::string& prefix = "resilience");

private:
  void begin_outage(const fault::FaultEvent& event);
  void repair_and_recover();
  void record_sensors(Seconds t);

  sched::Qrm* qrm_;
  cryo::Cryostat* cryostat_;
  device::DeviceModel* device_;
  fault::FaultInjector* injector_;
  Rng* rng_;
  EventLog* log_;
  telemetry::TimeSeriesStore* store_;
  RecoveryProcedure recovery_;
  std::string prefix_;

  Seconds last_step_ = 0.0;
  bool outage_active_ = false;
  bool recovery_done_ = false;
  Seconds outage_started_ = 0.0;
  Seconds repair_at_ = 0.0;
  Seconds online_at_ = 0.0;
  ResilienceStats stats_;
};

}  // namespace hpcqc::ops
