#pragma once

#include <memory>
#include <vector>

#include "hpcqc/common/log.hpp"
#include "hpcqc/cryo/cryostat.hpp"
#include "hpcqc/cryo/gas_handling.hpp"
#include "hpcqc/device/presets.hpp"
#include "hpcqc/facility/cooling.hpp"
#include "hpcqc/facility/power.hpp"
#include "hpcqc/ops/recovery.hpp"
#include "hpcqc/sched/qrm.hpp"
#include "hpcqc/sched/workload.hpp"
#include "hpcqc/telemetry/alerts.hpp"
#include "hpcqc/telemetry/collector.hpp"

namespace hpcqc::ops {

/// A facility fault injected into the campaign.
struct OutageEvent {
  Seconds at = 0.0;
  enum class Kind { kCoolingFailure, kPowerCut } kind = Kind::kCoolingFailure;
  /// Time until the underlying issue is identified and resolved.
  Seconds repair_after = hours(4.0);
};

/// Configuration of a multi-day autonomous-operations simulation.
struct CampaignConfig {
  Seconds duration = days(146.0);  ///< the Fig. 4 observation window
  Seconds step = minutes(10.0);
  std::uint64_t seed = 42;
  sched::Qrm::Config qrm;
  sched::QuantumWorkloadParams workload;
  Seconds telemetry_period = minutes(30.0);
  std::vector<OutageEvent> outages;
  bool redundant_cooling = false;
  /// §3.4: one-day preventive maintenance roughly every six months.
  Seconds maintenance_period = days(183.0);
  Seconds maintenance_duration = days(1.0);
};

/// One day of Fig.-4-style medians.
struct DailyRecord {
  int day = 0;
  double median_fidelity_1q = 0.0;
  double median_fidelity_cz = 0.0;
  double median_readout_fidelity = 0.0;
  double latest_ghz_success = 0.0;
  bool online = true;
};

/// Aggregate outcome of one campaign.
struct CampaignResult {
  std::vector<DailyRecord> daily;
  sched::QrmMetrics qrm;
  std::size_t quick_calibrations = 0;
  std::size_t full_calibrations = 0;
  double uptime_fraction = 0.0;
  std::vector<RecoveryReport> recoveries;
  std::size_t ln2_refills = 0;
  std::size_t maintenance_windows = 0;
  /// Windows that came due while an outage (or its recovery) held the QPU
  /// out of service; each is deferred — started once the QPU returns —
  /// never silently dropped.
  std::size_t maintenance_deferrals = 0;
  /// Alert raise events over the campaign (the Fig.-3 operational-analytics
  /// layer reacting to the telemetry: over-temperature water, degraded GHZ
  /// health, UPS discharge).
  std::size_t alerts_raised = 0;
};

/// The daily-operations simulation (§3): drift + automated calibration +
/// telemetry + user workload + facility faults + preventive maintenance,
/// run for months of simulated time. With default parameters it reproduces
/// the Fig. 4 result: consistent 1Q / readout / CZ fidelities over a
/// 146-day window with no human intervention in calibration.
class OperationsCampaign {
public:
  explicit OperationsCampaign(CampaignConfig config);

  CampaignResult run();

  const telemetry::TimeSeriesStore& store() const { return hub_.store(); }
  const telemetry::AlertEngine& alerts() const { return alerts_; }
  const EventLog& log() const { return log_; }
  const device::DeviceModel& device() const { return *device_; }

private:
  CampaignConfig config_;
  Rng rng_;
  EventLog log_;
  std::unique_ptr<device::DeviceModel> device_;
  cryo::Cryostat cryostat_;
  cryo::GasHandlingSystem ghs_;
  facility::CoolingLoop cooling_;
  facility::Ups ups_;
  facility::QcPowerModel power_model_;
  facility::QcPowerState power_state_ = facility::QcPowerState::kSteady;
  telemetry::TelemetryHub hub_;
  telemetry::AlertEngine alerts_;
  std::unique_ptr<sched::Qrm> qrm_;
};

}  // namespace hpcqc::ops
