#pragma once

#include "hpcqc/calibration/benchmark.hpp"
#include "hpcqc/calibration/routines.hpp"
#include "hpcqc/common/log.hpp"
#include "hpcqc/cryo/cryostat.hpp"
#include "hpcqc/device/device_model.hpp"

namespace hpcqc::ops {

/// Timing breakdown of one §3.5 recovery: "First, the underlying issue ...
/// must be identified and resolved. Once the issue is addressed, the
/// cryostat must be cooled down to its operating temperature ... Once the
/// system is below 100 mK ... recalibration and benchmark verification of
/// the system can occur."
struct RecoveryReport {
  Kelvin peak_temperature = 0.0;
  bool calibration_preserved = false;  ///< excursion stayed below 1 K
  Seconds fault_resolution = 0.0;
  Seconds cooldown = 0.0;
  Seconds calibration = 0.0;
  Seconds verification = 0.0;
  calibration::CalibrationKind calibration_used =
      calibration::CalibrationKind::kQuick;
  double post_recovery_ghz = 0.0;

  Seconds total() const {
    return fault_resolution + cooldown + calibration + verification;
  }
};

/// Executes the sequential §3.5 restart procedure against the thermal and
/// device models. The cryostat must already have cooling restored
/// (underlying issue fixed) when `execute` is called; `fault_resolution`
/// is the time the caller spent diagnosing and fixing it.
class RecoveryProcedure {
public:
  struct Params {
    Seconds thermal_step = minutes(5.0);
    Seconds verification_duration = minutes(15.0);
    calibration::GhzBenchmark::Params benchmark;
  };

  RecoveryProcedure();
  explicit RecoveryProcedure(Params params);

  RecoveryReport execute(cryo::Cryostat& cryostat,
                         device::DeviceModel& device,
                         Seconds fault_resolution, Rng& rng,
                         EventLog* log = nullptr, Seconds start = 0.0) const;

private:
  Params params_;
};

}  // namespace hpcqc::ops
