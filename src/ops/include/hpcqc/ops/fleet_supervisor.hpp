#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hpcqc/cryo/cryostat.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/ops/resilience.hpp"
#include "hpcqc/sched/fleet.hpp"
#include "hpcqc/telemetry/store.hpp"

namespace hpcqc::ops {

/// Aggregate outage bookkeeping across every device of a supervised fleet.
struct FleetResilienceStats {
  std::size_t devices = 0;
  std::size_t outages = 0;
  std::size_t recoveries = 0;
  Seconds total_downtime = 0.0;  ///< summed over devices
  std::size_t migrations = 0;
  std::size_t migration_dead_letters = 0;

  Seconds mttr() const {
    return recoveries == 0 ? 0.0
                           : total_downtime / static_cast<double>(recoveries);
  }
  /// Mean per-device availability over `window`.
  double mean_availability(Seconds window) const {
    if (devices == 0 || window <= 0.0) return 1.0;
    return 1.0 - total_downtime / (window * static_cast<double>(devices));
  }
};

/// Tunables of the fleet supervisor (namespace scope so it can serve as a
/// defaulted constructor argument).
struct FleetSupervisorParams {
  /// Per-device supervisor tunables. sensor_prefix is overridden per
  /// device ("<fleet_prefix>.<device_name>"); the metrics field is
  /// overridden with the device QRM's registry so each device's
  /// resilience counters live beside its qrm.* metrics.
  SupervisorParams device;
  /// Prefix of the fleet sensors and of each device's sensor namespace.
  std::string sensor_prefix = "fleet";
};

/// One ResilienceSupervisor per fleet device, each with its own cryostat
/// thermal model and fault injector, plus the fleet-level glue: after the
/// per-device outage staging and the fleet's own coordination step, stranded
/// work has been migrated off downed devices, and the fleet registry carries
/// per-device and fleet-wide outage/downtime counters next to the migration
/// counters the Fleet itself maintains.
///
/// Correlated sites (kCryoPlantTrip, kFacilityPower) must be expanded into
/// the per-device plans first — see fault::expand_fleet_events — so one
/// facility event lands as synchronized thermal excursions on every listed
/// device.
class FleetSupervisor {
public:
  using Params = FleetSupervisorParams;

  /// One fault plan per fleet device, in device order (PermanentError on a
  /// count mismatch). All referents must outlive the supervisor.
  FleetSupervisor(sched::Fleet& fleet, std::vector<fault::FaultPlan> plans,
                  Rng& rng, EventLog* log = nullptr,
                  telemetry::TimeSeriesStore* store = nullptr,
                  Params params = {});

  /// Advances the campaign to `t` (non-decreasing): steps every device
  /// supervisor in index order, then the fleet itself (which rebalances at
  /// coordination-slice boundaries), then refreshes the fleet-level
  /// counters and sensors.
  void step(Seconds t);

  std::size_t num_devices() const { return units_.size(); }
  ResilienceSupervisor& supervisor(int device);
  fault::FaultInjector& injector(int device);
  cryo::Cryostat& cryostat(int device);

  /// Per-device outage stats, assembled by the device's supervisor.
  ResilienceStats device_stats(int device);
  FleetResilienceStats stats();

  /// Sensor name carrying a device's 1/0 online signal
  /// ("<fleet_prefix>.<device_name>.qpu_online") — feed these to
  /// telemetry::fleet_availability_from_store.
  std::string online_sensor(int device) const;

private:
  struct Unit {
    std::unique_ptr<cryo::Cryostat> cryostat;
    std::unique_ptr<fault::FaultInjector> injector;
    std::unique_ptr<ResilienceSupervisor> supervisor;
    std::size_t outages_seen = 0;
    Seconds downtime_seen = 0.0;
    obs::Counter* m_outages = nullptr;
    obs::Counter* m_downtime = nullptr;
  };

  Unit& unit(int device);
  void sync_counters();

  sched::Fleet* fleet_;
  telemetry::TimeSeriesStore* store_;
  Params params_;
  std::vector<std::unique_ptr<Unit>> units_;
  obs::Counter* m_outages_ = nullptr;
  obs::Counter* m_downtime_ = nullptr;
};

}  // namespace hpcqc::ops
