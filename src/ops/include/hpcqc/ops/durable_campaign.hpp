#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"
#include "hpcqc/sched/qrm.hpp"
#include "hpcqc/store/recovery.hpp"

namespace hpcqc::ops {

/// A multi-day fleet campaign whose control plane journals every job event
/// into a write-ahead log, checkpoints on a simulated-clock cadence, and is
/// killed (fault::FaultSite::kProcessCrash) at scripted and/or Poisson-drawn
/// points. Each crash destroys the Fleet, every QRM, and the journal
/// objects, tears a seeded-random number of bytes off the WAL tail
/// (simulating unflushed buffers), then rebuilds the control plane through
/// store::Recovery and carries on. The driver resubmits planned jobs whose
/// submission was lost or scrubbed in the torn tail — the client-side retry
/// a real workload manager performs on a dead control plane.
struct DurableCampaignParams {
  int devices = 2;
  Seconds horizon = days(3.0);
  Seconds step = minutes(30.0);         ///< fleet advance cadence
  Seconds submit_every = minutes(45.0); ///< planned-job cadence
  /// No submissions this close to the horizon, so the drain is bounded.
  Seconds submit_margin = hours(6.0);
  Seconds snapshot_interval = hours(6.0);
  std::size_t shots = 300;
  /// Poisson MTBF of random control-plane crashes (0 disables).
  Seconds crash_mtbf = 0.0;
  /// Exact crash times, merged with the random draw.
  std::vector<Seconds> scripted_crashes;
  /// Device-execution fault MTBF per device (0 disables) — exercises the
  /// retry / dead-letter paths so crashes hit non-trivial journal states.
  Seconds exec_fault_mtbf = 0.0;
  /// Per crash, up to this many bytes are torn off the WAL tail (drawn
  /// uniformly from [0, max]). 0 = every append was flushed.
  std::size_t max_torn_bytes = 64;
  std::uint64_t seed = 42;
};

/// What one control-plane crash did.
struct CrashRecord {
  Seconds at = 0.0;
  std::size_t torn_bytes = 0;       ///< bytes the simulated crash unflushed
  store::RecoveryStats recovery;
  std::size_t resubmitted = 0;      ///< planned jobs lost in the tail
};

struct DurableCampaignResult {
  /// Deterministic text report (per-job final states, conservation,
  /// per-crash recovery stats). Byte-identical across reruns of the same
  /// params and across OMP_NUM_THREADS — the crash-recovery determinism
  /// contract the chaos test compares.
  std::string report;
  sched::JobConservation conservation;
  std::vector<CrashRecord> crashes;
  std::size_t planned_jobs = 0;
  std::size_t resubmitted = 0;
  std::size_t snapshots = 0;
  /// False if any job that was terminal in a recovered image later changed
  /// state or gained attempts — the exactly-once invariant.
  bool terminal_preserved = true;
};

DurableCampaignResult run_durable_campaign(const DurableCampaignParams& params);

}  // namespace hpcqc::ops
