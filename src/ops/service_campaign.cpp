#include "hpcqc/ops/service_campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "hpcqc/common/error.hpp"
#include "hpcqc/common/table.hpp"
#include "hpcqc/device/presets.hpp"
#include "hpcqc/load/driver.hpp"
#include "hpcqc/telemetry/alerts.hpp"

namespace hpcqc::ops {

namespace {

/// Locale-independent shortest-round-trip rendering for the JSON report —
/// identical doubles give identical bytes.
std::string num17(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

void fold(std::uint64_t& hash, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    hash ^= (value >> (8 * b)) & 0xFFu;
    hash *= 1099511628211ULL;  // FNV-1a
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Nearest-rank percentile over a sorted sample; 0 when empty.
Seconds percentile(const std::vector<Seconds>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  const std::size_t index = rank <= 1.0
                                ? 0
                                : std::min(sorted.size() - 1,
                                           static_cast<std::size_t>(
                                               std::ceil(rank)) -
                                               1);
  return sorted[index];
}

/// How one offered job landed, from the SLO accountant's point of view.
enum class Outcome { kPending, kCompleted, kFailed, kShed, kFallback,
                     kRejected };

Outcome classify(const sched::Fleet& fleet, int id) {
  switch (fleet.state(id)) {
    case sched::QuantumJobState::kCompleted: return Outcome::kCompleted;
    case sched::QuantumJobState::kFailed: return Outcome::kFailed;
    case sched::QuantumJobState::kShed: return Outcome::kShed;
    case sched::QuantumJobState::kRejectedOverload:
      // A fleet-wide refusal (no device could serve) is the service's
      // failure — the client's circuit breaker runs the job on the HPC
      // emulator. A device-level refusal after placement is the tenant
      // exceeding its own quota.
      return fleet.record(id).device < 0 ? Outcome::kFallback
                                         : Outcome::kRejected;
    case sched::QuantumJobState::kRejectedTooWide:
    case sched::QuantumJobState::kCancelled:
    case sched::QuantumJobState::kMigrated:
      return Outcome::kRejected;
    case sched::QuantumJobState::kQueued:
    case sched::QuantumJobState::kRunning:
    case sched::QuantumJobState::kRetrying:
      return Outcome::kPending;
  }
  return Outcome::kPending;
}

/// Good/bad outcome split behind the error budget: completed is good;
/// failed, shed, and emulator fallback spend budget; quota/width
/// rejections are the tenant's doing and spend none.
bool is_bad(Outcome outcome) {
  return outcome == Outcome::kFailed || outcome == Outcome::kShed ||
         outcome == Outcome::kFallback;
}

void validate_config(const ServiceCampaignConfig& config) {
  const auto check = [](bool ok, const std::string& what) {
    if (!ok)
      throw PermanentError("ServiceCampaignConfig: " + what,
                           ErrorCode::kPrecondition);
  };
  check(config.horizon > 0.0, "horizon must be positive");
  check(config.step > 0.0 && config.step <= config.horizon,
        "step must be positive and fit the horizon");
  const double steps = config.horizon / config.step;
  check(std::abs(steps - std::round(steps)) < 1.0e-6,
        "horizon must be a whole number of steps");
  check(config.devices >= 2,
        "need at least two devices (coordinated maintenance must leave one "
        "serving)");
  check(config.maintenance_period > 0.0, "maintenance_period must be positive");
  check(config.maintenance_duration > 0.0 &&
            config.maintenance_duration < config.maintenance_period,
        "maintenance_duration must be positive and below the period");
  check(config.slo.success_target > 0.0 && config.slo.success_target < 1.0,
        "slo.success_target must be in (0, 1)");
  check(config.slo.availability_target > 0.0 &&
            config.slo.availability_target <= 1.0,
        "slo.availability_target must be in (0, 1]");
  check(config.slo.burn_window >= config.step,
        "slo.burn_window cannot be shorter than the step");
  check(config.report_tenants >= 1, "report_tenants must be >= 1");
}

}  // namespace

fault::FaultPlan::Params default_device_fault_params() {
  fault::FaultPlan::Params params;
  params.thermal_excursion = {days(45.0), hours(2.0)};
  params.device_execution = {days(5.0), minutes(5.0)};
  params.qubit_dropout = {days(20.0), hours(6.0)};
  params.coupler_dropout = {days(25.0), hours(6.0)};
  params.queue_flood = {days(10.0), hours(1.0)};
  return params;
}

fault::FaultPlan::Params default_fleet_fault_params() {
  fault::FaultPlan::Params params;
  params.cryo_plant_trip = {days(120.0), hours(2.0)};
  params.facility_power = {days(60.0), hours(1.0)};
  return params;
}

load::TrafficConfig default_service_traffic() {
  load::TrafficConfig config;
  config.tenants = 500;
  config.base_rate_per_hour = 6.0;
  config.weekend_factor = 0.55;
  config.max_qubits = 20;
  return config;
}

ServiceCampaign::ServiceCampaign(ServiceCampaignConfig config)
    : config_(std::move(config)) {
  validate_config(config_);
}

ServiceCampaign::~ServiceCampaign() = default;

ServiceCampaignResult ServiceCampaign::run() {
  Rng rng(config_.seed);
  ServiceCampaignResult result;
  result.seed = config_.seed;
  result.horizon = config_.horizon;
  result.devices = config_.devices;
  result.min_devices_serving = config_.devices;

  // --- Fleet -----------------------------------------------------------------
  sched::Fleet::Config fleet_config = config_.fleet;
  // A simulated year of jobs must stay cheap and bit-identical at any
  // OMP_NUM_THREADS: cost-model execution only, analytic benchmarks.
  fleet_config.qrm.execution_mode = device::ExecutionMode::kEstimateOnly;
  fleet_config.qrm.benchmark.analytic = true;
  fleet_config.coordination_step = config_.step;
  sched::Fleet fleet(fleet_config, rng, &log_);
  for (std::size_t d = 0; d < config_.devices; ++d)
    fleet.add_device(
        std::make_unique<device::DeviceModel>(device::make_iqm20(rng)));

  // --- Fault environment -----------------------------------------------------
  // Child seeds come from one splitmix expansion of the campaign seed, so
  // every stream is independent yet fully determined by (seed).
  std::uint64_t seed_state = config_.seed;
  fault::FaultPlan::Params device_params = config_.device_faults;
  device_params.horizon = config_.horizon;
  device_params.num_qubits = fleet.device_model(0).num_qubits();
  device_params.num_couplers =
      fleet.device_model(0).health().num_couplers();
  std::vector<fault::FaultPlan> plans;
  for (std::size_t d = 0; d < config_.devices; ++d)
    plans.push_back(
        fault::FaultPlan::generate(device_params, splitmix64(seed_state)));

  fault::FaultPlan::Params fleet_params = config_.fleet_faults;
  fleet_params.horizon = config_.horizon;
  fleet_params.num_devices = static_cast<int>(config_.devices);
  fault::FaultPlan fleet_plan =
      fault::FaultPlan::generate(fleet_params, splitmix64(seed_state));
  fleet_plan.merge(config_.scheduled_fleet_faults);
  plans = fault::expand_fleet_events(fleet_plan, std::move(plans));

  FleetSupervisorParams supervisor_params = config_.supervisor;
  supervisor_params.device.recovery.benchmark.analytic = true;
  FleetSupervisor supervisor(fleet, std::move(plans), rng, &log_, &store_,
                             supervisor_params);

  // --- Traffic ---------------------------------------------------------------
  load::TrafficConfig traffic_config = config_.traffic;
  traffic_config.duration = config_.horizon;
  traffic_config.seed = splitmix64(seed_state);
  const load::TrafficGenerator traffic(traffic_config);
  const load::JobFactory factory(fleet.device_model(0), traffic,
                                 traffic_config.seed);
  const std::vector<load::Arrival> schedule = traffic.generate();
  std::vector<int> fleet_ids(schedule.size(), -1);

  // --- SLO + alert plumbing --------------------------------------------------
  telemetry::AlertEngine alerts;
  telemetry::install_slo_alert_rules(alerts, "slo.fleet", config_.slo);
  for (std::size_t d = 0; d < config_.devices; ++d)
    ResilienceSupervisor::install_alert_rules(
        alerts, supervisor_params.sensor_prefix + "." +
                    fleet.device_name(static_cast<int>(d)));

  std::vector<std::string> serving_sensors;
  for (std::size_t d = 0; d < config_.devices; ++d) {
    serving_sensors.push_back(
        "slo." + fleet.device_name(static_cast<int>(d)) + ".serving");
    store_.append(serving_sensors.back(), 0.0, 1.0);
  }

  // --- Coordinated preventive maintenance state ------------------------------
  const std::size_t n = config_.devices;
  std::vector<Seconds> next_due(n, 0.0);
  std::vector<Seconds> window_end(n, -1.0);
  std::vector<bool> in_maintenance(n, false);
  std::vector<bool> deferral_logged(n, false);
  // Stagger first windows across the period so devices never line up.
  for (std::size_t d = 0; d < n; ++d)
    next_due[d] = config_.maintenance_period *
                  (1.0 + static_cast<double>(d) / static_cast<double>(n));

  const auto peers_serving = [&](std::size_t d) {
    std::size_t serving = 0;
    for (std::size_t e = 0; e < n; ++e)
      if (e != d && fleet.qrm(static_cast<int>(e)).online()) serving += 1;
    return serving;
  };

  // --- Burn-window accounting ------------------------------------------------
  std::vector<std::size_t> unresolved;  ///< tickets awaiting a terminal state
  std::size_t cum_good = 0;
  std::size_t cum_bad = 0;
  std::size_t window_good_base = 0;
  std::size_t window_bad_base = 0;
  std::size_t window_steps = 0;
  std::size_t window_down_steps = 0;
  Seconds next_window_end = config_.slo.burn_window;

  const auto sweep_unresolved = [&] {
    std::size_t kept = 0;
    for (const std::size_t ticket : unresolved) {
      const Outcome outcome = classify(fleet, fleet_ids[ticket]);
      if (outcome == Outcome::kPending) {
        unresolved[kept++] = ticket;
      } else if (outcome == Outcome::kCompleted) {
        ++cum_good;
      } else if (is_bad(outcome)) {
        ++cum_bad;
      }
      // Quota/width rejections spend no service budget.
    }
    unresolved.resize(kept);
  };

  const auto flush_window = [&](Seconds t) {
    sweep_unresolved();
    const std::size_t good = cum_good - window_good_base;
    const std::size_t bad = cum_bad - window_bad_base;
    const double rate =
        telemetry::burn_rate(good, bad, config_.slo.success_target);
    result.max_burn_rate = std::max(result.max_burn_rate, rate);
    const double window_availability =
        window_steps == 0
            ? 1.0
            : 1.0 - static_cast<double>(window_down_steps) /
                        static_cast<double>(window_steps);
    store_.append("slo.fleet.burn_rate", t, rate);
    store_.append("slo.fleet.availability", t, window_availability);
    for (const auto& event : alerts.evaluate(store_, t)) {
      if (event.raised) {
        ++result.alerts_raised;
        log_.warning(t, "slo", "alert raised: " + event.rule);
      } else {
        log_.info(t, "slo", "alert cleared: " + event.rule);
      }
    }
    window_good_base = cum_good;
    window_bad_base = cum_bad;
    window_steps = 0;
    window_down_steps = 0;
  };

  // --- Main loop -------------------------------------------------------------
  const std::size_t steps = static_cast<std::size_t>(
      std::llround(config_.horizon / config_.step));
  const Seconds end = static_cast<double>(steps) * config_.step;
  std::size_t next_arrival = 0;
  for (std::size_t k = 1; k <= steps; ++k) {
    const Seconds t = static_cast<double>(k) * config_.step;
    supervisor.step(t);

    // Coordinated maintenance, device index order for replayability.
    for (std::size_t d = 0; d < n; ++d) {
      const int dev = static_cast<int>(d);
      if (in_maintenance[d]) {
        if (supervisor.supervisor(dev).outage_active()) {
          // A real outage landed mid-window; its staging (including the
          // recovery recalibration) supersedes the planned work.
          in_maintenance[d] = false;
          log_.info(t, "ops",
                    "maintenance window on '" + fleet.device_name(dev) +
                        "' absorbed by outage");
        } else if (t >= window_end[d]) {
          fleet.set_device_online(dev);
          in_maintenance[d] = false;
          log_.info(t, "ops",
                    "maintenance complete on '" + fleet.device_name(dev) +
                        "'");
        } else if (peers_serving(d) == 0) {
          // The rest of the fleet went down: planned work must never be
          // the reason nobody is serving.
          fleet.set_device_online(dev);
          in_maintenance[d] = false;
          ++result.maintenance_preemptions;
          log_.warning(t, "ops",
                       "maintenance on '" + fleet.device_name(dev) +
                           "' preempted: fleet would drain");
        }
      } else if (t >= next_due[d]) {
        const bool device_ready = fleet.qrm(dev).online() &&
                                  !supervisor.supervisor(dev).outage_active();
        if (device_ready && peers_serving(d) >= 1) {
          fleet.set_device_offline(dev, "preventive maintenance window");
          in_maintenance[d] = true;
          window_end[d] = t + config_.maintenance_duration;
          // Next window counts from the actual start so a deferred window
          // never causes back-to-back catch-up maintenance.
          next_due[d] = t + config_.maintenance_period;
          deferral_logged[d] = false;
          ++result.maintenance_windows;
          log_.info(t, "ops",
                    "preventive maintenance started on '" +
                        fleet.device_name(dev) + "'");
        } else if (!deferral_logged[d]) {
          deferral_logged[d] = true;
          ++result.maintenance_deferrals;
          log_.info(t, "ops",
                    "preventive maintenance deferred on '" +
                        fleet.device_name(dev) + "': " +
                        (device_ready ? "fleet cannot cover the window"
                                      : "device out of service"));
        }
      }
    }

    // Due arrivals enter through the fleet's front door in ticket order.
    while (next_arrival < schedule.size() &&
           schedule[next_arrival].time <= t) {
      fleet_ids[next_arrival] = fleet.submit(factory.make(schedule[next_arrival]));
      unresolved.push_back(next_arrival);
      ++next_arrival;
    }

    // Serving sensors: unlike the supervisor's qpu_online signal, these go
    // to 0 during maintenance windows too — they are the availability the
    // tenants actually experience.
    std::size_t serving = 0;
    for (std::size_t d = 0; d < n; ++d) {
      const bool online = fleet.qrm(static_cast<int>(d)).online();
      if (online) serving += 1;
      store_.append(serving_sensors[d], t, online ? 1.0 : 0.0);
    }
    result.min_devices_serving =
        std::min(result.min_devices_serving, serving);
    ++window_steps;
    if (serving == 0) {
      ++window_down_steps;
      bool maintaining = false;
      for (std::size_t d = 0; d < n; ++d) maintaining |= in_maintenance[d];
      if (maintaining) ++result.drained_by_maintenance_steps;
    }

    if (t + 1.0e-9 >= next_window_end) {
      flush_window(t);
      next_window_end += config_.slo.burn_window;
    }
  }
  if (window_steps > 0) flush_window(end);

  // --- Drain -----------------------------------------------------------------
  // Release any window still open (the drain needs the device), then run
  // the fleet dry so every admitted job reaches a terminal state.
  for (std::size_t d = 0; d < n; ++d) {
    const int dev = static_cast<int>(d);
    if (in_maintenance[d] && !supervisor.supervisor(dev).outage_active()) {
      fleet.set_device_online(dev);
      in_maintenance[d] = false;
    }
  }
  fleet.drain();

  // --- Per-tenant accounting -------------------------------------------------
  struct Tally {
    TenantSlo slo;
    std::vector<Seconds> turnarounds;
  };
  std::map<std::string, Tally> tenants;
  std::vector<Seconds> all_turnarounds;
  std::uint64_t fingerprint = 14695981039346656037ULL;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const int id = fleet_ids[i];
    if (id < 0) continue;  // arrival after the last step: never offered
    const sched::Fleet::FleetJobRecord& record = fleet.record(id);
    const Outcome outcome = classify(fleet, id);
    Tally& tally = tenants[factory.tenant_name(schedule[i].tenant)];
    tally.slo.offered += 1;
    Seconds end_time = record.submit_time;
    switch (outcome) {
      case Outcome::kCompleted: {
        tally.slo.completed += 1;
        end_time =
            fleet.qrm(record.device).record(record.local_id).end_time;
        const Seconds turnaround = end_time - record.submit_time;
        tally.turnarounds.push_back(turnaround);
        all_turnarounds.push_back(turnaround);
        tally.slo.budget.good += 1;
        break;
      }
      case Outcome::kFailed: tally.slo.failed += 1; break;
      case Outcome::kShed: tally.slo.shed += 1; break;
      case Outcome::kFallback: tally.slo.fallback_emulated += 1; break;
      case Outcome::kRejected: tally.slo.rejected += 1; break;
      case Outcome::kPending: break;  // conservation audit will flag it
    }
    if (is_bad(outcome)) tally.slo.budget.bad += 1;
    if (outcome != Outcome::kCompleted && record.device >= 0)
      end_time = fleet.qrm(record.device).record(record.local_id).end_time;
    fold(fingerprint, schedule[i].ticket);
    fold(fingerprint, static_cast<std::uint64_t>(fleet.state(id)));
    fold(fingerprint, double_bits(end_time));
    fold(fingerprint,
         static_cast<std::uint64_t>(static_cast<std::int64_t>(record.device)));
  }
  result.fingerprint = fingerprint;

  // Head tenants by offered volume (name breaks ties), tail in one row.
  std::vector<std::string> ranked;
  for (const auto& [name, tally] : tenants) ranked.push_back(name);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const std::string& a, const std::string& b) {
                     return tenants[a].slo.offered != tenants[b].slo.offered
                                ? tenants[a].slo.offered >
                                      tenants[b].slo.offered
                                : a < b;
                   });
  Tally other;
  other.slo.tenant = "other";
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    Tally& tally = tenants[ranked[r]];
    tally.slo.budget.target = config_.slo.success_target;
    if (r < config_.report_tenants) {
      tally.slo.tenant = ranked[r];
      std::sort(tally.turnarounds.begin(), tally.turnarounds.end());
      tally.slo.p50_turnaround = percentile(tally.turnarounds, 0.50);
      tally.slo.p99_turnaround = percentile(tally.turnarounds, 0.99);
      result.tenants.push_back(tally.slo);
    } else {
      other.slo.offered += tally.slo.offered;
      other.slo.completed += tally.slo.completed;
      other.slo.failed += tally.slo.failed;
      other.slo.shed += tally.slo.shed;
      other.slo.fallback_emulated += tally.slo.fallback_emulated;
      other.slo.rejected += tally.slo.rejected;
      other.slo.budget.good += tally.slo.budget.good;
      other.slo.budget.bad += tally.slo.budget.bad;
      other.turnarounds.insert(other.turnarounds.end(),
                               tally.turnarounds.begin(),
                               tally.turnarounds.end());
    }
  }
  if (other.slo.offered > 0) {
    other.slo.budget.target = config_.slo.success_target;
    std::sort(other.turnarounds.begin(), other.turnarounds.end());
    other.slo.p50_turnaround = percentile(other.turnarounds, 0.50);
    other.slo.p99_turnaround = percentile(other.turnarounds, 0.99);
    result.tenants.push_back(other.slo);
  }

  // --- Fleet totals ----------------------------------------------------------
  for (const TenantSlo& tenant : result.tenants) {
    result.offered += tenant.offered;
    result.completed += tenant.completed;
    result.failed += tenant.failed;
    result.shed += tenant.shed;
    result.fallback_emulated += tenant.fallback_emulated;
    result.rejected += tenant.rejected;
  }
  std::sort(all_turnarounds.begin(), all_turnarounds.end());
  result.p50_turnaround = percentile(all_turnarounds, 0.50);
  result.p99_turnaround = percentile(all_turnarounds, 0.99);
  result.fleet_budget.target = config_.slo.success_target;
  result.fleet_budget.good = result.completed;
  result.fleet_budget.bad =
      result.failed + result.shed + result.fallback_emulated;

  result.availability = telemetry::fleet_availability_from_store(
      store_, serving_sensors, 0.0, end);
  result.fleet_availability = result.availability.fleet_availability();
  result.mean_device_availability = result.availability.mean_availability();
  result.worst_device_availability = 1.0;
  for (const auto& device : result.availability.devices)
    result.worst_device_availability =
        std::min(result.worst_device_availability, device.availability());

  result.resilience = supervisor.stats();
  result.conservation = fleet.conservation();
  return result;
}

std::string ServiceCampaignResult::to_json() const {
  std::string json = "{";
  json += "\"seed\":" + std::to_string(seed);
  json += ",\"horizon_days\":" + num17(to_days(horizon));
  json += ",\"devices\":" + std::to_string(devices);
  json += ",\"totals\":{\"offered\":" + std::to_string(offered) +
          ",\"completed\":" + std::to_string(completed) +
          ",\"failed\":" + std::to_string(failed) +
          ",\"shed\":" + std::to_string(shed) +
          ",\"fallback_emulated\":" + std::to_string(fallback_emulated) +
          ",\"rejected\":" + std::to_string(rejected) +
          ",\"p50_turnaround_s\":" + num17(p50_turnaround) +
          ",\"p99_turnaround_s\":" + num17(p99_turnaround) + "}";
  json += ",\"availability\":{\"fleet\":" + num17(fleet_availability) +
          ",\"mean_device\":" + num17(mean_device_availability) +
          ",\"worst_device\":" + num17(worst_device_availability) +
          ",\"all_down_s\":" + num17(availability.all_down) + "}";
  json += ",\"error_budget\":{\"target\":" + num17(fleet_budget.target) +
          ",\"sli\":" + num17(fleet_budget.sli()) +
          ",\"consumed\":" + num17(fleet_budget.consumed()) +
          ",\"max_burn_rate\":" + num17(max_burn_rate) + "}";
  json += ",\"ops\":{\"outages\":" + std::to_string(resilience.outages) +
          ",\"recoveries\":" + std::to_string(resilience.recoveries) +
          ",\"downtime_s\":" + num17(resilience.total_downtime) +
          ",\"migrations\":" + std::to_string(resilience.migrations) +
          ",\"migration_dead_letters\":" +
          std::to_string(resilience.migration_dead_letters) +
          ",\"maintenance_windows\":" + std::to_string(maintenance_windows) +
          ",\"maintenance_deferrals\":" +
          std::to_string(maintenance_deferrals) +
          ",\"maintenance_preemptions\":" +
          std::to_string(maintenance_preemptions) +
          ",\"drained_by_maintenance_steps\":" +
          std::to_string(drained_by_maintenance_steps) +
          ",\"min_devices_serving\":" + std::to_string(min_devices_serving) +
          ",\"alerts_raised\":" + std::to_string(alerts_raised) + "}";
  json += ",\"tenants\":[";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSlo& tenant = tenants[i];
    if (i > 0) json += ',';
    json += "{\"tenant\":\"" + tenant.tenant + "\"";
    json += ",\"offered\":" + std::to_string(tenant.offered);
    json += ",\"completed\":" + std::to_string(tenant.completed);
    json += ",\"failed\":" + std::to_string(tenant.failed);
    json += ",\"shed\":" + std::to_string(tenant.shed);
    json += ",\"fallback_emulated\":" +
            std::to_string(tenant.fallback_emulated);
    json += ",\"rejected\":" + std::to_string(tenant.rejected);
    json += ",\"availability\":" + num17(tenant.budget.sli());
    json += ",\"p50_turnaround_s\":" + num17(tenant.p50_turnaround);
    json += ",\"p99_turnaround_s\":" + num17(tenant.p99_turnaround);
    json += ",\"fallback_fraction\":" + num17(tenant.fallback_fraction());
    json += ",\"budget_consumed\":" + num17(tenant.budget.consumed());
    json += "}";
  }
  json += "]";
  json += ",\"conservation\":{\"submitted\":" +
          std::to_string(conservation.submitted) +
          ",\"in_flight\":" + std::to_string(conservation.in_flight) +
          ",\"holds\":" + (conservation.holds() ? "true" : "false") + "}";
  json += ",\"fingerprint\":\"" + hex64(fingerprint) + "\"";
  json += "}";
  return json;
}

void ServiceCampaignResult::print(std::ostream& os) const {
  os << "=== Service campaign: " << Table::num(to_days(horizon), 1)
     << " days, " << devices << " devices, seed " << seed << " ===\n\n";
  os << "fleet: offered=" << offered << " completed=" << completed
     << " failed=" << failed << " shed=" << shed
     << " fallback=" << fallback_emulated << " rejected=" << rejected
     << "\n";
  os << "turnaround: p50=" << Table::num(p50_turnaround, 1)
     << " s, p99=" << Table::num(p99_turnaround, 1) << " s\n";
  os << "availability: fleet=" << Table::num(fleet_availability, 6)
     << " mean-device=" << Table::num(mean_device_availability, 6)
     << " worst-device=" << Table::num(worst_device_availability, 6)
     << " all-down=" << Table::num(to_hours(availability.all_down), 2)
     << " h\n";
  os << "error budget: target=" << Table::num(fleet_budget.target, 4)
     << " sli=" << Table::num(fleet_budget.sli(), 6)
     << " consumed=" << Table::num(fleet_budget.consumed(), 4)
     << " max-burn=" << Table::num(max_burn_rate, 3) << "\n";
  os << "ops: outages=" << resilience.outages
     << " recoveries=" << resilience.recoveries
     << " downtime=" << Table::num(to_hours(resilience.total_downtime), 1)
     << " h migrations=" << resilience.migrations
     << " dead-letters=" << resilience.migration_dead_letters << "\n";
  os << "maintenance: windows=" << maintenance_windows
     << " deferrals=" << maintenance_deferrals
     << " preemptions=" << maintenance_preemptions
     << " min-serving=" << min_devices_serving
     << " drained-steps=" << drained_by_maintenance_steps << "\n";
  os << "alerts raised: " << alerts_raised << "\n\n";

  Table table({"tenant", "offered", "avail", "p50 (s)", "p99 (s)",
               "fallback", "shed", "reject", "budget"});
  for (const TenantSlo& tenant : tenants)
    table.add_row({tenant.tenant, std::to_string(tenant.offered),
                   Table::num(tenant.budget.sli(), 4),
                   Table::num(tenant.p50_turnaround, 1),
                   Table::num(tenant.p99_turnaround, 1),
                   Table::num(tenant.fallback_fraction(), 4),
                   Table::num(tenant.shed_fraction(), 4),
                   Table::num(tenant.reject_fraction(), 4),
                   Table::num(tenant.budget.consumed(), 3)});
  table.print(os);
  os << "\nconservation: "
     << (conservation.holds() && conservation.in_flight == 0 ? "balanced"
                                                             : "IMBALANCE")
     << "\nfingerprint: " << hex64(fingerprint) << "\n";
}

}  // namespace hpcqc::ops
