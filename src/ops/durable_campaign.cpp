#include "hpcqc/ops/durable_campaign.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "hpcqc/calibration/benchmark.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/common/log.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/presets.hpp"
#include "hpcqc/fault/fault_plan.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/sched/fleet.hpp"
#include "hpcqc/store/journal.hpp"
#include "hpcqc/store/snapshot.hpp"
#include "hpcqc/store/wal.hpp"

namespace hpcqc::ops {

namespace {

/// Everything that dies with the control-plane process. The WAL *backend*
/// (the disk) lives outside and survives; these objects are rebuilt from it.
struct ControlPlane {
  std::unique_ptr<Rng> rng;
  std::unique_ptr<EventLog> log;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<store::Wal> wal;
  std::unique_ptr<store::Journal> journal;
  std::unique_ptr<store::Checkpointer> checkpointer;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  std::unique_ptr<sched::Fleet> fleet;
};

/// Boots a fresh control plane (generation 0 = first boot, > 0 = after a
/// crash). Each generation gets its own seeded Rng fork so reruns of the
/// whole campaign — crashes included — replay bit-identically.
ControlPlane boot(const DurableCampaignParams& params, std::uint64_t generation,
                  store::MemoryWalBackend& backend,
                  const std::vector<fault::FaultPlan>& fault_plans) {
  ControlPlane cp;
  cp.rng = std::make_unique<Rng>(params.seed + 0x9e3779b9u * (generation + 1));
  cp.log = std::make_unique<EventLog>();
  cp.metrics = std::make_unique<obs::MetricsRegistry>();
  cp.wal = std::make_unique<store::Wal>(backend, store::Wal::Config{},
                                        cp.metrics.get());
  cp.journal = std::make_unique<store::Journal>(*cp.wal);
  store::Checkpointer::Config checkpoint;
  checkpoint.interval = params.snapshot_interval;
  cp.checkpointer = std::make_unique<store::Checkpointer>(
      *cp.wal, checkpoint, cp.metrics.get());

  sched::Fleet::Config config;
  config.qrm.benchmark.qubits = 8;
  config.qrm.benchmark.shots = 200;
  config.qrm.benchmark.analytic = true;
  config.qrm.execution_mode = device::ExecutionMode::kEstimateOnly;
  config.coordination_step = minutes(15.0);
  cp.fleet = std::make_unique<sched::Fleet>(config, *cp.rng, cp.log.get());
  for (int d = 0; d < params.devices; ++d)
    cp.fleet->add_device(
        std::make_unique<device::DeviceModel>(device::make_iqm20(*cp.rng)));
  // Journal after the roster exists so every QRM carries its device tag.
  cp.fleet->set_journal(cp.journal.get());
  for (int d = 0; d < params.devices; ++d) {
    cp.injectors.push_back(
        std::make_unique<fault::FaultInjector>(fault_plans[d]));
    cp.fleet->qrm(d).set_fault_injector(cp.injectors.back().get());
  }
  return cp;
}

std::string pad_number(std::size_t value, std::size_t width) {
  std::string digits = std::to_string(value);
  if (digits.size() < width) digits.insert(0, width - digits.size(), '0');
  return digits;
}

std::string hours_of(Seconds t) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << t / 3600.0;
  return os.str();
}

/// Final-state pin of one job that was terminal in a recovered image.
struct TerminalPin {
  sched::QuantumJobState state{};
  std::size_t attempts = 0;
};

std::size_t attempts_of(const sched::Fleet& fleet, int id) {
  const sched::Fleet::FleetJobRecord& record = fleet.record(id);
  if (record.device < 0) return 0;
  return fleet.qrm(record.device).record(record.local_id).attempts;
}

}  // namespace

DurableCampaignResult run_durable_campaign(
    const DurableCampaignParams& params) {
  expects(params.devices > 0 && params.horizon > 0.0 && params.step > 0.0 &&
              params.submit_every > 0.0,
          "run_durable_campaign: degenerate parameters");

  // Crash schedule: scripted points plus an optional Poisson draw through
  // the fault-plan site, all strictly inside the horizon.
  std::vector<Seconds> crash_times = params.scripted_crashes;
  if (params.crash_mtbf > 0.0) {
    fault::FaultPlan::Params fp;
    fp.horizon = params.horizon;
    fp.process_crash.mtbf = params.crash_mtbf;
    const fault::FaultPlan plan =
        fault::FaultPlan::generate(fp, params.seed ^ 0xc5a5f00dULL);
    for (const fault::FaultEvent& event : plan.events())
      if (event.site == fault::FaultSite::kProcessCrash)
        crash_times.push_back(event.at);
  }
  std::erase_if(crash_times, [&](Seconds t) {
    return t <= 0.0 || t >= params.horizon;
  });
  std::sort(crash_times.begin(), crash_times.end());
  crash_times.erase(std::unique(crash_times.begin(), crash_times.end()),
                    crash_times.end());

  // Per-device execution-fault plans, generated once: the fault windows are
  // anchored to simulated time, not to the control-plane generation, so a
  // rebuilt QRM sees the same device weather the dead one did.
  std::vector<fault::FaultPlan> fault_plans(
      static_cast<std::size_t>(params.devices));
  if (params.exec_fault_mtbf > 0.0) {
    fault::FaultPlan::Params fp;
    fp.horizon = params.horizon;
    fp.device_execution.mtbf = params.exec_fault_mtbf;
    for (int d = 0; d < params.devices; ++d)
      fault_plans[static_cast<std::size_t>(d)] = fault::FaultPlan::generate(
          fp, params.seed * 31 + static_cast<std::uint64_t>(d));
  }

  // Timeline: advance boundaries, submission points, crash points.
  enum : int { kSubmit = 1, kCrash = 2 };
  std::map<Seconds, int> timeline;
  for (Seconds t = params.step; t < params.horizon + params.step / 2;
       t += params.step)
    timeline[std::min(t, params.horizon)] |= 0;
  for (Seconds t = params.submit_every;
       t <= params.horizon - params.submit_margin; t += params.submit_every)
    timeline[t] |= kSubmit;
  for (const Seconds t : crash_times) timeline[t] |= kCrash;

  store::MemoryWalBackend backend;
  // The torn-tail stream is independent of everything else: crash damage is
  // a property of the storage, not of the workload draw.
  Rng tear_rng(params.seed ^ 0x7ea57ea5ULL);

  DurableCampaignResult result;
  std::uint64_t generation = 0;
  ControlPlane cp = boot(params, generation, backend, fault_plans);

  std::map<std::string, int> submitted;  ///< planned name -> fleet id
  std::map<std::string, TerminalPin> pinned;
  std::size_t next_job = 0;

  const auto submit_named = [&](const std::string& name) {
    sched::QuantumJob job;
    job.name = name;
    const int width = 4 + static_cast<int>(next_job % 4);
    job.circuit = calibration::GhzBenchmark::chain_circuit(
        cp.fleet->device_model(0), width);
    job.shots = params.shots;
    submitted[name] = cp.fleet->submit(std::move(job));
  };

  const auto check_pins = [&]() {
    for (const auto& [name, pin] : pinned) {
      const auto it = submitted.find(name);
      if (it == submitted.end()) {
        result.terminal_preserved = false;
        continue;
      }
      try {
        const sched::QuantumJobState state = cp.fleet->state(it->second);
        if (state != pin.state ||
            attempts_of(*cp.fleet, it->second) != pin.attempts)
          result.terminal_preserved = false;
      } catch (const NotFoundError&) {
        result.terminal_preserved = false;
      }
    }
  };

  const auto pin_terminals = [&]() {
    for (const auto& [name, id] : submitted) {
      try {
        const sched::QuantumJobState state = cp.fleet->state(id);
        if (is_terminal(state))
          pinned[name] = {state, attempts_of(*cp.fleet, id)};
      } catch (const NotFoundError&) {
        // Lost in the torn tail; the resubmission pass below re-plans it.
      }
    }
  };

  for (const auto& [t, flags] : timeline) {
    cp.fleet->advance_to(t);
    if ((flags & kSubmit) != 0) {
      submit_named("job-" + pad_number(next_job, 4));
      next_job += 1;
    }
    if (cp.checkpointer->maybe_checkpoint(*cp.fleet)) result.snapshots += 1;
    if ((flags & kCrash) == 0) continue;

    // ---- kProcessCrash: the control plane dies right here. --------------
    CrashRecord crash;
    crash.at = t;
    cp = ControlPlane{};  // Fleet, QRMs, journal, WAL object: all gone.
    const std::size_t total = backend.total_bytes();
    crash.torn_bytes = std::min(
        static_cast<std::size_t>(
            tear_rng.uniform_index(params.max_torn_bytes + 1)),
        total);
    backend.truncate_total(total - crash.torn_bytes);

    // ---- Reboot and recover from what the disk still holds. -------------
    generation += 1;
    cp = boot(params, generation, backend, fault_plans);
    store::Recovery recovery(backend, cp.metrics.get());
    crash.recovery = recovery.restore(*cp.fleet);

    // Exactly-once audit: nothing that was terminal in an earlier recovered
    // image may have changed state or gained attempts.
    check_pins();
    pin_terminals();

    // Client-side retry: planned jobs whose submission (or admission
    // outcome) was torn off the tail are resubmitted under the same name.
    for (auto& [name, id] : submitted) {
      bool lost = false;
      try {
        lost = cp.fleet->state(id) == sched::QuantumJobState::kCancelled;
      } catch (const NotFoundError&) {
        lost = true;
      }
      if (!lost) continue;
      crash.resubmitted += 1;
      submit_named(name);
    }
    result.resubmitted += crash.resubmitted;

    // Checkpoint the recovered image immediately: bounds the next replay
    // and (with two-snapshot retention) is safe even if the *next* crash
    // tears this very snapshot.
    cp.checkpointer->checkpoint(*cp.fleet);
    result.snapshots += 1;
    result.crashes.push_back(crash);
  }

  cp.fleet->drain();
  check_pins();
  result.planned_jobs = next_job;
  result.conservation = cp.fleet->conservation();

  // ---- Deterministic report (simulated time and seeded draws only). -----
  std::ostringstream os;
  os << "durable campaign: seed=" << params.seed
     << " devices=" << params.devices
     << " horizon_h=" << hours_of(params.horizon)
     << " snapshot_h=" << hours_of(params.snapshot_interval) << "\n";
  os << "crashes=" << result.crashes.size()
     << " snapshots=" << result.snapshots
     << " planned=" << result.planned_jobs
     << " resubmitted=" << result.resubmitted << "\n";
  for (std::size_t i = 0; i < result.crashes.size(); ++i) {
    const CrashRecord& crash = result.crashes[i];
    os << "crash " << i << ": at_h=" << hours_of(crash.at)
       << " torn=" << crash.torn_bytes
       << " snapshot=" << (crash.recovery.had_snapshot ? "yes" : "no")
       << " replayed=" << crash.recovery.replayed
       << " requeued=" << crash.recovery.requeued
       << " scrubbed=" << crash.recovery.scrubbed
       << " dropped=" << crash.recovery.dropped_bytes
       << " resubmitted=" << crash.resubmitted << "\n";
  }
  const sched::JobConservation& audit = result.conservation;
  os << "conservation: submitted=" << audit.submitted
     << " completed=" << audit.completed << " failed=" << audit.failed
     << " cancelled=" << audit.cancelled
     << " rejected=" << audit.rejected_overload + audit.rejected_too_wide
     << " shed=" << audit.shed << " migrated=" << audit.migrated
     << " in_flight=" << audit.in_flight
     << " holds=" << (audit.holds() ? "yes" : "no") << "\n";
  os << "terminal_preserved=" << (result.terminal_preserved ? "yes" : "no")
     << "\n";
  for (const auto& [name, id] : submitted) {
    os << name << " state=" << to_string(cp.fleet->state(id))
       << " attempts=" << attempts_of(*cp.fleet, id)
       << " device=" << cp.fleet->record(id).device
       << " migrations=" << cp.fleet->record(id).migrations << "\n";
  }
  result.report = os.str();
  return result;
}

}  // namespace hpcqc::ops
