#include "hpcqc/ops/recovery.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::ops {

RecoveryProcedure::RecoveryProcedure() : RecoveryProcedure(Params{}) {}

RecoveryProcedure::RecoveryProcedure(Params params) : params_(params) {
  expects(params_.thermal_step > 0.0,
          "RecoveryProcedure: thermal step must be positive");
}

RecoveryReport RecoveryProcedure::execute(cryo::Cryostat& cryostat,
                                          device::DeviceModel& device,
                                          Seconds fault_resolution, Rng& rng,
                                          EventLog* log, Seconds start) const {
  ensure_state(cryostat.cooling_active(),
               "RecoveryProcedure: restore cooling (fix the fault) first");

  RecoveryReport report;
  report.fault_resolution = fault_resolution;
  report.peak_temperature = cryostat.peak_since_operating();
  report.calibration_preserved = cryostat.calibration_preserved();

  Seconds t = start + fault_resolution;
  if (log)
    log->info(t, "recovery",
              "fault resolved; peak excursion " +
                  std::to_string(report.peak_temperature) + " K, cooldown " +
                  "starting");

  // Stage 2: cooldown to operating temperature.
  while (!cryostat.at_base()) {
    cryostat.step(params_.thermal_step);
    report.cooldown += params_.thermal_step;
    t += params_.thermal_step;
    expects(report.cooldown < days(30.0),
            "RecoveryProcedure: cooldown did not converge");
  }
  if (log)
    log->info(t, "recovery",
              "back at base temperature after " +
                  std::to_string(to_days(report.cooldown)) + " days");

  // Stage 3: recalibration. Small excursions (< 1 K) are recoverable by
  // the automated quick calibration; larger ones require the full
  // procedure (§3.5).
  report.calibration_used = report.calibration_preserved
                                ? calibration::CalibrationKind::kQuick
                                : calibration::CalibrationKind::kFull;
  const calibration::CalibrationEngine engine;
  const auto outcome = engine.run(device, report.calibration_used, t, rng);
  report.calibration = outcome.duration;
  t += outcome.duration;

  // Stage 4: benchmark verification.
  const calibration::GhzBenchmark benchmark(params_.benchmark);
  const auto verification = benchmark.run(device, t, rng);
  report.post_recovery_ghz = verification.ghz_success;
  report.verification = params_.verification_duration;
  t += params_.verification_duration;

  cryostat.acknowledge_recovery();
  if (log)
    log->info(t, "recovery",
              std::string("recovery complete (") +
                  to_string(report.calibration_used) +
                  " calibration, ghz=" +
                  std::to_string(report.post_recovery_ghz) + ")");
  return report;
}

}  // namespace hpcqc::ops
