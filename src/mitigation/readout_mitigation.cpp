#include "hpcqc/mitigation/readout_mitigation.hpp"

#include <bit>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mitigation {

ReadoutMitigator::ReadoutMitigator(std::vector<QubitAssignment> per_bit)
    : per_bit_(std::move(per_bit)) {
  expects(!per_bit_.empty() && per_bit_.size() <= 20,
          "ReadoutMitigator: 1 to 20 measured bits supported");
  for (const auto& assignment : per_bit_) {
    expects(assignment.p_read1_given0 >= 0.0 &&
                assignment.p_read1_given0 < 0.5 &&
                assignment.p_read0_given1 >= 0.0 &&
                assignment.p_read0_given1 < 0.5,
            "ReadoutMitigator: assignment errors must be in [0, 0.5) for "
            "the matrix to be invertible");
  }
}

const ReadoutMitigator::QubitAssignment& ReadoutMitigator::bit(int i) const {
  expects(i >= 0 && i < num_bits(), "ReadoutMitigator::bit: out of range");
  return per_bit_[static_cast<std::size_t>(i)];
}

ReadoutMitigator ReadoutMitigator::calibrate(
    device::DeviceModel& device, const std::vector<int>& physical_qubits,
    std::size_t shots, Rng& rng) {
  expects(!physical_qubits.empty(),
          "ReadoutMitigator::calibrate: need at least one qubit");
  const int n = static_cast<int>(physical_qubits.size());

  // Preparation circuits on the device register.
  circuit::Circuit zeros(device.num_qubits());
  zeros.measure(physical_qubits);
  circuit::Circuit ones(device.num_qubits());
  for (int q : physical_qubits) ones.x(q);
  ones.measure(physical_qubits);

  const auto run = [&](const circuit::Circuit& circuit) {
    return device.execute(circuit, shots, rng,
                          device::ExecutionMode::kGlobalDepolarizing);
  };
  const auto zeros_counts = run(zeros).counts;
  const auto ones_counts = run(ones).counts;

  std::vector<QubitAssignment> per_bit(static_cast<std::size_t>(n));
  for (int bit_index = 0; bit_index < n; ++bit_index) {
    const std::uint64_t mask = std::uint64_t{1} << bit_index;
    std::uint64_t ones_when_zero = 0;
    for (const auto& [outcome, count] : zeros_counts.raw())
      if (outcome & mask) ones_when_zero += count;
    std::uint64_t zeros_when_one = 0;
    for (const auto& [outcome, count] : ones_counts.raw())
      if (!(outcome & mask)) zeros_when_one += count;
    per_bit[static_cast<std::size_t>(bit_index)] = {
        static_cast<double>(ones_when_zero) / static_cast<double>(shots),
        static_cast<double>(zeros_when_one) / static_cast<double>(shots)};
  }
  return ReadoutMitigator(std::move(per_bit));
}

std::vector<double> ReadoutMitigator::mitigate(
    const qsim::Counts& counts) const {
  const int n = num_bits();
  expects(counts.num_qubits() == n,
          "ReadoutMitigator::mitigate: bit-count mismatch");
  const std::uint64_t total = counts.total_shots();
  expects(total > 0, "ReadoutMitigator::mitigate: empty counts");

  std::vector<double> probs(std::size_t{1} << n, 0.0);
  for (const auto& [outcome, count] : counts.raw())
    probs[outcome] = static_cast<double>(count) / static_cast<double>(total);

  // Apply A_q^{-1} along each bit axis. For A = [[1-a, b], [a, 1-b]],
  // A^{-1} = 1/det [[1-b, -b], [-a, 1-a]] with det = 1 - a - b.
  for (int bit_index = 0; bit_index < n; ++bit_index) {
    const auto& assignment = per_bit_[static_cast<std::size_t>(bit_index)];
    const double a = assignment.p_read1_given0;
    const double b = assignment.p_read0_given1;
    const double det = 1.0 - a - b;
    const std::uint64_t stride = std::uint64_t{1} << bit_index;
    for (std::uint64_t base = 0; base < probs.size(); ++base) {
      if (base & stride) continue;
      const double p0 = probs[base];
      const double p1 = probs[base | stride];
      probs[base] = ((1.0 - b) * p0 - b * p1) / det;
      probs[base | stride] = (-a * p0 + (1.0 - a) * p1) / det;
    }
  }
  return probs;
}

double ReadoutMitigator::mitigated_expectation_z(const qsim::Counts& counts,
                                                 std::uint64_t mask) const {
  const auto quasi = mitigate(counts);
  double expectation = 0.0;
  for (std::uint64_t outcome = 0; outcome < quasi.size(); ++outcome) {
    const int parity = std::popcount(outcome & mask) & 1;
    expectation += (parity ? -1.0 : 1.0) * quasi[outcome];
  }
  return expectation;
}

}  // namespace hpcqc::mitigation
