#pragma once

#include <functional>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"

namespace hpcqc::mitigation {

/// How the zero-noise limit is extrapolated from the scaled measurements.
enum class ExtrapolationMethod {
  kLinear,      ///< least-squares line through (scale, value)
  kRichardson,  ///< exact polynomial through all points, evaluated at 0
  kExponential, ///< fit v = A * exp(-b * scale); right for depolarizing decay
};

const char* to_string(ExtrapolationMethod method);

/// Result of one ZNE run.
struct ZneResult {
  std::vector<int> scales;
  std::vector<double> measured;  ///< expectation at each noise scale
  double mitigated = 0.0;        ///< extrapolated zero-noise value
};

/// Zero-noise extrapolation by unitary (gate) folding: the circuit is
/// executed at noise scales 1, 3, 5, ... via G(G†G)^k insertions, and the
/// observable is extrapolated back to scale 0. The second of the tailored
/// error-mitigation methods covered in the §4 user training.
class ZeroNoiseExtrapolator {
public:
  struct Options {
    std::vector<int> scales = {1, 3, 5};
    ExtrapolationMethod method = ExtrapolationMethod::kExponential;
  };

  /// Measures one folded circuit and returns the observable value.
  using Executor = std::function<double(const circuit::Circuit& folded)>;

  ZeroNoiseExtrapolator();
  explicit ZeroNoiseExtrapolator(Options options);

  const Options& options() const { return options_; }

  /// Runs the circuit at every configured scale through `executor` and
  /// extrapolates.
  ZneResult run(const circuit::Circuit& circuit,
                const Executor& executor) const;

  /// The bare extrapolation (exposed for tests).
  static double extrapolate(const std::vector<int>& scales,
                            const std::vector<double>& values,
                            ExtrapolationMethod method);

private:
  Options options_;
};

}  // namespace hpcqc::mitigation
