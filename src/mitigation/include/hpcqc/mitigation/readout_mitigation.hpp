#pragma once

#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/qsim/counts.hpp"

namespace hpcqc::mitigation {

/// Tensored readout-error mitigation — one of the "error mitigation methods
/// tailored to the machine" the onboarding program teaches (§4). Each
/// qubit's 2x2 assignment matrix
///
///     A_q = [[1-p01, p10], [p01, 1-p10]]
///
/// is estimated from calibration circuits (all-|0> and all-|1>
/// preparations), and measured distributions are corrected by applying
/// A_q^{-1} along every qubit axis. The result is a quasi-probability
/// vector (entries may be slightly negative); expectation values computed
/// from it are unbiased estimates of the noiseless-readout values.
class ReadoutMitigator {
public:
  /// Per-qubit assignment-error estimates, indexed by *measured-bit*
  /// position (bit i of the outcomes being mitigated).
  struct QubitAssignment {
    double p_read1_given0 = 0.0;
    double p_read0_given1 = 0.0;
  };

  explicit ReadoutMitigator(std::vector<QubitAssignment> per_bit);

  /// Calibrates against the device by running the two standard preparation
  /// circuits (|0...0> and |1...1>) on `physical_qubits` with `shots` each.
  /// Bit i of the mitigator corresponds to physical_qubits[i].
  static ReadoutMitigator calibrate(device::DeviceModel& device,
                                    const std::vector<int>& physical_qubits,
                                    std::size_t shots, Rng& rng);

  int num_bits() const { return static_cast<int>(per_bit_.size()); }
  const QubitAssignment& bit(int i) const;

  /// Corrected quasi-probability distribution over 2^n outcomes.
  std::vector<double> mitigate(const qsim::Counts& counts) const;

  /// <Z_mask> computed from the mitigated quasi-probabilities.
  double mitigated_expectation_z(const qsim::Counts& counts,
                                 std::uint64_t mask) const;

private:
  std::vector<QubitAssignment> per_bit_;
};

}  // namespace hpcqc::mitigation
