#include "hpcqc/mitigation/zne.hpp"

#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mitigation {

const char* to_string(ExtrapolationMethod method) {
  switch (method) {
    case ExtrapolationMethod::kLinear: return "linear";
    case ExtrapolationMethod::kRichardson: return "richardson";
    case ExtrapolationMethod::kExponential: return "exponential";
  }
  return "?";
}

ZeroNoiseExtrapolator::ZeroNoiseExtrapolator()
    : ZeroNoiseExtrapolator(Options{}) {}

ZeroNoiseExtrapolator::ZeroNoiseExtrapolator(Options options)
    : options_(std::move(options)) {
  expects(options_.scales.size() >= 2,
          "ZeroNoiseExtrapolator: need at least two noise scales");
  for (std::size_t i = 0; i < options_.scales.size(); ++i) {
    expects(options_.scales[i] >= 1 && options_.scales[i] % 2 == 1,
            "ZeroNoiseExtrapolator: scales must be odd positive integers");
    expects(i == 0 || options_.scales[i] > options_.scales[i - 1],
            "ZeroNoiseExtrapolator: scales must be strictly increasing");
  }
}

ZneResult ZeroNoiseExtrapolator::run(const circuit::Circuit& circuit,
                                     const Executor& executor) const {
  expects(executor != nullptr, "ZeroNoiseExtrapolator: null executor");
  ZneResult result;
  result.scales = options_.scales;
  for (int scale : options_.scales)
    result.measured.push_back(executor(circuit.folded(scale)));
  result.mitigated =
      extrapolate(result.scales, result.measured, options_.method);
  return result;
}

double ZeroNoiseExtrapolator::extrapolate(const std::vector<int>& scales,
                                          const std::vector<double>& values,
                                          ExtrapolationMethod method) {
  expects(scales.size() == values.size() && scales.size() >= 2,
          "extrapolate: need matching scales/values, at least two");
  const std::size_t n = scales.size();

  switch (method) {
    case ExtrapolationMethod::kLinear: {
      double sx = 0.0;
      double sy = 0.0;
      double sxx = 0.0;
      double sxy = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(scales[i]);
        sx += x;
        sy += values[i];
        sxx += x * x;
        sxy += x * values[i];
      }
      const double denom = static_cast<double>(n) * sxx - sx * sx;
      const double slope =
          (static_cast<double>(n) * sxy - sx * sy) / denom;
      return (sy - slope * sx) / static_cast<double>(n);
    }
    case ExtrapolationMethod::kRichardson: {
      // Lagrange interpolation evaluated at scale = 0.
      double value = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double weight = 1.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          weight *= static_cast<double>(-scales[j]) /
                    static_cast<double>(scales[i] - scales[j]);
        }
        value += weight * values[i];
      }
      return value;
    }
    case ExtrapolationMethod::kExponential: {
      // v(s) = A exp(-b s): linear fit of log|v| vs s; the sign is taken
      // from the least-noisy point. Falls back to linear when any value's
      // magnitude is too small for the log.
      const double sign = values[0] >= 0.0 ? 1.0 : -1.0;
      for (double value : values)
        if (std::abs(value) < 1e-9 || value * sign <= 0.0)
          return extrapolate(scales, values, ExtrapolationMethod::kLinear);
      double sx = 0.0;
      double sy = 0.0;
      double sxx = 0.0;
      double sxy = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(scales[i]);
        const double y = std::log(std::abs(values[i]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
      }
      const double denom = static_cast<double>(n) * sxx - sx * sx;
      const double slope =
          (static_cast<double>(n) * sxy - sx * sy) / denom;
      const double intercept = (sy - slope * sx) / static_cast<double>(n);
      return sign * std::exp(intercept);
    }
  }
  throw Error("extrapolate: unhandled method");
}

}  // namespace hpcqc::mitigation
