#include "hpcqc/fault/fault_plan.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"
#include "hpcqc/common/rng.hpp"

namespace hpcqc::fault {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kQdmiQuery: return "qdmi-query";
    case FaultSite::kDeviceExecution: return "device-execution";
    case FaultSite::kNetworkTransfer: return "network-transfer";
    case FaultSite::kThermalExcursion: return "thermal-excursion";
    case FaultSite::kCalibration: return "calibration";
    case FaultSite::kQubitDropout: return "qubit-dropout";
    case FaultSite::kCouplerDropout: return "coupler-dropout";
    case FaultSite::kQueueFlood: return "queue-flood";
    case FaultSite::kCryoPlantTrip: return "cryo-plant-trip";
    case FaultSite::kFacilityPower: return "facility-power";
    case FaultSite::kProcessCrash: return "process-crash";
  }
  return "?";
}

namespace {

bool is_dropout(FaultSite site) {
  return site == FaultSite::kQubitDropout ||
         site == FaultSite::kCouplerDropout;
}

}  // namespace

FaultPlan& FaultPlan::add(FaultEvent event) {
  expects(event.at >= 0.0 && event.duration >= 0.0,
          "FaultPlan::add: event times must be non-negative");
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, std::move(event));
  return *this;
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  for (const FaultEvent& event : other.events()) add(event);
  return *this;
}

std::size_t FaultPlan::count(FaultSite site) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [site](const FaultEvent& e) { return e.site == site; }));
}

FaultPlan FaultPlan::generate(const Params& params, std::uint64_t seed) {
  expects(params.horizon > 0.0, "FaultPlan::generate: horizon must be positive");
  FaultPlan plan;
  Rng root(seed);

  // The partial-degrade / flood sites come after the original five, and the
  // correlated fleet sites after those, so their child streams extend the
  // fork order: plans generated from a given seed with only the earlier
  // sites enabled are bit-identical to before.
  const std::pair<FaultSite, const SiteRate*> sites[] = {
      {FaultSite::kQdmiQuery, &params.qdmi_query},
      {FaultSite::kDeviceExecution, &params.device_execution},
      {FaultSite::kNetworkTransfer, &params.network_transfer},
      {FaultSite::kThermalExcursion, &params.thermal_excursion},
      {FaultSite::kCalibration, &params.calibration},
      {FaultSite::kQubitDropout, &params.qubit_dropout},
      {FaultSite::kCouplerDropout, &params.coupler_dropout},
      {FaultSite::kQueueFlood, &params.queue_flood},
      {FaultSite::kCryoPlantTrip, &params.cryo_plant_trip},
      {FaultSite::kFacilityPower, &params.facility_power},
      {FaultSite::kProcessCrash, &params.process_crash},
  };
  // One independent child stream per site: adding a site to the plan never
  // perturbs the draws of the others, so scenarios stay comparable across
  // configuration changes.
  for (const auto& [site, rate] : sites) {
    Rng stream = root.fork();
    if (rate->mtbf <= 0.0) continue;
    expects(rate->mean_duration > 0.0,
            "FaultPlan::generate: mean_duration must be positive");
    const int targets = site == FaultSite::kQubitDropout ? params.num_qubits
                        : site == FaultSite::kCouplerDropout
                            ? params.num_couplers
                            : 0;
    expects(!is_dropout(site) || targets > 0,
            "FaultPlan::generate: dropout sites need the element count "
            "(num_qubits / num_couplers)");
    expects(!is_fleet_site(site) || params.num_devices > 0,
            "FaultPlan::generate: fleet sites need num_devices");
    Seconds t = stream.exponential(1.0 / rate->mtbf);
    while (t < params.horizon) {
      FaultEvent event;
      event.at = t;
      event.site = site;
      event.duration = std::max(params.min_duration,
                                stream.exponential(1.0 / rate->mean_duration));
      event.description = std::string("injected ") + to_string(site);
      if (is_dropout(site)) {
        event.target = static_cast<int>(
            stream.uniform_index(static_cast<std::uint64_t>(targets)));
        event.description += " #" + std::to_string(event.target);
      }
      if (site == FaultSite::kCryoPlantTrip) {
        // Everything on the shared plant warms together.
        for (int d = 0; d < params.num_devices; ++d) event.devices.push_back(d);
      } else if (site == FaultSite::kFacilityPower) {
        // A power event cuts a non-empty device subset: draw one guaranteed
        // victim, then flip a fair coin per remaining device. Draw order is
        // fixed (victim, then devices ascending) so the plan replays.
        const int victim = static_cast<int>(stream.uniform_index(
            static_cast<std::uint64_t>(params.num_devices)));
        for (int d = 0; d < params.num_devices; ++d)
          if (d == victim || stream.uniform() < 0.5)
            event.devices.push_back(d);
      }
      plan.add(std::move(event));
      t += stream.exponential(1.0 / rate->mtbf);
    }
  }
  return plan;
}

std::vector<FaultPlan> expand_fleet_events(
    const FaultPlan& fleet_plan, std::vector<FaultPlan> device_plans) {
  for (const FaultEvent& event : fleet_plan.events()) {
    if (!is_fleet_site(event.site)) continue;
    for (const int d : event.devices) {
      expects(d >= 0 && static_cast<std::size_t>(d) < device_plans.size(),
              "expand_fleet_events: event device index out of range");
      FaultEvent local;
      local.at = event.at;
      local.site = FaultSite::kThermalExcursion;
      local.duration = event.duration;
      local.description = std::string("correlated ") + to_string(event.site) +
                          " (" + event.description + ")";
      device_plans[static_cast<std::size_t>(d)].add(std::move(local));
    }
  }
  return device_plans;
}

}  // namespace hpcqc::fault
