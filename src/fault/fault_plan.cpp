#include "hpcqc/fault/fault_plan.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"
#include "hpcqc/common/rng.hpp"

namespace hpcqc::fault {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kQdmiQuery: return "qdmi-query";
    case FaultSite::kDeviceExecution: return "device-execution";
    case FaultSite::kNetworkTransfer: return "network-transfer";
    case FaultSite::kThermalExcursion: return "thermal-excursion";
    case FaultSite::kCalibration: return "calibration";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  expects(event.at >= 0.0 && event.duration >= 0.0,
          "FaultPlan::add: event times must be non-negative");
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, std::move(event));
  return *this;
}

std::size_t FaultPlan::count(FaultSite site) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [site](const FaultEvent& e) { return e.site == site; }));
}

FaultPlan FaultPlan::generate(const Params& params, std::uint64_t seed) {
  expects(params.horizon > 0.0, "FaultPlan::generate: horizon must be positive");
  FaultPlan plan;
  Rng root(seed);

  const std::pair<FaultSite, const SiteRate*> sites[] = {
      {FaultSite::kQdmiQuery, &params.qdmi_query},
      {FaultSite::kDeviceExecution, &params.device_execution},
      {FaultSite::kNetworkTransfer, &params.network_transfer},
      {FaultSite::kThermalExcursion, &params.thermal_excursion},
      {FaultSite::kCalibration, &params.calibration},
  };
  // One independent child stream per site: adding a site to the plan never
  // perturbs the draws of the others, so scenarios stay comparable across
  // configuration changes.
  for (const auto& [site, rate] : sites) {
    Rng stream = root.fork();
    if (rate->mtbf <= 0.0) continue;
    expects(rate->mean_duration > 0.0,
            "FaultPlan::generate: mean_duration must be positive");
    Seconds t = stream.exponential(1.0 / rate->mtbf);
    while (t < params.horizon) {
      FaultEvent event;
      event.at = t;
      event.site = site;
      event.duration = std::max(params.min_duration,
                                stream.exponential(1.0 / rate->mean_duration));
      event.description = std::string("injected ") + to_string(site);
      plan.add(std::move(event));
      t += stream.exponential(1.0 / rate->mtbf);
    }
  }
  return plan;
}

}  // namespace hpcqc::fault
