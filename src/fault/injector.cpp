#include "hpcqc/fault/injector.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::fault {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const auto& event = plan_.events()[i];
    by_site_[static_cast<std::size_t>(event.site)].push_back(i);
  }
}

std::vector<FaultEvent> FaultInjector::poll(Seconds now) {
  expects(now >= last_poll_, "FaultInjector::poll: time cannot go backwards");
  last_poll_ = now;
  std::vector<FaultEvent> due;
  while (poll_cursor_ < plan_.events().size() &&
         plan_.events()[poll_cursor_].at <= now) {
    due.push_back(plan_.events()[poll_cursor_]);
    ++poll_cursor_;
  }
  return due;
}

const FaultEvent* FaultInjector::active_event(FaultSite site,
                                              Seconds now) const {
  // Plans hold at most a handful of windows per site; a linear scan over
  // the (time-sorted) site index is cheaper than maintaining cursors that
  // would constrain callers to monotone query times.
  for (const std::size_t index : by_site_[static_cast<std::size_t>(site)]) {
    const FaultEvent& event = plan_.events()[index];
    if (event.at > now) break;
    if (now < event.end()) return &event;
  }
  return nullptr;
}

bool FaultInjector::active(FaultSite site, Seconds now) const {
  const FaultEvent* event = active_event(site, now);
  if (event != nullptr) ++trip_counts_[static_cast<std::size_t>(site)];
  return event != nullptr;
}

std::size_t FaultInjector::trips(FaultSite site) const {
  return trip_counts_[static_cast<std::size_t>(site)];
}

}  // namespace hpcqc::fault
