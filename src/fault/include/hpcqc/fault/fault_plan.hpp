#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::fault {

/// Named injection sites: the places in the stack where a deterministic
/// chaos campaign is allowed to break things. They mirror the failure
/// surface the paper's operations story (§3.5) and its users' feature
/// requests ("more robust job restart tools after system outages", §4)
/// circle around.
enum class FaultSite {
  kQdmiQuery,         ///< QDMI metric queries time out (compiler front end)
  kDeviceExecution,   ///< the QPU aborts the running job
  kNetworkTransfer,   ///< result transfer / serialization corrupted in flight
  kThermalExcursion,  ///< cryostat loses active cooling (facility outage)
  kCalibration,       ///< a calibration run fails to converge
  kQubitDropout,      ///< one qubit drops out of spec (partial degrade)
  kCouplerDropout,    ///< one coupler drops out of spec (partial degrade)
  kQueueFlood,        ///< a burst of low-priority submissions hits the QRM
  kCryoPlantTrip,     ///< shared cryo plant trips: every device on it warms
  kFacilityPower,     ///< facility power event hitting a subset of devices
  kProcessCrash,      ///< the QRM control-plane process dies and recovers
};

inline constexpr std::size_t kNumFaultSites = 11;

/// True for the correlated fleet sites, which describe a failure of shared
/// infrastructure rather than of one device's own stack.
inline constexpr bool is_fleet_site(FaultSite site) {
  return site == FaultSite::kCryoPlantTrip ||
         site == FaultSite::kFacilityPower;
}

const char* to_string(FaultSite site);

/// One scheduled fault: the site misbehaves during [at, at + duration).
/// For kThermalExcursion the duration is the time until the underlying
/// facility issue is identified and resolved (cooling can be restored);
/// the peak temperature — and hence quick-vs-full recalibration — follows
/// from the thermal model, not from the event.
struct FaultEvent {
  Seconds at = 0.0;
  FaultSite site = FaultSite::kDeviceExecution;
  Seconds duration = 0.0;
  std::string description;
  /// Element hit by a partial-degrade site: qubit id for kQubitDropout,
  /// coupler (edge) index for kCouplerDropout; -1 for whole-device sites.
  int target = -1;
  /// Device indices hit by a correlated fleet site (kCryoPlantTrip covers
  /// every device on the shared plant; kFacilityPower draws a subset).
  /// Empty for single-device sites.
  std::vector<int> devices;

  Seconds end() const { return at + duration; }
};

/// A deterministic, replayable fault schedule. Either hand-authored via
/// add() (regression tests pin exact scenarios) or drawn from per-site
/// mean-time-between-failure rates with a seeded RNG (chaos campaigns):
/// the same seed always yields the same plan, so every run is replayable.
class FaultPlan {
public:
  /// Poisson-process rate of one site. mtbf == 0 disables the site.
  struct SiteRate {
    Seconds mtbf = 0.0;
    Seconds mean_duration = minutes(10.0);
  };

  struct Params {
    Seconds horizon = days(1.0);
    SiteRate qdmi_query;
    SiteRate device_execution;
    SiteRate network_transfer;
    SiteRate thermal_excursion;
    SiteRate calibration;
    SiteRate qubit_dropout;
    SiteRate coupler_dropout;
    SiteRate queue_flood;
    SiteRate cryo_plant_trip;
    SiteRate facility_power;
    /// Control-plane crashes (kill -9 on the QRM). Duration is ignored —
    /// the crash is an instant; what matters is what the write-ahead
    /// journal had flushed when it hit.
    SiteRate process_crash;
    /// Element counts for the partial-degrade sites: targets are drawn
    /// uniformly from [0, num_qubits) / [0, num_couplers). Required (> 0)
    /// when the corresponding dropout site is enabled.
    int num_qubits = 0;
    int num_couplers = 0;
    /// Fleet size for the correlated sites. kCryoPlantTrip lists every
    /// device; kFacilityPower draws a non-empty subset from the site's own
    /// child stream. Required (> 0) when either fleet site is enabled.
    int num_devices = 0;
    /// Fault windows never collapse below this (a zero-length window would
    /// be unobservable by any injection site).
    Seconds min_duration = seconds(30.0);
  };

  /// Draws exponential inter-arrival times and window lengths per site from
  /// independent child streams of `seed`.
  static FaultPlan generate(const Params& params, std::uint64_t seed);

  /// Inserts an event, keeping the schedule sorted by start time.
  FaultPlan& add(FaultEvent event);

  /// Splices every event of `other` into this plan (sorted merge) —
  /// composes a generated Poisson schedule with hand-authored scripted
  /// events, e.g. a guaranteed correlated fleet outage in a short test
  /// horizon.
  FaultPlan& merge(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  std::size_t count(FaultSite site) const;

private:
  std::vector<FaultEvent> events_;  ///< sorted by `at`
};

/// Splices the correlated fleet events of `fleet_plan` into per-device plans:
/// each device listed in an event's `devices` receives a thermal excursion of
/// the same start and duration (shared cryostats warm together; a power event
/// cuts compressors the same way), tagged with the correlated origin in its
/// description. Non-fleet events in `fleet_plan` are ignored. The per-device
/// plans keep their own independent events.
std::vector<FaultPlan> expand_fleet_events(const FaultPlan& fleet_plan,
                                           std::vector<FaultPlan> device_plans);

}  // namespace hpcqc::fault
