#pragma once

#include <array>
#include <vector>

#include "hpcqc/fault/fault_plan.hpp"

namespace hpcqc::fault {

/// Replays a FaultPlan against simulated time. Two consumption styles:
///
///  - poll(now): time-driven events (thermal excursions) that an
///    orchestrator reacts to when their start time arrives. Each event is
///    delivered exactly once.
///  - active(site, now): site-scoped checks placed inside the job path
///    (QDMI queries, device execution, transfers, calibrations) — true
///    while a fault window of that site covers `now`. Every positive check
///    is counted, so campaigns can report how often each site actually
///    tripped, not just how many windows were scheduled.
///
/// The injector holds no RNG: all randomness lives in FaultPlan::generate,
/// which makes replaying a campaign bit-identical by construction.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Events whose start time has arrived since the previous poll, in
  /// schedule order. `now` must be non-decreasing across calls.
  std::vector<FaultEvent> poll(Seconds now);

  /// True while a window for `site` covers `now`; increments the site's
  /// trip counter when it does.
  bool active(FaultSite site, Seconds now) const;

  /// The covering event, or nullptr when the site is healthy at `now`.
  const FaultEvent* active_event(FaultSite site, Seconds now) const;

  /// Number of positive active() observations per site.
  std::size_t trips(FaultSite site) const;

  /// Scheduled windows per site (plan-level, independent of observation).
  std::size_t scheduled(FaultSite site) const { return plan_.count(site); }

private:
  FaultPlan plan_;
  std::vector<std::size_t> by_site_[kNumFaultSites];  ///< indices into plan
  std::size_t poll_cursor_ = 0;
  Seconds last_poll_ = -1.0;
  mutable std::array<std::size_t, kNumFaultSites> trip_counts_{};
};

}  // namespace hpcqc::fault
