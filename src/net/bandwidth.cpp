#include "hpcqc/net/bandwidth.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::net {

BitsPerSecond output_data_rate(const BandwidthScenario& scenario) {
  expects(scenario.num_qubits > 0, "output_data_rate: need qubits");
  expects(scenario.shot_period > 0.0, "output_data_rate: need a shot period");
  expects(scenario.duty_cycle > 0.0 && scenario.duty_cycle <= 1.0,
          "output_data_rate: duty cycle in (0, 1]");
  double bits_per_shot = 0.0;
  switch (scenario.format) {
    case ResultFormat::kBitstringsPerShot:
      // One byte per measured bit: the 8x inefficiency of §2.4.
      bits_per_shot = 8.0 * scenario.num_qubits;
      break;
    case ResultFormat::kRawIq:
      // Two float32 per qubit per shot.
      bits_per_shot = 64.0 * scenario.num_qubits;
      break;
    case ResultFormat::kHistogram:
      // Streaming histograms amortize to ~0 per shot; account the 16-byte
      // bucket update as if each shot touched one bucket delta of 1 bit of
      // entropy — in practice the transfer happens once per job, so treat
      // it as the per-shot floor of 1 bit.
      bits_per_shot = 1.0;
      break;
  }
  return bits_per_shot / scenario.shot_period * scenario.duty_cycle;
}

Seconds LinkModel::transfer_time(std::size_t bytes) const {
  expects(capacity > 0.0 && efficiency > 0.0, "LinkModel: invalid link");
  return latency +
         static_cast<double>(bytes) * 8.0 / (capacity * efficiency);
}

double LinkModel::utilization(BitsPerSecond rate) const {
  expects(capacity > 0.0, "LinkModel: invalid capacity");
  return rate / (capacity * efficiency);
}

}  // namespace hpcqc::net
