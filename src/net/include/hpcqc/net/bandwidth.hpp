#pragma once

#include "hpcqc/common/units.hpp"
#include "hpcqc/net/formats.hpp"

namespace hpcqc::net {

/// Inputs of the paper's §2.4 back-of-the-envelope estimate.
struct BandwidthScenario {
  int num_qubits = 20;
  /// Passive reset dominates the shot: 300 µs per shot.
  Seconds shot_period = microseconds(300.0);
  ResultFormat format = ResultFormat::kBitstringsPerShot;
  /// Fraction of wall time actually spent measuring (control-software
  /// overhead means "fully continuous measurements are not possible").
  double duty_cycle = 1.0;
};

/// Sustained output data rate of continuously measured circuits:
/// for the paper's numbers (20 qubits, 300 µs, byte-per-bit, duty 1.0)
/// this returns 533.3 kbit/s.
BitsPerSecond output_data_rate(const BandwidthScenario& scenario);

/// Network link between the QPU and the HPC resources (1 Gbit Ethernet in
/// the installation described).
struct LinkModel {
  BitsPerSecond capacity = gigabits_per_second(1.0);
  Seconds latency = milliseconds(0.5);
  /// Protocol efficiency (framing/TCP overhead).
  double efficiency = 0.94;

  /// Time to move a payload of the given size.
  Seconds transfer_time(std::size_t bytes) const;
  /// Fraction of the link a sustained data rate occupies.
  double utilization(BitsPerSecond rate) const;
};

}  // namespace hpcqc::net
