#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hpcqc/qsim/counts.hpp"

namespace hpcqc::net {

/// The three job-output formats §2.4 describes, in increasing size order
/// for typical jobs:
///  - kHistogram: measured bitstrings and their occurrence counts — "the
///    most common output format for circuit-based jobs";
///  - kBitstringsPerShot: one bitstring per prescribed shot, each measured
///    bit consuming one byte (the 8-bits-per-bit inefficiency of the
///    paper's naive estimate);
///  - kRawIq: pulse-level readout — a complex (a + bi) sample per qubit per
///    shot as a pair of floats.
enum class ResultFormat {
  kHistogram,
  kBitstringsPerShot,
  kRawIq,
};

const char* to_string(ResultFormat format);

/// Serialized payload plus its logical description.
struct Payload {
  ResultFormat format = ResultFormat::kHistogram;
  int num_qubits = 0;
  std::uint64_t shots = 0;
  std::vector<std::uint8_t> bytes;

  std::size_t size_bytes() const { return bytes.size(); }
};

/// Histogram codec: little-endian header (qubits, shots, entries) followed
/// by (outcome: u64, count: u64) pairs.
Payload encode_histogram(const qsim::Counts& counts);
qsim::Counts decode_histogram(const Payload& payload);

/// Per-shot bitstring codec: one byte per measured bit per shot (the
/// deliberately inefficient representation of the paper's estimate).
Payload encode_bitstrings(std::span<const std::uint64_t> samples,
                          int num_qubits);
std::vector<std::uint64_t> decode_bitstrings(const Payload& payload);

/// Raw-IQ codec: per shot, per qubit, two float32 (I, Q). The caller
/// supplies the complex samples flattened shot-major.
Payload encode_raw_iq(std::span<const float> iq_interleaved, int num_qubits,
                      std::uint64_t shots);
std::vector<float> decode_raw_iq(const Payload& payload);

/// Payload size in bytes without materializing it — used for the §2.4
/// estimate at large qubit counts.
std::size_t payload_size_bytes(ResultFormat format, int num_qubits,
                               std::uint64_t shots,
                               std::size_t distinct_outcomes = 0);

}  // namespace hpcqc::net
