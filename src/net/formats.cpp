#include "hpcqc/net/formats.hpp"

#include <cstring>

#include "hpcqc/common/error.hpp"

namespace hpcqc::net {

namespace {

constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t offset) {
  expects(offset + 8 <= in.size(), "payload truncated");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)])
             << (8 * i);
  return value;
}

void put_header(Payload& payload, std::uint64_t entries) {
  put_u64(payload.bytes, static_cast<std::uint64_t>(payload.num_qubits));
  put_u64(payload.bytes, payload.shots);
  put_u64(payload.bytes, entries);
}

}  // namespace

const char* to_string(ResultFormat format) {
  switch (format) {
    case ResultFormat::kHistogram: return "histogram";
    case ResultFormat::kBitstringsPerShot: return "bitstrings-per-shot";
    case ResultFormat::kRawIq: return "raw-iq";
  }
  return "?";
}

Payload encode_histogram(const qsim::Counts& counts) {
  Payload payload;
  payload.format = ResultFormat::kHistogram;
  payload.num_qubits = counts.num_qubits();
  payload.shots = counts.total_shots();
  put_header(payload, counts.raw().size());
  for (const auto& [outcome, count] : counts.raw()) {
    put_u64(payload.bytes, outcome);
    put_u64(payload.bytes, count);
  }
  return payload;
}

qsim::Counts decode_histogram(const Payload& payload) {
  expects(payload.format == ResultFormat::kHistogram,
          "decode_histogram: wrong format tag");
  const auto num_qubits = get_u64(payload.bytes, 0);
  const auto entries = get_u64(payload.bytes, 16);
  qsim::Counts counts;
  counts.set_num_qubits(static_cast<int>(num_qubits));
  std::size_t offset = kHeaderBytes;
  for (std::uint64_t i = 0; i < entries; ++i) {
    const std::uint64_t outcome = get_u64(payload.bytes, offset);
    const std::uint64_t count = get_u64(payload.bytes, offset + 8);
    counts.add(outcome, count);
    offset += 16;
  }
  return counts;
}

Payload encode_bitstrings(std::span<const std::uint64_t> samples,
                          int num_qubits) {
  expects(num_qubits >= 1 && num_qubits <= 64,
          "encode_bitstrings: qubit count out of range");
  Payload payload;
  payload.format = ResultFormat::kBitstringsPerShot;
  payload.num_qubits = num_qubits;
  payload.shots = samples.size();
  put_header(payload, samples.size());
  payload.bytes.reserve(kHeaderBytes +
                        samples.size() * static_cast<std::size_t>(num_qubits));
  for (std::uint64_t sample : samples)
    for (int q = 0; q < num_qubits; ++q)
      payload.bytes.push_back(
          static_cast<std::uint8_t>((sample >> q) & 1));  // 8 bits per bit
  return payload;
}

std::vector<std::uint64_t> decode_bitstrings(const Payload& payload) {
  expects(payload.format == ResultFormat::kBitstringsPerShot,
          "decode_bitstrings: wrong format tag");
  const auto num_qubits = static_cast<int>(get_u64(payload.bytes, 0));
  const auto shots = get_u64(payload.bytes, 8);
  std::vector<std::uint64_t> samples;
  samples.reserve(shots);
  std::size_t offset = kHeaderBytes;
  for (std::uint64_t s = 0; s < shots; ++s) {
    std::uint64_t sample = 0;
    for (int q = 0; q < num_qubits; ++q) {
      expects(offset < payload.bytes.size(), "decode_bitstrings: truncated");
      if (payload.bytes[offset++] != 0) sample |= std::uint64_t{1} << q;
    }
    samples.push_back(sample);
  }
  return samples;
}

Payload encode_raw_iq(std::span<const float> iq_interleaved, int num_qubits,
                      std::uint64_t shots) {
  expects(iq_interleaved.size() ==
              2 * static_cast<std::size_t>(num_qubits) * shots,
          "encode_raw_iq: sample count must be 2 * qubits * shots");
  Payload payload;
  payload.format = ResultFormat::kRawIq;
  payload.num_qubits = num_qubits;
  payload.shots = shots;
  put_header(payload, iq_interleaved.size());
  payload.bytes.resize(kHeaderBytes + iq_interleaved.size() * sizeof(float));
  std::memcpy(payload.bytes.data() + kHeaderBytes, iq_interleaved.data(),
              iq_interleaved.size() * sizeof(float));
  return payload;
}

std::vector<float> decode_raw_iq(const Payload& payload) {
  expects(payload.format == ResultFormat::kRawIq,
          "decode_raw_iq: wrong format tag");
  const auto entries = get_u64(payload.bytes, 16);
  expects(payload.bytes.size() == kHeaderBytes + entries * sizeof(float),
          "decode_raw_iq: truncated payload");
  std::vector<float> samples(entries);
  std::memcpy(samples.data(), payload.bytes.data() + kHeaderBytes,
              entries * sizeof(float));
  return samples;
}

std::size_t payload_size_bytes(ResultFormat format, int num_qubits,
                               std::uint64_t shots,
                               std::size_t distinct_outcomes) {
  switch (format) {
    case ResultFormat::kHistogram:
      return kHeaderBytes + distinct_outcomes * 16;
    case ResultFormat::kBitstringsPerShot:
      return kHeaderBytes + static_cast<std::size_t>(num_qubits) * shots;
    case ResultFormat::kRawIq:
      return kHeaderBytes +
             2 * sizeof(float) * static_cast<std::size_t>(num_qubits) * shots;
  }
  return 0;
}

}  // namespace hpcqc::net
