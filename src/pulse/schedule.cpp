#include "hpcqc/pulse/schedule.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::pulse {

const char* to_string(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::kDrive: return "drive";
    case ChannelKind::kFlux: return "flux";
    case ChannelKind::kReadout: return "readout";
  }
  return "?";
}

void Schedule::play_at(Channel channel, double start_ns,
                       PulseWaveform waveform) {
  expects(start_ns >= 0.0, "Schedule::play_at: negative start time");
  const double busy_until = channel_end_ns(channel);
  expects(start_ns >= busy_until - 1e-9,
          "Schedule::play_at: overlapping instructions on one channel");
  PlayInstruction instruction{channel, start_ns, std::move(waveform)};
  channel_end_[channel] = instruction.end_ns();
  instructions_.push_back(std::move(instruction));
}

void Schedule::play(Channel channel, PulseWaveform waveform) {
  play_at(channel, channel_end_ns(channel), std::move(waveform));
}

void Schedule::play_synchronized(const std::vector<Channel>& channels,
                                 Channel target, PulseWaveform waveform) {
  expects(std::find(channels.begin(), channels.end(), target) !=
              channels.end(),
          "Schedule::play_synchronized: target must be one of the channels");
  double start = 0.0;
  for (const Channel& channel : channels)
    start = std::max(start, channel_end_ns(channel));
  const double end = start + waveform.duration_ns();
  play_at(target, start, std::move(waveform));
  for (const Channel& channel : channels)
    if (!(channel == target)) channel_end_[channel] = end;
}

void Schedule::delay(Channel channel, double duration_ns) {
  expects(duration_ns >= 0.0, "Schedule::delay: negative duration");
  channel_end_[channel] = channel_end_ns(channel) + duration_ns;
}

double Schedule::duration_ns() const {
  double end = 0.0;
  for (const auto& [channel, channel_end] : channel_end_)
    end = std::max(end, channel_end);
  return end;
}

double Schedule::channel_end_ns(Channel channel) const {
  const auto it = channel_end_.find(channel);
  return it == channel_end_.end() ? 0.0 : it->second;
}

std::vector<PlayInstruction> Schedule::channel_program(
    Channel channel) const {
  std::vector<PlayInstruction> program;
  for (const auto& instruction : instructions_)
    if (instruction.channel == channel) program.push_back(instruction);
  std::sort(program.begin(), program.end(),
            [](const PlayInstruction& a, const PlayInstruction& b) {
              return a.start_ns < b.start_ns;
            });
  return program;
}

std::vector<Channel> Schedule::channels() const {
  std::vector<Channel> out;
  for (const auto& [channel, end] : channel_end_) out.push_back(channel);
  return out;
}

}  // namespace hpcqc::pulse
