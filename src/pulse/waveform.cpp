#include "hpcqc/pulse/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::pulse {

PulseWaveform::PulseWaveform(double sample_dt_ns,
                             std::vector<std::complex<double>> samples)
    : sample_dt_ns_(sample_dt_ns), samples_(std::move(samples)) {
  expects(sample_dt_ns_ > 0.0, "PulseWaveform: sample period must be > 0");
}

std::complex<double> PulseWaveform::area() const {
  std::complex<double> acc{0.0, 0.0};
  for (const auto& sample : samples_) acc += sample;
  return acc * sample_dt_ns_;
}

double PulseWaveform::peak_amplitude() const {
  double peak = 0.0;
  for (const auto& sample : samples_)
    peak = std::max(peak, std::abs(sample));
  return peak;
}

PulseWaveform PulseWaveform::scaled(std::complex<double> factor) const {
  std::vector<std::complex<double>> scaled_samples = samples_;
  for (auto& sample : scaled_samples) sample *= factor;
  return PulseWaveform(sample_dt_ns_, std::move(scaled_samples));
}

namespace {

std::size_t sample_count(double duration_ns, double dt_ns) {
  expects(duration_ns > 0.0 && dt_ns > 0.0,
          "pulse envelope: duration and dt must be positive");
  return static_cast<std::size_t>(std::llround(duration_ns / dt_ns));
}

}  // namespace

PulseWaveform PulseWaveform::gaussian(double amplitude, double sigma_ns,
                                      double duration_ns, double dt_ns) {
  expects(sigma_ns > 0.0, "gaussian: sigma must be positive");
  const std::size_t n = sample_count(duration_ns, dt_ns);
  const double center = duration_ns / 2.0;
  std::vector<std::complex<double>> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt_ns;
    const double arg = (t - center) / sigma_ns;
    samples[i] = amplitude * std::exp(-0.5 * arg * arg);
  }
  return PulseWaveform(dt_ns, std::move(samples));
}

PulseWaveform PulseWaveform::drag(double amplitude, double sigma_ns,
                                  double beta, double duration_ns,
                                  double dt_ns) {
  expects(sigma_ns > 0.0, "drag: sigma must be positive");
  const std::size_t n = sample_count(duration_ns, dt_ns);
  const double center = duration_ns / 2.0;
  std::vector<std::complex<double>> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt_ns;
    const double arg = (t - center) / sigma_ns;
    const double gauss = amplitude * std::exp(-0.5 * arg * arg);
    // Q component: beta * dG/dt = -beta * (t - center)/sigma^2 * G.
    const double derivative = -beta * (t - center) / (sigma_ns * sigma_ns) *
                              gauss;
    samples[i] = std::complex<double>(gauss, derivative);
  }
  return PulseWaveform(dt_ns, std::move(samples));
}

PulseWaveform PulseWaveform::gaussian_square(double amplitude,
                                             double duration_ns,
                                             double edge_sigma_ns,
                                             double dt_ns) {
  expects(edge_sigma_ns > 0.0, "gaussian_square: edge sigma must be positive");
  const std::size_t n = sample_count(duration_ns, dt_ns);
  const double rise_end = 2.0 * edge_sigma_ns;
  const double fall_start = duration_ns - 2.0 * edge_sigma_ns;
  expects(fall_start > rise_end,
          "gaussian_square: duration too short for the edges");
  std::vector<std::complex<double>> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt_ns;
    double value = amplitude;
    if (t < rise_end) {
      const double arg = (t - rise_end) / edge_sigma_ns;
      value = amplitude * std::exp(-0.5 * arg * arg);
    } else if (t > fall_start) {
      const double arg = (t - fall_start) / edge_sigma_ns;
      value = amplitude * std::exp(-0.5 * arg * arg);
    }
    samples[i] = value;
  }
  return PulseWaveform(dt_ns, std::move(samples));
}

PulseWaveform PulseWaveform::constant(double amplitude, double duration_ns,
                                      double dt_ns) {
  return PulseWaveform(
      dt_ns, std::vector<std::complex<double>>(
                 sample_count(duration_ns, dt_ns), amplitude));
}

}  // namespace hpcqc::pulse
