#pragma once

#include <map>
#include <string>
#include <vector>

#include "hpcqc/pulse/waveform.hpp"

namespace hpcqc::pulse {

/// Control channels of the transmon stack: a microwave drive line per
/// qubit, a flux line per tunable coupler, and a readout line per qubit.
enum class ChannelKind { kDrive, kFlux, kReadout };

const char* to_string(ChannelKind kind);

struct Channel {
  ChannelKind kind = ChannelKind::kDrive;
  int index = 0;  ///< qubit id for drive/readout, coupler edge id for flux

  auto operator<=>(const Channel&) const = default;
};

/// One timed playback on a channel.
struct PlayInstruction {
  Channel channel;
  double start_ns = 0.0;
  PulseWaveform waveform;

  double end_ns() const { return start_ns + waveform.duration_ns(); }
};

/// A timed pulse program — the artifact pulse-level users build and the
/// gate-level compiler lowers into. Instructions on the same channel must
/// not overlap; different channels are free to play concurrently.
class Schedule {
public:
  /// Schedules the waveform at an explicit time; rejects channel overlap.
  void play_at(Channel channel, double start_ns, PulseWaveform waveform);

  /// Schedules as early as possible on the channel (right-aligned to the
  /// channel's current end).
  void play(Channel channel, PulseWaveform waveform);

  /// Schedules after *all* listed channels are free and blocks each of
  /// them until it finishes (the cross-channel sync a 2-qubit gate needs).
  /// The waveform itself plays on `target`.
  void play_synchronized(const std::vector<Channel>& channels,
                         Channel target, PulseWaveform waveform);

  /// Inserts idle time on a channel.
  void delay(Channel channel, double duration_ns);

  std::size_t size() const { return instructions_.size(); }
  const std::vector<PlayInstruction>& instructions() const {
    return instructions_;
  }

  /// Total program duration (max channel end time).
  double duration_ns() const;

  /// End time of one channel (0 when unused).
  double channel_end_ns(Channel channel) const;

  /// Instructions on one channel, in time order.
  std::vector<PlayInstruction> channel_program(Channel channel) const;

  /// Every channel referenced by the program.
  std::vector<Channel> channels() const;

private:
  std::vector<PlayInstruction> instructions_;
  std::map<Channel, double> channel_end_;
};

}  // namespace hpcqc::pulse
