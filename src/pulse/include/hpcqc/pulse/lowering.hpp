#pragma once

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/pulse/schedule.hpp"

namespace hpcqc::pulse {

/// Pulse-level calibration constants used when lowering native gates to
/// waveforms. Derived from the device spec; a pulse-level user can tweak
/// them (that is the point of pulse access).
struct PulseCalibration {
  double dt_ns = 1.0;
  double prx_duration_ns = 20.0;
  double prx_sigma_ns = 5.0;
  double drag_beta = 0.6;
  /// Drive amplitude producing a pi rotation over one PRX duration.
  double pi_amplitude = 0.8;
  double cz_duration_ns = 40.0;
  double cz_flux_amplitude = 0.5;
  double cz_edge_sigma_ns = 5.0;
  double readout_duration_ns = 2000.0;
  double readout_amplitude = 0.3;

  /// Defaults consistent with a device spec's gate timings.
  static PulseCalibration from_spec(const device::DeviceSpec& spec);
};

/// Lowers a *native* circuit (PRX / CZ / measure, post-compiler) to a pulse
/// schedule — the final lowering stage below the gate-level ISA:
///  - PRX(theta, phi): DRAG pulse on the qubit's drive channel, amplitude
///    proportional to theta/pi, IQ envelope rotated by phi;
///  - CZ: flat-top flux pulse on the coupler channel, synchronizing both
///    qubits' drive channels;
///  - measure: readout tones on the measured qubits, after all gates.
/// Throws PreconditionError on non-native gates (compile first).
Schedule lower_to_pulses(const circuit::Circuit& circuit,
                         const device::Topology& topology,
                         const PulseCalibration& calibration = {});

}  // namespace hpcqc::pulse
