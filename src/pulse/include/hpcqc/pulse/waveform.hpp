#pragma once

#include <complex>
#include <vector>

namespace hpcqc::pulse {

/// Complex (IQ) baseband envelope, sampled at the control electronics' DAC
/// rate. This is the representation users with pulse-level access (§4
/// identified them explicitly) hand to the stack "as pulses" instead of
/// gate-level circuits.
class PulseWaveform {
public:
  PulseWaveform() = default;
  PulseWaveform(double sample_dt_ns, std::vector<std::complex<double>> samples);

  double sample_dt_ns() const { return sample_dt_ns_; }
  const std::vector<std::complex<double>>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  double duration_ns() const {
    return sample_dt_ns_ * static_cast<double>(samples_.size());
  }

  /// Integral of the envelope (drives the rotation angle), in amp x ns.
  std::complex<double> area() const;
  /// Largest |sample|; control hardware clips beyond 1.0.
  double peak_amplitude() const;
  bool within_hardware_range() const { return peak_amplitude() <= 1.0; }

  /// Scales every sample by a complex factor (amplitude and/or phase).
  PulseWaveform scaled(std::complex<double> factor) const;

  // ---- Standard analytic envelopes ----------------------------------------

  /// Gaussian envelope, truncated at +-2 sigma around the center.
  static PulseWaveform gaussian(double amplitude, double sigma_ns,
                                double duration_ns, double dt_ns = 1.0);

  /// DRAG envelope: gaussian I component with a derivative Q component
  /// (beta x dG/dt), the standard single-qubit pulse on transmons.
  static PulseWaveform drag(double amplitude, double sigma_ns, double beta,
                            double duration_ns, double dt_ns = 1.0);

  /// Flat-top: square body with gaussian rising/falling edges — the shape
  /// of flux pulses driving tunable-coupler CZ gates.
  static PulseWaveform gaussian_square(double amplitude, double duration_ns,
                                       double edge_sigma_ns,
                                       double dt_ns = 1.0);

  /// Constant envelope.
  static PulseWaveform constant(double amplitude, double duration_ns,
                                double dt_ns = 1.0);

private:
  double sample_dt_ns_ = 1.0;
  std::vector<std::complex<double>> samples_;
};

}  // namespace hpcqc::pulse
