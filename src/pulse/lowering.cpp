#include "hpcqc/pulse/lowering.hpp"

#include <cmath>
#include <complex>

#include "hpcqc/common/error.hpp"

namespace hpcqc::pulse {

PulseCalibration PulseCalibration::from_spec(const device::DeviceSpec& spec) {
  PulseCalibration calibration;
  calibration.prx_duration_ns = spec.prx_duration_ns;
  calibration.prx_sigma_ns = spec.prx_duration_ns / 4.0;
  calibration.cz_duration_ns = spec.cz_duration_ns;
  calibration.cz_edge_sigma_ns = spec.cz_duration_ns / 8.0;
  calibration.readout_duration_ns = spec.readout_duration_us * 1e3;
  return calibration;
}

Schedule lower_to_pulses(const circuit::Circuit& circuit,
                         const device::Topology& topology,
                         const PulseCalibration& calibration) {
  expects(circuit.num_qubits() <= topology.num_qubits(),
          "lower_to_pulses: circuit does not fit the device");
  Schedule schedule;

  for (const auto& op : circuit.ops()) {
    switch (op.kind) {
      case circuit::OpKind::kBarrier: {
        // Align every touched channel to the current global frontier.
        const double frontier = schedule.duration_ns();
        for (const Channel& channel : schedule.channels()) {
          const double gap = frontier - schedule.channel_end_ns(channel);
          if (gap > 0.0) schedule.delay(channel, gap);
        }
        break;
      }
      case circuit::OpKind::kPrx: {
        const double theta =
            std::remainder(op.params[0], 4.0 * M_PI);  // [-2pi, 2pi]
        const double phi = op.params[1];
        const double amplitude =
            calibration.pi_amplitude * theta / M_PI;
        const PulseWaveform envelope =
            PulseWaveform::drag(std::abs(amplitude), calibration.prx_sigma_ns,
                                calibration.drag_beta,
                                calibration.prx_duration_ns,
                                calibration.dt_ns);
        // The axis phase rotates the IQ envelope; a negative angle adds pi.
        const double frame = phi + (amplitude < 0.0 ? M_PI : 0.0);
        schedule.play({ChannelKind::kDrive, op.qubits[0]},
                      envelope.scaled(std::polar(1.0, frame)));
        break;
      }
      case circuit::OpKind::kCz: {
        const int edge = topology.edge_index(op.qubits[0], op.qubits[1]);
        const PulseWaveform flux = PulseWaveform::gaussian_square(
            calibration.cz_flux_amplitude, calibration.cz_duration_ns,
            calibration.cz_edge_sigma_ns, calibration.dt_ns);
        // The flux pulse must not overlap with either qubit's drives.
        schedule.play_synchronized(
            {{ChannelKind::kDrive, op.qubits[0]},
             {ChannelKind::kDrive, op.qubits[1]},
             {ChannelKind::kFlux, edge}},
            {ChannelKind::kFlux, edge}, flux);
        break;
      }
      case circuit::OpKind::kMeasure: {
        std::vector<int> measured = op.qubits;
        if (measured.empty())
          for (int q = 0; q < circuit.num_qubits(); ++q)
            measured.push_back(q);
        // Readout starts after every gate has finished (global barrier).
        const double frontier = schedule.duration_ns();
        for (int q : measured) {
          const PulseWaveform tone = PulseWaveform::constant(
              calibration.readout_amplitude, calibration.readout_duration_ns,
              calibration.dt_ns);
          schedule.play_at({ChannelKind::kReadout, q},
                           std::max(frontier,
                                    schedule.channel_end_ns(
                                        {ChannelKind::kReadout, q})),
                           tone);
        }
        break;
      }
      case circuit::OpKind::kI:
        break;
      default:
        throw PreconditionError(
            std::string("lower_to_pulses: non-native gate '") +
            circuit::op_name(op.kind) + "' — run the compiler first");
    }
  }
  return schedule;
}

}  // namespace hpcqc::pulse
