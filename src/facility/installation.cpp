#include "hpcqc/facility/installation.hpp"

#include <algorithm>
#include <ostream>

#include "hpcqc/common/error.hpp"

namespace hpcqc::facility {

void InstallationPlan::print(std::ostream& os) const {
  os << "Installation plan (" << to_days(makespan) << " days total, "
     << to_days(vendor_crew_days) << " vendor-crew task-days):\n";
  for (const auto& task : tasks) {
    os << "  [" << (task.on_critical_path ? '*' : ' ') << "] day "
       << to_days(task.earliest_start) << " - "
       << to_days(task.earliest_finish) << "  " << task.name;
    if (task.slack > 0.0) os << " (slack " << to_days(task.slack) << " d)";
    os << '\n';
  }
}

InstallationPlan plan_installation(
    const std::vector<InstallationTask>& tasks) {
  expects(!tasks.empty(), "plan_installation: no tasks");
  const int n = static_cast<int>(tasks.size());
  for (const auto& task : tasks) {
    expects(task.duration > 0.0, "plan_installation: task needs a duration");
    for (int dep : task.depends_on)
      expects(dep >= 0 && dep < n, "plan_installation: dependency out of range");
  }

  // Topological order (Kahn) — also detects cycles.
  std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> dependents(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int dep : tasks[static_cast<std::size_t>(i)].depends_on) {
      ++in_degree[static_cast<std::size_t>(i)];
      dependents[static_cast<std::size_t>(dep)].push_back(i);
    }
  }
  std::vector<int> order;
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (in_degree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const int task = ready.back();
    ready.pop_back();
    order.push_back(task);
    for (int next : dependents[static_cast<std::size_t>(task)])
      if (--in_degree[static_cast<std::size_t>(next)] == 0)
        ready.push_back(next);
  }
  expects(static_cast<int>(order.size()) == n,
          "plan_installation: dependency cycle");

  // Forward pass: earliest start/finish.
  std::vector<Seconds> earliest_start(static_cast<std::size_t>(n), 0.0);
  std::vector<Seconds> earliest_finish(static_cast<std::size_t>(n), 0.0);
  for (int task : order) {
    Seconds start = 0.0;
    for (int dep : tasks[static_cast<std::size_t>(task)].depends_on)
      start = std::max(start, earliest_finish[static_cast<std::size_t>(dep)]);
    earliest_start[static_cast<std::size_t>(task)] = start;
    earliest_finish[static_cast<std::size_t>(task)] =
        start + tasks[static_cast<std::size_t>(task)].duration;
  }
  const Seconds makespan =
      *std::max_element(earliest_finish.begin(), earliest_finish.end());

  // Backward pass: latest finish -> slack.
  std::vector<Seconds> latest_finish(static_cast<std::size_t>(n), makespan);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int task = *it;
    Seconds latest = makespan;
    for (int dependent : dependents[static_cast<std::size_t>(task)]) {
      latest = std::min(
          latest, latest_finish[static_cast<std::size_t>(dependent)] -
                      tasks[static_cast<std::size_t>(dependent)].duration);
    }
    latest_finish[static_cast<std::size_t>(task)] = latest;
  }

  InstallationPlan plan;
  plan.makespan = makespan;
  for (int i = 0; i < n; ++i) {
    ScheduledTask scheduled;
    scheduled.index = i;
    scheduled.name = tasks[static_cast<std::size_t>(i)].name;
    scheduled.earliest_start = earliest_start[static_cast<std::size_t>(i)];
    scheduled.earliest_finish = earliest_finish[static_cast<std::size_t>(i)];
    scheduled.slack = latest_finish[static_cast<std::size_t>(i)] -
                      earliest_finish[static_cast<std::size_t>(i)];
    scheduled.on_critical_path = scheduled.slack < 1e-9;
    plan.tasks.push_back(std::move(scheduled));
    if (tasks[static_cast<std::size_t>(i)].needs_vendor_crew)
      plan.vendor_crew_days += tasks[static_cast<std::size_t>(i)].duration;
  }

  // Critical path in start order.
  std::vector<const ScheduledTask*> critical;
  for (const auto& task : plan.tasks)
    if (task.on_critical_path) critical.push_back(&task);
  std::sort(critical.begin(), critical.end(),
            [](const ScheduledTask* a, const ScheduledTask* b) {
              return a->earliest_start < b->earliest_start;
            });
  for (const auto* task : critical) plan.critical_path.push_back(task->name);
  return plan;
}

std::vector<InstallationTask> reference_installation_tasks() {
  // Indices are load-bearing (depends_on refers to them).
  return {
      /*0*/ {"site preparation (power, water, network drops)", days(3.0),
             {}, false},
      /*1*/ {"crate delivery through the 90 cm path", days(1.0), {0}, false},
      /*2*/ {"frame and cryostat assembly (750 kg vessel)", days(3.0), {1},
             true},
      /*3*/ {"chandelier installation and QPU mounting", days(2.0), {2},
             true},
      /*4*/ {"microwave signal-line verification (hundreds of lines)",
             days(3.0), {3}, true},
      /*5*/ {"control-electronics rack installation", days(1.0), {1}, true},
      /*6*/ {"gas handling system hookup and leak checks", days(2.0), {2},
             true},
      /*7*/ {"cabling cryostat to electronics", days(1.0), {4, 5}, true},
      /*8*/ {"vacuum pump-down", days(1.0), {4, 6}, true},
      /*9*/ {"initial cooldown to base temperature", days(3.0), {7, 8},
             false},
      /*10*/ {"first full calibration", days(1.0), {9}, true},
      /*11*/ {"GHZ acceptance benchmarks and handover", days(1.0), {10},
              true},
  };
}

}  // namespace hpcqc::facility
