#include "hpcqc/facility/power.hpp"

namespace hpcqc::facility {

const char* to_string(QcPowerState state) {
  switch (state) {
    case QcPowerState::kOff: return "off";
    case QcPowerState::kCooldown: return "cooldown";
    case QcPowerState::kSteady: return "steady";
    case QcPowerState::kMaintenance: return "maintenance";
  }
  return "?";
}

Watts QcPowerModel::draw(QcPowerState state) const {
  switch (state) {
    case QcPowerState::kOff: return controller;
    case QcPowerState::kCooldown:
      return controller + electronics + cryogenics_cooldown;
    case QcPowerState::kSteady:
      return controller + electronics + cryogenics_steady;
    case QcPowerState::kMaintenance: return controller + electronics;
  }
  return 0.0;
}

Watts QcPowerModel::heat_to_air(QcPowerState state) const {
  switch (state) {
    case QcPowerState::kOff: return controller;
    case QcPowerState::kCooldown:
    case QcPowerState::kSteady:
    case QcPowerState::kMaintenance: return controller + electronics;
  }
  return 0.0;
}

Watts QcPowerModel::heat_to_water(QcPowerState state) const {
  return draw(state) - heat_to_air(state);
}

std::vector<PowerComparisonRow> power_comparison(
    const QcPowerModel& qc, const CrayEx4000Reference& cray) {
  return {
      {"20-qubit QC", "cooldown (peak)",
       to_kilowatts(qc.draw(QcPowerState::kCooldown))},
      {"20-qubit QC", "steady operation",
       to_kilowatts(qc.draw(QcPowerState::kSteady))},
      {"Cray EX4000 cabinet", "standard configuration",
       to_kilowatts(cray.real_power())},
      {"Cray EX4000 cabinet", "cooling capacity (high density)",
       to_kilowatts(cray.cooling_capacity_per_cabinet)},
  };
}

}  // namespace hpcqc::facility
