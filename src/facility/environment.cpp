#include "hpcqc/facility/environment.hpp"

#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::facility {

namespace {

/// Inverse-distance amplitude falloff with a floor to avoid singularities.
double falloff(double reference_amplitude, double distance_m,
               double exponent = 1.0) {
  if (distance_m <= 0.0) return 0.0;  // source absent
  return reference_amplitude / std::pow(std::max(distance_m, 1.0), exponent);
}

Waveform make_waveform(Seconds duration, double sample_rate_hz) {
  Waveform wave;
  wave.sample_rate_hz = sample_rate_hz;
  wave.samples.assign(
      static_cast<std::size_t>(duration * sample_rate_hz), 0.0);
  return wave;
}

}  // namespace

SiteEnvironment::SiteEnvironment(SiteDescription site)
    : site_(std::move(site)) {
  expects(!site_.name.empty(), "SiteEnvironment: site needs a name");
}

std::array<Waveform, 3> SiteEnvironment::magnetic_field(
    Seconds duration, double sample_rate_hz, Rng& rng) const {
  std::array<Waveform, 3> axes{make_waveform(duration, sample_rate_hz),
                               make_waveform(duration, sample_rate_hz),
                               make_waveform(duration, sample_rate_hz)};

  // Geomagnetic background (Munich-ish): ~48 µT total, mostly vertical.
  axes[0].add_dc(microtesla(20.0));
  axes[1].add_dc(microtesla(2.0));
  axes[2].add_dc(microtesla(44.0));

  // Magnetized steel mass (elevator counterweight / transformer core) adds
  // a static offset, dominated by the closest heavy source.
  const double steel_dc =
      falloff(microtesla(400.0), site_.elevator_distance_m, 1.5) +
      falloff(microtesla(900.0), site_.transformer_distance_m, 1.5);
  axes[2].add_dc(steel_dc);

  for (int axis = 0; axis < 3; ++axis) {
    auto& wave = axes[static_cast<std::size_t>(axis)];
    const double axis_gain = axis == 2 ? 1.0 : 0.55;

    // 50 Hz mains + harmonics from building wiring and transformers.
    const double mains = microtesla(0.05) +
                         falloff(microtesla(25.0), site_.transformer_distance_m);
    wave.add_sinusoid(axis_gain * mains, 50.0, rng.uniform(0.0, 6.28));
    wave.add_sinusoid(axis_gain * mains * 0.3, 150.0, rng.uniform(0.0, 6.28));

    // Fluorescent fixtures: magnetic ballast stray field at 100 Hz,
    // ~0.8 µT at 1 m falling off with the square of distance — the origin
    // of the >= 2 m placement rule.
    const double fluorescent =
        falloff(microtesla(0.8), site_.fluorescent_light_distance_m, 2.0);
    wave.add_sinusoid(axis_gain * fluorescent, 100.0, rng.uniform(0.0, 6.28));

    // DC-traction tram/subway supply ripple: strong low-frequency field,
    // 16.7 Hz and 33.3 Hz content, ~30 µT·m/d.
    const double traction =
        falloff(microtesla(30.0), site_.tram_distance_m) +
        falloff(microtesla(45.0), site_.subway_distance_m);
    wave.add_sinusoid(axis_gain * traction, 16.7, rng.uniform(0.0, 6.28));
    wave.add_sinusoid(axis_gain * traction * 0.5, 33.3,
                      rng.uniform(0.0, 6.28));

    // Sensor noise floor.
    wave.add_white_noise(microtesla(0.01), rng);
  }
  return axes;
}

Waveform SiteEnvironment::floor_vibration(Seconds duration,
                                          double sample_rate_hz,
                                          Rng& rng) const {
  Waveform wave = make_waveform(duration, sample_rate_hz);

  // Ambient micro-seismic / building background: ~20 µm/s broadband.
  wave.add_white_noise(micrometres_per_second(20.0), rng);

  // HVAC chiller: tonal 50 Hz (plus 25 Hz subharmonic) structure-borne
  // vibration, ~2000 µm/s·m/d.
  const double chiller = falloff(micrometres_per_second(2000.0),
                                 site_.chiller_distance_m);
  wave.add_sinusoid(chiller, 50.0);
  wave.add_sinusoid(0.4 * chiller, 25.0);

  // Highway: continuous broadband rumble 4-20 Hz.
  const double highway =
      falloff(micrometres_per_second(9000.0), site_.highway_distance_m);
  wave.add_sinusoid(highway * 0.5, 4.0, rng.uniform(0.0, 6.28));
  wave.add_sinusoid(highway * 0.35, 8.0, rng.uniform(0.0, 6.28));
  wave.add_sinusoid(highway * 0.25, 16.0, rng.uniform(0.0, 6.28));

  // Tram / subway pass-bys: decaying bursts in the 10-40 Hz band every few
  // minutes, ~20 000 µm/s·m/d at the peak.
  const auto add_passbys = [&](double distance, double reference,
                               Seconds period) {
    const double amplitude = falloff(reference, distance);
    if (amplitude <= 0.0) return;
    for (Seconds t = rng.uniform(0.0, period); t < duration;
         t += period * rng.uniform(0.7, 1.3)) {
      wave.add_burst(amplitude * rng.uniform(0.6, 1.4),
                     rng.uniform(10.0, 40.0), t, seconds(4.0));
    }
  };
  add_passbys(site_.tram_distance_m, micrometres_per_second(20000.0),
              minutes(4.0));
  add_passbys(site_.subway_distance_m, micrometres_per_second(30000.0),
              minutes(3.0));

  return wave;
}

Waveform SiteEnvironment::sound_pressure(Seconds duration,
                                         double sample_rate_hz,
                                         Rng& rng) const {
  Waveform wave = make_waveform(duration, sample_rate_hz);

  // Quiet machine-room background: ~52 dBA broadband.
  wave.add_white_noise(db_spl_to_pascal(52.0), rng);

  // Chiller tonal noise: 120 Hz hum + fan broadband; ~95 dB at 1 m.
  const double chiller_pa =
      falloff(db_spl_to_pascal(95.0), site_.chiller_distance_m);
  wave.add_sinusoid(chiller_pa * std::sqrt(2.0), 120.0);
  wave.add_white_noise(chiller_pa * 0.5, rng);

  // The infamous concert: broadband 115 dB at 1 m with heavy 60-250 Hz
  // content. A-weighting forgives some of the low end but not enough at
  // short range.
  const double concert_pa =
      falloff(db_spl_to_pascal(115.0), site_.concert_distance_m);
  if (concert_pa > 0.0) {
    wave.add_white_noise(concert_pa * 0.6, rng);
    wave.add_sinusoid(concert_pa * std::sqrt(2.0) * 0.5, 82.0);
    wave.add_sinusoid(concert_pa * std::sqrt(2.0) * 0.4, 164.0);
    wave.add_sinusoid(concert_pa * std::sqrt(2.0) * 0.35, 440.0);
    wave.add_sinusoid(concert_pa * std::sqrt(2.0) * 0.3, 1200.0);
  }
  return wave;
}

Waveform SiteEnvironment::temperature(Seconds duration, Rng& rng) const {
  Waveform wave;
  wave.sample_rate_hz = 1.0 / 60.0;  // one sample per minute
  wave.samples.assign(static_cast<std::size_t>(duration / 60.0), 0.0);
  wave.add_dc(site_.hvac_setpoint_c);
  // Diurnal swing at the HVAC control band plus controller hunting.
  wave.add_sinusoid(site_.hvac_control_band_c, 1.0 / days(1.0),
                    rng.uniform(0.0, 6.28));
  wave.add_sinusoid(0.15 * site_.hvac_control_band_c, 1.0 / hours(1.0),
                    rng.uniform(0.0, 6.28));
  wave.add_white_noise(0.05, rng);
  return wave;
}

Waveform SiteEnvironment::humidity(Seconds duration, Rng& rng) const {
  Waveform wave;
  wave.sample_rate_hz = 1.0 / 60.0;
  wave.samples.assign(static_cast<std::size_t>(duration / 60.0), 0.0);
  wave.add_dc(site_.humidity_mean_pct);
  wave.add_sinusoid(site_.humidity_swing_pct, 1.0 / days(1.0),
                    rng.uniform(0.0, 6.28));
  wave.add_white_noise(0.5, rng);
  return wave;
}

std::vector<SiteDescription> standard_candidate_sites() {
  SiteDescription annex;
  annex.name = "computer-room annex";
  annex.chiller_distance_m = 40.0;
  annex.cellular_mast_distance_m = 600.0;
  annex.fluorescent_light_distance_m = 6.0;
  annex.hvac_control_band_c = 0.35;
  annex.delivery_path_widths_cm = {140.0, 120.0, 105.0, 95.0};

  SiteDescription tram_side;
  tram_side.name = "street-side lab (tram line)";
  tram_side.tram_distance_m = 12.0;
  tram_side.highway_distance_m = 60.0;
  tram_side.chiller_distance_m = 25.0;
  tram_side.cellular_mast_distance_m = 80.0;
  tram_side.fluorescent_light_distance_m = 4.0;
  tram_side.hvac_control_band_c = 0.6;
  tram_side.delivery_path_widths_cm = {130.0, 110.0, 100.0};

  SiteDescription basement;
  basement.name = "basement workshop";
  basement.chiller_distance_m = 6.0;
  basement.elevator_distance_m = 4.0;
  basement.transformer_distance_m = 8.0;
  basement.fluorescent_light_distance_m = 0.8;
  basement.hvac_control_band_c = 1.6;
  basement.humidity_mean_pct = 58.0;
  basement.humidity_swing_pct = 12.0;
  basement.delivery_path_widths_cm = {120.0, 85.0, 100.0};

  return {annex, tram_side, basement};
}

}  // namespace hpcqc::facility
