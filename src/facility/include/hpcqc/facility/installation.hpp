#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::facility {

/// One task of the on-site installation: quantum computers "are often
/// assembled on site ... The multi-day (or multi-week) process of assembly
/// requires bringing components in large wooden crates ... testing hundreds
/// of factory connected microwave signal lines and ultimately assembling
/// everything within a production environment" (§2.5).
struct InstallationTask {
  std::string name;
  Seconds duration = days(1.0);
  /// Indices of tasks that must finish first.
  std::vector<int> depends_on;
  /// Specialist crew required (site staff cannot substitute).
  bool needs_vendor_crew = true;
};

/// Scheduled view of one task after planning.
struct ScheduledTask {
  int index = 0;
  std::string name;
  Seconds earliest_start = 0.0;
  Seconds earliest_finish = 0.0;
  Seconds slack = 0.0;
  bool on_critical_path = false;
};

/// Outcome of planning an installation.
struct InstallationPlan {
  std::vector<ScheduledTask> tasks;
  Seconds makespan = 0.0;
  /// Task names along the critical path, in order.
  std::vector<std::string> critical_path;
  Seconds vendor_crew_days = 0.0;

  void print(std::ostream& os) const;
};

/// Plans an installation by forward/backward pass over the dependency DAG
/// (critical-path method). Throws on cycles or bad dependency indices.
InstallationPlan plan_installation(const std::vector<InstallationTask>& tasks);

/// The reference task list of the 20-qubit system's installation, matching
/// the §2.5 narrative: crate logistics through a 90 cm path, cryostat
/// assembly (the 750 kg vessel), signal-line verification (hundreds of
/// lines), gas-handling hookup, cooldown (2-5 days, a calendar item!) and
/// commissioning with first calibration + GHZ acceptance.
std::vector<InstallationTask> reference_installation_tasks();

}  // namespace hpcqc::facility
