#pragma once

#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::facility {

/// Power-relevant operating state of the quantum computer.
enum class QcPowerState {
  kOff,          ///< controller only
  kCooldown,     ///< cryostat cooling to base — the peak-draw phase
  kSteady,       ///< operating at 10 mK
  kMaintenance,  ///< pumps idle, electronics on
};

const char* to_string(QcPowerState state);

/// Power model of the 20-qubit system (§2.2): control electronics + gas
/// handling + compressor, with a 30 kW peak during cooldown. Heat leaves
/// through two paths: room air (electronics racks have no liquid cooling)
/// and the cooling-water loop (pulse-tube compressor, turbo pumps).
struct QcPowerModel {
  Watts controller = kilowatts(1.5);
  Watts electronics = kilowatts(6.0);
  Watts cryogenics_steady = kilowatts(9.0);
  Watts cryogenics_cooldown = kilowatts(22.5);  ///< peak: total hits 30 kW

  Watts draw(QcPowerState state) const;
  /// Fraction of the draw rejected into room air (electronics share).
  Watts heat_to_air(QcPowerState state) const;
  /// Fraction rejected into the cooling-water loop.
  Watts heat_to_water(QcPowerState state) const;
};

/// Reference classical-node numbers from the paper's comparison: a Cray
/// EX4000 cabinet draws up to 141 kVA (~140 kW real) and its cooling
/// infrastructure supports 1.2 MW across four cabinets (~300 kW/cabinet in
/// high-density scenarios).
struct CrayEx4000Reference {
  double apparent_power_kva = 141.0;
  double power_factor = 0.99;
  Watts cooling_capacity_per_cabinet = kilowatts(300.0);

  Watts real_power() const { return kilowatts(apparent_power_kva * power_factor); }
};

/// One row of the §2.2 comparison table.
struct PowerComparisonRow {
  std::string system;
  std::string phase;
  double power_kw = 0.0;
};

/// The comparison the paper draws: the QC at its phases vs. a Cray EX4000
/// cabinet, demonstrating that "existing HPC centers will have sufficient
/// electrical power capacity".
std::vector<PowerComparisonRow> power_comparison(const QcPowerModel& qc,
                                                 const CrayEx4000Reference& cray);

}  // namespace hpcqc::facility
