#pragma once

#include "hpcqc/common/units.hpp"

namespace hpcqc::facility {

/// Facility cooling-water loop feeding the cryogenic compressor and turbo
/// pumps. The cryostat manufacturer requires supply water between 15 and
/// 25 °C (§2.3) — tighter than the up-to-45 °C many HPC racks accept —
/// and an over-temperature excursion trips the cryo pumps (§3.5).
/// Optionally a redundant chiller takes over after a failover delay
/// (Lesson 3: redundant cooling infrastructure is essential).
class CoolingLoop {
public:
  struct Params {
    double setpoint_c = 19.0;
    double supply_min_c = 15.0;
    double supply_max_c = 25.0;
    /// Thermal response of the loop toward its driver's target.
    Seconds loop_tau = minutes(12.0);
    /// Where the water drifts with no chiller running (machine-room heat).
    double unchilled_equilibrium_c = 38.0;
    /// How fast an unchilled loop heats (°C rise dominated by loop_tau_warm).
    Seconds loop_tau_warm = minutes(35.0);
    bool redundant = false;
    Seconds failover_delay = seconds(90.0);
  };

  CoolingLoop();
  explicit CoolingLoop(Params params);

  const Params& params() const { return params_; }

  double supply_temperature_c() const { return supply_c_; }
  bool primary_chiller_ok() const { return primary_ok_; }
  bool backup_engaged() const { return backup_engaged_; }

  /// True while water is inside the manufacturer window.
  bool in_spec() const;
  /// True when the supply exceeds the trip limit for the cryo pumps.
  bool over_temperature() const { return supply_c_ > params_.supply_max_c; }

  void fail_primary_chiller();
  void repair_primary_chiller();

  void step(Seconds dt);

  /// Analytic time from setpoint to the trip limit with no chiller at all —
  /// the grace window before the gas handling system trips.
  Seconds time_to_trip_from_setpoint() const;

private:
  bool chilling() const;

  Params params_;
  double supply_c_;
  bool primary_ok_ = true;
  bool backup_engaged_ = false;
  Seconds since_primary_failure_ = 0.0;
};

/// Uninterruptible power supply carrying the quantum computer through grid
/// events. Battery capacity is sized for minutes of ride-through: long
/// enough for a generator start or an orderly ramp-down, not for operation.
class Ups {
public:
  struct Params {
    double battery_kwh = 10.0;
    double recharge_kw = 5.0;
    /// Batteries age; the §3.4 preventive maintenance replaces them.
    Seconds battery_service_life = days(4.0 * 365.0);
  };

  Ups();
  explicit Ups(Params params);

  bool on_battery() const { return !mains_ok_; }
  bool output_ok() const { return mains_ok_ || charge_kwh_ > 0.0; }
  double charge_fraction() const;
  /// Remaining ride-through at the given load.
  Seconds runtime_remaining(Watts load) const;
  /// Battery health in [0,1], declining with age.
  double battery_health() const;

  void set_mains(bool ok) { mains_ok_ = ok; }
  void replace_batteries();

  /// Advances charge/discharge at the given load.
  void step(Seconds dt, Watts load);

private:
  Params params_;
  bool mains_ok_ = true;
  double charge_kwh_;
  Seconds battery_age_ = 0.0;
};

}  // namespace hpcqc::facility
