#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/facility/environment.hpp"

namespace hpcqc::facility {

/// The six measurement rows of the paper's Table 1.
enum class MeasurementKind {
  kDcMagneticField,
  kAcMagneticField,
  kFloorVibration,
  kSoundPressure,
  kTemperature,
  kHumidity,
};

const char* to_string(MeasurementKind kind);

/// Acceptance limits — defaults are exactly the Table 1 criteria.
struct AcceptanceLimits {
  Tesla dc_magnetic_max = microtesla(100.0);          ///< per axis
  Tesla ac_magnetic_pk_pk_max = microtesla(1.0);      ///< per axis, peak-to-peak
  double ac_magnetic_band_lo_hz = 5.0;
  double ac_magnetic_band_hi_hz = 1000.0;
  MetresPerSecond vibration_rms_max = micrometres_per_second(400.0);
  double vibration_band_lo_hz = 1.0;
  double vibration_band_hi_hz = 200.0;
  double sound_dba_max = 80.0;
  double sound_band_lo_hz = 20.0;
  double sound_band_hi_hz = 20e3;
  double temperature_delta_max_c = 1.0;  ///< ± around set point
  Seconds temperature_window = hours(12.0);
  double temperature_setpoint_min_c = 20.0;
  double temperature_setpoint_max_c = 25.0;
  double humidity_min_pct = 25.0;
  double humidity_max_pct = 60.0;
};

/// Measurement durations. The paper requires >= 25 h for temperature and
/// humidity "to capture a full cycle of typical building conditions".
struct SurveyDurations {
  Seconds magnetic = seconds(60.0);
  double magnetic_sample_rate_hz = 4096.0;
  Seconds vibration = minutes(20.0);
  double vibration_sample_rate_hz = 1024.0;
  Seconds sound = seconds(30.0);
  double sound_sample_rate_hz = 44100.0;
  Seconds climate = hours(25.0);
};

/// One evaluated row of the acceptance table.
struct MeasurementResult {
  MeasurementKind kind = MeasurementKind::kDcMagneticField;
  double measured = 0.0;        ///< worst-case value in `unit`
  std::string unit;
  std::string requirement;      ///< human-readable limit (Table 1 phrasing)
  bool pass = false;
};

/// Full outcome of surveying one candidate site, including the
/// non-instrumented checks (delivery path >= 90 cm, floor load
/// >= 1000 kg/m², mast >= 100 m, fluorescent lighting >= 2 m).
struct SurveyReport {
  std::string site_name;
  std::vector<MeasurementResult> measurements;
  double min_delivery_width_cm = 0.0;
  bool delivery_path_ok = false;
  double floor_capacity_kg_m2 = 0.0;
  bool floor_ok = false;
  bool mast_distance_ok = false;
  bool lighting_distance_ok = false;

  bool environment_ok() const;
  bool accepted() const;
  void print(std::ostream& os) const;
};

/// Runs the §2.1 site survey against one candidate site: generates the
/// sensor series, applies the Table 1 spectrum analysis and limits, and
/// evaluates the logistics rules.
class SiteSurvey {
public:
  explicit SiteSurvey(AcceptanceLimits limits = {}, SurveyDurations durations = {});

  const AcceptanceLimits& limits() const { return limits_; }

  SurveyReport run(const SiteDescription& site, Rng& rng) const;

  /// Picks the first accepted site, in the given order; -1 if none passes.
  static int select_site(const std::vector<SurveyReport>& reports);

private:
  AcceptanceLimits limits_;
  SurveyDurations durations_;
};

/// Largest half-range (max - min)/2 over any sliding window of the given
/// length — the "ΔT < ±1 °C within 12 hours" statistic.
double worst_window_half_range(const Waveform& series, Seconds window);

}  // namespace hpcqc::facility
