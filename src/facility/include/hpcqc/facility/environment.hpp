#pragma once

#include <string>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/facility/signal.hpp"

namespace hpcqc::facility {

/// Description of one candidate room for the quantum computer, carrying the
/// disturbance sources the paper's site-survey experience calls out: trams,
/// subways, highway traffic, air-conditioning chillers, cellular masts,
/// fluorescent lighting — and Finnish death metal played at high volume.
/// Distances <= 0 mean "source not present".
struct SiteDescription {
  std::string name;

  // --- Vibration / acoustic sources ---------------------------------------
  double tram_distance_m = -1.0;
  double subway_distance_m = -1.0;
  double highway_distance_m = -1.0;
  double chiller_distance_m = -1.0;
  double concert_distance_m = -1.0;  ///< the death-metal scenario

  // --- Electromagnetic sources ---------------------------------------------
  double cellular_mast_distance_m = 500.0;  ///< rule of thumb: >= 100 m
  double fluorescent_light_distance_m = 5.0;  ///< rule of thumb: >= 2 m
  double elevator_distance_m = -1.0;
  double transformer_distance_m = -1.0;

  // --- Building services ----------------------------------------------------
  double hvac_setpoint_c = 22.0;
  /// Half-width of the room-temperature control band (diurnal swing).
  double hvac_control_band_c = 0.4;
  double humidity_mean_pct = 45.0;
  double humidity_swing_pct = 8.0;

  // --- Structure / logistics -------------------------------------------------
  double floor_capacity_kg_m2 = 1500.0;
  /// Widths (cm) of every constriction on the delivery path: loading dock,
  /// elevators, hallways, doorways. All must be >= 90 cm.
  std::vector<double> delivery_path_widths_cm = {120.0, 110.0, 100.0};
};

/// Synthesizes the sensor time series a survey team would record in a room,
/// with source amplitudes scaling with distance. The constants are tuned so
/// that rooms respecting the paper's rules of thumb (no tram nearby, mast
/// >= 100 m, lights >= 2 m, tight HVAC) pass Table 1 and rooms violating
/// them fail the corresponding row.
class SiteEnvironment {
public:
  explicit SiteEnvironment(SiteDescription site);

  const SiteDescription& site() const { return site_; }

  /// 3-axis DC+AC magnetic flux density in tesla, at `sample_rate_hz`.
  /// Axis 2 (z) carries the vertical geomagnetic component.
  std::array<Waveform, 3> magnetic_field(Seconds duration,
                                         double sample_rate_hz,
                                         Rng& rng) const;

  /// Floor vibration velocity (m/s), single vertical axis.
  Waveform floor_vibration(Seconds duration, double sample_rate_hz,
                           Rng& rng) const;

  /// Sound pressure (Pa) at the cryostat location.
  Waveform sound_pressure(Seconds duration, double sample_rate_hz,
                          Rng& rng) const;

  /// Room temperature (°C), sampled once per minute.
  Waveform temperature(Seconds duration, Rng& rng) const;

  /// Relative humidity (%RH), sampled once per minute.
  Waveform humidity(Seconds duration, Rng& rng) const;

private:
  SiteDescription site_;
};

/// The three candidate spaces of the case study's site-selection process:
/// a purpose-built computer-room annex (passes), a space near the tram line
/// (fails vibration + AC magnetics), and a basement workshop with poor
/// climate control and close fluorescent fixtures (fails temperature and
/// magnetics rows, plus an 85 cm doorway).
std::vector<SiteDescription> standard_candidate_sites();

}  // namespace hpcqc::facility
