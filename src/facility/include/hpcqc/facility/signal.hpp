#pragma once

#include <complex>
#include <span>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/common/units.hpp"

namespace hpcqc::facility {

/// Uniformly sampled real-valued signal (one sensor axis).
struct Waveform {
  double sample_rate_hz = 1.0;
  std::vector<double> samples;

  Seconds duration() const {
    return static_cast<double>(samples.size()) / sample_rate_hz;
  }

  /// Adds a sinusoid of given amplitude/frequency/phase in place.
  void add_sinusoid(double amplitude, double frequency_hz, double phase = 0.0);

  /// Adds white Gaussian noise of the given RMS.
  void add_white_noise(double rms, Rng& rng);

  /// Adds a constant offset (DC component).
  void add_dc(double offset);

  /// Adds an exponentially decaying burst (impulse response of a resonance)
  /// starting at `start`; models passing trams, door slams, etc.
  void add_burst(double amplitude, double frequency_hz, Seconds start,
                 Seconds decay);

  double mean() const;
  double rms() const;
  double peak_to_peak() const;
};

/// In-place iterative radix-2 FFT (decimation in time). `data.size()` must
/// be a power of two.
void fft(std::span<std::complex<double>> data);

/// Single-bin DFT via the Goertzel algorithm: amplitude of the sinusoidal
/// component at `frequency_hz` (returns the *amplitude*, i.e. |X_k| * 2/N).
double goertzel_amplitude(const Waveform& wave, double frequency_hz);

/// One-sided spectrum via Welch-style averaging of Hann-windowed segments.
/// Returned bins are spaced sample_rate / segment_size apart. Two readings
/// per bin:
///  - `amplitude`: sinusoid-equivalent amplitude (coherent-gain / S1
///    normalization) — read this for "peak-to-peak spectrum amplitude"
///    style limits;
///  - `power`: the bin's mean-square contribution (noise-power / S2
///    normalization) — sum this for band RMS. The DC bin's power is only
///    approximate under the Hann window.
struct Spectrum {
  double bin_width_hz = 0.0;
  std::vector<double> amplitude;
  std::vector<double> power;

  double frequency_of(std::size_t bin) const {
    return static_cast<double>(bin) * bin_width_hz;
  }
  /// Largest amplitude among bins within [f_lo, f_hi].
  double peak_amplitude_in_band(double f_lo, double f_hi) const;
  /// RMS of the signal content within [f_lo, f_hi].
  double band_rms(double f_lo, double f_hi) const;
};

Spectrum compute_spectrum(const Waveform& wave, std::size_t segment_size = 4096);

/// Worst (largest) band RMS over the individual segments of the waveform —
/// what a survey engineer reads off during a tram pass-by, undiluted by
/// quiet stretches. Segments are non-overlapping `segment_size` windows.
double worst_segment_band_rms(const Waveform& wave, double f_lo, double f_hi,
                              std::size_t segment_size = 4096);

/// IEC 61672 A-weighting gain (linear, not dB) at a frequency.
double a_weighting(double frequency_hz);

/// A-weighted sound pressure level in dBA integrated over [f_lo, f_hi],
/// for a waveform in pascal.
double sound_level_dba(const Waveform& pressure_pa, double f_lo = 20.0,
                       double f_hi = 20e3);

}  // namespace hpcqc::facility
