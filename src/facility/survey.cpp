#include "hpcqc/facility/survey.hpp"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "hpcqc/common/error.hpp"

namespace hpcqc::facility {

const char* to_string(MeasurementKind kind) {
  switch (kind) {
    case MeasurementKind::kDcMagneticField: return "DC magnetic field";
    case MeasurementKind::kAcMagneticField: return "AC magnetic field";
    case MeasurementKind::kFloorVibration: return "Floor vibrations";
    case MeasurementKind::kSoundPressure: return "Sound pressure";
    case MeasurementKind::kTemperature: return "Temperature";
    case MeasurementKind::kHumidity: return "Humidity";
  }
  return "?";
}

bool SurveyReport::environment_ok() const {
  return std::all_of(measurements.begin(), measurements.end(),
                     [](const MeasurementResult& m) { return m.pass; });
}

bool SurveyReport::accepted() const {
  return environment_ok() && delivery_path_ok && floor_ok &&
         mast_distance_ok && lighting_distance_ok;
}

void SurveyReport::print(std::ostream& os) const {
  os << "Site survey: " << site_name << '\n';
  for (const auto& m : measurements) {
    os << "  " << std::left << std::setw(18) << to_string(m.kind)
       << " measured " << std::setw(12)
       << (std::ostringstream{} << std::fixed << std::setprecision(3)
                                << m.measured << ' ' << m.unit)
              .str()
       << " requirement: " << std::setw(40) << m.requirement << "  ["
       << (m.pass ? "PASS" : "FAIL") << "]\n";
  }
  os << "  delivery path     min width " << min_delivery_width_cm
     << " cm (>= 90 cm)                          ["
     << (delivery_path_ok ? "PASS" : "FAIL") << "]\n";
  os << "  floor load        capacity " << floor_capacity_kg_m2
     << " kg/m2 (>= 1000 kg/m2)                 ["
     << (floor_ok ? "PASS" : "FAIL") << "]\n";
  os << "  cellular mast     " << (mast_distance_ok ? "PASS" : "FAIL")
     << " (>= 100 m)\n";
  os << "  fluorescent light " << (lighting_distance_ok ? "PASS" : "FAIL")
     << " (>= 2 m)\n";
  os << "  => site " << (accepted() ? "ACCEPTED" : "REJECTED") << '\n';
}

double worst_window_half_range(const Waveform& series, Seconds window) {
  expects(!series.samples.empty(), "worst_window_half_range: empty series");
  const auto window_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(window * series.sample_rate_hz));
  // Monotone deques for sliding-window min and max.
  std::deque<std::size_t> max_dq;
  std::deque<std::size_t> min_dq;
  double worst = 0.0;
  for (std::size_t i = 0; i < series.samples.size(); ++i) {
    while (!max_dq.empty() &&
           series.samples[max_dq.back()] <= series.samples[i])
      max_dq.pop_back();
    max_dq.push_back(i);
    while (!min_dq.empty() &&
           series.samples[min_dq.back()] >= series.samples[i])
      min_dq.pop_back();
    min_dq.push_back(i);
    if (i + 1 >= window_samples) {
      const std::size_t lo = i + 1 - window_samples;
      while (max_dq.front() < lo) max_dq.pop_front();
      while (min_dq.front() < lo) min_dq.pop_front();
      worst = std::max(worst, 0.5 * (series.samples[max_dq.front()] -
                                     series.samples[min_dq.front()]));
    }
  }
  if (series.samples.size() < window_samples) {
    // Shorter capture than the window: evaluate what we have.
    const auto [lo, hi] =
        std::minmax_element(series.samples.begin(), series.samples.end());
    worst = 0.5 * (*hi - *lo);
  }
  return worst;
}

SiteSurvey::SiteSurvey(AcceptanceLimits limits, SurveyDurations durations)
    : limits_(limits), durations_(durations) {}

SurveyReport SiteSurvey::run(const SiteDescription& site, Rng& rng) const {
  const SiteEnvironment environment(site);
  SurveyReport report;
  report.site_name = site.name;

  // --- Magnetics: one 3-axis fluxgate capture covers DC and AC rows. ------
  const auto field = environment.magnetic_field(
      durations_.magnetic, durations_.magnetic_sample_rate_hz, rng);
  double worst_dc = 0.0;
  double worst_ac_pk_pk = 0.0;
  for (const auto& axis : field) {
    worst_dc = std::max(worst_dc, std::abs(axis.mean()));
    const Spectrum spectrum = compute_spectrum(axis);
    worst_ac_pk_pk =
        std::max(worst_ac_pk_pk,
                 2.0 * spectrum.peak_amplitude_in_band(
                           limits_.ac_magnetic_band_lo_hz,
                           limits_.ac_magnetic_band_hi_hz));
  }
  report.measurements.push_back(
      {MeasurementKind::kDcMagneticField, to_microtesla(worst_dc), "uT",
       "< 100 uT for each of the axes",
       worst_dc < limits_.dc_magnetic_max});
  report.measurements.push_back(
      {MeasurementKind::kAcMagneticField, to_microtesla(worst_ac_pk_pk), "uT pk-pk",
       "< 1 uT peak-to-peak, 5 Hz - 1000 Hz",
       worst_ac_pk_pk < limits_.ac_magnetic_pk_pk_max});

  // --- Floor vibration --------------------------------------------------------
  // Vibration is evaluated on the worst analysis segment: pass-by events
  // must not be averaged away by quiet stretches of the capture.
  const Waveform vibration = environment.floor_vibration(
      durations_.vibration, durations_.vibration_sample_rate_hz, rng);
  const double vib_rms = worst_segment_band_rms(
      vibration, limits_.vibration_band_lo_hz, limits_.vibration_band_hi_hz);
  report.measurements.push_back(
      {MeasurementKind::kFloorVibration, to_micrometres_per_second(vib_rms),
       "um/s RMS", "< 400 um/s RMS, 1 Hz - 200 Hz",
       vib_rms < limits_.vibration_rms_max});

  // --- Sound pressure ----------------------------------------------------------
  const Waveform sound = environment.sound_pressure(
      durations_.sound, durations_.sound_sample_rate_hz, rng);
  const double dba =
      sound_level_dba(sound, limits_.sound_band_lo_hz, limits_.sound_band_hi_hz);
  report.measurements.push_back({MeasurementKind::kSoundPressure, dba, "dBA",
                                 "< 80 dBA, 20 Hz - 20 kHz",
                                 dba < limits_.sound_dba_max});

  // --- Temperature -------------------------------------------------------------
  const Waveform temp = environment.temperature(durations_.climate, rng);
  const double worst_delta =
      worst_window_half_range(temp, limits_.temperature_window);
  const double setpoint = temp.mean();
  const bool temp_ok = worst_delta < limits_.temperature_delta_max_c &&
                       setpoint >= limits_.temperature_setpoint_min_c &&
                       setpoint <= limits_.temperature_setpoint_max_c;
  report.measurements.push_back(
      {MeasurementKind::kTemperature, worst_delta, "degC half-range/12h",
       "dT < +-1 degC within 12 h, set point 20-25 degC", temp_ok});

  // --- Humidity ------------------------------------------------------------------
  const Waveform humidity = environment.humidity(durations_.climate, rng);
  const auto [h_lo_it, h_hi_it] = std::minmax_element(
      humidity.samples.begin(), humidity.samples.end());
  const bool humidity_ok = *h_lo_it >= limits_.humidity_min_pct &&
                           *h_hi_it <= limits_.humidity_max_pct;
  report.measurements.push_back({MeasurementKind::kHumidity, *h_hi_it, "%RH max",
                                 "25 - 60 %RH, non-condensing", humidity_ok});

  // --- Logistics rules ------------------------------------------------------------
  report.min_delivery_width_cm =
      site.delivery_path_widths_cm.empty()
          ? 0.0
          : *std::min_element(site.delivery_path_widths_cm.begin(),
                              site.delivery_path_widths_cm.end());
  report.delivery_path_ok = report.min_delivery_width_cm >= 90.0;
  report.floor_capacity_kg_m2 = site.floor_capacity_kg_m2;
  report.floor_ok = site.floor_capacity_kg_m2 >= 1000.0;
  report.mast_distance_ok = site.cellular_mast_distance_m >= 100.0;
  report.lighting_distance_ok = site.fluorescent_light_distance_m >= 2.0;
  return report;
}

int SiteSurvey::select_site(const std::vector<SurveyReport>& reports) {
  for (std::size_t i = 0; i < reports.size(); ++i)
    if (reports[i].accepted()) return static_cast<int>(i);
  return -1;
}

}  // namespace hpcqc::facility
