#include "hpcqc/facility/cooling.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::facility {

CoolingLoop::CoolingLoop() : CoolingLoop(Params{}) {}

CoolingLoop::CoolingLoop(Params params)
    : params_(params), supply_c_(params.setpoint_c) {
  expects(params_.supply_min_c < params_.supply_max_c,
          "CoolingLoop: invalid supply window");
  expects(params_.loop_tau > 0.0 && params_.loop_tau_warm > 0.0,
          "CoolingLoop: time constants must be positive");
}

bool CoolingLoop::in_spec() const {
  return supply_c_ >= params_.supply_min_c && supply_c_ <= params_.supply_max_c;
}

void CoolingLoop::fail_primary_chiller() {
  primary_ok_ = false;
  since_primary_failure_ = 0.0;
}

void CoolingLoop::repair_primary_chiller() {
  primary_ok_ = true;
  backup_engaged_ = false;
}

bool CoolingLoop::chilling() const { return primary_ok_ || backup_engaged_; }

void CoolingLoop::step(Seconds dt) {
  expects(dt >= 0.0, "CoolingLoop::step: negative interval");
  if (!primary_ok_) {
    since_primary_failure_ += dt;
    if (params_.redundant && !backup_engaged_ &&
        since_primary_failure_ >= params_.failover_delay)
      backup_engaged_ = true;
  }
  const double target =
      chilling() ? params_.setpoint_c : params_.unchilled_equilibrium_c;
  const Seconds tau = chilling() ? params_.loop_tau : params_.loop_tau_warm;
  const double alpha = 1.0 - std::exp(-dt / tau);
  supply_c_ += alpha * (target - supply_c_);
}

Seconds CoolingLoop::time_to_trip_from_setpoint() const {
  const double span = params_.unchilled_equilibrium_c - params_.setpoint_c;
  const double to_trip = params_.supply_max_c - params_.setpoint_c;
  expects(span > to_trip && to_trip > 0.0,
          "time_to_trip: equilibrium must exceed the trip limit");
  return -params_.loop_tau_warm * std::log(1.0 - to_trip / span);
}

Ups::Ups() : Ups(Params{}) {}

Ups::Ups(Params params) : params_(params), charge_kwh_(params.battery_kwh) {
  expects(params_.battery_kwh > 0.0, "Ups: battery capacity must be positive");
}

double Ups::charge_fraction() const {
  return charge_kwh_ / params_.battery_kwh;
}

Seconds Ups::runtime_remaining(Watts load) const {
  if (load <= 0.0) return days(3650.0);
  return hours(charge_kwh_ * battery_health() / to_kilowatts(load));
}

double Ups::battery_health() const {
  return std::clamp(1.0 - 0.5 * battery_age_ / params_.battery_service_life,
                    0.3, 1.0);
}

void Ups::replace_batteries() { battery_age_ = 0.0; }

void Ups::step(Seconds dt, Watts load) {
  expects(dt >= 0.0, "Ups::step: negative interval");
  battery_age_ += dt;
  if (mains_ok_) {
    charge_kwh_ = std::min(params_.battery_kwh,
                           charge_kwh_ + params_.recharge_kw * to_hours(dt));
  } else {
    charge_kwh_ = std::max(
        0.0, charge_kwh_ - to_kilowatts(load) / battery_health() * to_hours(dt));
  }
}

}  // namespace hpcqc::facility
