#include "hpcqc/facility/signal.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

#include "hpcqc/common/error.hpp"
#include "hpcqc/common/stats.hpp"

namespace hpcqc::facility {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void Waveform::add_sinusoid(double amplitude, double frequency_hz,
                            double phase) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    samples[i] += amplitude * std::sin(kTwoPi * frequency_hz * t + phase);
  }
}

void Waveform::add_white_noise(double rms_level, Rng& rng) {
  for (auto& sample : samples) sample += rms_level * rng.normal();
}

void Waveform::add_dc(double offset) {
  for (auto& sample : samples) sample += offset;
}

void Waveform::add_burst(double amplitude, double frequency_hz, Seconds start,
                         Seconds decay) {
  expects(decay > 0.0, "add_burst: decay must be positive");
  const auto start_index =
      static_cast<std::size_t>(std::max(0.0, start) * sample_rate_hz);
  for (std::size_t i = start_index; i < samples.size(); ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz - start;
    const double envelope = std::exp(-t / decay);
    if (envelope < 1e-4) break;
    samples[i] += amplitude * envelope * std::sin(kTwoPi * frequency_hz * t);
  }
}

double Waveform::mean() const { return hpcqc::mean(samples); }
double Waveform::rms() const { return hpcqc::rms(samples); }

double Waveform::peak_to_peak() const {
  if (samples.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  return *hi - *lo;
}

void fft(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  expects(n > 0 && std::has_single_bit(n), "fft: size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

double goertzel_amplitude(const Waveform& wave, double frequency_hz) {
  const std::size_t n = wave.samples.size();
  expects(n > 0, "goertzel: empty waveform");
  const double k =
      std::round(frequency_hz / wave.sample_rate_hz * static_cast<double>(n));
  const double omega = kTwoPi * k / static_cast<double>(n);
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (double x : wave.samples) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double power =
      s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
  const double magnitude = std::sqrt(std::max(0.0, power));
  return 2.0 * magnitude / static_cast<double>(n);
}

double Spectrum::peak_amplitude_in_band(double f_lo, double f_hi) const {
  double peak = 0.0;
  for (std::size_t bin = 0; bin < amplitude.size(); ++bin) {
    const double f = frequency_of(bin);
    if (f >= f_lo && f <= f_hi) peak = std::max(peak, amplitude[bin]);
  }
  return peak;
}

double Spectrum::band_rms(double f_lo, double f_hi) const {
  double total = 0.0;
  for (std::size_t bin = 0; bin < power.size(); ++bin) {
    const double f = frequency_of(bin);
    if (f >= f_lo && f <= f_hi) total += power[bin];
  }
  return std::sqrt(total);
}

Spectrum compute_spectrum(const Waveform& wave, std::size_t segment_size) {
  expects(std::has_single_bit(segment_size),
          "compute_spectrum: segment size must be a power of two");
  expects(wave.samples.size() >= segment_size,
          "compute_spectrum: waveform shorter than one segment");

  const std::size_t half = segment_size / 2;
  std::vector<double> amp_sq_acc(half + 1, 0.0);
  std::vector<double> power_acc(half + 1, 0.0);
  std::size_t segments = 0;

  // Hann window with its coherent gain (S1, amplitude normalization) and
  // noise gain (S2, power normalization).
  std::vector<double> window(segment_size);
  double s1 = 0.0;
  double s2 = 0.0;
  for (std::size_t i = 0; i < segment_size; ++i) {
    window[i] = 0.5 * (1.0 - std::cos(kTwoPi * static_cast<double>(i) /
                                      static_cast<double>(segment_size - 1)));
    s1 += window[i];
    s2 += window[i] * window[i];
  }

  std::vector<std::complex<double>> buffer(segment_size);
  for (std::size_t start = 0; start + segment_size <= wave.samples.size();
       start += half) {  // 50 % overlap
    for (std::size_t i = 0; i < segment_size; ++i)
      buffer[i] = wave.samples[start + i] * window[i];
    fft(buffer);
    for (std::size_t bin = 0; bin <= half; ++bin) {
      const double scale = (bin == 0 || bin == half) ? 1.0 : 2.0;
      const double mag_sq = std::norm(buffer[bin]);
      // Sinusoid amplitude estimate: scale * |X| / S1.
      amp_sq_acc[bin] += scale * scale * mag_sq / (s1 * s1);
      // Mean-square (band power) contribution: scale * |X|^2 / (N * S2).
      power_acc[bin] +=
          scale * mag_sq / (static_cast<double>(segment_size) * s2);
    }
    ++segments;
  }

  Spectrum spectrum;
  spectrum.bin_width_hz =
      wave.sample_rate_hz / static_cast<double>(segment_size);
  spectrum.amplitude.resize(half + 1);
  spectrum.power.resize(half + 1);
  for (std::size_t bin = 0; bin <= half; ++bin) {
    spectrum.amplitude[bin] =
        std::sqrt(amp_sq_acc[bin] / static_cast<double>(segments));
    spectrum.power[bin] = power_acc[bin] / static_cast<double>(segments);
  }
  return spectrum;
}

double worst_segment_band_rms(const Waveform& wave, double f_lo, double f_hi,
                              std::size_t segment_size) {
  expects(wave.samples.size() >= segment_size,
          "worst_segment_band_rms: waveform shorter than one segment");
  double worst = 0.0;
  Waveform segment;
  segment.sample_rate_hz = wave.sample_rate_hz;
  for (std::size_t start = 0; start + segment_size <= wave.samples.size();
       start += segment_size) {
    segment.samples.assign(wave.samples.begin() + static_cast<long>(start),
                           wave.samples.begin() +
                               static_cast<long>(start + segment_size));
    const Spectrum spectrum = compute_spectrum(segment, segment_size);
    worst = std::max(worst, spectrum.band_rms(f_lo, f_hi));
  }
  return worst;
}

double a_weighting(double frequency_hz) {
  // IEC 61672 analog A-weighting magnitude response.
  const double f2 = frequency_hz * frequency_hz;
  const double c1 = 20.598997 * 20.598997;
  const double c2 = 107.65265 * 107.65265;
  const double c3 = 737.86223 * 737.86223;
  const double c4 = 12194.217 * 12194.217;
  const double numerator = c4 * f2 * f2;
  const double denominator = (f2 + c1) * std::sqrt((f2 + c2) * (f2 + c3)) *
                             (f2 + c4);
  if (denominator == 0.0) return 0.0;
  // Normalized to unity gain at 1 kHz (the 1.9997 dB constant).
  return numerator / denominator * std::pow(10.0, 1.9997 / 20.0);
}

double sound_level_dba(const Waveform& pressure_pa, double f_lo, double f_hi) {
  const std::size_t segment = std::min<std::size_t>(
      8192, std::bit_floor(pressure_pa.samples.size()));
  const Spectrum spectrum = compute_spectrum(pressure_pa, segment);
  double power = 0.0;
  for (std::size_t bin = 1; bin < spectrum.power.size(); ++bin) {
    const double f = spectrum.frequency_of(bin);
    if (f < f_lo || f > f_hi) continue;
    const double gain = a_weighting(f);
    power += spectrum.power[bin] * gain * gain;
  }
  return pascal_to_db_spl(std::sqrt(power));
}

}  // namespace hpcqc::facility
