#include "hpcqc/verify/fuzzer.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"
#include "hpcqc/common/rng.hpp"

namespace hpcqc::verify {

using circuit::Circuit;
using circuit::Operation;
using circuit::OpKind;

namespace {

std::vector<OpKind> default_vocabulary() {
  return {OpKind::kI,   OpKind::kX,    OpKind::kY,     OpKind::kZ,
          OpKind::kH,   OpKind::kS,    OpKind::kSdg,   OpKind::kT,
          OpKind::kTdg, OpKind::kSx,   OpKind::kRx,    OpKind::kRy,
          OpKind::kRz,  OpKind::kU,    OpKind::kPrx,   OpKind::kCz,
          OpKind::kCx,  OpKind::kSwap, OpKind::kIswap, OpKind::kCphase};
}

}  // namespace

CircuitFuzzer::CircuitFuzzer(FuzzerConfig config) : config_(std::move(config)) {
  expects(config_.min_qubits >= 1 && config_.max_qubits >= config_.min_qubits,
          "CircuitFuzzer: bad qubit range");
  expects(config_.min_ops >= 0 && config_.max_ops >= config_.min_ops,
          "CircuitFuzzer: bad op range");
  expects(config_.barrier_prob >= 0.0 && config_.barrier_prob < 1.0,
          "CircuitFuzzer: barrier_prob must be in [0, 1)");
  if (config_.vocabulary.empty()) config_.vocabulary = default_vocabulary();
  for (OpKind kind : config_.vocabulary)
    expects(kind != OpKind::kBarrier && kind != OpKind::kMeasure,
            "CircuitFuzzer: vocabulary must contain gates only");
}

Circuit CircuitFuzzer::generate(std::uint64_t seed) const {
  // Decorrelate adjacent seeds (0, 1, 2, ... is the common CLI usage).
  std::uint64_t sm = seed;
  Rng rng(splitmix64(sm));

  const int num_qubits =
      config_.min_qubits +
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
          config_.max_qubits - config_.min_qubits + 1)));
  const std::size_t num_ops =
      static_cast<std::size_t>(config_.min_ops) +
      rng.uniform_index(
          static_cast<std::uint64_t>(config_.max_ops - config_.min_ops + 1));

  // On a single qubit only 1q gates are drawable.
  std::vector<OpKind> vocabulary;
  for (OpKind kind : config_.vocabulary)
    if (num_qubits >= 2 || !circuit::op_is_two_qubit(kind))
      vocabulary.push_back(kind);
  expects(!vocabulary.empty(), "CircuitFuzzer: empty effective vocabulary");

  Circuit c(num_qubits);
  for (std::size_t i = 0; i < num_ops; ++i) {
    if (rng.bernoulli(config_.barrier_prob)) {
      c.barrier();
      continue;
    }
    const OpKind kind = vocabulary[rng.uniform_index(vocabulary.size())];
    Operation op;
    op.kind = kind;
    const int q0 = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(num_qubits)));
    op.qubits.push_back(q0);
    if (circuit::op_is_two_qubit(kind)) {
      int q1 = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(num_qubits - 1)));
      if (q1 >= q0) ++q1;  // uniform over qubits != q0
      op.qubits.push_back(q1);
    }
    for (int p = 0; p < circuit::op_param_count(kind); ++p)
      op.params.push_back(rng.uniform(-2.0 * M_PI, 2.0 * M_PI));
    c.append(std::move(op));
  }
  if (config_.measure_all) c.measure();
  return c;
}

Circuit remove_op(const Circuit& c, std::size_t index) {
  expects(index < c.size(), "remove_op: index out of range");
  Circuit out(c.num_qubits());
  for (std::size_t i = 0; i < c.size(); ++i)
    if (i != index) out.append(c.ops()[i]);
  return out;
}

Circuit remove_qubit(const Circuit& c, int q) {
  expects(c.num_qubits() >= 2, "remove_qubit: need at least two qubits");
  expects(q >= 0 && q < c.num_qubits(), "remove_qubit: qubit out of range");
  Circuit out(c.num_qubits() - 1);
  for (const auto& op : c.ops()) {
    if (op.kind == OpKind::kMeasure) {
      Operation measure = op;  // empty list stays measure-all
      std::erase(measure.qubits, q);
      for (int& m : measure.qubits)
        if (m > q) --m;
      out.append(std::move(measure));
      continue;
    }
    if (std::find(op.qubits.begin(), op.qubits.end(), q) != op.qubits.end())
      continue;  // gate touches the dropped qubit
    Operation mapped = op;
    for (int& m : mapped.qubits)
      if (m > q) --m;
    out.append(std::move(mapped));
  }
  return out;
}

Circuit shrink(const Circuit& failing,
               const std::function<bool(const Circuit&)>& still_fails) {
  Circuit current = failing;
  bool changed = true;
  // Each pass either strictly shrinks the circuit or terminates the loop,
  // so the iteration cap is only a safety net against a flaky predicate.
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    // Drop single ops, scanning from the back so indices stay valid.
    for (std::size_t i = current.size(); i-- > 0;) {
      if (current.ops()[i].kind == OpKind::kMeasure) continue;
      Circuit candidate = remove_op(current, i);
      if (still_fails(candidate)) {
        current = std::move(candidate);
        changed = true;
      }
    }
    // Drop whole qubits, highest first (remapping moves higher indices).
    for (int q = current.num_qubits(); q-- > 0;) {
      if (current.num_qubits() < 2) break;
      Circuit candidate = remove_qubit(current, q);
      if (still_fails(candidate)) {
        current = std::move(candidate);
        changed = true;
      }
    }
  }
  return current;
}

}  // namespace hpcqc::verify
