#include "hpcqc/verify/differential.hpp"

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/qsim/density_matrix.hpp"
#include "hpcqc/qsim/gates.hpp"

namespace hpcqc::verify {

std::vector<double> exact_noisy_distribution(
    const device::CompiledProgram& program,
    const qsim::ReadoutError& dense_readout) {
  const int n = program.dense_qubits();
  expects(n <= 10, "exact_noisy_distribution: capped at 10 dense qubits");
  expects(dense_readout.num_qubits() == n,
          "exact_noisy_distribution: readout must index dense qubits");

  qsim::DensityMatrix rho(n);
  for (const auto& op : program.ops()) {
    switch (op.kind) {
      case device::CompiledOp::Kind::kFused1q:
        rho.apply_1q(op.m2, op.q0);
        if (op.error_prob > 0.0) rho.apply_depolarizing(op.q0, op.error_prob);
        break;
      case device::CompiledOp::Kind::kDense2q:
        rho.apply_2q(op.m4, op.q0, op.q1);
        if (op.error_prob > 0.0)
          rho.apply_depolarizing_2q(op.q0, op.q1, op.error_prob);
        break;
      case device::CompiledOp::Kind::kCphase:
        rho.apply_2q(qsim::gate_cphase(op.theta), op.q0, op.q1);
        if (op.error_prob > 0.0)
          rho.apply_depolarizing_2q(op.q0, op.q1, op.error_prob);
        break;
    }
  }

  // Readout confusion, applied analytically per qubit axis: the classical
  // stochastic map [[1-a, b], [a, 1-b]] on the diagonal.
  std::vector<double> probs = rho.probabilities();
  for (int q = 0; q < n; ++q) {
    const auto& confusion = dense_readout.qubit(q);
    const double a = confusion.p_read1_given0;
    const double b = confusion.p_read0_given1;
    const std::uint64_t stride = std::uint64_t{1} << q;
    for (std::uint64_t base = 0; base < probs.size(); ++base) {
      if (base & stride) continue;
      const double p0 = probs[base];
      const double p1 = probs[base | stride];
      probs[base] = (1.0 - a) * p0 + b * p1;
      probs[base | stride] = a * p0 + (1.0 - b) * p1;
    }
  }

  // Marginalize onto the measured bits, in compaction order.
  const auto& measured = program.dense_measured();
  std::vector<double> marginal(std::size_t{1} << measured.size(), 0.0);
  for (std::uint64_t full = 0; full < probs.size(); ++full)
    marginal[circuit::compact_outcome(full, measured)] += probs[full];
  return marginal;
}

qsim::ReadoutError dense_readout_for(const device::DeviceModel& device,
                                     const device::CompiledProgram& program) {
  const qsim::ReadoutError full = device.readout_error();
  std::vector<qsim::ReadoutConfusion> dense;
  dense.reserve(program.active_qubits().size());
  for (int q : program.active_qubits()) dense.push_back(full.qubit(q));
  return qsim::ReadoutError(std::move(dense));
}

DifferentialReport differential_check(device::DeviceModel& device,
                                      const circuit::Circuit& circuit,
                                      std::size_t shots, Rng& rng,
                                      double alpha, double delta) {
  const device::CompiledProgram program(circuit, device.topology(),
                                        device.calibration());
  DifferentialReport report;
  report.exact = exact_noisy_distribution(program,
                                          dense_readout_for(device, program));
  const auto result = device.execute(circuit, shots, rng,
                                     device::ExecutionMode::kTrajectory);
  report.chi_squared = chi_squared_test(result.counts, report.exact, alpha);
  report.tvd = check_tvd(result.counts, report.exact, delta);
  return report;
}

}  // namespace hpcqc::verify
