#include "hpcqc/verify/harness.hpp"

#include <exception>
#include <iomanip>
#include <sstream>

#include "hpcqc/circuit/text.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/mqss/service.hpp"
#include "hpcqc/mqss/template.hpp"

namespace hpcqc::verify {

mqss::CompiledProgram run_pipeline(const mqss::PassManager& pipeline,
                                   const circuit::Circuit& circuit,
                                   const qdmi::DeviceInterface& device) {
  expects(circuit.num_qubits() <= device.num_qubits(),
          "run_pipeline: circuit does not fit the device");
  mqss::CompilationUnit unit;
  unit.circuit = circuit;
  unit.dialect = mqss::Dialect::kCore;
  pipeline.run(unit, device);

  mqss::CompiledProgram program;
  program.native_circuit = std::move(unit.circuit);
  program.initial_layout = std::move(unit.layout);
  program.pass_trace = std::move(unit.trace);
  program.native_gate_count = program.native_circuit.gate_count();
  program.swap_count = unit.swaps_inserted;
  return program;
}

CompileFn standard_compile(const qdmi::DeviceInterface& device,
                           const mqss::CompilerOptions& options) {
  return [&device, options](const circuit::Circuit& circuit) {
    return mqss::compile(circuit, device, options);
  };
}

std::string Counterexample::describe() const {
  std::ostringstream os;
  os << "fuzz counterexample (replay: verify_cli --seed=0x" << std::hex
     << seed << std::dec << ")\n"
     << "  original: " << original.num_qubits() << " qubits, "
     << original.gate_count() << " gates; shrunk: " << shrunk.num_qubits()
     << " qubits, " << shrunk.gate_count() << " gates\n"
     << "  failure: "
     << (failure.detail.empty() ? "compile threw" : failure.detail) << "\n"
     << "  shrunk circuit:\n";
  std::istringstream lines(circuit::to_text(shrunk));
  for (std::string line; std::getline(lines, line);)
    os << "    " << line << "\n";
  return os.str();
}

namespace {

/// Oracle verdict for one circuit; a throwing compile is a failure whose
/// detail carries the exception text.
EquivalenceResult judge(const circuit::Circuit& circuit,
                        const CompileFn& compile, double tol,
                        FrameTolerance frame) {
  try {
    const mqss::CompiledProgram program = compile(circuit);
    return compiled_equivalent(circuit, program, frame, tol);
  } catch (const std::exception& e) {
    EquivalenceResult result;
    result.equivalent = false;
    result.max_deviation = 1.0;
    result.detail = std::string("compile threw: ") + e.what();
    return result;
  }
}

}  // namespace

FuzzReport run_equivalence_fuzz(const CircuitFuzzer& fuzzer,
                                std::uint64_t first_seed,
                                std::size_t num_seeds,
                                const CompileFn& compile, double tol,
                                FrameTolerance frame) {
  FuzzReport report;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    const circuit::Circuit circuit = fuzzer.generate(seed);
    const EquivalenceResult verdict = judge(circuit, compile, tol, frame);
    ++report.seeds_run;
    if (verdict.equivalent) continue;
    ++report.failures;
    report.failing_seeds.push_back(seed);
    if (!report.first_counterexample) {
      Counterexample example;
      example.seed = seed;
      example.original = circuit;
      example.shrunk = shrink(circuit, [&](const circuit::Circuit& c) {
        return !judge(c, compile, tol, frame).equivalent;
      });
      example.failure = judge(example.shrunk, compile, tol, frame);
      report.first_counterexample = std::move(example);
    }
  }
  return report;
}

ParametrizedCase parametrize(const circuit::Circuit& circuit) {
  ParametrizedCase result{circuit::ParametricCircuit(circuit.num_qubits()), {}};
  std::size_t next = 0;
  for (const auto& op : circuit.ops()) {
    circuit::ParametricOperation lifted;
    lifted.kind = op.kind;
    lifted.qubits = op.qubits;
    for (const double value : op.params) {
      // Zero-padded names keep parameters() (sorted) in creation order.
      std::ostringstream name;
      name << "p" << std::setw(4) << std::setfill('0') << next++;
      result.binding.emplace(name.str(), value);
      lifted.params.push_back(circuit::ParamExpr::symbol(name.str()));
    }
    result.circuit.append(std::move(lifted));
  }
  return result;
}

BindFuzzReport run_bind_equivalence_fuzz(const CircuitFuzzer& fuzzer,
                                         std::uint64_t first_seed,
                                         std::size_t num_seeds,
                                         const qdmi::DeviceInterface& device,
                                         const mqss::CompilerOptions& options,
                                         double tol) {
  BindFuzzReport report;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    const circuit::Circuit circuit = fuzzer.generate(seed);
    ++report.seeds_run;
    std::string detail;
    try {
      const ParametrizedCase lifted = parametrize(circuit);
      const mqss::CompiledTemplate tmpl =
          mqss::compile_template(lifted.circuit, device, options);
      report.slots_patched += tmpl.slots.size();

      // Binding 1: the original angles — must match a cold compile of the
      // source circuit itself.
      const EquivalenceResult at_source = compiled_equivalent(
          circuit, tmpl.bind(lifted.binding), FrameTolerance::kOutputZFrame,
          tol);
      if (!at_source.equivalent)
        detail = "bind at source angles: " + at_source.detail;

      // Binding 2: a deterministic shift of every angle — the same cached
      // structure must stay correct at a binding it was never compiled at.
      if (detail.empty() && !lifted.binding.empty()) {
        std::map<std::string, double> shifted = lifted.binding;
        double delta = 0.377;
        for (auto& [name, value] : shifted) {
          value += delta;
          delta += 0.211;
        }
        const EquivalenceResult at_shifted = compiled_equivalent(
            lifted.circuit.bind(shifted), tmpl.bind(shifted),
            FrameTolerance::kOutputZFrame, tol);
        if (!at_shifted.equivalent)
          detail = "bind at shifted angles: " + at_shifted.detail;
      }
    } catch (const std::exception& e) {
      detail = std::string("compile/bind threw: ") + e.what();
    }
    if (detail.empty()) continue;
    ++report.failures;
    report.failing_seeds.push_back(seed);
    if (report.failure_details.size() < 8)
      report.failure_details.push_back("seed " + std::to_string(seed) + ": " +
                                       detail);
  }
  return report;
}

namespace {

/// Restores the model to all-healthy on scope exit, whatever the oracle or
/// the compiler throw mid-run.
class HealthRestorer {
public:
  explicit HealthRestorer(device::DeviceModel& model) : model_(&model) {}
  ~HealthRestorer() {
    model_->set_health(device::HealthMask(model_->topology()));
  }
  HealthRestorer(const HealthRestorer&) = delete;
  HealthRestorer& operator=(const HealthRestorer&) = delete;

private:
  device::DeviceModel* model_;
};

/// Random mask with each element independently down with `down_probability`.
device::HealthMask draw_mask(const device::Topology& topology, Rng& rng,
                             double down_probability) {
  device::HealthMask mask(topology);
  for (int q = 0; q < topology.num_qubits(); ++q)
    if (rng.bernoulli(down_probability)) mask.set_qubit(q, false);
  for (int e = 0; e < topology.num_edges(); ++e)
    if (rng.bernoulli(down_probability)) mask.set_coupler(e, false);
  return mask;
}

/// QDMI view that overrides only the kOperational bits from its own mask
/// and forwards everything else — crucially *without* bumping the inner
/// device's calibration epoch. This models a telemetry sensor flipping
/// health bits underneath a compile cache: a cache keyed on epoch alone
/// would keep serving the healthy-topology program.
class MaskOverlayDevice final : public qdmi::DeviceInterface {
public:
  MaskOverlayDevice(const qdmi::DeviceInterface& inner,
                    const device::Topology& topology)
      : inner_(&inner), topology_(&topology), mask_(topology) {}

  void set_mask(device::HealthMask mask) { mask_ = std::move(mask); }

  std::string name() const override { return inner_->name(); }
  int num_qubits() const override { return inner_->num_qubits(); }
  std::vector<std::pair<int, int>> coupling_map() const override {
    return inner_->coupling_map();
  }
  std::vector<std::string> native_gates() const override {
    return inner_->native_gates();
  }
  double qubit_property(qdmi::QubitProperty prop, int qubit) const override {
    if (prop == qdmi::QubitProperty::kOperational)
      return mask_.qubit_up(qubit) ? 1.0 : 0.0;
    return inner_->qubit_property(prop, qubit);
  }
  double coupler_property(qdmi::CouplerProperty prop, int a,
                          int b) const override {
    if (prop == qdmi::CouplerProperty::kOperational)
      return mask_.coupler_usable(*topology_, topology_->edge_index(a, b))
                 ? 1.0
                 : 0.0;
    return inner_->coupler_property(prop, a, b);
  }
  double device_property(qdmi::DeviceProperty prop) const override {
    return inner_->device_property(prop);
  }
  qdmi::DeviceStatus status() const override { return inner_->status(); }

private:
  const qdmi::DeviceInterface* inner_;
  const device::Topology* topology_;
  device::HealthMask mask_;
};

std::size_t masked_element_count(const device::Topology& topology,
                                 const device::HealthMask& mask) {
  std::size_t down = 0;
  for (int q = 0; q < topology.num_qubits(); ++q)
    if (!mask.qubit_up(q)) ++down;
  for (int e = 0; e < topology.num_edges(); ++e)
    if (!mask.coupler_up(e)) ++down;
  return down;
}

/// The degraded-serving oracle: compile must succeed, stay on the healthy
/// subgraph, and preserve the unitary. Ordered so the mask-legality checks
/// run first — an illegal-but-equivalent compilation is still a bug.
EquivalenceResult masked_judge(const circuit::Circuit& circuit,
                               const qdmi::DeviceInterface& device,
                               const mqss::CompilerOptions& options,
                               const device::Topology& topology,
                               const device::HealthMask& mask, double tol) {
  const auto fail = [](std::string detail) {
    EquivalenceResult result;
    result.equivalent = false;
    result.max_deviation = 1.0;
    result.detail = std::move(detail);
    return result;
  };
  try {
    const mqss::CompiledProgram program =
        mqss::compile(circuit, device, options);
    for (const int q : program.initial_layout)
      if (!mask.qubit_up(q))
        return fail("initial layout places a virtual qubit on masked "
                    "physical qubit " +
                    std::to_string(q));
    if (!mask.circuit_legal(topology, program.native_circuit))
      return fail("compiled circuit touches a masked qubit or an unusable "
                  "coupler");
    return compiled_equivalent(circuit, program,
                               FrameTolerance::kOutputZFrame, tol);
  } catch (const std::exception& e) {
    return fail(std::string("compile threw: ") + e.what());
  }
}

}  // namespace

MaskedFuzzReport run_masked_topology_fuzz(
    const CircuitFuzzer& fuzzer, std::uint64_t first_seed,
    std::size_t num_seeds, device::DeviceModel& model,
    const qdmi::DeviceInterface& device, const mqss::CompilerOptions& options,
    double down_probability, double tol) {
  expects(down_probability >= 0.0 && down_probability < 1.0,
          "run_masked_topology_fuzz: down_probability must be in [0, 1)");
  const device::Topology& topology = model.topology();
  const HealthRestorer restore(model);

  // Stale-mask regression rig: one cache-enabled service over an overlay
  // view whose health bits flip without any epoch bump. Persistent across
  // seeds so the cache accumulates entries the mask flips must invalidate.
  MaskOverlayDevice overlay(device, topology);
  Rng service_rng(first_seed ^ 0x7374616c65ULL);
  mqss::QpuService stale_service(model, overlay, service_rng, options);

  MaskedFuzzReport report;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    const circuit::Circuit circuit = fuzzer.generate(seed);

    // The mask stream is independent of the circuit stream: the same seed
    // replays the same (circuit, mask) pair. Masks whose largest healthy
    // component cannot hold the circuit are redrawn (the compiler is
    // *supposed* to refuse those — that refusal has its own directed
    // tests); after a bounded number of redraws fall back to all-healthy.
    Rng mask_rng(seed ^ 0x6d61736b6d61736bULL);
    device::HealthMask mask(topology);
    for (int attempt = 0; attempt < 64; ++attempt) {
      device::HealthMask candidate =
          draw_mask(topology, mask_rng, down_probability);
      if (static_cast<int>(candidate.largest_component(topology).size()) >=
          circuit.num_qubits()) {
        mask = std::move(candidate);
        break;
      }
      ++report.masks_redrawn;
    }
    report.masked_elements += masked_element_count(topology, mask);

    // Stale-mask check: compile warm against an all-healthy view, flip the
    // overlay's health bits (no epoch bump), compile again through the same
    // cache. The cache must miss — its key folds in the health fingerprint
    // — and the recompiled program must be legal under the new mask.
    if (!mask.all_healthy()) {
      ++report.stale_mask_checks;
      bool stale_ok = false;
      try {
        overlay.set_mask(device::HealthMask(topology));
        (void)stale_service.compile_only(circuit);
        const std::size_t misses_before = stale_service.cache_misses();
        overlay.set_mask(mask);
        const mqss::CompiledProgram remasked =
            stale_service.compile_only(circuit);
        bool layout_healthy = true;
        for (const int q : remasked.initial_layout)
          if (!mask.qubit_up(q)) layout_healthy = false;
        stale_ok = stale_service.cache_misses() > misses_before &&
                   layout_healthy &&
                   mask.circuit_legal(topology, remasked.native_circuit);
      } catch (const std::exception&) {
        stale_ok = false;
      }
      if (!stale_ok) {
        ++report.stale_mask_failures;
        ++report.failures;
        report.failing_seeds.push_back(seed);
      }
    }

    model.set_health(mask);

    const EquivalenceResult verdict =
        masked_judge(circuit, device, options, topology, mask, tol);
    ++report.seeds_run;
    if (verdict.equivalent) continue;
    ++report.failures;
    report.failing_seeds.push_back(seed);
    if (!report.first_counterexample) {
      Counterexample example;
      example.seed = seed;
      example.original = circuit;
      example.shrunk = shrink(circuit, [&](const circuit::Circuit& c) {
        return !masked_judge(c, device, options, topology, mask, tol)
                    .equivalent;
      });
      example.failure =
          masked_judge(example.shrunk, device, options, topology, mask, tol);
      report.first_counterexample = std::move(example);
    }
  }
  return report;
}

}  // namespace hpcqc::verify
