#include "hpcqc/verify/harness.hpp"

#include <exception>
#include <sstream>

#include "hpcqc/circuit/text.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/common/rng.hpp"

namespace hpcqc::verify {

mqss::CompiledProgram run_pipeline(const mqss::PassManager& pipeline,
                                   const circuit::Circuit& circuit,
                                   const qdmi::DeviceInterface& device) {
  expects(circuit.num_qubits() <= device.num_qubits(),
          "run_pipeline: circuit does not fit the device");
  mqss::CompilationUnit unit;
  unit.circuit = circuit;
  unit.dialect = mqss::Dialect::kCore;
  pipeline.run(unit, device);

  mqss::CompiledProgram program;
  program.native_circuit = std::move(unit.circuit);
  program.initial_layout = std::move(unit.layout);
  program.pass_trace = std::move(unit.trace);
  program.native_gate_count = program.native_circuit.gate_count();
  program.swap_count = unit.swaps_inserted;
  return program;
}

CompileFn standard_compile(const qdmi::DeviceInterface& device,
                           const mqss::CompilerOptions& options) {
  return [&device, options](const circuit::Circuit& circuit) {
    return mqss::compile(circuit, device, options);
  };
}

std::string Counterexample::describe() const {
  std::ostringstream os;
  os << "fuzz counterexample (replay: verify_cli --seed=0x" << std::hex
     << seed << std::dec << ")\n"
     << "  original: " << original.num_qubits() << " qubits, "
     << original.gate_count() << " gates; shrunk: " << shrunk.num_qubits()
     << " qubits, " << shrunk.gate_count() << " gates\n"
     << "  failure: "
     << (failure.detail.empty() ? "compile threw" : failure.detail) << "\n"
     << "  shrunk circuit:\n";
  std::istringstream lines(circuit::to_text(shrunk));
  for (std::string line; std::getline(lines, line);)
    os << "    " << line << "\n";
  return os.str();
}

namespace {

/// Oracle verdict for one circuit; a throwing compile is a failure whose
/// detail carries the exception text.
EquivalenceResult judge(const circuit::Circuit& circuit,
                        const CompileFn& compile, double tol,
                        FrameTolerance frame) {
  try {
    const mqss::CompiledProgram program = compile(circuit);
    return compiled_equivalent(circuit, program, frame, tol);
  } catch (const std::exception& e) {
    EquivalenceResult result;
    result.equivalent = false;
    result.max_deviation = 1.0;
    result.detail = std::string("compile threw: ") + e.what();
    return result;
  }
}

}  // namespace

FuzzReport run_equivalence_fuzz(const CircuitFuzzer& fuzzer,
                                std::uint64_t first_seed,
                                std::size_t num_seeds,
                                const CompileFn& compile, double tol,
                                FrameTolerance frame) {
  FuzzReport report;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    const circuit::Circuit circuit = fuzzer.generate(seed);
    const EquivalenceResult verdict = judge(circuit, compile, tol, frame);
    ++report.seeds_run;
    if (verdict.equivalent) continue;
    ++report.failures;
    report.failing_seeds.push_back(seed);
    if (!report.first_counterexample) {
      Counterexample example;
      example.seed = seed;
      example.original = circuit;
      example.shrunk = shrink(circuit, [&](const circuit::Circuit& c) {
        return !judge(c, compile, tol, frame).equivalent;
      });
      example.failure = judge(example.shrunk, compile, tol, frame);
      report.first_counterexample = std::move(example);
    }
  }
  return report;
}

namespace {

/// Restores the model to all-healthy on scope exit, whatever the oracle or
/// the compiler throw mid-run.
class HealthRestorer {
public:
  explicit HealthRestorer(device::DeviceModel& model) : model_(&model) {}
  ~HealthRestorer() {
    model_->set_health(device::HealthMask(model_->topology()));
  }
  HealthRestorer(const HealthRestorer&) = delete;
  HealthRestorer& operator=(const HealthRestorer&) = delete;

private:
  device::DeviceModel* model_;
};

/// Random mask with each element independently down with `down_probability`.
device::HealthMask draw_mask(const device::Topology& topology, Rng& rng,
                             double down_probability) {
  device::HealthMask mask(topology);
  for (int q = 0; q < topology.num_qubits(); ++q)
    if (rng.bernoulli(down_probability)) mask.set_qubit(q, false);
  for (int e = 0; e < topology.num_edges(); ++e)
    if (rng.bernoulli(down_probability)) mask.set_coupler(e, false);
  return mask;
}

std::size_t masked_element_count(const device::Topology& topology,
                                 const device::HealthMask& mask) {
  std::size_t down = 0;
  for (int q = 0; q < topology.num_qubits(); ++q)
    if (!mask.qubit_up(q)) ++down;
  for (int e = 0; e < topology.num_edges(); ++e)
    if (!mask.coupler_up(e)) ++down;
  return down;
}

/// The degraded-serving oracle: compile must succeed, stay on the healthy
/// subgraph, and preserve the unitary. Ordered so the mask-legality checks
/// run first — an illegal-but-equivalent compilation is still a bug.
EquivalenceResult masked_judge(const circuit::Circuit& circuit,
                               const qdmi::DeviceInterface& device,
                               const mqss::CompilerOptions& options,
                               const device::Topology& topology,
                               const device::HealthMask& mask, double tol) {
  const auto fail = [](std::string detail) {
    EquivalenceResult result;
    result.equivalent = false;
    result.max_deviation = 1.0;
    result.detail = std::move(detail);
    return result;
  };
  try {
    const mqss::CompiledProgram program =
        mqss::compile(circuit, device, options);
    for (const int q : program.initial_layout)
      if (!mask.qubit_up(q))
        return fail("initial layout places a virtual qubit on masked "
                    "physical qubit " +
                    std::to_string(q));
    if (!mask.circuit_legal(topology, program.native_circuit))
      return fail("compiled circuit touches a masked qubit or an unusable "
                  "coupler");
    return compiled_equivalent(circuit, program,
                               FrameTolerance::kOutputZFrame, tol);
  } catch (const std::exception& e) {
    return fail(std::string("compile threw: ") + e.what());
  }
}

}  // namespace

MaskedFuzzReport run_masked_topology_fuzz(
    const CircuitFuzzer& fuzzer, std::uint64_t first_seed,
    std::size_t num_seeds, device::DeviceModel& model,
    const qdmi::DeviceInterface& device, const mqss::CompilerOptions& options,
    double down_probability, double tol) {
  expects(down_probability >= 0.0 && down_probability < 1.0,
          "run_masked_topology_fuzz: down_probability must be in [0, 1)");
  const device::Topology& topology = model.topology();
  const HealthRestorer restore(model);

  MaskedFuzzReport report;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    const circuit::Circuit circuit = fuzzer.generate(seed);

    // The mask stream is independent of the circuit stream: the same seed
    // replays the same (circuit, mask) pair. Masks whose largest healthy
    // component cannot hold the circuit are redrawn (the compiler is
    // *supposed* to refuse those — that refusal has its own directed
    // tests); after a bounded number of redraws fall back to all-healthy.
    Rng mask_rng(seed ^ 0x6d61736b6d61736bULL);
    device::HealthMask mask(topology);
    for (int attempt = 0; attempt < 64; ++attempt) {
      device::HealthMask candidate =
          draw_mask(topology, mask_rng, down_probability);
      if (static_cast<int>(candidate.largest_component(topology).size()) >=
          circuit.num_qubits()) {
        mask = std::move(candidate);
        break;
      }
      ++report.masks_redrawn;
    }
    report.masked_elements += masked_element_count(topology, mask);
    model.set_health(mask);

    const EquivalenceResult verdict =
        masked_judge(circuit, device, options, topology, mask, tol);
    ++report.seeds_run;
    if (verdict.equivalent) continue;
    ++report.failures;
    report.failing_seeds.push_back(seed);
    if (!report.first_counterexample) {
      Counterexample example;
      example.seed = seed;
      example.original = circuit;
      example.shrunk = shrink(circuit, [&](const circuit::Circuit& c) {
        return !masked_judge(c, device, options, topology, mask, tol)
                    .equivalent;
      });
      example.failure =
          masked_judge(example.shrunk, device, options, topology, mask, tol);
      report.first_counterexample = std::move(example);
    }
  }
  return report;
}

}  // namespace hpcqc::verify
