#include "hpcqc/verify/harness.hpp"

#include <exception>
#include <sstream>

#include "hpcqc/circuit/text.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::verify {

mqss::CompiledProgram run_pipeline(const mqss::PassManager& pipeline,
                                   const circuit::Circuit& circuit,
                                   const qdmi::DeviceInterface& device) {
  expects(circuit.num_qubits() <= device.num_qubits(),
          "run_pipeline: circuit does not fit the device");
  mqss::CompilationUnit unit;
  unit.circuit = circuit;
  unit.dialect = mqss::Dialect::kCore;
  pipeline.run(unit, device);

  mqss::CompiledProgram program;
  program.native_circuit = std::move(unit.circuit);
  program.initial_layout = std::move(unit.layout);
  program.pass_trace = std::move(unit.trace);
  program.native_gate_count = program.native_circuit.gate_count();
  program.swap_count = unit.swaps_inserted;
  return program;
}

CompileFn standard_compile(const qdmi::DeviceInterface& device,
                           const mqss::CompilerOptions& options) {
  return [&device, options](const circuit::Circuit& circuit) {
    return mqss::compile(circuit, device, options);
  };
}

std::string Counterexample::describe() const {
  std::ostringstream os;
  os << "fuzz counterexample (replay: verify_cli --seed=0x" << std::hex
     << seed << std::dec << ")\n"
     << "  original: " << original.num_qubits() << " qubits, "
     << original.gate_count() << " gates; shrunk: " << shrunk.num_qubits()
     << " qubits, " << shrunk.gate_count() << " gates\n"
     << "  failure: "
     << (failure.detail.empty() ? "compile threw" : failure.detail) << "\n"
     << "  shrunk circuit:\n";
  std::istringstream lines(circuit::to_text(shrunk));
  for (std::string line; std::getline(lines, line);)
    os << "    " << line << "\n";
  return os.str();
}

namespace {

/// Oracle verdict for one circuit; a throwing compile is a failure whose
/// detail carries the exception text.
EquivalenceResult judge(const circuit::Circuit& circuit,
                        const CompileFn& compile, double tol,
                        FrameTolerance frame) {
  try {
    const mqss::CompiledProgram program = compile(circuit);
    return compiled_equivalent(circuit, program, frame, tol);
  } catch (const std::exception& e) {
    EquivalenceResult result;
    result.equivalent = false;
    result.max_deviation = 1.0;
    result.detail = std::string("compile threw: ") + e.what();
    return result;
  }
}

}  // namespace

FuzzReport run_equivalence_fuzz(const CircuitFuzzer& fuzzer,
                                std::uint64_t first_seed,
                                std::size_t num_seeds,
                                const CompileFn& compile, double tol,
                                FrameTolerance frame) {
  FuzzReport report;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + i;
    const circuit::Circuit circuit = fuzzer.generate(seed);
    const EquivalenceResult verdict = judge(circuit, compile, tol, frame);
    ++report.seeds_run;
    if (verdict.equivalent) continue;
    ++report.failures;
    report.failing_seeds.push_back(seed);
    if (!report.first_counterexample) {
      Counterexample example;
      example.seed = seed;
      example.original = circuit;
      example.shrunk = shrink(circuit, [&](const circuit::Circuit& c) {
        return !judge(c, compile, tol, frame).equivalent;
      });
      example.failure = judge(example.shrunk, compile, tol, frame);
      report.first_counterexample = std::move(example);
    }
  }
  return report;
}

}  // namespace hpcqc::verify
