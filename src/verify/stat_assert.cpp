#include "hpcqc/verify/stat_assert.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "hpcqc/common/error.hpp"

namespace hpcqc::verify {

namespace {

/// Lower regularized incomplete gamma P(a, x) by series expansion
/// (converges fast for x < a + 1).
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper regularized incomplete gamma Q(a, x) by Lentz continued fraction
/// (converges fast for x >= a + 1).
double gamma_q_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_q(double a, double x) {
  expects(a > 0.0 && x >= 0.0, "regularized_gamma_q: need a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_fraction(a, x);
}

double chi_squared_sf(double x, int dof) {
  expects(dof >= 1, "chi_squared_sf: need at least one degree of freedom");
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(0.5 * dof, 0.5 * x);
}

std::string ChiSquared::describe() const {
  std::ostringstream os;
  os << "chi2 = " << statistic << " (dof " << dof << "), p = " << p_value
     << (pass ? " >= " : " < ") << "alpha = " << alpha;
  return os.str();
}

ChiSquared chi_squared_test(const qsim::Counts& counts,
                            std::span<const double> expected, double alpha,
                            double min_expected) {
  expects(alpha > 0.0 && alpha < 1.0, "chi_squared_test: alpha in (0, 1)");
  const std::uint64_t total = counts.total_shots();
  expects(total > 0, "chi_squared_test: empty counts");
  expects(expected.size() == (std::size_t{1} << counts.num_qubits()),
          "chi_squared_test: expected distribution size mismatch");

  // Pool outcomes with small expectation into one tail bin so Pearson's
  // approximation holds; the tail keeps its own contribution.
  double statistic = 0.0;
  int bins = 0;
  double tail_expected = 0.0;
  std::uint64_t tail_observed = 0;
  for (std::size_t outcome = 0; outcome < expected.size(); ++outcome) {
    const double exp_count = expected[outcome] * static_cast<double>(total);
    const auto obs = counts.count_of(outcome);
    if (exp_count < min_expected) {
      tail_expected += exp_count;
      tail_observed += obs;
      continue;
    }
    const double diff = static_cast<double>(obs) - exp_count;
    statistic += diff * diff / exp_count;
    ++bins;
  }
  if (tail_expected >= min_expected) {
    const double diff = static_cast<double>(tail_observed) - tail_expected;
    statistic += diff * diff / tail_expected;
    ++bins;
  } else if (tail_observed > 0 && bins > 0) {
    // Shots landed where the exact distribution has (almost) no mass:
    // fold them in against the floored expectation rather than ignore
    // impossible outcomes entirely.
    const double floor_expected = std::max(tail_expected, 0.5);
    const double diff = static_cast<double>(tail_observed) - floor_expected;
    statistic += diff * diff / floor_expected;
    ++bins;
  }

  ChiSquared result;
  result.statistic = statistic;
  result.dof = std::max(bins - 1, 0);
  result.alpha = alpha;
  result.p_value = result.dof == 0 ? 1.0 : chi_squared_sf(statistic, result.dof);
  result.pass = result.p_value >= alpha;
  return result;
}

ChiSquared chi_squared_two_sample(const qsim::Counts& a, const qsim::Counts& b,
                                  double alpha, double min_expected) {
  expects(alpha > 0.0 && alpha < 1.0,
          "chi_squared_two_sample: alpha in (0, 1)");
  expects(a.num_qubits() == b.num_qubits(),
          "chi_squared_two_sample: outcome spaces differ");
  const double n_a = static_cast<double>(a.total_shots());
  const double n_b = static_cast<double>(b.total_shots());
  expects(n_a > 0 && n_b > 0, "chi_squared_two_sample: empty counts");

  double statistic = 0.0;
  int bins = 0;
  double tail_a = 0.0, tail_b = 0.0, tail_pooled = 0.0;
  const auto contribution = [&](double obs_a, double obs_b, double pooled) {
    // Expected split of the pooled count proportional to sample sizes.
    const double exp_a = pooled * n_a / (n_a + n_b);
    const double exp_b = pooled * n_b / (n_a + n_b);
    statistic += (obs_a - exp_a) * (obs_a - exp_a) / exp_a +
                 (obs_b - exp_b) * (obs_b - exp_b) / exp_b;
    ++bins;
  };
  const std::uint64_t dim = std::uint64_t{1} << a.num_qubits();
  for (std::uint64_t outcome = 0; outcome < dim; ++outcome) {
    const double obs_a = static_cast<double>(a.count_of(outcome));
    const double obs_b = static_cast<double>(b.count_of(outcome));
    const double pooled = obs_a + obs_b;
    if (pooled == 0.0) continue;
    const double min_exp =
        pooled * std::min(n_a, n_b) / (n_a + n_b);
    if (min_exp < min_expected) {
      tail_a += obs_a;
      tail_b += obs_b;
      tail_pooled += pooled;
      continue;
    }
    contribution(obs_a, obs_b, pooled);
  }
  if (tail_pooled > 0.0 &&
      tail_pooled * std::min(n_a, n_b) / (n_a + n_b) >= min_expected)
    contribution(tail_a, tail_b, tail_pooled);

  ChiSquared result;
  result.statistic = statistic;
  result.dof = std::max(bins - 1, 0);
  result.alpha = alpha;
  result.p_value = result.dof == 0 ? 1.0 : chi_squared_sf(statistic, result.dof);
  result.pass = result.p_value >= alpha;
  return result;
}

double tvd_bound(std::size_t shots, std::size_t num_outcomes,
                 double false_positive_rate) {
  expects(shots > 0, "tvd_bound: need at least one shot");
  expects(false_positive_rate > 0.0 && false_positive_rate < 1.0,
          "tvd_bound: false_positive_rate in (0, 1)");
  const double n = static_cast<double>(shots);
  const double k = static_cast<double>(num_outcomes);
  const double mean_bound = std::sqrt(k / (4.0 * n));
  const double tail = std::sqrt(std::log(1.0 / false_positive_rate) /
                                (2.0 * n));
  return mean_bound + tail;
}

std::string TvdCheck::describe() const {
  std::ostringstream os;
  os << "tvd = " << tvd << (pass ? " <= " : " > ") << "bound = " << bound;
  return os.str();
}

TvdCheck check_tvd(const qsim::Counts& counts, std::span<const double> exact,
                   double false_positive_rate) {
  expects(exact.size() == (std::size_t{1} << counts.num_qubits()),
          "check_tvd: exact distribution size mismatch");
  TvdCheck check;
  check.tvd = counts.total_variation_distance(exact);
  check.bound =
      tvd_bound(counts.total_shots(), exact.size(), false_positive_rate);
  check.pass = check.tvd <= check.bound;
  return check;
}

}  // namespace hpcqc::verify
