#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpcqc/circuit/parametric.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/mqss/compiler.hpp"
#include "hpcqc/qdmi/qdmi.hpp"
#include "hpcqc/verify/equivalence.hpp"
#include "hpcqc/verify/fuzzer.hpp"

namespace hpcqc::verify {

/// How a fuzz case compiles a circuit. Wrapping compilation in a callback
/// lets the harness drive custom pipelines — including deliberately broken
/// passes (mutation checks) — not just mqss::compile.
using CompileFn =
    std::function<mqss::CompiledProgram(const circuit::Circuit&)>;

/// Runs an explicit PassManager the way mqss::compile runs the standard
/// pipeline, producing the same artifact (exposed so tests can splice
/// broken or ablated passes into the pipeline).
mqss::CompiledProgram run_pipeline(const mqss::PassManager& pipeline,
                                   const circuit::Circuit& circuit,
                                   const qdmi::DeviceInterface& device);

/// A CompileFn for the standard pipeline against `device` (which must
/// outlive the returned callable).
CompileFn standard_compile(const qdmi::DeviceInterface& device,
                           const mqss::CompilerOptions& options);

/// A minimal failing input: the seed that produced it, the original
/// generated circuit, and its greedy shrink (the smallest circuit for
/// which the oracle still rejects the compilation).
struct Counterexample {
  std::uint64_t seed = 0;
  circuit::Circuit original{1};
  circuit::Circuit shrunk{1};
  EquivalenceResult failure;

  /// Replay-ready report: seed (hex), failure reason, and the shrunk
  /// circuit in the text format.
  std::string describe() const;
};

struct FuzzReport {
  std::size_t seeds_run = 0;
  std::size_t failures = 0;
  std::vector<std::uint64_t> failing_seeds;
  /// Shrunk for the first failure only (shrinking re-compiles many times).
  std::optional<Counterexample> first_counterexample;
};

/// The metamorphic oracle loop: for every seed in [first_seed, first_seed +
/// num_seeds), generates a circuit, compiles it through `compile`, and
/// checks layout-aware unitary equivalence at `tol` under `frame`. A
/// compile-time exception counts as a failure too. The first failing seed
/// is shrunk to a minimal counterexample.
FuzzReport run_equivalence_fuzz(
    const CircuitFuzzer& fuzzer, std::uint64_t first_seed,
    std::size_t num_seeds, const CompileFn& compile, double tol = 1e-7,
    FrameTolerance frame = FrameTolerance::kOutputZFrame);

/// A concrete circuit lifted into a fully-symbolic template plus the
/// binding that reproduces it: every angle becomes a distinct parameter
/// whose bound value is the original angle.
struct ParametrizedCase {
  circuit::ParametricCircuit circuit{1};
  std::map<std::string, double> binding;
};

/// Lifts `circuit` for the bind-equivalence fuzz: gate structure is kept,
/// every parameter slot is replaced with a fresh symbol (named so
/// parameters() sorts in creation order), and `binding` maps each symbol
/// back to the source angle.
ParametrizedCase parametrize(const circuit::Circuit& circuit);

struct BindFuzzReport {
  std::size_t seeds_run = 0;
  std::size_t failures = 0;
  /// Total affine parameter slots patched across all templates — a sanity
  /// gauge that the fuzz actually exercised the bind phase.
  std::size_t slots_patched = 0;
  std::vector<std::uint64_t> failing_seeds;
  /// Failure details for the first few failing seeds.
  std::vector<std::string> failure_details;
};

/// Two-phase compilation oracle loop: for every seed, generates a circuit,
/// lifts it to a fully-symbolic template (parametrize), structure-compiles
/// the template once, and checks that bind-patching reproduces a cold
/// compilation up to kOutputZFrame at two distinct bindings — the original
/// angles and a shifted vector — against the same compiled-equivalence
/// oracle the plain fuzz uses. This is the equivalence contract of
/// mqss::compile_template: one cached structure must serve every binding.
BindFuzzReport run_bind_equivalence_fuzz(const CircuitFuzzer& fuzzer,
                                         std::uint64_t first_seed,
                                         std::size_t num_seeds,
                                         const qdmi::DeviceInterface& device,
                                         const mqss::CompilerOptions& options,
                                         double tol = 1e-7);

struct MaskedFuzzReport {
  std::size_t seeds_run = 0;
  std::size_t failures = 0;
  /// Random masks rejected because their largest healthy component could
  /// not hold the generated circuit (a fresh mask is drawn each rejection).
  std::size_t masks_redrawn = 0;
  /// Total masked elements (down qubits + down couplers) across the masks
  /// actually fuzzed — a sanity gauge that masks were non-trivial.
  std::size_t masked_elements = 0;
  /// Stale-mask regression (compile-cache keying): for every non-trivial
  /// mask the harness also compiles the circuit twice through one
  /// cache-enabled QpuService against an overlay QDMI view whose
  /// kOperational bits flip from all-healthy to the drawn mask *without*
  /// any calibration-epoch bump (the telemetry-sensor failure mode). The
  /// check fails when the cache serves the stale healthy-topology program
  /// (no recompile observed) or the recompiled program is illegal under
  /// the mask.
  std::size_t stale_mask_checks = 0;
  std::size_t stale_mask_failures = 0;
  std::vector<std::uint64_t> failing_seeds;
  /// Shrunk for the first failure only, with the failing mask installed.
  std::optional<Counterexample> first_counterexample;
};

/// Degraded-serving oracle loop: for every seed, draws a random health mask
/// (each qubit / coupler down with `down_probability`, redrawn until the
/// largest healthy component fits the generated circuit), installs it on
/// `model`, compiles through the standard pipeline against `device` (which
/// must view `model`), and checks that
///   1. the initial layout only uses healthy qubits,
///   2. no compiled op touches a down qubit or an unusable coupler, and
///   3. the compiled program is still unitarily equivalent to the source.
/// A compile-time exception counts as a failure. The model is restored to
/// all-healthy before returning.
MaskedFuzzReport run_masked_topology_fuzz(
    const CircuitFuzzer& fuzzer, std::uint64_t first_seed,
    std::size_t num_seeds, device::DeviceModel& model,
    const qdmi::DeviceInterface& device, const mqss::CompilerOptions& options,
    double down_probability = 0.15, double tol = 1e-7);

}  // namespace hpcqc::verify
