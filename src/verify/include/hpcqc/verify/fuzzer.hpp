#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"

namespace hpcqc::verify {

/// Shape of the random circuits the fuzzer emits. The defaults target the
/// compiler oracle: small registers (so full unitaries stay cheap), the
/// complete frontend gate vocabulary, and a terminal measure-all so layout
/// permutations are recoverable from the compiled circuit.
struct FuzzerConfig {
  int min_qubits = 2;
  int max_qubits = 5;
  int min_ops = 1;
  int max_ops = 40;
  /// Gate kinds drawn from (barrier/measure are handled separately).
  /// Empty = every gate in the frontend vocabulary.
  std::vector<circuit::OpKind> vocabulary;
  /// Probability of an op slot becoming a barrier.
  double barrier_prob = 0.02;
  /// Append a terminal measurement of every qubit (required by the
  /// compiled-equivalence oracle, which reads the final wire permutation
  /// off the compiled measure op).
  bool measure_all = true;
};

/// Seeded random generator of core-dialect circuits. The entire circuit is
/// a pure function of (config, seed): the same `uint64_t` replays the same
/// circuit forever, which is what makes fuzz failures reportable as a
/// single number (`verify_cli --seed=0x...`).
class CircuitFuzzer {
public:
  explicit CircuitFuzzer(FuzzerConfig config = {});

  const FuzzerConfig& config() const { return config_; }

  /// Deterministic circuit for `seed`.
  circuit::Circuit generate(std::uint64_t seed) const;

private:
  FuzzerConfig config_;
};

/// Greedy shrinking: starting from a failing circuit, repeatedly drops
/// single ops and then whole qubits (remapping indices down) while
/// `still_fails` keeps returning true, until no single removal reproduces
/// the failure. The result is a locally-minimal counterexample. Terminal
/// measurements are preserved (the oracle needs them).
circuit::Circuit shrink(
    const circuit::Circuit& failing,
    const std::function<bool(const circuit::Circuit&)>& still_fails);

/// One shrink step: the circuit without op `index` (measure ops are kept by
/// shrink() itself; this is exposed for tests).
circuit::Circuit remove_op(const circuit::Circuit& c, std::size_t index);

/// One shrink step: drops qubit `q` — ops touching it vanish, higher
/// indices shift down, explicit measure lists lose the qubit. Requires at
/// least two qubits.
circuit::Circuit remove_qubit(const circuit::Circuit& c, int q);

}  // namespace hpcqc::verify
