#pragma once

#include <string>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/mqss/compiler.hpp"
#include "hpcqc/qsim/gates.hpp"

namespace hpcqc::verify {

/// Dense unitary of the circuit's gate content (barriers and measurements
/// are skipped), built column by column from basis-state evolutions.
/// Column-major: entry U|x>_y lives at index y + x * 2^n. Capped at 10
/// qubits (a 2^10 x 2^10 complex matrix is 16 MiB; beyond that the checker
/// is the wrong tool).
std::vector<qsim::Complex> circuit_unitary(const circuit::Circuit& c);

/// What residual operator the checker tolerates between the two unitaries.
enum class FrameTolerance {
  /// V = e^{i gamma} U: strict equivalence up to one global phase. Holds
  /// for individual unitary-preserving rewrites (peephole, routing with
  /// its permutation undone).
  kGlobalPhase,
  /// V = D U with D a tensor product of per-qubit diagonal phases (times a
  /// global phase). This is the full pipeline's actual contract: native
  /// decomposition tracks RZ frames virtually and never emits the final
  /// frame rotations, because they are invisible to Z-basis measurement.
  /// Any such D leaves every outcome distribution of every input state
  /// untouched; requiring D to *factorize* per qubit still pins down the
  /// virtual-Z bookkeeping far tighter than distribution tests do.
  kOutputZFrame,
};

const char* to_string(FrameTolerance frame);

struct EquivalenceResult {
  bool equivalent = false;
  /// Worst entry-wise residual against the best-fitting allowed frame.
  double max_deviation = 0.0;
  /// Probability mass the compiled circuit leaks outside the image of the
  /// layout-mapped subspace (ancilla qubits not returned to |0>).
  double leaked_norm = 0.0;
  /// Human-readable reason on failure, empty on success.
  std::string detail;

  explicit operator bool() const { return equivalent; }
};

/// Compares two circuits over the same register up to global phase.
EquivalenceResult equivalent_up_to_phase(const circuit::Circuit& a,
                                         const circuit::Circuit& b,
                                         double tol = 1e-9);

/// The compiler oracle: checks that `program` (a full-device native
/// circuit) acts on the layout-mapped input subspace exactly as `source`
/// does on its virtual register, up to `frame`. Inputs are injected at
/// `program.initial_layout` positions (ancillas |0>), and the final wire
/// permutation is read off the compiled terminal measurement — so `source`
/// must terminally measure all of its qubits in ascending order (what
/// `Circuit::measure()` produces). Ancillas must return to |0>: any leaked
/// amplitude fails the check.
EquivalenceResult compiled_equivalent(
    const circuit::Circuit& source, const mqss::CompiledProgram& program,
    FrameTolerance frame = FrameTolerance::kOutputZFrame, double tol = 1e-7);

}  // namespace hpcqc::verify
