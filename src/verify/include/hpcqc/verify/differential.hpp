#pragma once

#include <cstddef>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/compiled_program.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/qsim/readout.hpp"
#include "hpcqc/verify/stat_assert.hpp"

namespace hpcqc::verify {

/// Exact outcome distribution of a compiled device program under the full
/// noise model: every step's unitary is applied to a density matrix, each
/// step's depolarizing channel (the average of the trajectory engine's
/// stochastic Pauli) follows exactly, the per-qubit readout confusion is
/// applied analytically, and the result is marginalized onto the measured
/// bits. This is what the trajectory engine's empirical counts converge to
/// as shots -> infinity; `dense_readout` must index the program's dense
/// qubits. Capped at 10 dense qubits (the density matrix's own cap).
std::vector<double> exact_noisy_distribution(
    const device::CompiledProgram& program,
    const qsim::ReadoutError& dense_readout);

/// The per-dense-qubit readout confusion DeviceModel::execute uses for
/// `program` (the device's full-register readout restricted to the active
/// qubits).
qsim::ReadoutError dense_readout_for(const device::DeviceModel& device,
                                     const device::CompiledProgram& program);

/// Result of one trajectory-vs-density-matrix comparison.
struct DifferentialReport {
  ChiSquared chi_squared;
  TvdCheck tvd;
  std::vector<double> exact;  ///< the density-matrix side's distribution

  bool pass() const { return chi_squared.pass && tvd.pass; }
};

/// Differential oracle: executes `circuit` (full-register, topology-legal)
/// on `device` in trajectory mode with `shots` shots, evolves the identical
/// compiled program through the exact density matrix, and compares the two
/// with a chi-squared goodness-of-fit at level `alpha` plus a TVD bound at
/// false-positive rate `delta`. Both failure probabilities are explicit and
/// every input is seeded, so a failing report is a deterministic repro.
DifferentialReport differential_check(device::DeviceModel& device,
                                      const circuit::Circuit& circuit,
                                      std::size_t shots, Rng& rng,
                                      double alpha = 1e-6,
                                      double delta = 1e-6);

}  // namespace hpcqc::verify
