#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "hpcqc/qsim/counts.hpp"

namespace hpcqc::verify {

/// Upper tail of the chi-squared distribution with `dof` degrees of
/// freedom: P(X >= x). Computed via the regularized incomplete gamma
/// function Q(dof/2, x/2).
double chi_squared_sf(double x, int dof);

/// Regularized upper incomplete gamma function Q(a, x) = Gamma(a, x) /
/// Gamma(a), a > 0, x >= 0 (series / continued-fraction evaluation).
double regularized_gamma_q(double a, double x);

/// Result of a chi-squared goodness-of-fit or two-sample test. `pass` means
/// "the null hypothesis (same distribution) is NOT rejected at level
/// alpha": under the null, pass is false with probability <= alpha — that
/// is the test's explicit false-positive budget. All inputs are seeded, so
/// a failing assertion is a deterministic repro, not a flake.
struct ChiSquared {
  double statistic = 0.0;
  int dof = 0;
  double p_value = 1.0;
  double alpha = 0.0;
  bool pass = true;

  std::string describe() const;
};

/// Pearson chi-squared goodness-of-fit of `counts` against the exact
/// distribution `expected` (size 2^num_qubits). Outcomes whose expected
/// count falls below `min_expected` are pooled into one tail bin so the
/// chi-squared approximation stays valid.
ChiSquared chi_squared_test(const qsim::Counts& counts,
                            std::span<const double> expected, double alpha,
                            double min_expected = 5.0);

/// Two-sample chi-squared homogeneity test between two histograms over the
/// same outcome space (do `a` and `b` draw from the same distribution?).
ChiSquared chi_squared_two_sample(const qsim::Counts& a, const qsim::Counts& b,
                                  double alpha, double min_expected = 5.0);

/// High-probability upper bound on the total-variation distance between
/// the empirical distribution of `shots` iid draws and their true
/// distribution over `num_outcomes` support points:
///
///   E[TVD] <= sqrt(num_outcomes / (4 shots))            (Cauchy-Schwarz)
///   P(TVD >= E[TVD] + t) <= exp(-2 shots t^2)           (McDiarmid)
///
/// so with t = sqrt(ln(1/false_positive_rate) / (2 shots)) the returned
/// bound is exceeded with probability at most `false_positive_rate`.
double tvd_bound(std::size_t shots, std::size_t num_outcomes,
                 double false_positive_rate);

struct TvdCheck {
  double tvd = 0.0;
  double bound = 0.0;
  bool pass = true;

  std::string describe() const;
};

/// Asserts the empirical TVD of `counts` against `exact` stays under
/// tvd_bound(total_shots, 2^n, false_positive_rate).
TvdCheck check_tvd(const qsim::Counts& counts, std::span<const double> exact,
                   double false_positive_rate);

}  // namespace hpcqc::verify
