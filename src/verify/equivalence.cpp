#include "hpcqc/verify/equivalence.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::verify {

using circuit::Circuit;
using qsim::Complex;

const char* to_string(FrameTolerance frame) {
  return frame == FrameTolerance::kGlobalPhase ? "global-phase"
                                               : "output-z-frame";
}

std::vector<Complex> circuit_unitary(const Circuit& c) {
  expects(c.num_qubits() <= 10,
          "circuit_unitary: capped at 10 qubits (16 MiB matrix)");
  const std::uint64_t dim = std::uint64_t{1} << c.num_qubits();
  std::vector<Complex> u(dim * dim);
  qsim::StateVector state(c.num_qubits());
  for (std::uint64_t x = 0; x < dim; ++x) {
    auto& amps = state.mutable_amplitudes();
    std::fill(amps.begin(), amps.end(), Complex{0.0, 0.0});
    amps[x] = Complex{1.0, 0.0};
    circuit::apply_gates(state, c);
    std::copy(state.amplitudes().begin(), state.amplitudes().end(),
              u.begin() + static_cast<std::ptrdiff_t>(x * dim));
  }
  return u;
}

namespace {

/// Residual of M (= V U^dag, column-major) against the allowed frame set.
/// For kGlobalPhase the best frame is d0 * I; for kOutputZFrame it is the
/// tensor-factorized diagonal extracted from M's single-bit entries.
std::pair<double, std::string> frame_residual(const std::vector<Complex>& m,
                                              std::uint64_t dim,
                                              int num_qubits,
                                              FrameTolerance frame) {
  const auto at = [&](std::uint64_t r, std::uint64_t c) {
    return m[r + c * dim];
  };
  const Complex d0 = at(0, 0);
  double worst = std::abs(1.0 - std::abs(d0));
  std::ostringstream detail;
  if (worst > 1e-6)
    detail << "reference diagonal entry M[0,0] has modulus " << std::abs(d0)
           << "; ";

  // Off-diagonal residual (both modes demand a diagonal M).
  double off_worst = 0.0;
  std::uint64_t off_r = 0, off_c = 0;
  for (std::uint64_t c = 0; c < dim; ++c) {
    for (std::uint64_t r = 0; r < dim; ++r) {
      if (r == c) continue;
      const double mag = std::abs(at(r, c));
      if (mag > off_worst) {
        off_worst = mag;
        off_r = r;
        off_c = c;
      }
    }
  }
  if (off_worst > worst) worst = off_worst;

  // Diagonal residual against the allowed frame.
  double diag_worst = 0.0;
  std::uint64_t diag_at = 0;
  for (std::uint64_t y = 0; y < dim; ++y) {
    Complex predicted = d0;
    if (frame == FrameTolerance::kOutputZFrame) {
      for (int v = 0; v < num_qubits; ++v) {
        if (!(y >> v & 1)) continue;
        const std::uint64_t e = std::uint64_t{1} << v;
        predicted *= at(e, e) / d0;
      }
    }
    const double dev = std::abs(at(y, y) - predicted);
    if (dev > diag_worst) {
      diag_worst = dev;
      diag_at = y;
    }
  }
  if (diag_worst > worst) worst = diag_worst;

  if (off_worst >= diag_worst && off_worst > 0.0)
    detail << "off-diagonal residual " << off_worst << " at (" << off_r
           << ", " << off_c << ")";
  else if (diag_worst > 0.0)
    detail << (frame == FrameTolerance::kGlobalPhase
                   ? "global-phase diagonal residual "
                   : "non-factorizing Z-frame residual ")
           << diag_worst << " at outcome " << diag_at;
  return {worst, detail.str()};
}

EquivalenceResult from_residual(double residual, double leaked, double tol,
                                std::string detail) {
  EquivalenceResult result;
  result.max_deviation = residual;
  result.leaked_norm = leaked;
  result.equivalent = residual <= tol && leaked <= tol;
  if (!result.equivalent) result.detail = std::move(detail);
  return result;
}

EquivalenceResult failed(std::string detail) {
  EquivalenceResult result;
  result.equivalent = false;
  result.max_deviation = 1.0;
  result.detail = std::move(detail);
  return result;
}

/// M = V U^dag for two column-major dim x dim matrices.
std::vector<Complex> times_adjoint(const std::vector<Complex>& v,
                                   const std::vector<Complex>& u,
                                   std::uint64_t dim) {
  std::vector<Complex> m(dim * dim);
  for (std::uint64_t c = 0; c < dim; ++c) {
    for (std::uint64_t k = 0; k < dim; ++k) {
      // (V U^dag)[r, c] = sum_k V[r, k] * conj(U[c, k])
      const Complex w = std::conj(u[c + k * dim]);
      if (w == Complex{0.0, 0.0}) continue;
      const Complex* v_col = v.data() + k * dim;
      Complex* m_col = m.data() + c * dim;
      for (std::uint64_t r = 0; r < dim; ++r) m_col[r] += v_col[r] * w;
    }
  }
  return m;
}

}  // namespace

EquivalenceResult equivalent_up_to_phase(const Circuit& a, const Circuit& b,
                                         double tol) {
  expects(a.num_qubits() == b.num_qubits(),
          "equivalent_up_to_phase: register sizes differ");
  const std::uint64_t dim = std::uint64_t{1} << a.num_qubits();
  const auto u = circuit_unitary(a);
  const auto v = circuit_unitary(b);
  const auto m = times_adjoint(v, u, dim);
  auto [residual, detail] =
      frame_residual(m, dim, a.num_qubits(), FrameTolerance::kGlobalPhase);
  return from_residual(residual, 0.0, tol, std::move(detail));
}

EquivalenceResult compiled_equivalent(const Circuit& source,
                                      const mqss::CompiledProgram& program,
                                      FrameTolerance frame, double tol) {
  const int n_v = source.num_qubits();
  expects(n_v <= 10, "compiled_equivalent: capped at 10 virtual qubits");
  {
    const auto& ops = source.ops();
    expects(std::any_of(ops.begin(), ops.end(),
                        [](const circuit::Operation& op) {
                          return op.kind == circuit::OpKind::kMeasure;
                        }),
            "compiled_equivalent: source needs a terminal measurement — the "
            "final wire permutation is read off the compiled measure op");
    std::vector<int> expected(static_cast<std::size_t>(n_v));
    std::iota(expected.begin(), expected.end(), 0);
    expects(source.measured_qubits() == expected,
            "compiled_equivalent: source must terminally measure all qubits "
            "in ascending order (Circuit::measure())");
  }
  const Circuit& native = program.native_circuit;
  const int n_d = native.num_qubits();
  expects(n_d <= 12, "compiled_equivalent: capped at 12 device qubits");

  // Everything below reports compiler bugs as failures (not exceptions):
  // broken passes are exactly what this oracle exists to catch.
  const auto& layout = program.initial_layout;
  if (static_cast<int>(layout.size()) != n_v)
    return failed("initial_layout has " + std::to_string(layout.size()) +
                  " entries for " + std::to_string(n_v) + " virtual qubits");
  std::vector<bool> used(static_cast<std::size_t>(n_d), false);
  for (int p : layout) {
    if (p < 0 || p >= n_d)
      return failed("initial_layout entry " + std::to_string(p) +
                    " outside the device register");
    if (used[static_cast<std::size_t>(p)])
      return failed("initial_layout maps two virtual qubits to physical q" +
                    std::to_string(p));
    used[static_cast<std::size_t>(p)] = true;
  }

  const std::vector<int> final_pos = native.measured_qubits();
  if (static_cast<int>(final_pos.size()) != n_v)
    return failed("compiled circuit measures " +
                  std::to_string(final_pos.size()) + " qubits, expected " +
                  std::to_string(n_v));
  std::uint64_t final_mask = 0;
  for (int p : final_pos) {
    if (p < 0 || p >= n_d)
      return failed("compiled measure touches q" + std::to_string(p) +
                    " outside the device register");
    const std::uint64_t bit = std::uint64_t{1} << p;
    if (final_mask & bit)
      return failed("compiled measure lists physical q" + std::to_string(p) +
                    " twice");
    final_mask |= bit;
  }

  // Column x of the effective virtual-register operator E: evolve the
  // device register with |x>'s bits injected at the layout positions.
  const std::uint64_t dim_v = std::uint64_t{1} << n_v;
  const std::uint64_t dim_d = std::uint64_t{1} << n_d;
  std::vector<Complex> e(dim_v * dim_v);
  double leaked = 0.0;
  qsim::StateVector state(n_d);
  for (std::uint64_t x = 0; x < dim_v; ++x) {
    std::uint64_t injected = 0;
    for (int v = 0; v < n_v; ++v)
      if (x >> v & 1)
        injected |= std::uint64_t{1} << layout[static_cast<std::size_t>(v)];
    auto& amps = state.mutable_amplitudes();
    std::fill(amps.begin(), amps.end(), Complex{0.0, 0.0});
    amps[injected] = Complex{1.0, 0.0};
    circuit::apply_gates(state, native);
    double column_leak = 0.0;
    for (std::uint64_t y = 0; y < dim_d; ++y) {
      const Complex amp = state.amplitudes()[y];
      if (std::norm(amp) < 1e-30) continue;
      if (y & ~final_mask) {
        column_leak += std::norm(amp);  // an ancilla did not return to |0>
        continue;
      }
      e[circuit::compact_outcome(y, final_pos) + x * dim_v] = amp;
    }
    // Report the worst input state's leaked probability, a quantity in
    // [0, 1] regardless of the register size.
    leaked = std::max(leaked, column_leak);
  }

  const auto u = circuit_unitary(source);
  const auto m = times_adjoint(e, u, dim_v);
  auto [residual, detail] = frame_residual(m, dim_v, n_v, frame);
  if (leaked > tol)
    detail = "leaked " + std::to_string(leaked) +
             " probability onto ancilla qubits; " + detail;
  return from_residual(residual, leaked, tol, std::move(detail));
}

}  // namespace hpcqc::verify
