#pragma once

#include "hpcqc/common/rng.hpp"
#include "hpcqc/common/units.hpp"
#include "hpcqc/device/calibration_state.hpp"

namespace hpcqc::device {

/// Stochastic model of calibration decay. Two mechanisms, matching the
/// operational behaviour the paper reports:
///
/// 1. **Slow drift** — every gate/readout error rate follows an
///    Ornstein-Uhlenbeck process in log-error space, relaxing toward a
///    degraded asymptote. This produces the gradual hour-to-day fidelity
///    decay between calibrations.
/// 2. **TLS defect events** — a Poisson process parks a two-level-system
///    defect near a random qubit's frequency, abruptly degrading its gate
///    fidelity and its couplers' CZ fidelity. Only a *full* recalibration
///    (which can retune qubit frequencies) clears the flag; quick
///    calibration merely re-optimizes pulses around the defect.
struct DriftParams {
  /// Mean time for the error rate to relax toward its degraded asymptote.
  Seconds drift_timescale = hours(48.0);
  /// Error rate asymptote as a multiple of the freshly-calibrated rate.
  double degraded_error_factor = 3.0;
  /// Relative volatility of the OU step (per sqrt(day)).
  double volatility = 0.20;
  /// TLS defect arrival rate, events per qubit per day.
  double tls_rate_per_qubit_day = 0.01;
  /// Error-rate multiplier applied by a TLS defect.
  double tls_error_factor = 8.0;
  /// Relative T1/T2 fluctuation per sqrt(day).
  double t1_volatility = 0.08;
};

/// Applies drift to a calibration snapshot over a simulated interval.
/// Stateless apart from its parameters; the RNG carries the stochasticity.
class DriftModel {
public:
  explicit DriftModel(DriftParams params = {});

  const DriftParams& params() const { return params_; }

  /// Advances `state` by `dt`. `fresh` is the reference snapshot produced by
  /// the last full calibration — its error rates are the OU anchor points.
  void advance(CalibrationState& state, const CalibrationState& fresh,
               Seconds dt, Rng& rng) const;

private:
  /// One OU step in log-error space for a single error rate.
  double step_error(double error, double fresh_error, Seconds dt,
                    Rng& rng) const;

  DriftParams params_;
};

}  // namespace hpcqc::device
