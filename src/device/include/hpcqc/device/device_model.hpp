#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/calibration_state.hpp"
#include "hpcqc/device/compiled_program.hpp"
#include "hpcqc/device/drift.hpp"
#include "hpcqc/device/health_mask.hpp"
#include "hpcqc/device/topology.hpp"
#include "hpcqc/qsim/counts.hpp"
#include "hpcqc/qsim/readout.hpp"

namespace hpcqc::device {

/// How circuit noise is injected during execution.
enum class ExecutionMode {
  /// Per-shot quantum-trajectory simulation: every gate is followed by a
  /// stochastic Pauli error drawn from the live element fidelity, and every
  /// measured bit passes through the readout confusion. Physically faithful
  /// but costs one full state evolution per shot.
  kTrajectory,
  /// Global-depolarizing surrogate: one ideal evolution; each shot samples
  /// the ideal distribution with probability equal to the product of the
  /// process fidelities, otherwise a uniformly random outcome. Cheap and
  /// accurate for the aggregate fidelity metrics the operations model needs.
  kGlobalDepolarizing,
  /// kTrajectory for small jobs (<= 12 qubits and <= 256 shots),
  /// kGlobalDepolarizing otherwise.
  kAuto,
  /// No state evolution at all: only wall time and the analytic fidelity
  /// estimate are produced (counts stay empty). Used by multi-month
  /// operations simulations where per-job distributions are irrelevant.
  kEstimateOnly,
};

/// Progress hook for execute(): called once per shot batch, in batch order,
/// on the calling thread. Batch boundaries and contents are derived from the
/// serially pre-drawn per-shot error realizations — never from OpenMP
/// scheduling — so the emitted sequence is bit-identical for any
/// OMP_NUM_THREADS. `elapsed` is the simulated time from job start through
/// the end of the batch (shots completed x shot duration). A null observer
/// costs one pointer test.
class ExecObserver {
public:
  virtual ~ExecObserver() = default;
  virtual void on_shot_batch(std::size_t batch_index, std::size_t first_shot,
                             std::size_t shots_in_batch,
                             std::size_t errored_shots, Seconds elapsed) = 0;
};

/// Shots per observer batch (last batch may be short).
inline constexpr std::size_t kExecBatchShots = 64;

/// Caller-owned slot for the per-job compilation execute() performs. When a
/// caller replays the same circuit *shape* at different parameter bindings
/// (the compile-farm tight loop), passing the same PreparedProgram lets
/// execute() rebind the cached program's angles instead of re-densifying and
/// re-fusing from scratch. Validity is keyed on the circuit's shape_hash()
/// and the device's noise_version(); a mismatch on either recompiles in
/// place. Results are bit-identical either way (rebind() replays the
/// compiler's arithmetic exactly), so reuse is purely a CPU-cost knob.
struct PreparedProgram {
  std::unique_ptr<CompiledProgram> program;
  std::uint64_t shape_hash = 0;
  std::uint64_t noise_version = 0;
  std::uint64_t compiles = 0;  ///< full compilations performed through this slot
  std::uint64_t rebinds = 0;   ///< angle-only rebinds performed
};

/// Result of executing one circuit job on the device.
struct ExecutionResult {
  qsim::Counts counts;
  Seconds wall_time = 0.0;          ///< shots x shot_duration
  double estimated_fidelity = 1.0;  ///< analytic circuit fidelity estimate
  std::size_t shots = 0;
};

/// Digital twin of the on-premise superconducting QPU: coupling topology,
/// live calibration state, drift dynamics, and noisy circuit execution.
/// This object stands in for the physical 20-qubit machine everywhere the
/// real integration would talk to hardware.
class DeviceModel {
public:
  DeviceModel(std::string name, Topology topology, DeviceSpec spec,
              DriftParams drift, Rng& rng);

  const std::string& name() const { return name_; }
  const Topology& topology() const { return topology_; }
  const DeviceSpec& spec() const { return spec_; }
  int num_qubits() const { return topology_.num_qubits(); }

  const CalibrationState& calibration() const { return state_; }
  CalibrationState& mutable_calibration() { return state_; }
  const CalibrationState& fresh_reference() const { return fresh_; }

  /// Monotonic counter bumped by every calibration install and every health
  /// mask change. Compile caches key on this instead of `calibrated_at`: two
  /// recalibrations can land at the identical simulated timestamp (quick
  /// recoveries in coarse-stepped campaigns do), and a timestamp key would
  /// then fail to invalidate programs compiled against the superseded
  /// metrics. Mask changes bump it too, so cached placements never keep
  /// routing through a qubit that has since dropped out.
  std::uint64_t calibration_epoch() const { return calibration_epoch_; }

  /// Monotonic counter bumped whenever anything feeding execution noise
  /// changes: calibration installs, drift steps, health-mask changes, and
  /// ambient-drift-rate updates. It is the PreparedProgram validity key —
  /// strictly finer-grained than calibration_epoch() (drift mutates the
  /// live state without installing a calibration).
  std::uint64_t noise_version() const { return noise_version_; }

  /// Per-element up/down state. Starts all-healthy; the operations layer
  /// installs degraded masks when qubits or couplers drop out.
  const HealthMask& health() const { return health_; }

  /// Replaces the health mask; bumps calibration_epoch() when it changes.
  void set_health(HealthMask mask);

  /// Single-element conveniences over set_health().
  void set_qubit_health(int qubit, bool up);
  void set_coupler_health(int a, int b, bool up);

  /// Mask derived from the live calibration under `policy` (not installed).
  HealthMask derive_health(const HealthPolicy& policy) const;

  /// Generates a freshly-calibrated snapshot from the spec: every metric is
  /// drawn around its nominal with the spec's calibration spread.
  CalibrationState sample_fresh_calibration(Seconds at, Rng& rng) const;

  /// Replaces both the live state and the drift anchor (what a full
  /// calibration does; the calibration module drives this).
  void install_calibration(CalibrationState snapshot);

  /// Replaces only the live state, keeping the existing drift anchor
  /// (what a quick calibration does).
  void install_live_state(CalibrationState snapshot);

  /// Applies parameter drift over `dt`.
  void drift(Seconds dt, Rng& rng);

  /// Ambient-temperature instability coupling (§2.3): a room-temperature
  /// drift rate in °C/day adds readout phase error. 0 = perfectly stable.
  void set_ambient_drift_rate(double deg_c_per_day);
  double ambient_drift_rate() const { return ambient_drift_c_per_day_; }

  /// Effective readout confusion for the current state (includes the
  /// ambient-drift penalty).
  qsim::ReadoutError readout_error() const;

  /// Analytic estimate of the fidelity of running `circuit`: product of the
  /// per-gate process fidelities and the measured qubits' readout
  /// fidelities. The executor's global-depolarizing mode is built on it.
  double estimate_circuit_fidelity(const circuit::Circuit& circuit) const;

  /// Executes a circuit whose two-qubit gates respect the topology.
  /// The circuit register must match num_qubits() (compiled circuits are
  /// always full-register). Throws PreconditionError on a 2q gate between
  /// uncoupled qubits, and TransientError(kDeviceUnavailable) when any op
  /// touches a masked qubit or coupler.
  /// `observer`, when non-null, receives deterministic per-batch progress
  /// callbacks (see ExecObserver). `prepared`, when non-null, caches the
  /// per-job compilation across calls (see PreparedProgram).
  ExecutionResult execute(const circuit::Circuit& circuit, std::size_t shots,
                          Rng& rng, ExecutionMode mode = ExecutionMode::kAuto,
                          ExecObserver* observer = nullptr,
                          PreparedProgram* prepared = nullptr);

  /// Shot duration for a given circuit (reset + gates + readout), per §2.4.
  Seconds shot_duration(const circuit::Circuit& circuit) const;

private:
  double gate_process_fidelity(const circuit::Operation& op) const;
  void validate_executable(const circuit::Circuit& circuit) const;

  std::string name_;
  Topology topology_;
  DeviceSpec spec_;
  DriftModel drift_model_;
  CalibrationState state_;
  CalibrationState fresh_;
  HealthMask health_;
  std::uint64_t calibration_epoch_ = 0;
  std::uint64_t noise_version_ = 0;
  double ambient_drift_c_per_day_ = 0.0;
};

/// Extra readout error per (°C/day) of ambient drift — the cabling /
/// electronics phase-delay effect §2.3 describes.
inline constexpr double kReadoutErrorPerDegCDay = 0.004;

}  // namespace hpcqc::device
