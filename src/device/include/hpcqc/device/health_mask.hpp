#pragma once

#include <vector>

#include "hpcqc/device/calibration_state.hpp"
#include "hpcqc/device/topology.hpp"

namespace hpcqc::circuit {
class Circuit;
}

namespace hpcqc::device {

/// Per-element up/down state of a QPU. The paper's 146-day campaign (§3.4-3.5)
/// shows the common failure mode is *partial*: individual qubits drift out of
/// spec or pick up TLS defects while the rest of the device stays usable. The
/// mask captures exactly that: qubits and couplers are marked down
/// independently, and the healthy remainder keeps serving jobs.
///
/// Indexing follows CalibrationState: qubits by id, couplers by
/// Topology::edge_index. A coupler is *usable* only when the coupler itself
/// and both endpoint qubits are up.
class HealthMask {
public:
  HealthMask() = default;

  /// All-healthy mask shaped for `topology`.
  explicit HealthMask(const Topology& topology);

  int num_qubits() const { return static_cast<int>(qubit_up_.size()); }
  int num_couplers() const { return static_cast<int>(coupler_up_.size()); }

  bool qubit_up(int qubit) const;
  bool coupler_up(int edge_index) const;

  /// Coupler up AND both endpoints up.
  bool coupler_usable(const Topology& topology, int edge_index) const;

  void set_qubit(int qubit, bool up);
  void set_coupler(int edge_index, bool up);

  bool all_healthy() const;
  int healthy_qubit_count() const;
  int usable_coupler_count(const Topology& topology) const;

  /// Connected components of the healthy subgraph (healthy qubits joined by
  /// usable couplers). Each component is sorted ascending; components are
  /// ordered by (size descending, then smallest member ascending), so the
  /// result is a deterministic function of the mask.
  std::vector<std::vector<int>> healthy_components(
      const Topology& topology) const;

  /// The first entry of healthy_components(); empty when no qubit is up.
  std::vector<int> largest_component(const Topology& topology) const;

  /// True when no op in `circuit` touches a down qubit or an unusable
  /// coupler. Measurements count as touching their qubit.
  bool circuit_legal(const Topology& topology,
                     const circuit::Circuit& circuit) const;

  friend bool operator==(const HealthMask&, const HealthMask&) = default;

private:
  // char, not bool: vector<bool> proxies make the element accessors awkward.
  std::vector<char> qubit_up_;
  std::vector<char> coupler_up_;
};

/// Calibration-derived masking thresholds. All-zero defaults mask nothing,
/// so a policy must opt in to each criterion.
struct HealthPolicy {
  double min_fidelity_1q = 0.0;
  double min_readout_fidelity = 0.0;
  double min_fidelity_cz = 0.0;
  bool mask_tls_defects = false;
};

/// Mask derived from the live calibration state: elements below the policy
/// floors (or TLS-defective, if the policy says so) are marked down.
HealthMask derive_health(const Topology& topology,
                         const CalibrationState& calibration,
                         const HealthPolicy& policy);

}  // namespace hpcqc::device
