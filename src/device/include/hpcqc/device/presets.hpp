#pragma once

#include <memory>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"

namespace hpcqc::device {

/// The machine of the case study: 20 transmon qubits in a 4x5 square grid
/// with tunable couplers, parameters matching the published technology
/// benchmarks (median 1Q ~99.91 %, CZ ~99.5 %, readout ~98 %).
DeviceModel make_iqm20(Rng& rng);

/// The 54-qubit scale-up the paper's §2.4 bandwidth extrapolation mentions
/// (6x9 grid, same technology parameters).
DeviceModel make_grid54(Rng& rng);

/// The 150-qubit scale-up of the same extrapolation (10x15 grid).
DeviceModel make_grid150(Rng& rng);

/// Generic rows x cols grid with custom spec/drift, for sweeps.
DeviceModel make_grid(std::string name, int rows, int cols, DeviceSpec spec,
                      DriftParams drift, Rng& rng);

}  // namespace hpcqc::device
