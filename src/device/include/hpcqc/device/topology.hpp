#pragma once

#include <utility>
#include <vector>

namespace hpcqc::device {

/// Undirected coupling graph of a QPU. The reproduced 20-qubit machine has
/// transmon qubits "in a square grid topology, where the tunable couplers
/// mediate the connection between each qubit pair" — i.e. qubits are grid
/// nodes and couplers are grid edges.
class Topology {
public:
  /// Edge = (low qubit, high qubit), normalized so first < second.
  using Edge = std::pair<int, int>;

  Topology(int num_qubits, std::vector<Edge> edges);

  /// rows x cols rectangular grid with nearest-neighbour couplers.
  /// Qubit id = row * cols + col.
  static Topology square_grid(int rows, int cols);

  /// Linear chain of `num_qubits` qubits.
  static Topology line(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Edge>& edges() const { return edges_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  bool has_edge(int a, int b) const;

  /// Index of edge (a,b) in edges(); throws NotFoundError if absent.
  int edge_index(int a, int b) const;

  const std::vector<int>& neighbors(int qubit) const;

  /// Hop distance between two qubits (BFS, cached); -1 if disconnected.
  int distance(int a, int b) const;

  /// True when every qubit can reach every other.
  bool is_connected() const;

  /// Qubits ordered so that consecutive entries are coupled, covering all
  /// qubits (a serpentine over the grid). Only available for topologies
  /// built with square_grid/line. Used by GHZ-chain benchmarks.
  std::vector<int> coupled_chain() const;

  /// Grid dimensions when constructed via square_grid/line, else (0, 0).
  std::pair<int, int> grid_shape() const { return {grid_rows_, grid_cols_}; }

private:
  void compute_distances() const;

  int num_qubits_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
  mutable std::vector<std::vector<int>> distances_;  // lazily computed
  int grid_rows_ = 0;
  int grid_cols_ = 0;
};

}  // namespace hpcqc::device
