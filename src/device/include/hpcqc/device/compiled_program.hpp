#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/calibration_state.hpp"
#include "hpcqc/device/topology.hpp"
#include "hpcqc/qsim/gates.hpp"
#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::device {

/// One step of a compiled trajectory program. Single-qubit steps carry a
/// fused 2x2 matrix (a maximal run of 1q gates on one qubit collapses to
/// one step); two-qubit steps carry either a dense 4x4 matrix or a
/// controlled-phase angle (the CZ / CPhase diagonal fast path).
/// `error_prob` is the stochastic-Pauli probability injected after the
/// unitary, precomputed from the calibration snapshot and — for fused
/// runs — composed across the constituent gates' depolarizing channels.
struct CompiledOp {
  enum class Kind { kFused1q, kDense2q, kCphase };

  Kind kind = Kind::kFused1q;
  int q0 = 0;               ///< dense qubit (low bit for 2q steps)
  int q1 = 0;               ///< second dense qubit (2q steps only)
  double theta = 0.0;       ///< cphase angle (kCphase only)
  double error_prob = 0.0;  ///< post-unitary Pauli error probability
  qsim::Matrix2 m2{};       ///< kFused1q payload
  qsim::Matrix4 m4{};       ///< kDense2q payload
};

/// A circuit compiled once per DeviceModel::execute() against a live
/// calibration snapshot. Compilation (a) restricts the register to the
/// active (touched or measured) qubits and densifies indices, (b) resolves
/// every gate to its concrete matrix, fusing maximal runs of single-qubit
/// gates on the same qubit into one matrix, and (c) precomputes each
/// step's Pauli error probability from the element fidelities. The shot
/// loop then replays a flat op list with no topology lookups, fidelity
/// conversions, or matrix construction per shot.
///
/// Noise semantics match the uncompiled engine exactly in distribution:
/// the per-gate error channel is depolarizing, which commutes with any
/// unitary on the same qubit(s), so deferring a fused run's composed
/// error to the end of the run realizes the same channel.
class CompiledProgram {
public:
  /// Compiles `circuit` (which must already be routed/validated against
  /// `topology`) using the error rates in `calibration`. Measurements and
  /// barriers are dropped; identity gates carry no error (as in the
  /// uncompiled engine) and are elided.
  CompiledProgram(const circuit::Circuit& circuit, const Topology& topology,
                  const CalibrationState& calibration);

  /// shape_hash() of the source circuit (parameter values abstracted out) —
  /// the validity key for rebind().
  std::uint64_t source_shape_hash() const { return source_shape_hash_; }

  /// Re-derives every angle-dependent payload (fused 1q matrices, cphase
  /// angles) from a circuit that is shape-identical to the source — i.e.
  /// the same gates on the same qubits with possibly different parameter
  /// values, as produced by binding a compiled parametric template at a new
  /// angle vector. Error probabilities, fusion structure and qubit
  /// densification are angle-independent, so they are kept; the recomputed
  /// matrices replay the constructor's exact accumulation order, making the
  /// result bit-identical to a fresh compilation of `circuit`. Throws
  /// PreconditionError when the shapes differ.
  void rebind(const circuit::Circuit& circuit);

  /// Number of simulated (dense) qubits; always >= 1.
  int dense_qubits() const { return dense_qubits_; }

  /// Physical qubit simulated at each dense index (dense -> physical).
  const std::vector<int>& active_qubits() const { return active_; }

  /// Measured qubits re-expressed in dense indices, in the order the
  /// result bits are compacted.
  const std::vector<int>& dense_measured() const { return dense_measured_; }

  const std::vector<CompiledOp>& ops() const { return ops_; }

  /// One realized stochastic Pauli error: the step it follows and which
  /// Pauli was drawn (1q steps: 0=X 1=Y 2=Z; 2q steps: 1..15 encoding
  /// (which % 4, which / 4) with 0=I 1=X 2=Y 3=Z per qubit).
  struct PauliInsertion {
    std::uint32_t op_index = 0;
    std::uint8_t which = 0;
  };

  /// Draws one shot's complete error realization from `rng`. The draws are
  /// state-independent, so a trajectory can be realized *before* any state
  /// evolution — this is what lets the engine share the ideal prefix
  /// across shots. Consumes exactly the same stream as run(): one
  /// Bernoulli per noisy step plus one index draw per hit.
  void draw_insertions(Rng& rng, std::vector<PauliInsertion>& out) const;

  /// Applies the unitary of step `i` to `state` (no error injection).
  void apply_step(qsim::StateVector& state, std::size_t i) const;

  /// Applies steps [first, ops().size()) to `state`, injecting each listed
  /// insertion after its step. `insertions` must be sorted by op_index and
  /// contain no entry below `first`.
  void run_range(qsim::StateVector& state, std::size_t first,
                 std::span<const PauliInsertion> insertions) const;

  /// Replays the program on `state` (which must span dense_qubits()),
  /// drawing one stochastic Pauli per step from `rng` per its error
  /// probability — one quantum trajectory. Equivalent to
  /// draw_insertions() followed by run_range(0).
  void run(qsim::StateVector& state, Rng& rng) const;

  /// Replays only the unitaries (the ideal final state).
  void run_ideal(qsim::StateVector& state) const;

private:
  int dense_qubits_ = 1;
  std::vector<int> active_;
  std::vector<int> dense_measured_;
  std::vector<CompiledOp> ops_;
  std::uint64_t source_shape_hash_ = 0;
  /// Per-step source-op indices for rebind(): a kFused1q step lists the
  /// constituent 1q ops in accumulation order; a kCphase step lists its
  /// single source op when that op was parametric (kCphase, not kCz);
  /// angle-independent steps have an empty list.
  std::vector<std::vector<std::uint32_t>> sources_;
};

}  // namespace hpcqc::device
