#pragma once

#include <vector>

#include "hpcqc/common/units.hpp"
#include "hpcqc/device/topology.hpp"

namespace hpcqc::device {

/// Live physical parameters of one qubit. These are the quantities the
/// paper calls "changeable properties that must be managed via regular
/// calibration" — unlike CPU/GPU characteristics they drift on timescales
/// of hours to days.
struct QubitMetrics {
  double t1_us = 50.0;              ///< energy relaxation time
  double t2_us = 30.0;              ///< dephasing time (<= 2*T1)
  double fidelity_1q = 0.999;       ///< average single-qubit gate fidelity
  double readout_fidelity = 0.98;   ///< symmetric assignment fidelity
  bool tls_defect = false;          ///< a two-level-system defect is parked
                                    ///< near the qubit frequency
};

/// Live parameters of one tunable coupler (one topology edge).
struct CouplerMetrics {
  double fidelity_cz = 0.995;  ///< average CZ gate fidelity
};

/// Snapshot of the whole device's calibration. Indexing matches the
/// Topology: qubits by id, couplers by Topology::edge_index.
struct CalibrationState {
  std::vector<QubitMetrics> qubits;
  std::vector<CouplerMetrics> couplers;
  Seconds calibrated_at = 0.0;  ///< simulated time of the last calibration

  /// Median single-qubit gate fidelity over all qubits.
  double median_fidelity_1q() const;
  /// Median readout assignment fidelity over all qubits.
  double median_readout_fidelity() const;
  /// Median CZ fidelity over all couplers.
  double median_fidelity_cz() const;
  /// Worst (minimum) CZ fidelity.
  double min_fidelity_cz() const;
  /// Number of qubits currently flagged with a TLS defect.
  int tls_defect_count() const;
};

/// Factory-nominal targets the calibration procedures tune toward, plus the
/// spread achieved after a calibration run. Values default to the published
/// benchmarks of the 20-qubit machine the paper installs (median 1Q
/// fidelity ~99.91 %, CZ ~99.5 %, readout ~98 %, T1 ~50 µs).
struct DeviceSpec {
  double nominal_t1_us = 50.0;
  double nominal_t2_us = 30.0;
  double nominal_fidelity_1q = 0.9991;
  double nominal_fidelity_cz = 0.995;
  double nominal_readout_fidelity = 0.98;
  /// Relative element-to-element spread at full calibration (lognormal-ish).
  double calibration_spread = 0.15;
  /// Gate / readout timing (drives shot duration and §2.4 bandwidth).
  double prx_duration_ns = 20.0;
  double cz_duration_ns = 40.0;
  double readout_duration_us = 2.0;
  double passive_reset_us = 300.0;  ///< dominates the shot period (§2.4)

  /// Duration of one executed shot of a circuit with the given native gate
  /// depth split into 1q/2q layers: passive reset + gates + readout.
  Seconds shot_duration(std::size_t depth_1q, std::size_t depth_2q) const;
};

}  // namespace hpcqc::device
