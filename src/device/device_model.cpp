#include "hpcqc/device/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/device/compiled_program.hpp"
#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::device {

DeviceModel::DeviceModel(std::string name, Topology topology, DeviceSpec spec,
                         DriftParams drift, Rng& rng)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      spec_(spec),
      drift_model_(drift),
      health_(topology_) {
  fresh_ = sample_fresh_calibration(0.0, rng);
  state_ = fresh_;
}

void DeviceModel::set_health(HealthMask mask) {
  expects(mask.num_qubits() == topology_.num_qubits() &&
              mask.num_couplers() == topology_.num_edges(),
          "set_health: mask shape mismatch");
  if (mask == health_) return;
  health_ = std::move(mask);
  ++calibration_epoch_;
  ++noise_version_;
}

void DeviceModel::set_qubit_health(int qubit, bool up) {
  HealthMask mask = health_;
  mask.set_qubit(qubit, up);
  set_health(std::move(mask));
}

void DeviceModel::set_coupler_health(int a, int b, bool up) {
  HealthMask mask = health_;
  mask.set_coupler(topology_.edge_index(a, b), up);
  set_health(std::move(mask));
}

HealthMask DeviceModel::derive_health(const HealthPolicy& policy) const {
  return device::derive_health(topology_, state_, policy);
}

CalibrationState DeviceModel::sample_fresh_calibration(Seconds at,
                                                       Rng& rng) const {
  CalibrationState snapshot;
  snapshot.calibrated_at = at;
  snapshot.qubits.resize(static_cast<std::size_t>(topology_.num_qubits()));
  snapshot.couplers.resize(static_cast<std::size_t>(topology_.num_edges()));

  // Element-to-element variation: error rates are lognormal around the
  // nominal error, times are lognormal around the nominal time.
  const auto spread_error = [&](double nominal_fidelity) {
    const double err = (1.0 - nominal_fidelity) *
                       std::exp(spec_.calibration_spread * rng.normal());
    return 1.0 - std::clamp(err, 1e-6, 0.4);
  };
  const auto spread_time = [&](double nominal_us) {
    return nominal_us * std::exp(spec_.calibration_spread * rng.normal());
  };

  for (auto& qubit : snapshot.qubits) {
    qubit.t1_us = spread_time(spec_.nominal_t1_us);
    qubit.t2_us = std::min(2.0 * qubit.t1_us, spread_time(spec_.nominal_t2_us));
    qubit.fidelity_1q = spread_error(spec_.nominal_fidelity_1q);
    qubit.readout_fidelity = spread_error(spec_.nominal_readout_fidelity);
    qubit.tls_defect = false;
  }
  for (auto& coupler : snapshot.couplers)
    coupler.fidelity_cz = spread_error(spec_.nominal_fidelity_cz);
  return snapshot;
}

void DeviceModel::install_calibration(CalibrationState snapshot) {
  expects(snapshot.qubits.size() ==
                  static_cast<std::size_t>(topology_.num_qubits()) &&
              snapshot.couplers.size() ==
                  static_cast<std::size_t>(topology_.num_edges()),
          "install_calibration: snapshot shape mismatch");
  fresh_ = snapshot;
  state_ = std::move(snapshot);
  ++calibration_epoch_;
  ++noise_version_;
}

void DeviceModel::install_live_state(CalibrationState snapshot) {
  expects(snapshot.qubits.size() == state_.qubits.size() &&
              snapshot.couplers.size() == state_.couplers.size(),
          "install_live_state: snapshot shape mismatch");
  state_ = std::move(snapshot);
  ++calibration_epoch_;
  ++noise_version_;
}

void DeviceModel::drift(Seconds dt, Rng& rng) {
  drift_model_.advance(state_, fresh_, dt, rng);
  ++noise_version_;
}

void DeviceModel::set_ambient_drift_rate(double deg_c_per_day) {
  expects(deg_c_per_day >= 0.0, "ambient drift rate cannot be negative");
  if (deg_c_per_day != ambient_drift_c_per_day_) ++noise_version_;
  ambient_drift_c_per_day_ = deg_c_per_day;
}

qsim::ReadoutError DeviceModel::readout_error() const {
  std::vector<qsim::ReadoutConfusion> per_qubit;
  per_qubit.reserve(state_.qubits.size());
  const double thermal_penalty =
      kReadoutErrorPerDegCDay * ambient_drift_c_per_day_;
  for (const auto& qubit : state_.qubits) {
    const double err = std::clamp(
        (1.0 - qubit.readout_fidelity) + thermal_penalty, 0.0, 0.5);
    // Readout of |1> is slightly worse than |0> (T1 decay during readout),
    // split 40/60 around the assignment error.
    per_qubit.push_back({0.8 * err, 1.2 * err});
  }
  return qsim::ReadoutError(std::move(per_qubit));
}

double DeviceModel::gate_process_fidelity(const circuit::Operation& op) const {
  using circuit::OpKind;
  if (op.kind == OpKind::kBarrier || op.kind == OpKind::kMeasure ||
      op.kind == OpKind::kI)
    return 1.0;
  if (circuit::op_is_two_qubit(op.kind)) {
    const int edge = topology_.edge_index(op.qubits[0], op.qubits[1]);
    const double avg =
        state_.couplers[static_cast<std::size_t>(edge)].fidelity_cz;
    return 1.0 - qsim::pauli_error_prob_from_avg_fidelity(avg, 2);
  }
  const double avg =
      state_.qubits[static_cast<std::size_t>(op.qubits[0])].fidelity_1q;
  return 1.0 - qsim::pauli_error_prob_from_avg_fidelity(avg, 1);
}

double DeviceModel::estimate_circuit_fidelity(
    const circuit::Circuit& circuit) const {
  double fidelity = 1.0;
  for (const auto& op : circuit.ops()) fidelity *= gate_process_fidelity(op);
  const double thermal_penalty =
      kReadoutErrorPerDegCDay * ambient_drift_c_per_day_;
  for (int q : circuit.measured_qubits()) {
    const double ro = std::clamp(
        state_.qubits[static_cast<std::size_t>(q)].readout_fidelity -
            thermal_penalty,
        0.5, 1.0);
    fidelity *= ro;
  }
  return fidelity;
}

void DeviceModel::validate_executable(const circuit::Circuit& circuit) const {
  expects(circuit.num_qubits() == topology_.num_qubits(),
          "execute: circuit register must match the device "
          "(compile/route first)");
  for (const auto& op : circuit.ops()) {
    if (circuit::op_is_two_qubit(op.kind)) {
      expects(topology_.has_edge(op.qubits[0], op.qubits[1]),
              "execute: two-qubit gate between uncoupled qubits q" +
                  std::to_string(op.qubits[0]) + ", q" +
                  std::to_string(op.qubits[1]) + " — route the circuit first");
    }
  }
  if (!health_.all_healthy() && !health_.circuit_legal(topology_, circuit)) {
    throw TransientError(
        "execute: circuit touches a masked qubit or coupler — recompile "
        "against the degraded topology",
        ErrorCode::kDeviceUnavailable);
  }
}

Seconds DeviceModel::shot_duration(const circuit::Circuit& circuit) const {
  const std::size_t total_depth = circuit.depth();
  const std::size_t depth_2q =
      std::min(circuit.two_qubit_gate_count(), total_depth);
  const std::size_t depth_1q = total_depth - depth_2q;
  return spec_.shot_duration(depth_1q, depth_2q);
}

ExecutionResult DeviceModel::execute(const circuit::Circuit& circuit,
                                     std::size_t shots, Rng& rng,
                                     ExecutionMode mode, ExecObserver* observer,
                                     PreparedProgram* prepared) {
  expects(shots > 0, "execute: need at least one shot");
  validate_executable(circuit);

  ExecutionResult result;
  result.shots = shots;
  result.estimated_fidelity = estimate_circuit_fidelity(circuit);
  const Seconds per_shot = shot_duration(circuit);
  result.wall_time = static_cast<double>(shots) * per_shot;

  const std::vector<int> measured = circuit.measured_qubits();
  result.counts.set_num_qubits(static_cast<int>(measured.size()));

  if (mode == ExecutionMode::kEstimateOnly) {
    if (observer != nullptr)
      observer->on_shot_batch(0, 0, shots, 0, result.wall_time);
    return result;
  }

  // Compile once per job: densified indices, fused matrices, precomputed
  // error rates. Every shot replays this flat program. A valid caller-owned
  // PreparedProgram short-circuits the compilation to an angle rebind.
  std::unique_ptr<CompiledProgram> scratch;
  const CompiledProgram* program_ptr = nullptr;
  if (prepared != nullptr) {
    const std::uint64_t shape = circuit.shape_hash();
    if (prepared->program != nullptr && prepared->shape_hash == shape &&
        prepared->noise_version == noise_version_) {
      prepared->program->rebind(circuit);
      ++prepared->rebinds;
    } else {
      prepared->program =
          std::make_unique<CompiledProgram>(circuit, topology_, state_);
      prepared->shape_hash = shape;
      prepared->noise_version = noise_version_;
      ++prepared->compiles;
    }
    program_ptr = prepared->program.get();
  } else {
    scratch = std::make_unique<CompiledProgram>(circuit, topology_, state_);
    program_ptr = scratch.get();
  }
  const CompiledProgram& program = *program_ptr;

  // Per-dense-qubit readout confusion from the physical elements.
  const qsim::ReadoutError full_readout = readout_error();
  std::vector<qsim::ReadoutConfusion> dense_confusion;
  dense_confusion.reserve(program.active_qubits().size());
  for (int q : program.active_qubits())
    dense_confusion.push_back(full_readout.qubit(q));
  const qsim::ReadoutError readout(std::move(dense_confusion));

  if (mode == ExecutionMode::kAuto) {
    mode = (program.dense_qubits() <= 12 && shots <= 256)
               ? ExecutionMode::kTrajectory
               : ExecutionMode::kGlobalDepolarizing;
  }

  if (mode == ExecutionMode::kTrajectory) {
    // Shot-parallel trajectory engine. Three properties make it fast and
    // reproducible:
    //  1. Per-shot RNG streams: each shot's generator is seeded from a
    //     SplitMix64 stream anchored at one draw from the caller's
    //     generator, so counts are bit-identical for any OMP_NUM_THREADS
    //     (and the caller's stream always advances by exactly one draw).
    //  2. Pre-drawn error realizations: the stochastic Pauli insertions
    //     are state-independent, so each shot's realization is drawn up
    //     front. Shots with no errors sample the shared ideal final state
    //     without evolving anything.
    //  3. Prefix sharing: the ideal evolution is checkpointed once; an
    //     errored shot copies the nearest checkpoint at or before its
    //     first insertion and evolves only the remaining suffix.
    // Arithmetic is identical to evolving each shot from |0..0>, so the
    // engine is bit-exact against the unshared path.
    const std::uint64_t stream_base = rng();
    const auto shot_count = static_cast<std::int64_t>(shots);
    const std::vector<int>& dense_measured = program.dense_measured();
    const std::size_t n_ops = program.ops().size();

    // Phase A: realize every shot's error insertions (serial; cheap).
    std::vector<Rng> shot_rngs;
    shot_rngs.reserve(shots);
    std::vector<std::vector<CompiledProgram::PauliInsertion>> realizations(
        shots);
    for (std::size_t s = 0; s < shots; ++s) {
      std::uint64_t stream = stream_base + static_cast<std::uint64_t>(s);
      Rng shot_rng(splitmix64(stream));
      program.draw_insertions(shot_rng, realizations[s]);
      shot_rngs.push_back(shot_rng);  // positioned after the error draws
    }

    // Phase B: checkpoint the ideal prefix evolution. The checkpoint
    // count adapts to the state size so the memory budget stays bounded;
    // with zero checkpoints the engine degrades to full re-evolution
    // from |0..0> per errored shot (still sharing the final state).
    constexpr std::uint64_t kCheckpointBudgetBytes = 256ull << 20;
    const std::uint64_t state_bytes =
        sizeof(qsim::Complex) << program.dense_qubits();
    const std::uint64_t max_ckpts =
        std::min<std::uint64_t>(32, kCheckpointBudgetBytes / state_bytes);
    const std::size_t stride =
        max_ckpts > 0
            ? std::max<std::size_t>(1, n_ops / static_cast<std::size_t>(
                                            max_ckpts + 1))
            : n_ops + 1;
    std::vector<std::size_t> boundaries;    // prefix[j] = state after
    std::vector<qsim::StateVector> prefix;  //   ops [0, boundaries[j])
    qsim::StateVector sweep(program.dense_qubits());
    for (std::size_t i = 0; i < n_ops; ++i) {
      if (i > 0 && i % stride == 0 &&
          prefix.size() < static_cast<std::size_t>(max_ckpts)) {
        boundaries.push_back(i);
        prefix.push_back(sweep);
      }
      program.apply_step(sweep, i);
    }
    const qsim::StateVector& ideal_final = sweep;

    // Phase C: the shot loop. Threads own private states and histograms;
    // integer merges commute, so the merged counts are order-independent.
    // A std::mutex (not `omp critical`) guards the merge so ThreadSanitizer
    // can see the lock (libgomp's critical locks are invisible to it).
    std::mutex merge_mutex;
#pragma omp parallel if (shots > 1)
    {
      qsim::StateVector state(program.dense_qubits());
      qsim::Counts local;
#pragma omp for schedule(dynamic)
      for (std::int64_t s = 0; s < shot_count; ++s) {
        Rng shot_rng = shot_rngs[static_cast<std::size_t>(s)];
        const auto& insertions = realizations[static_cast<std::size_t>(s)];
        std::uint64_t dense = 0;
        if (insertions.empty()) {
          dense = ideal_final.sample_one(shot_rng);
        } else {
          const std::size_t first = insertions.front().op_index;
          const auto it = std::upper_bound(boundaries.begin(),
                                           boundaries.end(), first);
          std::size_t start = 0;
          if (it == boundaries.begin()) {
            state.reset();
          } else {
            const auto j =
                static_cast<std::size_t>(it - boundaries.begin() - 1);
            state = prefix[j];
            start = boundaries[j];
          }
          program.run_range(state, start, insertions);
          dense = state.sample_one(shot_rng);
        }
        const std::uint64_t noisy = readout.corrupt(dense, shot_rng);
        local.add(circuit::compact_outcome(noisy, dense_measured));
      }
      {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        result.counts.merge(local);
      }
    }
    if (observer != nullptr) {
      // Batch progress is derived from the serially pre-drawn realizations
      // and emitted here, after the parallel region, in batch order — so
      // the callback sequence never depends on OpenMP scheduling.
      for (std::size_t first = 0, batch = 0; first < shots;
           first += kExecBatchShots, ++batch) {
        const std::size_t in_batch = std::min(kExecBatchShots, shots - first);
        std::size_t errored = 0;
        for (std::size_t s = first; s < first + in_batch; ++s)
          if (!realizations[s].empty()) ++errored;
        observer->on_shot_batch(batch, first, in_batch, errored,
                                static_cast<double>(first + in_batch) *
                                    per_shot);
      }
    }
    return result;
  }

  // Global-depolarizing surrogate: fold gate errors into a single success
  // probability over the ideal distribution (readout handled per bit).
  double gate_process_product = 1.0;
  for (const auto& op : circuit.ops())
    gate_process_product *= gate_process_fidelity(op);

  qsim::StateVector state(program.dense_qubits());
  program.run_ideal(state);
  const auto samples = state.sample(shots, rng);
  const std::uint64_t dense_dim = std::uint64_t{1} << program.dense_qubits();
  std::size_t batch = 0;
  std::size_t batch_errored = 0;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    std::uint64_t outcome = samples[s];
    if (!rng.bernoulli(gate_process_product)) {
      outcome = rng.uniform_index(dense_dim);
      ++batch_errored;
    }
    outcome = readout.corrupt(outcome, rng);
    result.counts.add(
        circuit::compact_outcome(outcome, program.dense_measured()));
    // This loop is serial, so per-batch emission here is deterministic.
    if ((s + 1) % kExecBatchShots == 0 || s + 1 == samples.size()) {
      if (observer != nullptr)
        observer->on_shot_batch(batch, batch * kExecBatchShots,
                                s + 1 - batch * kExecBatchShots,
                                batch_errored,
                                static_cast<double>(s + 1) * per_shot);
      ++batch;
      batch_errored = 0;
    }
  }
  return result;
}

}  // namespace hpcqc::device
