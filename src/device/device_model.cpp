#include "hpcqc/device/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::device {

DeviceModel::DeviceModel(std::string name, Topology topology, DeviceSpec spec,
                         DriftParams drift, Rng& rng)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      spec_(spec),
      drift_model_(drift) {
  fresh_ = sample_fresh_calibration(0.0, rng);
  state_ = fresh_;
}

CalibrationState DeviceModel::sample_fresh_calibration(Seconds at,
                                                       Rng& rng) const {
  CalibrationState snapshot;
  snapshot.calibrated_at = at;
  snapshot.qubits.resize(static_cast<std::size_t>(topology_.num_qubits()));
  snapshot.couplers.resize(static_cast<std::size_t>(topology_.num_edges()));

  // Element-to-element variation: error rates are lognormal around the
  // nominal error, times are lognormal around the nominal time.
  const auto spread_error = [&](double nominal_fidelity) {
    const double err = (1.0 - nominal_fidelity) *
                       std::exp(spec_.calibration_spread * rng.normal());
    return 1.0 - std::clamp(err, 1e-6, 0.4);
  };
  const auto spread_time = [&](double nominal_us) {
    return nominal_us * std::exp(spec_.calibration_spread * rng.normal());
  };

  for (auto& qubit : snapshot.qubits) {
    qubit.t1_us = spread_time(spec_.nominal_t1_us);
    qubit.t2_us = std::min(2.0 * qubit.t1_us, spread_time(spec_.nominal_t2_us));
    qubit.fidelity_1q = spread_error(spec_.nominal_fidelity_1q);
    qubit.readout_fidelity = spread_error(spec_.nominal_readout_fidelity);
    qubit.tls_defect = false;
  }
  for (auto& coupler : snapshot.couplers)
    coupler.fidelity_cz = spread_error(spec_.nominal_fidelity_cz);
  return snapshot;
}

void DeviceModel::install_calibration(CalibrationState snapshot) {
  expects(snapshot.qubits.size() ==
                  static_cast<std::size_t>(topology_.num_qubits()) &&
              snapshot.couplers.size() ==
                  static_cast<std::size_t>(topology_.num_edges()),
          "install_calibration: snapshot shape mismatch");
  fresh_ = snapshot;
  state_ = std::move(snapshot);
}

void DeviceModel::install_live_state(CalibrationState snapshot) {
  expects(snapshot.qubits.size() == state_.qubits.size() &&
              snapshot.couplers.size() == state_.couplers.size(),
          "install_live_state: snapshot shape mismatch");
  state_ = std::move(snapshot);
}

void DeviceModel::drift(Seconds dt, Rng& rng) {
  drift_model_.advance(state_, fresh_, dt, rng);
}

void DeviceModel::set_ambient_drift_rate(double deg_c_per_day) {
  expects(deg_c_per_day >= 0.0, "ambient drift rate cannot be negative");
  ambient_drift_c_per_day_ = deg_c_per_day;
}

qsim::ReadoutError DeviceModel::readout_error() const {
  std::vector<qsim::ReadoutConfusion> per_qubit;
  per_qubit.reserve(state_.qubits.size());
  const double thermal_penalty =
      kReadoutErrorPerDegCDay * ambient_drift_c_per_day_;
  for (const auto& qubit : state_.qubits) {
    const double err = std::clamp(
        (1.0 - qubit.readout_fidelity) + thermal_penalty, 0.0, 0.5);
    // Readout of |1> is slightly worse than |0> (T1 decay during readout),
    // split 40/60 around the assignment error.
    per_qubit.push_back({0.8 * err, 1.2 * err});
  }
  return qsim::ReadoutError(std::move(per_qubit));
}

double DeviceModel::gate_process_fidelity(const circuit::Operation& op) const {
  using circuit::OpKind;
  if (op.kind == OpKind::kBarrier || op.kind == OpKind::kMeasure ||
      op.kind == OpKind::kI)
    return 1.0;
  if (circuit::op_is_two_qubit(op.kind)) {
    const int edge = topology_.edge_index(op.qubits[0], op.qubits[1]);
    const double avg =
        state_.couplers[static_cast<std::size_t>(edge)].fidelity_cz;
    return 1.0 - qsim::pauli_error_prob_from_avg_fidelity(avg, 2);
  }
  const double avg =
      state_.qubits[static_cast<std::size_t>(op.qubits[0])].fidelity_1q;
  return 1.0 - qsim::pauli_error_prob_from_avg_fidelity(avg, 1);
}

double DeviceModel::estimate_circuit_fidelity(
    const circuit::Circuit& circuit) const {
  double fidelity = 1.0;
  for (const auto& op : circuit.ops()) fidelity *= gate_process_fidelity(op);
  const double thermal_penalty =
      kReadoutErrorPerDegCDay * ambient_drift_c_per_day_;
  for (int q : circuit.measured_qubits()) {
    const double ro = std::clamp(
        state_.qubits[static_cast<std::size_t>(q)].readout_fidelity -
            thermal_penalty,
        0.5, 1.0);
    fidelity *= ro;
  }
  return fidelity;
}

void DeviceModel::validate_executable(const circuit::Circuit& circuit) const {
  expects(circuit.num_qubits() == topology_.num_qubits(),
          "execute: circuit register must match the device "
          "(compile/route first)");
  for (const auto& op : circuit.ops()) {
    if (circuit::op_is_two_qubit(op.kind)) {
      expects(topology_.has_edge(op.qubits[0], op.qubits[1]),
              "execute: two-qubit gate between uncoupled qubits q" +
                  std::to_string(op.qubits[0]) + ", q" +
                  std::to_string(op.qubits[1]) + " — route the circuit first");
    }
  }
}

Seconds DeviceModel::shot_duration(const circuit::Circuit& circuit) const {
  const std::size_t total_depth = circuit.depth();
  const std::size_t depth_2q =
      std::min(circuit.two_qubit_gate_count(), total_depth);
  const std::size_t depth_1q = total_depth - depth_2q;
  return spec_.shot_duration(depth_1q, depth_2q);
}

ExecutionResult DeviceModel::execute(const circuit::Circuit& circuit,
                                     std::size_t shots, Rng& rng,
                                     ExecutionMode mode) {
  expects(shots > 0, "execute: need at least one shot");
  validate_executable(circuit);

  ExecutionResult result;
  result.shots = shots;
  result.estimated_fidelity = estimate_circuit_fidelity(circuit);
  result.wall_time = static_cast<double>(shots) * shot_duration(circuit);

  const std::vector<int> measured = circuit.measured_qubits();
  result.counts.set_num_qubits(static_cast<int>(measured.size()));

  if (mode == ExecutionMode::kEstimateOnly) return result;

  // Simulate only the active (touched or measured) qubits: idle qubits of
  // the register stay in |0> and would only waste state-vector memory.
  std::vector<int> active;
  {
    std::vector<bool> used(static_cast<std::size_t>(num_qubits()), false);
    for (const auto& op : circuit.ops())
      for (int q : op.qubits) used[static_cast<std::size_t>(q)] = true;
    for (int q : measured) used[static_cast<std::size_t>(q)] = true;
    for (int q = 0; q < num_qubits(); ++q)
      if (used[static_cast<std::size_t>(q)]) active.push_back(q);
  }
  std::vector<int> phys_to_dense(static_cast<std::size_t>(num_qubits()), -1);
  for (std::size_t d = 0; d < active.size(); ++d)
    phys_to_dense[static_cast<std::size_t>(active[d])] = static_cast<int>(d);
  const int dense_qubits = static_cast<int>(active.size());
  const auto dense_op = [&](const circuit::Operation& op) {
    circuit::Operation out = op;
    for (auto& q : out.qubits) q = phys_to_dense[static_cast<std::size_t>(q)];
    return out;
  };
  std::vector<int> dense_measured;
  dense_measured.reserve(measured.size());
  for (int q : measured)
    dense_measured.push_back(phys_to_dense[static_cast<std::size_t>(q)]);

  // Per-dense-qubit readout confusion from the physical elements.
  const qsim::ReadoutError full_readout = readout_error();
  std::vector<qsim::ReadoutConfusion> dense_confusion;
  dense_confusion.reserve(active.size());
  for (int q : active) dense_confusion.push_back(full_readout.qubit(q));
  const qsim::ReadoutError readout(std::move(dense_confusion));

  if (mode == ExecutionMode::kAuto) {
    mode = (dense_qubits <= 12 && shots <= 256)
               ? ExecutionMode::kTrajectory
               : ExecutionMode::kGlobalDepolarizing;
  }

  if (mode == ExecutionMode::kTrajectory) {
    qsim::StateVector state(dense_qubits);
    for (std::size_t shot = 0; shot < shots; ++shot) {
      state.reset();
      for (const auto& op : circuit.ops()) {
        if (op.kind == circuit::OpKind::kMeasure ||
            op.kind == circuit::OpKind::kBarrier)
          continue;
        const circuit::Operation mapped = dense_op(op);
        circuit::apply_op(state, mapped);
        if (circuit::op_is_two_qubit(op.kind)) {
          const int edge = topology_.edge_index(op.qubits[0], op.qubits[1]);
          const double p = qsim::pauli_error_prob_from_avg_fidelity(
              state_.couplers[static_cast<std::size_t>(edge)].fidelity_cz, 2);
          state.apply_pauli_error_2q(mapped.qubits[0], mapped.qubits[1], p,
                                     rng);
        } else if (op.kind != circuit::OpKind::kI) {
          const double p = qsim::pauli_error_prob_from_avg_fidelity(
              state_.qubits[static_cast<std::size_t>(op.qubits[0])]
                  .fidelity_1q,
              1);
          state.apply_pauli_error(mapped.qubits[0], p, rng);
        }
      }
      const std::uint64_t dense = state.sample(1, rng).front();
      const std::uint64_t noisy = readout.corrupt(dense, rng);
      result.counts.add(circuit::compact_outcome(noisy, dense_measured));
    }
    return result;
  }

  // Global-depolarizing surrogate: fold gate errors into a single success
  // probability over the ideal distribution (readout handled per bit).
  double gate_process_product = 1.0;
  for (const auto& op : circuit.ops())
    gate_process_product *= gate_process_fidelity(op);

  qsim::StateVector state(dense_qubits);
  for (const auto& op : circuit.ops()) {
    if (op.kind == circuit::OpKind::kMeasure ||
        op.kind == circuit::OpKind::kBarrier)
      continue;
    circuit::apply_op(state, dense_op(op));
  }
  const auto samples = state.sample(shots, rng);
  const std::uint64_t dense_dim = std::uint64_t{1} << dense_qubits;
  for (std::uint64_t sample : samples) {
    std::uint64_t outcome = sample;
    if (!rng.bernoulli(gate_process_product))
      outcome = rng.uniform_index(dense_dim);
    outcome = readout.corrupt(outcome, rng);
    result.counts.add(circuit::compact_outcome(outcome, dense_measured));
  }
  return result;
}

}  // namespace hpcqc::device
