#include "hpcqc/device/compiled_program.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::device {

namespace {

qsim::Matrix2 matrix_1q(const circuit::Operation& op) {
  using circuit::OpKind;
  switch (op.kind) {
    case OpKind::kX: return qsim::gate_x();
    case OpKind::kY: return qsim::gate_y();
    case OpKind::kZ: return qsim::gate_z();
    case OpKind::kH: return qsim::gate_h();
    case OpKind::kS: return qsim::gate_s();
    case OpKind::kSdg: return qsim::gate_sdg();
    case OpKind::kT: return qsim::gate_t();
    case OpKind::kTdg: return qsim::gate_tdg();
    case OpKind::kSx: return qsim::gate_sx();
    case OpKind::kRx: return qsim::gate_rx(op.params[0]);
    case OpKind::kRy: return qsim::gate_ry(op.params[0]);
    case OpKind::kRz: return qsim::gate_rz(op.params[0]);
    case OpKind::kU:
      return qsim::gate_u(op.params[0], op.params[1], op.params[2]);
    case OpKind::kPrx: return qsim::gate_prx(op.params[0], op.params[1]);
    default:
      throw Error("CompiledProgram: op is not a single-qubit gate");
  }
}

/// Depolarizing "keep" parameter of a 1q Pauli-error channel with error
/// probability p: the channel is lambda*rho + (1-lambda)*I/2 with
/// lambda = 1 - 4p/3, and composition multiplies the lambdas.
double depol_keep_1q(double p) { return 1.0 - (4.0 / 3.0) * p; }

double depol_error_from_keep_1q(double keep) {
  return std::clamp(0.75 * (1.0 - keep), 0.0, 1.0);
}

}  // namespace

CompiledProgram::CompiledProgram(const circuit::Circuit& circuit,
                                 const Topology& topology,
                                 const CalibrationState& calibration) {
  using circuit::OpKind;
  const int num_physical = topology.num_qubits();
  expects(circuit.num_qubits() == num_physical,
          "CompiledProgram: circuit register must match the device");

  // Simulate only the active (touched or measured) qubits: idle qubits
  // stay in |0> and would only waste state-vector memory.
  const std::vector<int> measured = circuit.measured_qubits();
  std::vector<bool> used(static_cast<std::size_t>(num_physical), false);
  for (const auto& op : circuit.ops())
    for (int q : op.qubits) used[static_cast<std::size_t>(q)] = true;
  for (int q : measured) used[static_cast<std::size_t>(q)] = true;
  for (int q = 0; q < num_physical; ++q)
    if (used[static_cast<std::size_t>(q)]) active_.push_back(q);
  if (active_.empty()) active_.push_back(0);

  std::vector<int> phys_to_dense(static_cast<std::size_t>(num_physical), -1);
  for (std::size_t d = 0; d < active_.size(); ++d)
    phys_to_dense[static_cast<std::size_t>(active_[d])] = static_cast<int>(d);
  dense_qubits_ = static_cast<int>(active_.size());
  dense_measured_.reserve(measured.size());
  for (int q : measured)
    dense_measured_.push_back(phys_to_dense[static_cast<std::size_t>(q)]);

  // Per-dense-qubit 1q error rate, resolved once from the snapshot (it
  // depends only on the qubit, not the gate kind).
  std::vector<double> keep_1q(active_.size());
  for (std::size_t d = 0; d < active_.size(); ++d) {
    const double p = qsim::pauli_error_prob_from_avg_fidelity(
        calibration.qubits[static_cast<std::size_t>(active_[d])].fidelity_1q,
        1);
    keep_1q[d] = depol_keep_1q(p);
  }

  // Fuse maximal runs of 1q gates per qubit: a pending matrix accumulates
  // left-multiplications until a 2q gate (or the end of the circuit)
  // forces a flush. Gates on other qubits commute past the pending run,
  // so flushing out of circuit order is exact.
  struct Pending {
    qsim::Matrix2 m{};
    double keep = 1.0;
    bool any = false;
    std::vector<std::uint32_t> sources;  ///< constituent ops, in order
  };
  std::vector<Pending> pending(active_.size());
  const auto flush = [&](int d) {
    auto& slot = pending[static_cast<std::size_t>(d)];
    if (!slot.any) return;
    CompiledOp op;
    op.kind = CompiledOp::Kind::kFused1q;
    op.q0 = d;
    op.m2 = slot.m;
    op.error_prob = depol_error_from_keep_1q(slot.keep);
    ops_.push_back(op);
    sources_.push_back(std::move(slot.sources));
    slot = Pending{};
  };

  const auto& source_ops = circuit.ops();
  for (std::size_t i = 0; i < source_ops.size(); ++i) {
    const auto& op = source_ops[i];
    if (op.kind == OpKind::kMeasure || op.kind == OpKind::kBarrier ||
        op.kind == OpKind::kI)
      continue;  // kI carries no error in the uncompiled engine either
    if (circuit::op_is_two_qubit(op.kind)) {
      const int d0 = phys_to_dense[static_cast<std::size_t>(op.qubits[0])];
      const int d1 = phys_to_dense[static_cast<std::size_t>(op.qubits[1])];
      flush(d0);
      flush(d1);
      const int edge = topology.edge_index(op.qubits[0], op.qubits[1]);
      CompiledOp out;
      out.q0 = d0;
      out.q1 = d1;
      out.error_prob = qsim::pauli_error_prob_from_avg_fidelity(
          calibration.couplers[static_cast<std::size_t>(edge)].fidelity_cz,
          2);
      std::vector<std::uint32_t> sources;
      switch (op.kind) {
        case OpKind::kCz:
          out.kind = CompiledOp::Kind::kCphase;
          out.theta = M_PI;
          break;
        case OpKind::kCphase:
          out.kind = CompiledOp::Kind::kCphase;
          out.theta = op.params[0];
          sources.push_back(static_cast<std::uint32_t>(i));
          break;
        case OpKind::kCx:
          out.kind = CompiledOp::Kind::kDense2q;
          out.m4 = qsim::gate_cx();
          break;
        case OpKind::kSwap:
          out.kind = CompiledOp::Kind::kDense2q;
          out.m4 = qsim::gate_swap();
          break;
        case OpKind::kIswap:
          out.kind = CompiledOp::Kind::kDense2q;
          out.m4 = qsim::gate_iswap();
          break;
        default:
          throw Error("CompiledProgram: unhandled two-qubit op");
      }
      ops_.push_back(out);
      sources_.push_back(std::move(sources));
      continue;
    }
    const int d = phys_to_dense[static_cast<std::size_t>(op.qubits[0])];
    auto& slot = pending[static_cast<std::size_t>(d)];
    const qsim::Matrix2 g = matrix_1q(op);
    if (slot.any) {
      slot.m = qsim::matmul(g, slot.m);  // g acts after the pending run
    } else {
      slot.m = g;
      slot.any = true;
    }
    slot.keep *= keep_1q[static_cast<std::size_t>(d)];
    slot.sources.push_back(static_cast<std::uint32_t>(i));
  }
  for (int d = 0; d < dense_qubits_; ++d) flush(d);
  source_shape_hash_ = circuit.shape_hash();
}

void CompiledProgram::rebind(const circuit::Circuit& circuit) {
  expects(circuit.shape_hash() == source_shape_hash_,
          "CompiledProgram::rebind: circuit shape differs from the source");
  const auto& source_ops = circuit.ops();
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    auto& op = ops_[i];
    const auto& sources = sources_[i];
    if (sources.empty()) continue;  // angle-independent step
    if (op.kind == CompiledOp::Kind::kCphase) {
      op.theta = source_ops[sources[0]].params[0];
      continue;
    }
    // Replay the constructor's accumulation order exactly, so the fused
    // matrix is bit-identical to a fresh compilation of `circuit`.
    qsim::Matrix2 m = matrix_1q(source_ops[sources[0]]);
    for (std::size_t s = 1; s < sources.size(); ++s)
      m = qsim::matmul(matrix_1q(source_ops[sources[s]]), m);
    op.m2 = m;
  }
}

void CompiledProgram::draw_insertions(Rng& rng,
                                      std::vector<PauliInsertion>& out) const {
  out.clear();
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const auto& op = ops_[i];
    if (op.error_prob <= 0.0) continue;
    if (!rng.bernoulli(op.error_prob)) continue;
    PauliInsertion ins;
    ins.op_index = static_cast<std::uint32_t>(i);
    if (op.kind == CompiledOp::Kind::kFused1q) {
      ins.which = static_cast<std::uint8_t>(rng.uniform_index(3));
    } else {
      // Uniform over the 15 non-identity two-qubit Paulis, matching
      // StateVector::apply_pauli_error_2q's draw.
      ins.which = static_cast<std::uint8_t>(1 + rng.uniform_index(15));
    }
    out.push_back(ins);
  }
}

void CompiledProgram::apply_step(qsim::StateVector& state,
                                 std::size_t i) const {
  const auto& op = ops_[i];
  switch (op.kind) {
    case CompiledOp::Kind::kFused1q: state.apply_1q(op.m2, op.q0); break;
    case CompiledOp::Kind::kCphase:
      state.apply_cphase(op.theta, op.q0, op.q1);
      break;
    case CompiledOp::Kind::kDense2q:
      state.apply_2q(op.m4, op.q0, op.q1);
      break;
  }
}

void CompiledProgram::run_range(
    qsim::StateVector& state, std::size_t first,
    std::span<const PauliInsertion> insertions) const {
  static const qsim::Matrix2 kPauli[4] = {qsim::gate_i(), qsim::gate_x(),
                                          qsim::gate_y(), qsim::gate_z()};
  std::size_t next = 0;
  for (std::size_t i = first; i < ops_.size(); ++i) {
    apply_step(state, i);
    if (next < insertions.size() && insertions[next].op_index == i) {
      const int which = insertions[next].which;
      ++next;
      if (ops_[i].kind == CompiledOp::Kind::kFused1q) {
        state.apply_1q(kPauli[which + 1], ops_[i].q0);
      } else {
        if (which % 4) state.apply_1q(kPauli[which % 4], ops_[i].q0);
        if (which / 4) state.apply_1q(kPauli[which / 4], ops_[i].q1);
      }
    }
  }
}

void CompiledProgram::run(qsim::StateVector& state, Rng& rng) const {
  std::vector<PauliInsertion> insertions;
  draw_insertions(rng, insertions);
  run_range(state, 0, insertions);
}

void CompiledProgram::run_ideal(qsim::StateVector& state) const {
  for (const auto& op : ops_) {
    switch (op.kind) {
      case CompiledOp::Kind::kFused1q: state.apply_1q(op.m2, op.q0); break;
      case CompiledOp::Kind::kCphase:
        state.apply_cphase(op.theta, op.q0, op.q1);
        break;
      case CompiledOp::Kind::kDense2q:
        state.apply_2q(op.m4, op.q0, op.q1);
        break;
    }
  }
}

}  // namespace hpcqc::device
