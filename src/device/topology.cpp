#include "hpcqc/device/topology.hpp"

#include <algorithm>
#include <deque>

#include "hpcqc/common/error.hpp"

namespace hpcqc::device {

Topology::Topology(int num_qubits, std::vector<Edge> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)) {
  expects(num_qubits >= 1, "Topology: need at least one qubit");
  adjacency_.resize(static_cast<std::size_t>(num_qubits));
  for (auto& edge : edges_) {
    expects(edge.first != edge.second, "Topology: self-loop coupler");
    if (edge.first > edge.second) std::swap(edge.first, edge.second);
    expects(edge.first >= 0 && edge.second < num_qubits,
            "Topology: edge endpoint out of range");
  }
  std::sort(edges_.begin(), edges_.end());
  const auto last = std::unique(edges_.begin(), edges_.end());
  expects(last == edges_.end(), "Topology: duplicate coupler");
  for (const auto& [a, b] : edges_) {
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
}

Topology Topology::square_grid(int rows, int cols) {
  expects(rows >= 1 && cols >= 1, "square_grid: invalid dimensions");
  std::vector<Edge> edges;
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  Topology topo(rows * cols, std::move(edges));
  topo.grid_rows_ = rows;
  topo.grid_cols_ = cols;
  return topo;
}

Topology Topology::line(int num_qubits) {
  std::vector<Edge> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  Topology topo(num_qubits, std::move(edges));
  topo.grid_rows_ = 1;
  topo.grid_cols_ = num_qubits;
  return topo;
}

bool Topology::has_edge(int a, int b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(edges_.begin(), edges_.end(), Edge{a, b});
}

int Topology::edge_index(int a, int b) const {
  if (a > b) std::swap(a, b);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), Edge{a, b});
  if (it == edges_.end() || *it != Edge{a, b})
    throw NotFoundError("edge_index: no coupler between the given qubits");
  return static_cast<int>(std::distance(edges_.begin(), it));
}

const std::vector<int>& Topology::neighbors(int qubit) const {
  expects(qubit >= 0 && qubit < num_qubits_, "neighbors: qubit out of range");
  return adjacency_[static_cast<std::size_t>(qubit)];
}

void Topology::compute_distances() const {
  distances_.assign(static_cast<std::size_t>(num_qubits_),
                    std::vector<int>(static_cast<std::size_t>(num_qubits_), -1));
  for (int start = 0; start < num_qubits_; ++start) {
    auto& dist = distances_[static_cast<std::size_t>(start)];
    dist[static_cast<std::size_t>(start)] = 0;
    std::deque<int> frontier{start};
    while (!frontier.empty()) {
      const int node = frontier.front();
      frontier.pop_front();
      for (int next : adjacency_[static_cast<std::size_t>(node)]) {
        if (dist[static_cast<std::size_t>(next)] < 0) {
          dist[static_cast<std::size_t>(next)] =
              dist[static_cast<std::size_t>(node)] + 1;
          frontier.push_back(next);
        }
      }
    }
  }
}

int Topology::distance(int a, int b) const {
  expects(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
          "distance: qubit out of range");
  if (distances_.empty()) compute_distances();
  return distances_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

bool Topology::is_connected() const {
  for (int q = 0; q < num_qubits_; ++q)
    if (distance(0, q) < 0) return false;
  return true;
}

std::vector<int> Topology::coupled_chain() const {
  ensure_state(grid_rows_ > 0,
               "coupled_chain: only defined for grid-constructed topologies");
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_qubits_));
  for (int r = 0; r < grid_rows_; ++r) {
    if (r % 2 == 0) {
      for (int c = 0; c < grid_cols_; ++c) order.push_back(r * grid_cols_ + c);
    } else {
      for (int c = grid_cols_ - 1; c >= 0; --c)
        order.push_back(r * grid_cols_ + c);
    }
  }
  return order;
}

}  // namespace hpcqc::device
