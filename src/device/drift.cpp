#include "hpcqc/device/drift.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::device {

DriftModel::DriftModel(DriftParams params) : params_(params) {
  expects(params_.drift_timescale > 0.0, "DriftModel: timescale must be > 0");
  expects(params_.degraded_error_factor >= 1.0,
          "DriftModel: degraded factor must be >= 1");
}

double DriftModel::step_error(double error, double fresh_error, Seconds dt,
                              Rng& rng) const {
  // OU in log space: log-error relaxes toward log(degraded asymptote).
  error = std::clamp(error, 1e-7, 0.5);
  fresh_error = std::clamp(fresh_error, 1e-7, 0.5);
  const double log_target =
      std::log(fresh_error * params_.degraded_error_factor);
  const double theta = 1.0 / params_.drift_timescale;  // relaxation rate
  const double alpha = 1.0 - std::exp(-theta * dt);
  double log_error = std::log(error);
  log_error += alpha * (log_target - log_error);
  const double sigma = params_.volatility * std::sqrt(dt / days(1.0));
  log_error += sigma * rng.normal();
  return std::clamp(std::exp(log_error), 1e-7, 0.5);
}

void DriftModel::advance(CalibrationState& state,
                         const CalibrationState& fresh, Seconds dt,
                         Rng& rng) const {
  expects(state.qubits.size() == fresh.qubits.size() &&
              state.couplers.size() == fresh.couplers.size(),
          "DriftModel::advance: snapshot shapes differ");
  expects(dt >= 0.0, "DriftModel::advance: negative interval");
  if (dt == 0.0) return;

  for (std::size_t q = 0; q < state.qubits.size(); ++q) {
    auto& live = state.qubits[q];
    const auto& anchor = fresh.qubits[q];

    live.fidelity_1q =
        1.0 - step_error(1.0 - live.fidelity_1q, 1.0 - anchor.fidelity_1q, dt,
                         rng);
    live.readout_fidelity =
        1.0 - step_error(1.0 - live.readout_fidelity,
                         1.0 - anchor.readout_fidelity, dt, rng);

    // T1/T2 jitter (multiplicative random walk pinned to the anchor).
    const double t_sigma = params_.t1_volatility * std::sqrt(dt / days(1.0));
    live.t1_us = std::max(
        1.0, live.t1_us * std::exp(t_sigma * rng.normal()) *
                 std::pow(anchor.t1_us / live.t1_us, 0.1));
    live.t2_us = std::min(
        2.0 * live.t1_us,
        std::max(0.5, live.t2_us * std::exp(t_sigma * rng.normal()) *
                          std::pow(anchor.t2_us / live.t2_us, 0.1)));

    // TLS defect arrivals.
    const double p_tls =
        1.0 - std::exp(-params_.tls_rate_per_qubit_day * (dt / days(1.0)));
    if (!live.tls_defect && rng.bernoulli(p_tls)) {
      live.tls_defect = true;
      live.fidelity_1q =
          1.0 - std::min(0.5, (1.0 - live.fidelity_1q) * params_.tls_error_factor);
    }
  }

  for (std::size_t c = 0; c < state.couplers.size(); ++c) {
    auto& live = state.couplers[c];
    const auto& anchor = fresh.couplers[c];
    live.fidelity_cz = 1.0 - step_error(1.0 - live.fidelity_cz,
                                        1.0 - anchor.fidelity_cz, dt, rng);
  }
}

}  // namespace hpcqc::device
