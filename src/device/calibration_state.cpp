#include "hpcqc/device/calibration_state.hpp"

#include <algorithm>

#include "hpcqc/common/stats.hpp"

namespace hpcqc::device {

namespace {

template <typename Container, typename Getter>
double median_of(const Container& items, Getter get) {
  if (items.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(items.size());
  for (const auto& item : items) values.push_back(get(item));
  return hpcqc::median(values);
}

}  // namespace

double CalibrationState::median_fidelity_1q() const {
  return median_of(qubits, [](const QubitMetrics& q) { return q.fidelity_1q; });
}

double CalibrationState::median_readout_fidelity() const {
  return median_of(qubits,
                   [](const QubitMetrics& q) { return q.readout_fidelity; });
}

double CalibrationState::median_fidelity_cz() const {
  return median_of(couplers,
                   [](const CouplerMetrics& c) { return c.fidelity_cz; });
}

double CalibrationState::min_fidelity_cz() const {
  if (couplers.empty()) return 0.0;
  return std::min_element(couplers.begin(), couplers.end(),
                          [](const CouplerMetrics& a, const CouplerMetrics& b) {
                            return a.fidelity_cz < b.fidelity_cz;
                          })
      ->fidelity_cz;
}

int CalibrationState::tls_defect_count() const {
  int n = 0;
  for (const auto& q : qubits)
    if (q.tls_defect) ++n;
  return n;
}

Seconds DeviceSpec::shot_duration(std::size_t depth_1q,
                                  std::size_t depth_2q) const {
  return microseconds(passive_reset_us) +
         static_cast<double>(depth_1q) * prx_duration_ns * 1e-9 +
         static_cast<double>(depth_2q) * cz_duration_ns * 1e-9 +
         microseconds(readout_duration_us);
}

}  // namespace hpcqc::device
