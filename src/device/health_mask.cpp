#include "hpcqc/device/health_mask.hpp"

#include <algorithm>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::device {

HealthMask::HealthMask(const Topology& topology)
    : qubit_up_(static_cast<std::size_t>(topology.num_qubits()), 1),
      coupler_up_(static_cast<std::size_t>(topology.num_edges()), 1) {}

bool HealthMask::qubit_up(int qubit) const {
  expects(qubit >= 0 && qubit < num_qubits(), "HealthMask: qubit out of range");
  return qubit_up_[static_cast<std::size_t>(qubit)] != 0;
}

bool HealthMask::coupler_up(int edge_index) const {
  expects(edge_index >= 0 && edge_index < num_couplers(),
          "HealthMask: coupler out of range");
  return coupler_up_[static_cast<std::size_t>(edge_index)] != 0;
}

bool HealthMask::coupler_usable(const Topology& topology,
                                int edge_index) const {
  if (!coupler_up(edge_index)) return false;
  const Topology::Edge& edge =
      topology.edges()[static_cast<std::size_t>(edge_index)];
  return qubit_up(edge.first) && qubit_up(edge.second);
}

void HealthMask::set_qubit(int qubit, bool up) {
  expects(qubit >= 0 && qubit < num_qubits(), "HealthMask: qubit out of range");
  qubit_up_[static_cast<std::size_t>(qubit)] = up ? 1 : 0;
}

void HealthMask::set_coupler(int edge_index, bool up) {
  expects(edge_index >= 0 && edge_index < num_couplers(),
          "HealthMask: coupler out of range");
  coupler_up_[static_cast<std::size_t>(edge_index)] = up ? 1 : 0;
}

bool HealthMask::all_healthy() const {
  const auto up = [](char c) { return c != 0; };
  return std::all_of(qubit_up_.begin(), qubit_up_.end(), up) &&
         std::all_of(coupler_up_.begin(), coupler_up_.end(), up);
}

int HealthMask::healthy_qubit_count() const {
  return static_cast<int>(
      std::count(qubit_up_.begin(), qubit_up_.end(), char{1}));
}

int HealthMask::usable_coupler_count(const Topology& topology) const {
  int count = 0;
  for (int e = 0; e < num_couplers(); ++e)
    if (coupler_usable(topology, e)) ++count;
  return count;
}

std::vector<std::vector<int>> HealthMask::healthy_components(
    const Topology& topology) const {
  expects(topology.num_qubits() == num_qubits() &&
              topology.num_edges() == num_couplers(),
          "HealthMask: topology shape mismatch");
  std::vector<std::vector<int>> components;
  std::vector<char> visited(qubit_up_.size(), 0);
  for (int start = 0; start < num_qubits(); ++start) {
    if (visited[static_cast<std::size_t>(start)] || !qubit_up(start)) continue;
    // BFS over usable couplers only.
    std::vector<int> component{start};
    visited[static_cast<std::size_t>(start)] = 1;
    for (std::size_t head = 0; head < component.size(); ++head) {
      const int q = component[head];
      for (int next : topology.neighbors(q)) {
        if (visited[static_cast<std::size_t>(next)] || !qubit_up(next))
          continue;
        if (!coupler_up(topology.edge_index(q, next))) continue;
        visited[static_cast<std::size_t>(next)] = 1;
        component.push_back(next);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  std::stable_sort(components.begin(), components.end(),
                   [](const std::vector<int>& a, const std::vector<int>& b) {
                     if (a.size() != b.size()) return a.size() > b.size();
                     return a.front() < b.front();
                   });
  return components;
}

std::vector<int> HealthMask::largest_component(const Topology& topology) const {
  auto components = healthy_components(topology);
  if (components.empty()) return {};
  return std::move(components.front());
}

bool HealthMask::circuit_legal(const Topology& topology,
                               const circuit::Circuit& circuit) const {
  for (const auto& op : circuit.ops()) {
    if (op.kind == circuit::OpKind::kBarrier) continue;
    if (circuit::op_is_two_qubit(op.kind)) {
      if (!qubit_up(op.qubits[0]) || !qubit_up(op.qubits[1])) return false;
      if (!coupler_up(topology.edge_index(op.qubits[0], op.qubits[1])))
        return false;
      continue;
    }
    for (int q : op.qubits)
      if (!qubit_up(q)) return false;
  }
  return true;
}

HealthMask derive_health(const Topology& topology,
                         const CalibrationState& calibration,
                         const HealthPolicy& policy) {
  expects(calibration.qubits.size() ==
                  static_cast<std::size_t>(topology.num_qubits()) &&
              calibration.couplers.size() ==
                  static_cast<std::size_t>(topology.num_edges()),
          "derive_health: calibration shape mismatch");
  HealthMask mask(topology);
  for (int q = 0; q < topology.num_qubits(); ++q) {
    const QubitMetrics& m = calibration.qubits[static_cast<std::size_t>(q)];
    const bool down = m.fidelity_1q < policy.min_fidelity_1q ||
                      m.readout_fidelity < policy.min_readout_fidelity ||
                      (policy.mask_tls_defects && m.tls_defect);
    if (down) mask.set_qubit(q, false);
  }
  for (int e = 0; e < topology.num_edges(); ++e) {
    const CouplerMetrics& m = calibration.couplers[static_cast<std::size_t>(e)];
    if (m.fidelity_cz < policy.min_fidelity_cz) mask.set_coupler(e, false);
  }
  return mask;
}

}  // namespace hpcqc::device
