#include "hpcqc/device/presets.hpp"

namespace hpcqc::device {

DeviceModel make_iqm20(Rng& rng) {
  return make_grid("iqm-20q", 4, 5, DeviceSpec{}, DriftParams{}, rng);
}

DeviceModel make_grid54(Rng& rng) {
  return make_grid("grid-54q", 6, 9, DeviceSpec{}, DriftParams{}, rng);
}

DeviceModel make_grid150(Rng& rng) {
  return make_grid("grid-150q", 10, 15, DeviceSpec{}, DriftParams{}, rng);
}

DeviceModel make_grid(std::string name, int rows, int cols, DeviceSpec spec,
                      DriftParams drift, Rng& rng) {
  return DeviceModel(std::move(name), Topology::square_grid(rows, cols), spec,
                     drift, rng);
}

}  // namespace hpcqc::device
