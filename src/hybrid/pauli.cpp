#include "hpcqc/hybrid/pauli.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "hpcqc/common/error.hpp"
#include "hpcqc/common/rng.hpp"

namespace hpcqc::hybrid {

PauliString::PauliString(const std::string& label) : ops_(label) {
  for (char op : ops_)
    expects(op == 'I' || op == 'X' || op == 'Y' || op == 'Z',
            "PauliString: label characters must be in {I, X, Y, Z}");
}

char PauliString::op(int qubit) const {
  expects(qubit >= 0 && qubit < num_qubits(),
          "PauliString::op: qubit out of range");
  return ops_[static_cast<std::size_t>(qubit)];
}

bool PauliString::is_identity() const {
  return std::all_of(ops_.begin(), ops_.end(),
                     [](char op) { return op == 'I'; });
}

std::uint64_t PauliString::support() const {
  std::uint64_t mask = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (ops_[q] != 'I') mask |= std::uint64_t{1} << q;
  return mask;
}

std::string PauliString::basis_key() const {
  // Z and I are both measurable in the computational basis; X/Y need their
  // specific rotation. Two strings commute qubit-wise iff on every qubit
  // their non-identity ops agree.
  std::string key = ops_;
  for (char& op : key)
    if (op == 'Z') op = 'I';
  return key;
}

void PauliString::append_basis_rotation(circuit::Circuit& circuit) const {
  expects(circuit.num_qubits() >= num_qubits(),
          "append_basis_rotation: circuit register too small");
  for (int q = 0; q < num_qubits(); ++q) {
    switch (op(q)) {
      case 'X': circuit.h(q); break;
      case 'Y':
        circuit.sdg(q);
        circuit.h(q);
        break;
      default: break;
    }
  }
}

namespace {

/// Applies a Pauli string to an amplitude vector (matrix-free).
std::vector<qsim::Complex> apply_pauli(const PauliString& pauli,
                                       const std::vector<qsim::Complex>& in,
                                       int num_qubits) {
  std::uint64_t flip_mask = 0;   // X and Y flip the bit
  std::uint64_t phase_mask = 0;  // Z and Y read the bit for a sign
  int y_count = 0;
  for (int q = 0; q < pauli.num_qubits(); ++q) {
    switch (pauli.op(q)) {
      case 'X': flip_mask |= std::uint64_t{1} << q; break;
      case 'Y':
        flip_mask |= std::uint64_t{1} << q;
        phase_mask |= std::uint64_t{1} << q;
        ++y_count;
        break;
      case 'Z': phase_mask |= std::uint64_t{1} << q; break;
      default: break;
    }
  }
  (void)num_qubits;
  // Global factor from Y = i * X * Z: each Y contributes i, and the sign
  // convention below applies Z *before* X.
  qsim::Complex y_factor{1.0, 0.0};
  for (int i = 0; i < y_count; ++i) y_factor *= qsim::Complex{0.0, 1.0};

  std::vector<qsim::Complex> out(in.size());
  for (std::uint64_t idx = 0; idx < in.size(); ++idx) {
    const std::uint64_t target = idx ^ flip_mask;
    const int sign_bits = std::popcount(idx & phase_mask) & 1;
    out[target] = (sign_bits ? -1.0 : 1.0) * y_factor * in[idx];
  }
  return out;
}

}  // namespace

double PauliString::expectation(const qsim::StateVector& state) const {
  expects(state.num_qubits() >= num_qubits(),
          "PauliString::expectation: state register too small");
  const auto& amps = state.amplitudes();
  const auto transformed = apply_pauli(*this, amps, state.num_qubits());
  qsim::Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < amps.size(); ++i)
    acc += std::conj(amps[i]) * transformed[i];
  return acc.real();
}

double PauliString::expectation_from_counts(const qsim::Counts& counts) const {
  return counts.expectation_z(support());
}

Hamiltonian::Hamiltonian(int num_qubits) : num_qubits_(num_qubits) {
  expects(num_qubits >= 1 && num_qubits <= 20,
          "Hamiltonian: qubit count in [1, 20]");
}

void Hamiltonian::add_term(double coefficient, const std::string& label) {
  expects(static_cast<int>(label.size()) == num_qubits_,
          "Hamiltonian::add_term: label length must equal the register");
  terms_.push_back({coefficient, PauliString(label)});
}

double Hamiltonian::identity_offset() const {
  double offset = 0.0;
  for (const auto& term : terms_)
    if (term.pauli.is_identity()) offset += term.coefficient;
  return offset;
}

double Hamiltonian::expectation(const qsim::StateVector& state) const {
  double energy = 0.0;
  for (const auto& term : terms_)
    energy += term.coefficient * term.pauli.expectation(state);
  return energy;
}

double Hamiltonian::ground_state_energy(int iterations) const {
  // Power iteration on (shift*I - H), which makes the ground state the
  // dominant eigenvector.
  double shift = 0.0;
  for (const auto& term : terms_) shift += std::abs(term.coefficient);
  shift += 1.0;

  const std::uint64_t dim = std::uint64_t{1} << num_qubits_;
  Rng rng(0xbeefcafeULL);
  std::vector<qsim::Complex> vec(dim);
  for (auto& amp : vec) amp = {rng.normal(), rng.normal()};

  const auto apply_h = [&](const std::vector<qsim::Complex>& in) {
    std::vector<qsim::Complex> out(in.size(), {0.0, 0.0});
    for (const auto& term : terms_) {
      const auto contribution = apply_pauli(term.pauli, in, num_qubits_);
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] += term.coefficient * contribution[i];
    }
    return out;
  };
  const auto normalize = [](std::vector<qsim::Complex>& v) {
    double norm = 0.0;
    for (const auto& amp : v) norm += std::norm(amp);
    norm = std::sqrt(norm);
    for (auto& amp : v) amp /= norm;
  };

  normalize(vec);
  for (int iter = 0; iter < iterations; ++iter) {
    auto hv = apply_h(vec);
    for (std::size_t i = 0; i < vec.size(); ++i)
      vec[i] = shift * vec[i] - hv[i];
    normalize(vec);
  }
  // Rayleigh quotient <v|H|v>.
  const auto hv = apply_h(vec);
  qsim::Complex energy{0.0, 0.0};
  for (std::size_t i = 0; i < vec.size(); ++i)
    energy += std::conj(vec[i]) * hv[i];
  return energy.real();
}

std::vector<std::vector<PauliTerm>> Hamiltonian::measurement_groups() const {
  std::map<std::string, std::vector<PauliTerm>> groups;
  for (const auto& term : terms_)
    groups[term.pauli.basis_key()].push_back(term);
  std::vector<std::vector<PauliTerm>> out;
  for (auto& [key, terms] : groups) out.push_back(std::move(terms));
  return out;
}

Hamiltonian h2_hamiltonian() {
  // O'Malley et al. / standard parity-mapped 2-qubit reduction at the
  // equilibrium geometry; ground energy -1.8572750 Ha.
  Hamiltonian h(2);
  h.add_term(-1.052373245772859, "II");
  h.add_term(+0.39793742484318045, "ZI");
  h.add_term(-0.39793742484318045, "IZ");
  h.add_term(-0.01128010425623538, "ZZ");
  h.add_term(+0.18093119978423156, "XX");
  return h;
}

Hamiltonian maxcut_hamiltonian(int num_qubits,
                               const std::vector<std::pair<int, int>>& edges) {
  Hamiltonian h(num_qubits);
  std::string identity(static_cast<std::size_t>(num_qubits), 'I');
  for (const auto& [a, b] : edges) {
    expects(a >= 0 && a < num_qubits && b >= 0 && b < num_qubits && a != b,
            "maxcut_hamiltonian: invalid edge");
    h.add_term(0.5, identity);
    std::string zz = identity;
    zz[static_cast<std::size_t>(a)] = 'Z';
    zz[static_cast<std::size_t>(b)] = 'Z';
    h.add_term(-0.5, zz);
  }
  return h;
}

}  // namespace hpcqc::hybrid
