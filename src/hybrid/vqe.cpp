#include "hpcqc/hybrid/vqe.hpp"

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::hybrid {

VqeDriver::VqeDriver(Hamiltonian hamiltonian, HardwareEfficientAnsatz ansatz,
                     VqeOptions options)
    : hamiltonian_(std::move(hamiltonian)),
      ansatz_(ansatz),
      options_(options) {
  expects(hamiltonian_.num_qubits() == ansatz_.num_qubits(),
          "VqeDriver: Hamiltonian and ansatz register sizes differ");
}

double estimate_expectation(const Hamiltonian& observable,
                            const circuit::Circuit& preparation,
                            const CircuitRunner& runner,
                            std::size_t shots_per_group) {
  expects(runner != nullptr, "estimate_expectation: null runner");
  expects(preparation.num_qubits() >= observable.num_qubits(),
          "estimate_expectation: preparation register too small");
  double total = 0.0;
  for (const auto& group : observable.measurement_groups()) {
    // Identity-only groups contribute their constant without a circuit.
    const bool all_identity =
        std::all_of(group.begin(), group.end(), [](const PauliTerm& t) {
          return t.pauli.is_identity();
        });
    if (all_identity) {
      for (const auto& term : group) total += term.coefficient;
      continue;
    }
    circuit::Circuit circuit = preparation;
    // The group's shared basis rotation (X/Y pattern of its basis key).
    const PauliString basis(group.front().pauli.basis_key());
    basis.append_basis_rotation(circuit);
    circuit.measure();
    const qsim::Counts counts = runner(circuit, shots_per_group);
    for (const auto& term : group) {
      if (term.pauli.is_identity())
        total += term.coefficient;
      else
        total += term.coefficient * term.pauli.expectation_from_counts(counts);
    }
  }
  return total;
}

double VqeDriver::energy(std::span<const double> params,
                         const CircuitRunner& runner,
                         std::size_t shots) const {
  // Count circuits through a wrapping runner so Result statistics hold.
  const CircuitRunner counting = [&](const circuit::Circuit& circuit,
                                     std::size_t n) {
    ++circuits_run_;
    return runner(circuit, n);
  };
  return estimate_expectation(hamiltonian_, ansatz_.bind(params), counting,
                              shots);
}

double VqeDriver::exact_energy(std::span<const double> params) const {
  const circuit::Circuit circuit = ansatz_.bind(params);
  qsim::StateVector state(circuit.num_qubits());
  circuit::apply_gates(state, circuit);
  return hamiltonian_.expectation(state);
}

VqeDriver::Result VqeDriver::run(const CircuitRunner& runner, Rng& rng) const {
  circuits_run_ = 0;
  const Objective objective = [&](std::span<const double> params) {
    return runner ? energy(params, runner, options_.shots_per_group)
                  : exact_energy(params);
  };

  std::vector<double> initial(ansatz_.parameter_count());
  for (auto& p : initial) p = rng.uniform(-0.4, 0.4);

  OptimizationResult opt;
  if (options_.use_nelder_mead) {
    opt = NelderMeadOptimizer(options_.nelder_mead)
              .minimize(objective, std::move(initial));
  } else {
    opt = SpsaOptimizer(options_.spsa)
              .minimize(objective, std::move(initial), rng);
  }

  Result result;
  result.energy = opt.best_value;
  result.parameters = std::move(opt.best_params);
  result.objective_evaluations = opt.evaluations;
  result.convergence = std::move(opt.history);
  result.circuits_run = circuits_run_;
  result.total_shots = runner ? circuits_run_ * options_.shots_per_group : 0;
  return result;
}

}  // namespace hpcqc::hybrid
