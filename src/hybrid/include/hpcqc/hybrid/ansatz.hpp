#pragma once

#include <span>

#include "hpcqc/circuit/circuit.hpp"

namespace hpcqc::hybrid {

/// Hardware-efficient variational ansatz: `layers` repetitions of per-qubit
/// RY+RZ rotations followed by a CZ entangling chain, with a final rotation
/// layer. Parameter count = (layers + 1) * 2 * qubits.
class HardwareEfficientAnsatz {
public:
  HardwareEfficientAnsatz(int num_qubits, int layers);

  int num_qubits() const { return num_qubits_; }
  int layers() const { return layers_; }
  std::size_t parameter_count() const;

  /// Builds the circuit for one parameter vector (no measurement appended).
  circuit::Circuit bind(std::span<const double> params) const;

private:
  int num_qubits_;
  int layers_;
};

/// QAOA ansatz for a ZZ-cost problem: alternating cost layers
/// exp(-i gamma/2 * Z_a Z_b) per edge (compiled as CX-RZ-CX) and mixer
/// layers RX(beta). Parameter vector = (gamma_1, beta_1, ..., gamma_p,
/// beta_p).
class QaoaAnsatz {
public:
  QaoaAnsatz(int num_qubits, std::vector<std::pair<int, int>> edges,
             int depth);

  int num_qubits() const { return num_qubits_; }
  int depth() const { return depth_; }
  std::size_t parameter_count() const {
    return 2 * static_cast<std::size_t>(depth_);
  }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  circuit::Circuit bind(std::span<const double> params) const;

private:
  int num_qubits_;
  std::vector<std::pair<int, int>> edges_;
  int depth_;
};

}  // namespace hpcqc::hybrid
