#pragma once

#include "hpcqc/hybrid/ansatz.hpp"
#include "hpcqc/hybrid/optimizer.hpp"
#include "hpcqc/hybrid/pauli.hpp"
#include "hpcqc/hybrid/vqe.hpp"

namespace hpcqc::hybrid {

/// Options of the QAOA driver.
struct QaoaOptions {
  int depth = 2;
  std::size_t shots = 2000;
  SpsaOptimizer::Options spsa;
};

/// QAOA for MaxCut — the combinatorial-optimization workload class the
/// paper's introduction motivates.
class QaoaMaxCut {
public:
  struct Result {
    double expected_cut = 0.0;   ///< <C> at the optimum
    std::uint64_t best_bitstring = 0;
    double best_cut = 0.0;       ///< cut value of the best sampled string
    std::vector<double> parameters;
    std::size_t circuits_run = 0;
  };

  QaoaMaxCut(int num_qubits, std::vector<std::pair<int, int>> edges,
             QaoaOptions options = {});

  const Hamiltonian& cost() const { return cost_; }

  /// Cut size of one assignment.
  double cut_value(std::uint64_t bitstring) const;

  /// Optimizes the angles through the runner and samples the best cut.
  Result run(const CircuitRunner& runner, Rng& rng) const;

private:
  int num_qubits_;
  std::vector<std::pair<int, int>> edges_;
  QaoaOptions options_;
  QaoaAnsatz ansatz_;
  Hamiltonian cost_;
};

}  // namespace hpcqc::hybrid
