#pragma once

#include <functional>
#include <span>
#include <vector>

#include "hpcqc/common/rng.hpp"

namespace hpcqc::hybrid {

/// Objective to minimize.
using Objective = std::function<double(std::span<const double>)>;

/// Outcome of an optimization run.
struct OptimizationResult {
  std::vector<double> best_params;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  std::vector<double> history;  ///< best-so-far value per iteration
};

/// Simultaneous Perturbation Stochastic Approximation — the standard
/// optimizer for shot-noise objectives in tight-loop VQE (two objective
/// evaluations per iteration regardless of dimension).
class SpsaOptimizer {
public:
  struct Options {
    std::size_t iterations = 150;
    double a = 0.2;        ///< step-size numerator
    double c = 0.15;       ///< perturbation size
    double alpha = 0.602;  ///< step-size decay exponent
    double gamma = 0.101;  ///< perturbation decay exponent
    double stability = 10.0;
  };

  SpsaOptimizer();
  explicit SpsaOptimizer(Options options);

  OptimizationResult minimize(const Objective& objective,
                              std::vector<double> initial, Rng& rng) const;

private:
  Options options_;
};

/// Nelder-Mead downhill simplex for smooth (exact-simulation) objectives.
class NelderMeadOptimizer {
public:
  struct Options {
    std::size_t max_evaluations = 2000;
    double initial_step = 0.5;
    double tolerance = 1e-9;
  };

  NelderMeadOptimizer();
  explicit NelderMeadOptimizer(Options options);

  OptimizationResult minimize(const Objective& objective,
                              std::vector<double> initial) const;

private:
  Options options_;
};

}  // namespace hpcqc::hybrid
