#pragma once

#include <functional>
#include <optional>

#include "hpcqc/hybrid/ansatz.hpp"
#include "hpcqc/hybrid/optimizer.hpp"
#include "hpcqc/hybrid/pauli.hpp"

namespace hpcqc::hybrid {

/// Backend hook executing one measured circuit — in production this is the
/// MQSS client's tightly-coupled HPC path; in tests it can be the exact
/// simulator. The circuit arrives with basis rotations and a terminal
/// measure-all already appended.
using CircuitRunner =
    std::function<qsim::Counts(const circuit::Circuit& circuit,
                               std::size_t shots)>;

/// Estimates <H> on the state prepared by `preparation` (a measurement-free
/// circuit) through a backend runner: one measured circuit per qubit-wise-
/// commuting group of the observable. This is the "Hamiltonian description"
/// submission path of the Fig. 2 adapters, usable standalone or inside VQE.
double estimate_expectation(const Hamiltonian& observable,
                            const circuit::Circuit& preparation,
                            const CircuitRunner& runner,
                            std::size_t shots_per_group);

/// Options of the VQE driver.
struct VqeOptions {
  std::size_t shots_per_group = 2000;
  SpsaOptimizer::Options spsa;
  /// Use Nelder-Mead instead of SPSA (suited to exact objectives).
  bool use_nelder_mead = false;
  NelderMeadOptimizer::Options nelder_mead;
};

/// Variational Quantum Eigensolver — the paper's canonical example of a
/// workload that "demand[s] ... quantum operations ... executed within a
/// tightly-coupled, low-latency loop" (§2.6): every optimizer iteration
/// submits circuits and consumes expectation values.
class VqeDriver {
public:
  struct Result {
    double energy = 0.0;
    std::vector<double> parameters;
    std::size_t objective_evaluations = 0;
    std::size_t circuits_run = 0;
    std::size_t total_shots = 0;
    std::vector<double> convergence;  ///< best energy per iteration
  };

  VqeDriver(Hamiltonian hamiltonian, HardwareEfficientAnsatz ansatz,
            VqeOptions options = {});

  const Hamiltonian& hamiltonian() const { return hamiltonian_; }

  /// Energy of one parameter vector through the runner (grouped
  /// measurements, one circuit per qubit-wise-commuting group).
  double energy(std::span<const double> params, const CircuitRunner& runner,
                std::size_t shots) const;

  /// Exact energy (statevector) of one parameter vector — the noiseless
  /// digital-twin path used for onboarding and verification.
  double exact_energy(std::span<const double> params) const;

  /// Full optimization through the runner (pass nullptr to optimize the
  /// exact objective).
  Result run(const CircuitRunner& runner, Rng& rng) const;

private:
  Hamiltonian hamiltonian_;
  HardwareEfficientAnsatz ansatz_;
  VqeOptions options_;
  mutable std::size_t circuits_run_ = 0;
};

}  // namespace hpcqc::hybrid
