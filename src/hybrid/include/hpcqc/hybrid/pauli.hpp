#pragma once

#include <complex>
#include <string>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/qsim/counts.hpp"
#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::hybrid {

/// A tensor product of single-qubit Paulis, e.g. "XIZY" (qubit 0 is the
/// first character).
class PauliString {
public:
  PauliString() = default;
  /// From a label like "XXIZ"; characters in {I, X, Y, Z}.
  explicit PauliString(const std::string& label);

  int num_qubits() const { return static_cast<int>(ops_.size()); }
  char op(int qubit) const;
  const std::string& label() const { return ops_; }

  bool is_identity() const;
  /// Mask of qubits carrying a non-identity Pauli.
  std::uint64_t support() const;
  /// Mask of qubits carrying Z after basis rotation (== support()).
  std::uint64_t z_mask_after_rotation() const { return support(); }

  /// The X/Y pattern that determines the measurement basis; two strings
  /// with equal basis keys can share one measurement circuit.
  std::string basis_key() const;

  /// Appends the basis-change gates (H for X, Sdg+H for Y) to `circuit`.
  void append_basis_rotation(circuit::Circuit& circuit) const;

  /// <state| P |state> computed exactly.
  double expectation(const qsim::StateVector& state) const;

  /// Expectation from Z-basis counts measured AFTER append_basis_rotation
  /// was applied (full-register measurement assumed).
  double expectation_from_counts(const qsim::Counts& counts) const;

  bool operator==(const PauliString&) const = default;

private:
  std::string ops_;  // one of I/X/Y/Z per qubit
};

/// One weighted term of an observable.
struct PauliTerm {
  double coefficient = 0.0;
  PauliString pauli;
};

/// A Hermitian observable as a weighted Pauli sum — what the Fig. 2
/// adapters submit as "a Hamiltonian description".
class Hamiltonian {
public:
  explicit Hamiltonian(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<PauliTerm>& terms() const { return terms_; }
  std::size_t term_count() const { return terms_.size(); }

  /// Adds coefficient * pauli (label length must match the register).
  void add_term(double coefficient, const std::string& label);

  /// Constant (identity) offset of the observable.
  double identity_offset() const;

  /// Exact expectation value on a pure state.
  double expectation(const qsim::StateVector& state) const;

  /// Ground-state energy via power iteration on (shift*I - H); exact to
  /// `tolerance` for the small systems used in chemistry examples.
  double ground_state_energy(int iterations = 2000) const;

  /// Terms grouped by shared measurement basis (qubit-wise commuting
  /// groups) — one QPU circuit per group instead of per term.
  std::vector<std::vector<PauliTerm>> measurement_groups() const;

private:
  int num_qubits_;
  std::vector<PauliTerm> terms_;
};

/// The textbook 2-qubit reduced H2 Hamiltonian at the equilibrium bond
/// length (0.7414 Angstrom, parity mapping with symmetry reduction);
/// ground energy -1.8572750 Ha.
Hamiltonian h2_hamiltonian();

/// MaxCut cost observable sum over edges of 0.5*(I - Z_a Z_b); its maximum
/// expectation equals the maximum cut size.
Hamiltonian maxcut_hamiltonian(int num_qubits,
                               const std::vector<std::pair<int, int>>& edges);

}  // namespace hpcqc::hybrid
