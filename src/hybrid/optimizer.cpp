#include "hpcqc/hybrid/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::hybrid {

SpsaOptimizer::SpsaOptimizer() : SpsaOptimizer(Options{}) {}

SpsaOptimizer::SpsaOptimizer(Options options) : options_(options) {
  expects(options_.iterations > 0, "SPSA: need at least one iteration");
}

OptimizationResult SpsaOptimizer::minimize(const Objective& objective,
                                           std::vector<double> initial,
                                           Rng& rng) const {
  expects(!initial.empty(), "SPSA: empty parameter vector");
  const std::size_t dim = initial.size();
  std::vector<double> params = std::move(initial);
  std::vector<double> plus(dim);
  std::vector<double> minus(dim);
  std::vector<double> delta(dim);

  OptimizationResult result;
  result.best_params = params;
  result.best_value = objective(params);
  result.evaluations = 1;

  for (std::size_t k = 0; k < options_.iterations; ++k) {
    const double ak =
        options_.a /
        std::pow(static_cast<double>(k) + 1.0 + options_.stability,
                 options_.alpha);
    const double ck =
        options_.c / std::pow(static_cast<double>(k) + 1.0, options_.gamma);

    for (std::size_t i = 0; i < dim; ++i) {
      delta[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      plus[i] = params[i] + ck * delta[i];
      minus[i] = params[i] - ck * delta[i];
    }
    const double f_plus = objective(plus);
    const double f_minus = objective(minus);
    result.evaluations += 2;

    const double scale = (f_plus - f_minus) / (2.0 * ck);
    for (std::size_t i = 0; i < dim; ++i)
      params[i] -= ak * scale / delta[i];

    const double current = std::min(f_plus, f_minus);
    if (current < result.best_value) {
      result.best_value = current;
      result.best_params = (f_plus < f_minus) ? plus : minus;
    }
    result.history.push_back(result.best_value);
  }

  // Final evaluation at the settled parameters.
  const double final_value = objective(params);
  result.evaluations += 1;
  if (final_value < result.best_value) {
    result.best_value = final_value;
    result.best_params = params;
  }
  return result;
}

NelderMeadOptimizer::NelderMeadOptimizer() : NelderMeadOptimizer(Options{}) {}

NelderMeadOptimizer::NelderMeadOptimizer(Options options) : options_(options) {
  expects(options_.max_evaluations > 2, "NelderMead: evaluation budget too small");
}

OptimizationResult NelderMeadOptimizer::minimize(
    const Objective& objective, std::vector<double> initial) const {
  expects(!initial.empty(), "NelderMead: empty parameter vector");
  const std::size_t dim = initial.size();

  struct Vertex {
    std::vector<double> x;
    double f = 0.0;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(dim + 1);

  OptimizationResult result;
  result.evaluations = 0;
  const auto eval = [&](const std::vector<double>& x) {
    ++result.evaluations;
    return objective(x);
  };

  simplex.push_back({initial, eval(initial)});
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> x = initial;
    x[i] += options_.initial_step;
    simplex.push_back({x, eval(x)});
  }

  const auto by_value = [](const Vertex& a, const Vertex& b) {
    return a.f < b.f;
  };

  while (result.evaluations < options_.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    result.history.push_back(simplex.front().f);
    if (std::abs(simplex.back().f - simplex.front().f) < options_.tolerance)
      break;

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t v = 0; v < dim; ++v)
      for (std::size_t i = 0; i < dim; ++i)
        centroid[i] += simplex[v].x[i] / static_cast<double>(dim);

    Vertex& worst = simplex.back();
    const auto blend = [&](double t) {
      std::vector<double> x(dim);
      for (std::size_t i = 0; i < dim; ++i)
        x[i] = centroid[i] + t * (worst.x[i] - centroid[i]);
      return x;
    };

    const auto reflected = blend(-1.0);
    const double f_reflected = eval(reflected);
    if (f_reflected < simplex.front().f) {
      const auto expanded = blend(-2.0);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected)
        worst = {expanded, f_expanded};
      else
        worst = {reflected, f_reflected};
    } else if (f_reflected < simplex[dim - 1].f) {
      worst = {reflected, f_reflected};
    } else {
      const auto contracted = blend(0.5);
      const double f_contracted = eval(contracted);
      if (f_contracted < worst.f) {
        worst = {contracted, f_contracted};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 1; v <= dim; ++v) {
          for (std::size_t i = 0; i < dim; ++i)
            simplex[v].x[i] =
                0.5 * (simplex[v].x[i] + simplex.front().x[i]);
          simplex[v].f = eval(simplex[v].x);
        }
      }
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  result.best_params = simplex.front().x;
  result.best_value = simplex.front().f;
  return result;
}

}  // namespace hpcqc::hybrid
