#include "hpcqc/hybrid/ansatz.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::hybrid {

HardwareEfficientAnsatz::HardwareEfficientAnsatz(int num_qubits, int layers)
    : num_qubits_(num_qubits), layers_(layers) {
  expects(num_qubits >= 1, "ansatz: need at least one qubit");
  expects(layers >= 0, "ansatz: layer count cannot be negative");
}

std::size_t HardwareEfficientAnsatz::parameter_count() const {
  return static_cast<std::size_t>((layers_ + 1) * 2 * num_qubits_);
}

circuit::Circuit HardwareEfficientAnsatz::bind(
    std::span<const double> params) const {
  expects(params.size() == parameter_count(),
          "ansatz::bind: wrong parameter count");
  circuit::Circuit circuit(num_qubits_);
  std::size_t p = 0;
  const auto rotation_layer = [&] {
    for (int q = 0; q < num_qubits_; ++q) {
      circuit.ry(params[p++], q);
      circuit.rz(params[p++], q);
    }
  };
  for (int layer = 0; layer < layers_; ++layer) {
    rotation_layer();
    for (int q = 0; q + 1 < num_qubits_; ++q) circuit.cz(q, q + 1);
  }
  rotation_layer();
  return circuit;
}

QaoaAnsatz::QaoaAnsatz(int num_qubits, std::vector<std::pair<int, int>> edges,
                       int depth)
    : num_qubits_(num_qubits), edges_(std::move(edges)), depth_(depth) {
  expects(num_qubits >= 2, "QaoaAnsatz: need at least two qubits");
  expects(depth >= 1, "QaoaAnsatz: depth must be positive");
  for (const auto& [a, b] : edges_)
    expects(a >= 0 && a < num_qubits && b >= 0 && b < num_qubits && a != b,
            "QaoaAnsatz: invalid edge");
}

circuit::Circuit QaoaAnsatz::bind(std::span<const double> params) const {
  expects(params.size() == parameter_count(),
          "QaoaAnsatz::bind: wrong parameter count");
  circuit::Circuit circuit(num_qubits_);
  for (int q = 0; q < num_qubits_; ++q) circuit.h(q);
  for (int layer = 0; layer < depth_; ++layer) {
    const double gamma = params[static_cast<std::size_t>(2 * layer)];
    const double beta = params[static_cast<std::size_t>(2 * layer + 1)];
    for (const auto& [a, b] : edges_) {
      // exp(-i gamma/2 Z_a Z_b) = CX(a,b) RZ_b(gamma) CX(a,b)
      circuit.cx(a, b);
      circuit.rz(gamma, b);
      circuit.cx(a, b);
    }
    for (int q = 0; q < num_qubits_; ++q) circuit.rx(2.0 * beta, q);
  }
  return circuit;
}

}  // namespace hpcqc::hybrid
