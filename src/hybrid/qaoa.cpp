#include "hpcqc/hybrid/qaoa.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::hybrid {

QaoaMaxCut::QaoaMaxCut(int num_qubits, std::vector<std::pair<int, int>> edges,
                       QaoaOptions options)
    : num_qubits_(num_qubits),
      edges_(edges),
      options_(options),
      ansatz_(num_qubits, std::move(edges), options.depth),
      cost_(maxcut_hamiltonian(num_qubits, edges_)) {}

double QaoaMaxCut::cut_value(std::uint64_t bitstring) const {
  double cut = 0.0;
  for (const auto& [a, b] : edges_) {
    const bool side_a = (bitstring >> a) & 1;
    const bool side_b = (bitstring >> b) & 1;
    if (side_a != side_b) cut += 1.0;
  }
  return cut;
}

QaoaMaxCut::Result QaoaMaxCut::run(const CircuitRunner& runner,
                                   Rng& rng) const {
  expects(runner != nullptr, "QaoaMaxCut::run: null runner");
  std::size_t circuits = 0;

  // The cost observable is all-Z, so a single computational-basis
  // measurement evaluates every term.
  const auto expected_cut = [&](std::span<const double> params) {
    circuit::Circuit circuit = ansatz_.bind(params);
    circuit.measure();
    const qsim::Counts counts = runner(circuit, options_.shots);
    ++circuits;
    double value = 0.0;
    for (const auto& term : cost_.terms()) {
      if (term.pauli.is_identity())
        value += term.coefficient;
      else
        value += term.coefficient * term.pauli.expectation_from_counts(counts);
    }
    return value;
  };

  const Objective objective = [&](std::span<const double> params) {
    return -expected_cut(params);  // maximize the cut
  };

  std::vector<double> initial(ansatz_.parameter_count());
  for (auto& p : initial) p = rng.uniform(0.1, 0.8);
  const auto opt =
      SpsaOptimizer(options_.spsa).minimize(objective, std::move(initial), rng);

  // Sample the optimized circuit and keep the best observed cut.
  circuit::Circuit final_circuit = ansatz_.bind(opt.best_params);
  final_circuit.measure();
  const qsim::Counts counts = runner(final_circuit, options_.shots);
  ++circuits;

  Result result;
  result.expected_cut = -opt.best_value;
  result.parameters = opt.best_params;
  result.circuits_run = circuits;
  for (const auto& [outcome, count] : counts.raw()) {
    const double cut = cut_value(outcome);
    if (cut > result.best_cut) {
      result.best_cut = cut;
      result.best_bitstring = outcome;
    }
  }
  return result;
}

}  // namespace hpcqc::hybrid
