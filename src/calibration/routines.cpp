#include "hpcqc/calibration/routines.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::calibration {

const char* to_string(CalibrationKind kind) {
  return kind == CalibrationKind::kQuick ? "quick" : "full";
}

Seconds CalibrationProcedure::total_duration() const {
  Seconds total = 0.0;
  for (const auto& step : steps) total += step.duration;
  return total;
}

bool CalibrationProcedure::retunes_frequencies() const {
  return std::any_of(steps.begin(), steps.end(), [](const CalibrationStep& s) {
    return s.requires_frequency_retuning;
  });
}

CalibrationProcedure quick_procedure() {
  // 40 minutes total: pulse-level re-optimization only.
  return {CalibrationKind::kQuick,
          {
              {"rabi-amplitude", minutes(8.0), false},
              {"drag-coefficient", minutes(6.0), false},
              {"cz-phase-trim", minutes(14.0), false},
              {"readout-threshold", minutes(8.0), false},
              {"ghz-verification", minutes(4.0), false},
          }};
}

CalibrationProcedure full_procedure() {
  // 100 minutes total: from resonator spectroscopy up, incl. frequency
  // retuning (which is what clears TLS collisions).
  return {CalibrationKind::kFull,
          {
              {"resonator-spectroscopy", minutes(10.0), false},
              {"qubit-spectroscopy", minutes(14.0), true},
              {"frequency-placement", minutes(10.0), true},
              {"rabi-amplitude", minutes(10.0), false},
              {"ramsey-detuning", minutes(10.0), true},
              {"drag-coefficient", minutes(8.0), false},
              {"cz-tuneup", minutes(22.0), false},
              {"readout-discrimination", minutes(10.0), false},
              {"ghz-verification", minutes(6.0), false},
          }};
}

CalibrationEngine::CalibrationEngine() : CalibrationEngine(Params{}) {}

CalibrationEngine::CalibrationEngine(Params params) : params_(params) {
  expects(params_.quick_residual_factor >= 1.0,
          "CalibrationEngine: quick residual factor must be >= 1");
  expects(params_.quick_tls_recovery >= 0.0 && params_.quick_tls_recovery <= 1.0,
          "CalibrationEngine: quick TLS recovery fraction in [0,1]");
}

CalibrationOutcome CalibrationEngine::run(device::DeviceModel& device,
                                          CalibrationKind kind, Seconds at,
                                          Rng& rng) const {
  const CalibrationProcedure procedure = kind == CalibrationKind::kQuick
                                             ? quick_procedure()
                                             : full_procedure();
  CalibrationOutcome outcome;
  outcome.kind = kind;
  outcome.started_at = at;
  outcome.duration = procedure.total_duration();

  const int tls_before = device.calibration().tls_defect_count();

  if (kind == CalibrationKind::kFull) {
    // Re-derive everything; frequency retuning clears TLS collisions.
    device.install_calibration(
        device.sample_fresh_calibration(at + outcome.duration, rng));
  } else {
    // Pulse re-optimization around the current working point.
    device::CalibrationState state = device.calibration();
    const device::CalibrationState& fresh = device.fresh_reference();
    const auto recover = [&](double live_fid, double fresh_fid,
                             bool tls) {
      const double fresh_err = 1.0 - fresh_fid;
      double target_err = fresh_err * params_.quick_residual_factor *
                          std::exp(0.05 * rng.normal());
      if (tls) {
        // Recover only a fraction of the TLS excess error.
        const double live_err = 1.0 - live_fid;
        const double excess = std::max(0.0, live_err - target_err);
        target_err = live_err - params_.quick_tls_recovery * excess;
      }
      return 1.0 - std::clamp(target_err, 1e-6, 0.4);
    };
    for (std::size_t q = 0; q < state.qubits.size(); ++q) {
      auto& live = state.qubits[q];
      const auto& anchor = fresh.qubits[q];
      live.fidelity_1q =
          recover(live.fidelity_1q, anchor.fidelity_1q, live.tls_defect);
      live.readout_fidelity =
          recover(live.readout_fidelity, anchor.readout_fidelity, false);
    }
    for (std::size_t c = 0; c < state.couplers.size(); ++c) {
      auto& live = state.couplers[c];
      const auto& anchor = fresh.couplers[c];
      // CZ on a TLS-afflicted qubit's coupler suffers the same cap.
      live.fidelity_cz = recover(live.fidelity_cz, anchor.fidelity_cz, false);
    }
    state.calibrated_at = at + outcome.duration;
    device.install_live_state(std::move(state));
  }

  const auto& after = device.calibration();
  outcome.median_fidelity_1q_after = after.median_fidelity_1q();
  outcome.median_fidelity_cz_after = after.median_fidelity_cz();
  outcome.median_readout_after = after.median_readout_fidelity();
  outcome.tls_defects_remaining = after.tls_defect_count();
  outcome.tls_defects_cleared = tls_before - outcome.tls_defects_remaining;
  return outcome;
}

}  // namespace hpcqc::calibration
