#include "hpcqc/calibration/controller.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::calibration {

const char* to_string(TriggerPolicy policy) {
  switch (policy) {
    case TriggerPolicy::kFixedInterval: return "fixed-interval";
    case TriggerPolicy::kOnThreshold: return "on-threshold";
    case TriggerPolicy::kSchedulerControlled: return "scheduler-controlled";
  }
  return "?";
}

AutoCalibrationController::AutoCalibrationController()
    : AutoCalibrationController(Config{}) {}

AutoCalibrationController::AutoCalibrationController(Config config)
    : config_(config) {
  expects(config_.full_fraction <= config_.quick_fraction &&
              config_.full_fraction > 0.0 && config_.quick_fraction < 1.0,
          "AutoCalibrationController: need 0 < full_fraction <= "
          "quick_fraction < 1");
  expects(config_.benchmark_period > 0.0 && config_.fixed_interval > 0.0,
          "AutoCalibrationController: periods must be positive");
}

bool AutoCalibrationController::benchmark_due(Seconds now) const {
  if (benchmarks_.empty()) return true;
  return now - benchmarks_.back().run_at >= config_.benchmark_period;
}

void AutoCalibrationController::note_benchmark(const BenchmarkResult& result) {
  benchmarks_.push_back(result);
  if (baseline_stale_) {
    baseline_ = result.ghz_success;
    baseline_stale_ = false;
  }
}

void AutoCalibrationController::note_calibration(
    const CalibrationOutcome& outcome) {
  calibrations_.push_back(outcome);
  baseline_stale_ = true;  // re-anchor on the next benchmark
}

std::size_t AutoCalibrationController::calibration_count(
    CalibrationKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(calibrations_.begin(), calibrations_.end(),
                    [kind](const CalibrationOutcome& outcome) {
                      return outcome.kind == kind;
                    }));
}

std::optional<CalibrationRequest> AutoCalibrationController::decide(
    Seconds now, const device::DeviceModel& device, bool qpu_idle) const {
  if (config_.policy == TriggerPolicy::kFixedInterval) {
    const Seconds last = calibrations_.empty()
                             ? 0.0
                             : calibrations_.back().started_at +
                                   calibrations_.back().duration;
    if (calibrations_.empty() || now - last >= config_.fixed_interval)
      return CalibrationRequest{CalibrationKind::kFull,
                                "fixed-interval elapsed", false};
    return std::nullopt;
  }

  // Threshold-driven policies share the degradation logic; they differ only
  // in whether the start waits for an idle slot.
  const bool deferrable =
      config_.policy == TriggerPolicy::kSchedulerControlled;
  if (deferrable && !qpu_idle) return std::nullopt;

  const Seconds age = now - device.calibration().calibrated_at;
  const bool tls = device.calibration().tls_defect_count() > 0;

  if (!benchmarks_.empty() && baseline_ > 0.0 && !baseline_stale_) {
    const double ghz = benchmarks_.back().ghz_success;
    if (ghz < config_.full_fraction * baseline_ ||
        (ghz < config_.quick_fraction * baseline_ && tls))
      return CalibrationRequest{CalibrationKind::kFull,
                                "benchmark degraded (ghz=" +
                                    std::to_string(ghz) + " vs baseline " +
                                    std::to_string(baseline_) + ")",
                                deferrable};
    if (ghz < config_.quick_fraction * baseline_)
      return CalibrationRequest{CalibrationKind::kQuick,
                                "benchmark below threshold (ghz=" +
                                    std::to_string(ghz) + " vs baseline " +
                                    std::to_string(baseline_) + ")",
                                deferrable};
  }
  if (age >= config_.max_calibration_age)
    return CalibrationRequest{CalibrationKind::kFull,
                              "calibration age limit reached", deferrable};
  return std::nullopt;
}

}  // namespace hpcqc::calibration
