#include "hpcqc/calibration/ghz_fidelity.hpp"

#include <cmath>
#include <complex>

#include "hpcqc/common/error.hpp"

namespace hpcqc::calibration {

GhzFidelityEstimator::GhzFidelityEstimator()
    : GhzFidelityEstimator(Params{}) {}

GhzFidelityEstimator::GhzFidelityEstimator(Params params) : params_(params) {
  expects(params_.qubits >= 2, "GhzFidelityEstimator: need at least 2 qubits");
  expects(params_.shots_per_setting > 0,
          "GhzFidelityEstimator: need at least one shot per setting");
  expects(params_.mode != device::ExecutionMode::kEstimateOnly,
          "GhzFidelityEstimator: needs sampled counts");
}

namespace {

/// GHZ preparation along the device chain, without measurement.
circuit::Circuit prepare_ghz(const device::DeviceModel& device, int qubits,
                             std::vector<int>& chain_out) {
  const auto chain = device.topology().coupled_chain();
  expects(qubits <= static_cast<int>(chain.size()),
          "GhzFidelityEstimator: qubit count outside the device chain");
  chain_out.assign(chain.begin(), chain.begin() + qubits);
  circuit::Circuit circuit(device.num_qubits());
  circuit.h(chain_out[0]);
  for (int i = 1; i < qubits; ++i)
    circuit.cx(chain_out[static_cast<std::size_t>(i - 1)],
               chain_out[static_cast<std::size_t>(i)]);
  return circuit;
}

}  // namespace

GhzFidelityResult GhzFidelityEstimator::run(device::DeviceModel& device,
                                            Rng& rng) const {
  const int n = params_.qubits;
  GhzFidelityResult result;
  result.qubits = n;

  // (a) Population term.
  std::vector<int> chain;
  {
    circuit::Circuit populations = prepare_ghz(device, n, chain);
    populations.measure(chain);
    const auto counts =
        device.execute(populations, params_.shots_per_setting, rng,
                       params_.mode)
            .counts;
    const std::uint64_t all_ones = (std::uint64_t{1} << n) - 1;
    result.populations =
        counts.probability_of(0) + counts.probability_of(all_ones);
  }

  // (b) Parity oscillation: 2n+2 phases spaced pi/(n+1) — the standard
  // grid, on which the +n and -n frequency components do not alias.
  const int settings = 2 * n + 2;
  const std::uint64_t parity_mask = (std::uint64_t{1} << n) - 1;
  std::complex<double> fourier{0.0, 0.0};
  for (int k = 0; k < settings; ++k) {
    const double phi =
        M_PI * static_cast<double>(k) / static_cast<double>(n + 1);
    circuit::Circuit parity_circuit = prepare_ghz(device, n, chain);
    for (int q : chain) {
      parity_circuit.rz(phi, q);
      parity_circuit.h(q);  // measure along cos(phi) X + sin(phi) Y
    }
    parity_circuit.measure(chain);
    const auto counts =
        device.execute(parity_circuit, params_.shots_per_setting, rng,
                       params_.mode)
            .counts;
    const double parity = counts.expectation_z(parity_mask);
    result.parity_curve.push_back(parity);
    fourier += parity *
               std::polar(1.0, -static_cast<double>(n) * phi);
  }
  result.coherence = std::min(
      1.0, 2.0 * std::abs(fourier) / static_cast<double>(settings));

  result.fidelity = 0.5 * (result.populations + result.coherence);
  return result;
}

}  // namespace hpcqc::calibration
