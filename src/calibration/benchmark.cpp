#include "hpcqc/calibration/benchmark.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::calibration {

GhzBenchmark::GhzBenchmark() : GhzBenchmark(Params{}) {}

GhzBenchmark::GhzBenchmark(Params params) : params_(params) {
  expects(params_.shots > 0, "GhzBenchmark: need at least one shot");
  expects(params_.pass_threshold > 0.0 && params_.pass_threshold < 1.0,
          "GhzBenchmark: pass threshold in (0,1)");
}

circuit::Circuit GhzBenchmark::chain_circuit(const device::DeviceModel& device,
                                             int qubits) {
  const std::vector<int> chain = device.topology().coupled_chain();
  expects(qubits >= 2 && qubits <= static_cast<int>(chain.size()),
          "GhzBenchmark: qubit count outside the device chain");

  // Longest contiguous run of the serpentine where every qubit is up and
  // every consecutive coupler is usable. On a fully healthy device this is
  // the whole chain.
  const auto& mask = device.health();
  const auto& topology = device.topology();
  std::size_t best_start = 0, best_len = 0, run_start = 0, run_len = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const bool linked =
        run_len > 0 &&
        mask.coupler_usable(topology,
                            topology.edge_index(chain[i - 1], chain[i]));
    if (mask.qubit_up(chain[i]) && (run_len == 0 || linked)) {
      if (run_len == 0) run_start = i;
      ++run_len;
    } else {
      run_start = i;
      run_len = mask.qubit_up(chain[i]) ? 1 : 0;
    }
    if (run_len > best_len) {
      best_len = run_len;
      best_start = run_start;
    }
  }
  if (best_len < 2) {
    throw TransientError(
        "GhzBenchmark: fewer than 2 contiguous healthy qubits on the chain",
        ErrorCode::kDeviceUnavailable);
  }
  const std::size_t used =
      std::min(best_len, static_cast<std::size_t>(qubits));

  circuit::Circuit circuit(device.num_qubits());
  circuit.h(chain[best_start]);
  std::vector<int> measured{chain[best_start]};
  for (std::size_t i = 1; i < used; ++i) {
    circuit.cx(chain[best_start + i - 1], chain[best_start + i]);
    measured.push_back(chain[best_start + i]);
  }
  circuit.measure(std::move(measured));
  return circuit;
}

BenchmarkResult GhzBenchmark::run(device::DeviceModel& device, Seconds at,
                                  Rng& rng) const {
  const int requested =
      params_.qubits == 0 ? device.num_qubits() : params_.qubits;
  const circuit::Circuit circuit = chain_circuit(device, requested);
  // May be fewer than requested when the device is degraded.
  const int qubits = static_cast<int>(circuit.measured_qubits().size());

  if (params_.analytic) {
    // ghz_success = P(survive all errors) + depolarized floor, plus the
    // binomial shot noise a sampled run would carry.
    const double fidelity = device.estimate_circuit_fidelity(circuit);
    const double floor =
        2.0 / static_cast<double>(std::uint64_t{1} << qubits);
    double p = fidelity + (1.0 - fidelity) * floor;
    const double shot_sigma =
        std::sqrt(p * (1.0 - p) / static_cast<double>(params_.shots));
    p = std::clamp(p + shot_sigma * rng.normal(), 0.0, 1.0);

    BenchmarkResult result;
    result.run_at = at;
    result.qubits_used = qubits;
    result.shots = params_.shots;
    result.ghz_success = p;
    result.estimated_fidelity = fidelity;
    return result;
  }

  const auto exec = device.execute(circuit, params_.shots, rng,
                                   device::ExecutionMode::kGlobalDepolarizing);
  const std::uint64_t all_ones =
      (qubits >= 64) ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << qubits) - 1);

  BenchmarkResult result;
  result.run_at = at;
  result.qubits_used = qubits;
  result.shots = params_.shots;
  result.ghz_success =
      (static_cast<double>(exec.counts.count_of(0)) +
       static_cast<double>(exec.counts.count_of(all_ones))) /
      static_cast<double>(params_.shots);
  result.estimated_fidelity = exec.estimated_fidelity;
  return result;
}

}  // namespace hpcqc::calibration
