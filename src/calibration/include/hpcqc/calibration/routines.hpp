#pragma once

#include <string>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"

namespace hpcqc::calibration {

/// The two automated recalibration procedures of §3.2: "quick recalibration
/// offers faster turnaround times (40 minutes) [but] generally results in
/// lower system performance, whereas the full recalibration procedure
/// (100 minutes), though slower, yields optimal system performance."
enum class CalibrationKind { kQuick, kFull };

const char* to_string(CalibrationKind kind);

/// One node of a calibration procedure (the procedures are DAG-structured
/// in real control software; durations here are per-suite totals over all
/// qubits/couplers the step touches).
struct CalibrationStep {
  std::string name;
  Seconds duration = 0.0;
  bool requires_frequency_retuning = false;  ///< only full-recal steps can
                                             ///< move away from TLS defects
};

/// A procedure is an ordered step list; total durations are 40 / 100 min.
struct CalibrationProcedure {
  CalibrationKind kind = CalibrationKind::kQuick;
  std::vector<CalibrationStep> steps;

  Seconds total_duration() const;
  bool retunes_frequencies() const;
};

CalibrationProcedure quick_procedure();
CalibrationProcedure full_procedure();

/// Result of one calibration run.
struct CalibrationOutcome {
  CalibrationKind kind = CalibrationKind::kQuick;
  Seconds started_at = 0.0;
  Seconds duration = 0.0;
  double median_fidelity_1q_after = 0.0;
  double median_fidelity_cz_after = 0.0;
  double median_readout_after = 0.0;
  int tls_defects_cleared = 0;
  int tls_defects_remaining = 0;
};

/// Applies a calibration procedure to the device model.
///
/// Full recalibration re-derives every parameter: the device gets a fresh
/// snapshot (drawn from the spec) and TLS-afflicted qubits are retuned away
/// from their defects. Quick recalibration re-optimizes pulses around the
/// current working point: error rates recover toward fresh values with a
/// residual penalty, and TLS defects persist (their qubits stay degraded).
class CalibrationEngine {
public:
  struct Params {
    /// Residual error multiplier after a quick calibration (>= 1).
    double quick_residual_factor = 1.35;
    /// Fraction of a TLS defect's excess error a quick calibration can
    /// optimize away without moving the qubit frequency.
    double quick_tls_recovery = 0.3;
  };

  CalibrationEngine();
  explicit CalibrationEngine(Params params);

  CalibrationOutcome run(device::DeviceModel& device, CalibrationKind kind,
                         Seconds at, Rng& rng) const;

private:
  Params params_;
};

}  // namespace hpcqc::calibration
