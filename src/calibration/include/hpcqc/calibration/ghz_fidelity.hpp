#pragma once

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"

namespace hpcqc::calibration {

/// Result of a parity-oscillation GHZ fidelity measurement.
struct GhzFidelityResult {
  int qubits = 0;
  /// Population term: P(|0..0>) + P(|1..1>) from a Z-basis measurement.
  double populations = 0.0;
  /// Coherence term: amplitude of the n-qubit coherence, extracted as the
  /// Fourier component at frequency n of the parity oscillation.
  double coherence = 0.0;
  /// Lower-bounded GHZ state fidelity F = (P + C) / 2.
  double fidelity = 0.0;
  /// Parity expectation at each analysis phase (for inspection/plots).
  std::vector<double> parity_curve;
};

/// The full GHZ fidelity protocol (populations + parity oscillations) — the
/// rigorous version of the §3.2 "standardized algorithms such as GHZ state
/// creations" health check. The simple success-probability statistic the
/// fast benchmark uses over-counts classically-correlated states; the
/// parity-oscillation coherence term certifies genuine n-qubit coherence.
///
/// Protocol: prepare GHZ on the device's first `qubits` chain qubits; then
///  (a) measure in Z for the population term, and
///  (b) for 2n phases phi_k = k*pi/n, apply RZ(phi) to every qubit, rotate
///      into X, and measure the n-qubit parity; the magnitude of the
///      e^{i n phi} Fourier component is the coherence.
class GhzFidelityEstimator {
public:
  struct Params {
    int qubits = 4;
    std::size_t shots_per_setting = 2000;
    device::ExecutionMode mode = device::ExecutionMode::kGlobalDepolarizing;
  };

  GhzFidelityEstimator();
  explicit GhzFidelityEstimator(Params params);

  const Params& params() const { return params_; }

  GhzFidelityResult run(device::DeviceModel& device, Rng& rng) const;

private:
  Params params_;
};

}  // namespace hpcqc::calibration
