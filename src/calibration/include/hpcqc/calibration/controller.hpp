#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hpcqc/calibration/benchmark.hpp"
#include "hpcqc/calibration/routines.hpp"

namespace hpcqc::calibration {

/// When the controller may start a calibration — this is Lesson 2: "it is
/// critical that the center retains full control over scheduling these
/// maintenance and calibration slots to align with current and upcoming
/// user workloads."
enum class TriggerPolicy {
  /// Full recalibration on a fixed wall-clock interval, regardless of the
  /// queue (the naive baseline).
  kFixedInterval,
  /// Recalibrate as soon as the health benchmark degrades past the
  /// threshold, preempting whatever the queue is doing.
  kOnThreshold,
  /// Like kOnThreshold, but the start is deferred until the HPC scheduler
  /// signals an idle (or drained) QPU slot — "the exact timing controlled
  /// by the HPC center".
  kSchedulerControlled,
};

const char* to_string(TriggerPolicy policy);

/// What the controller wants done right now.
struct CalibrationRequest {
  CalibrationKind kind = CalibrationKind::kQuick;
  std::string reason;
  bool deferrable = false;  ///< may wait for an idle slot
};

/// The automated recalibration brain of §3.2: consumes periodic GHZ health
/// benchmarks and the calibration age, and decides when to run which
/// procedure. It does not advance time or execute anything itself — the
/// operations loop (or the QRM) owns the clock and reports outcomes back.
class AutoCalibrationController {
public:
  struct Config {
    TriggerPolicy policy = TriggerPolicy::kSchedulerControlled;
    Seconds benchmark_period = hours(2.0);
    /// Thresholds are *relative to the post-calibration baseline* (the
    /// first benchmark after each calibration), so they self-tune to the
    /// device and circuit size. GHZ success below quick_fraction x
    /// baseline requests a quick calibration ...
    double quick_fraction = 0.80;
    /// ... below full_fraction x baseline (badly degraded, likely TLS), or
    /// with a TLS defect present, the full procedure is requested.
    double full_fraction = 0.55;
    /// Maximum calibration age before a full recalibration is requested
    /// regardless of the benchmark.
    Seconds max_calibration_age = hours(36.0);
    /// kFixedInterval period.
    Seconds fixed_interval = hours(24.0);
  };

  AutoCalibrationController();
  explicit AutoCalibrationController(Config config);

  const Config& config() const { return config_; }

  /// True when a health benchmark is due.
  bool benchmark_due(Seconds now) const;

  /// Records a completed benchmark.
  void note_benchmark(const BenchmarkResult& result);

  /// Records a completed calibration.
  void note_calibration(const CalibrationOutcome& outcome);

  /// The controller's decision for the current instant. `qpu_idle` tells a
  /// scheduler-controlled policy that a slot is available now.
  std::optional<CalibrationRequest> decide(Seconds now,
                                           const device::DeviceModel& device,
                                           bool qpu_idle) const;

  const std::vector<BenchmarkResult>& benchmark_history() const {
    return benchmarks_;
  }
  const std::vector<CalibrationOutcome>& calibration_history() const {
    return calibrations_;
  }
  std::size_t calibration_count(CalibrationKind kind) const;

  /// Post-calibration benchmark baseline the relative thresholds compare
  /// against; <= 0 until the first benchmark lands.
  double baseline() const { return baseline_; }

private:
  Config config_;
  std::vector<BenchmarkResult> benchmarks_;
  std::vector<CalibrationOutcome> calibrations_;
  double baseline_ = -1.0;
  bool baseline_stale_ = true;  ///< refresh on the next benchmark
};

}  // namespace hpcqc::calibration
