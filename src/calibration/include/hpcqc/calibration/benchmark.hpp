#pragma once

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"

namespace hpcqc::calibration {

/// Result of one algorithmic health-check run.
struct BenchmarkResult {
  Seconds run_at = 0.0;
  int qubits_used = 0;
  /// Fraction of shots landing on |0...0> or |1...1> — the GHZ success
  /// statistic.
  double ghz_success = 0.0;
  /// Analytic circuit-fidelity estimate from the live calibration data.
  double estimated_fidelity = 0.0;
  std::size_t shots = 0;
};

/// "Standardized algorithms such as GHZ state creations are regularly run
/// on all qubits of the QPU or subsets of them. This provides a practical
/// measure of the system's 'live' performance" (§3.2). The circuit is a
/// hardware-native GHZ chain following the device's coupled serpentine, so
/// no routing is required.
class GhzBenchmark {
public:
  struct Params {
    int qubits = 0;  ///< 0 = all qubits of the device
    std::size_t shots = 400;
    /// Benchmark verdict threshold on ghz_success; deviating results "can
    /// be a sign that a recalibration is needed".
    double pass_threshold = 0.5;
    /// Skip the state-vector sampling and compute the success statistic
    /// analytically (fidelity estimate + depolarized floor + binomial shot
    /// noise). Used by multi-month operations simulations; agreement with
    /// the sampled path is covered by tests.
    bool analytic = false;
  };

  GhzBenchmark();
  explicit GhzBenchmark(Params params);

  const Params& params() const { return params_; }

  BenchmarkResult run(device::DeviceModel& device, Seconds at, Rng& rng) const;

  bool passes(const BenchmarkResult& result) const {
    return result.ghz_success >= params_.pass_threshold;
  }

  /// Builds the topology-legal GHZ chain circuit on the device register.
  /// When the device is degraded, the chain shrinks to (a prefix of) the
  /// longest contiguous healthy run of the serpentine, so the health check
  /// keeps running on the surviving capacity instead of aborting. Throws
  /// TransientError(kDeviceUnavailable) when fewer than two contiguous
  /// healthy qubits remain.
  static circuit::Circuit chain_circuit(const device::DeviceModel& device,
                                        int qubits);

private:
  Params params_;
};

}  // namespace hpcqc::calibration
