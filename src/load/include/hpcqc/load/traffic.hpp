#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/common/units.hpp"
#include "hpcqc/sched/qrm.hpp"

namespace hpcqc::load {

/// Job classes of the synthetic multi-tenant mix — the §4 early-user
/// workload shapes scaled up to a shared HPC user base: entanglement
/// benchmarks, brickwork sampling, narrow-but-deep variational tight
/// loops, and mid-width QAOA layers.
enum class JobClass { kGhz, kSampling, kVqeTightLoop, kQaoa };

const char* to_string(JobClass job_class);

/// Open-loop traffic model: thousands of tenants with zipf-skewed
/// popularity, a diurnal (sinusoidal) arrival-rate profile, a weighted
/// job-class mix, and bounded-Pareto heavy-tailed shot counts. Everything
/// is derived from `seed` on the simulated clock, so one config describes
/// one exact, replayable arrival schedule.
struct TrafficConfig {
  std::uint64_t seed = 1;

  /// Tenant population. Tenant k is named "<tenant_prefix><k>" and drawn
  /// with probability proportional to 1 / (k + 1)^zipf_exponent — a few
  /// heavy hitters, a long tail of occasional users.
  std::size_t tenants = 1000;
  double zipf_exponent = 1.1;
  std::string tenant_prefix = "tenant-";

  /// Arrival process: non-homogeneous Poisson with rate
  ///   base_rate_per_hour * (1 + diurnal_amplitude * cos(phase))
  /// peaking at `diurnal_peak` within each `diurnal_period`.
  Seconds duration = hours(24.0);
  double base_rate_per_hour = 400.0;
  double diurnal_amplitude = 0.6;  ///< in [0, 1); 0 = flat
  Seconds diurnal_period = hours(24.0);
  Seconds diurnal_peak = hours(14.0);
  /// Rate multiplier on days 5 and 6 of every 7-day week (t = 0 starts a
  /// Monday). 1.0 = no weekly structure; < 1 models the HPC-center lull
  /// that year-scale campaigns need to reproduce.
  double weekend_factor = 1.0;

  /// Job-class mix weights (normalized internally).
  double ghz_weight = 0.2;
  double sampling_weight = 0.4;
  double vqe_weight = 0.25;
  double qaoa_weight = 0.15;

  /// Heavy-tailed shot counts: bounded Pareto over
  /// [min_shots, max_shots] with tail exponent `shots_alpha` (smaller =
  /// heavier tail; 1 < alpha < 2 has finite mean, infinite variance).
  double shots_alpha = 1.3;
  std::size_t min_shots = 64;
  std::size_t max_shots = 16384;

  /// Circuit-shape ranges per class (clamped to the device size by the
  /// job factory).
  int min_qubits = 4;
  int max_qubits = 20;
  int max_layers = 8;

  /// Priority mix: fractions of high- and low-priority submissions (the
  /// remainder is normal).
  double high_fraction = 0.05;
  double low_fraction = 0.25;
};

/// One generated arrival: everything needed to build the job
/// deterministically, plus the pre-assigned admission ticket that lets
/// the sharded gateway restore canonical order after concurrent ingest.
struct Arrival {
  std::uint64_t ticket = 0;  ///< dense, monotone in arrival time
  Seconds time = 0.0;
  std::uint32_t tenant = 0;  ///< tenant index (name = prefix + index)
  JobClass job_class = JobClass::kSampling;
  int qubits = 4;
  int layers = 1;
  std::size_t shots = 1000;
  sched::JobPriority priority = sched::JobPriority::kNormal;

  bool operator==(const Arrival&) const = default;
};

/// Generates the full arrival schedule for a TrafficConfig. Pure function
/// of the config (thinning over the diurnal profile with a config-seeded
/// RNG): same config => bit-identical schedule, any process, any machine.
class TrafficGenerator {
public:
  /// Throws PermanentError on degenerate configs (no tenants, empty mix,
  /// inverted shot/qubit ranges, amplitude outside [0, 1), ...).
  explicit TrafficGenerator(TrafficConfig config);

  const TrafficConfig& config() const { return config_; }

  /// Instantaneous arrival rate (jobs/hour) at simulated time t.
  double rate_at(Seconds t) const;

  /// The whole schedule, in arrival order, tickets 0..n-1.
  std::vector<Arrival> generate() const;

  /// Tenant name for an arrival (prefix + zero-padded index).
  std::string tenant_name(std::uint32_t tenant) const;

private:
  TrafficConfig config_;
  std::vector<double> tenant_cdf_;  ///< cumulative zipf weights
  double mix_cdf_[4] = {0.0, 0.0, 0.0, 0.0};
};

}  // namespace hpcqc::load
