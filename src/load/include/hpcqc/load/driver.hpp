#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpcqc/device/device_model.hpp"
#include "hpcqc/load/traffic.hpp"
#include "hpcqc/sched/admission.hpp"
#include "hpcqc/sched/qrm.hpp"

namespace hpcqc::load {

/// Builds the concrete QuantumJob for an arrival. Thread-safe and pure:
/// the circuit is derived from a private RNG stream forked off
/// (seed, ticket), so any ingest thread can materialize any arrival and
/// always produce the identical payload.
class JobFactory {
public:
  JobFactory(const device::DeviceModel& device,
             const TrafficGenerator& traffic, std::uint64_t seed);

  sched::QuantumJob make(const Arrival& arrival) const;
  sched::StampedJob stamp(const Arrival& arrival) const;
  std::string tenant_name(std::uint32_t tenant) const;

private:
  const device::DeviceModel* device_;
  const TrafficGenerator* traffic_;
  std::uint64_t seed_;
  int device_qubits_;
};

/// Per-tenant outcome tallies (fairness assertions key off these).
struct TenantOutcome {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;

  bool operator==(const TenantOutcome&) const = default;
};

/// Everything a campaign produces. Pure function of (schedule, QRM
/// config, seeds): `fingerprint` folds every per-job outcome into one
/// value, so replay identity across reruns / thread counts is a single
/// equality check.
struct LoadReport {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;  ///< kRejectedOverload + kRejectedTooWide
  std::size_t completed = 0;
  std::size_t failed = 0;    ///< dead-lettered
  std::size_t shed = 0;
  std::uint64_t backpressure_events = 0;
  Seconds makespan = 0.0;  ///< simulated time from first slice to drain
  Seconds queue_wait_p50 = 0.0;  ///< over completed jobs
  Seconds queue_wait_p99 = 0.0;
  bool conservation_ok = false;
  /// FNV-1a over (ticket, id, state, end_time) in ticket order.
  std::uint64_t fingerprint = 0;
  std::map<std::string, TenantOutcome> tenants;
};

/// Open-loop campaign driver: walks the schedule in fixed simulated-time
/// slices; within each slice, `ingest_threads` real threads materialize
/// and offer() the slice's arrivals concurrently through the lock-free
/// gateway, then the driver joins them and drains into the QRM at the
/// slice boundary. Arrival tickets restore canonical admission order, so
/// the report is bit-identical for any ingest_threads value.
class OpenLoopDriver {
public:
  struct Config {
    std::size_t ingest_threads = 4;
    Seconds slice = minutes(10.0);
    sched::AdmissionGateway::Config gateway;
    bool drain_at_end = true;  ///< run the QRM dry after the last slice
  };

  explicit OpenLoopDriver(Config config);

  /// Runs the whole campaign against `qrm` (which must be at a time at or
  /// before the first arrival) and reports the outcome.
  LoadReport run(sched::Qrm& qrm, const JobFactory& factory,
                 const std::vector<Arrival>& schedule) const;

private:
  Config config_;
};

}  // namespace hpcqc::load
