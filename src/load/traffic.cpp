#include "hpcqc/load/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::load {

const char* to_string(JobClass job_class) {
  switch (job_class) {
    case JobClass::kGhz: return "ghz";
    case JobClass::kSampling: return "sampling";
    case JobClass::kVqeTightLoop: return "vqe";
    case JobClass::kQaoa: return "qaoa";
  }
  return "?";
}

namespace {

void validate_config(const TrafficConfig& config) {
  const auto check = [](bool ok, const std::string& what) {
    if (!ok)
      throw PermanentError("TrafficConfig: " + what,
                           ErrorCode::kPrecondition);
  };
  check(config.tenants >= 1, "need at least one tenant");
  check(config.zipf_exponent >= 0.0, "zipf_exponent cannot be negative");
  check(config.duration > 0.0, "duration must be positive");
  check(config.base_rate_per_hour > 0.0,
        "base_rate_per_hour must be positive");
  check(config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude < 1.0,
        "diurnal_amplitude must be in [0, 1)");
  check(config.diurnal_period > 0.0, "diurnal_period must be positive");
  check(config.weekend_factor > 0.0, "weekend_factor must be positive");
  check(config.ghz_weight >= 0.0 && config.sampling_weight >= 0.0 &&
            config.vqe_weight >= 0.0 && config.qaoa_weight >= 0.0,
        "mix weights cannot be negative");
  check(config.ghz_weight + config.sampling_weight + config.vqe_weight +
                config.qaoa_weight >
            0.0,
        "job mix must have at least one positive weight");
  check(config.shots_alpha > 0.0, "shots_alpha must be positive");
  check(config.min_shots >= 1 && config.max_shots >= config.min_shots,
        "need 1 <= min_shots <= max_shots");
  check(config.min_qubits >= 2 && config.max_qubits >= config.min_qubits,
        "need 2 <= min_qubits <= max_qubits");
  check(config.max_layers >= 1, "max_layers must be >= 1");
  check(config.high_fraction >= 0.0 && config.low_fraction >= 0.0 &&
            config.high_fraction + config.low_fraction <= 1.0,
        "priority fractions must be non-negative and sum to <= 1");
}

/// Bounded Pareto inverse CDF over [lo, hi] with tail exponent alpha.
double bounded_pareto(double u, double lo, double hi, double alpha) {
  const double ratio = std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

}  // namespace

TrafficGenerator::TrafficGenerator(TrafficConfig config)
    : config_(std::move(config)) {
  validate_config(config_);
  tenant_cdf_.reserve(config_.tenants);
  double total = 0.0;
  for (std::size_t k = 0; k < config_.tenants; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1),
                            config_.zipf_exponent);
    tenant_cdf_.push_back(total);
  }
  for (double& c : tenant_cdf_) c /= total;

  const double weights[4] = {config_.ghz_weight, config_.sampling_weight,
                             config_.vqe_weight, config_.qaoa_weight};
  const double sum = weights[0] + weights[1] + weights[2] + weights[3];
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    acc += weights[i] / sum;
    mix_cdf_[i] = acc;
  }
}

double TrafficGenerator::rate_at(Seconds t) const {
  const double phase = 2.0 * M_PI * (t - config_.diurnal_peak) /
                       config_.diurnal_period;
  const int day_of_week =
      static_cast<int>(std::floor(to_days(t))) % 7;  // t = 0 is a Monday
  const double weekly =
      day_of_week == 5 || day_of_week == 6 ? config_.weekend_factor : 1.0;
  return config_.base_rate_per_hour * weekly *
         (1.0 + config_.diurnal_amplitude * std::cos(phase));
}

std::string TrafficGenerator::tenant_name(std::uint32_t tenant) const {
  std::string digits = std::to_string(tenant);
  const std::size_t width = std::to_string(config_.tenants - 1).size();
  if (digits.size() < width)
    digits.insert(0, width - digits.size(), '0');
  return config_.tenant_prefix + digits;
}

std::vector<Arrival> TrafficGenerator::generate() const {
  Rng rng(config_.seed);
  std::vector<Arrival> schedule;
  schedule.reserve(static_cast<std::size_t>(
      config_.base_rate_per_hour * to_hours(config_.duration) * 1.2));

  // Non-homogeneous Poisson via thinning: draw candidate gaps at the peak
  // rate, keep each candidate with probability rate(t) / rate_max. The
  // envelope must dominate rate_at everywhere, including a weekend boost
  // when weekend_factor > 1.
  const double rate_max = config_.base_rate_per_hour *
                          std::max(1.0, config_.weekend_factor) *
                          (1.0 + config_.diurnal_amplitude);
  Seconds t = 0.0;
  std::uint64_t ticket = 0;
  while (true) {
    t += hours(rng.exponential(rate_max));
    if (t >= config_.duration) break;
    if (!rng.bernoulli(rate_at(t) / rate_max)) continue;

    Arrival arrival;
    arrival.ticket = ticket++;
    arrival.time = t;

    const double tu = rng.uniform();
    arrival.tenant = static_cast<std::uint32_t>(
        std::lower_bound(tenant_cdf_.begin(), tenant_cdf_.end(), tu) -
        tenant_cdf_.begin());

    const double mu = rng.uniform();
    arrival.job_class = mu < mix_cdf_[0]   ? JobClass::kGhz
                        : mu < mix_cdf_[1] ? JobClass::kSampling
                        : mu < mix_cdf_[2] ? JobClass::kVqeTightLoop
                                           : JobClass::kQaoa;

    // Shape: GHZ spans the full width range; sampling is wide and shallow;
    // VQE tight loops are narrow and deep; QAOA sits mid-width.
    const int span = config_.max_qubits - config_.min_qubits + 1;
    switch (arrival.job_class) {
      case JobClass::kGhz:
        arrival.qubits = config_.min_qubits +
                         static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(span)));
        arrival.layers = 1;
        break;
      case JobClass::kSampling:
        arrival.qubits =
            config_.min_qubits +
            static_cast<int>(rng.uniform_index(
                static_cast<std::uint64_t>(std::max(1, span))));
        arrival.layers = 1 + static_cast<int>(rng.uniform_index(
                                 static_cast<std::uint64_t>(
                                     std::max(1, config_.max_layers / 2))));
        break;
      case JobClass::kVqeTightLoop:
        arrival.qubits = config_.min_qubits +
                         static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(
                                 std::max(1, span / 3))));
        arrival.layers = config_.max_layers;
        break;
      case JobClass::kQaoa:
        arrival.qubits = config_.min_qubits +
                         static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(
                                 std::max(1, 2 * span / 3))));
        arrival.layers = 1 + static_cast<int>(rng.uniform_index(
                                 static_cast<std::uint64_t>(
                                     config_.max_layers)));
        break;
    }

    arrival.shots = static_cast<std::size_t>(bounded_pareto(
        rng.uniform(), static_cast<double>(config_.min_shots),
        static_cast<double>(config_.max_shots), config_.shots_alpha));
    arrival.shots = std::clamp(arrival.shots, config_.min_shots,
                               config_.max_shots);

    const double pu = rng.uniform();
    arrival.priority = pu < config_.high_fraction
                           ? sched::JobPriority::kHigh
                       : pu < config_.high_fraction + config_.low_fraction
                           ? sched::JobPriority::kLow
                           : sched::JobPriority::kNormal;

    schedule.push_back(arrival);
  }
  return schedule;
}

}  // namespace hpcqc::load
