#include "hpcqc/load/driver.hpp"

#include <algorithm>
#include <thread>

#include "hpcqc/calibration/benchmark.hpp"
#include "hpcqc/common/error.hpp"
#include "hpcqc/sched/workload.hpp"

namespace hpcqc::load {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFULL;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_double(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return fnv1a(hash, bits);
}

Seconds percentile(std::vector<Seconds>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

JobFactory::JobFactory(const device::DeviceModel& device,
                       const TrafficGenerator& traffic, std::uint64_t seed)
    : device_(&device),
      traffic_(&traffic),
      seed_(seed),
      device_qubits_(device.num_qubits()) {}

sched::QuantumJob JobFactory::make(const Arrival& arrival) const {
  // Fork a private stream per arrival: circuit content then depends only
  // on (seed, ticket), never on which thread builds it or in what order.
  Rng rng(seed_ ^ (arrival.ticket * 0x9E3779B97F4A7C15ULL + 1));
  const int qubits = std::min(arrival.qubits, device_qubits_);
  sched::QuantumJob job;
  job.name = std::string(to_string(arrival.job_class)) + "-" +
             std::to_string(arrival.ticket);
  job.project = traffic_->tenant_name(arrival.tenant);
  job.shots = arrival.shots;
  job.priority = arrival.priority;
  switch (arrival.job_class) {
    case JobClass::kGhz:
      job.circuit = calibration::GhzBenchmark::chain_circuit(*device_, qubits);
      break;
    case JobClass::kSampling:
    case JobClass::kVqeTightLoop:
    case JobClass::kQaoa:
      job.circuit = sched::chain_brickwork_circuit(*device_, qubits,
                                                   arrival.layers, rng);
      break;
  }
  return job;
}

std::string JobFactory::tenant_name(std::uint32_t tenant) const {
  return traffic_->tenant_name(tenant);
}

sched::StampedJob JobFactory::stamp(const Arrival& arrival) const {
  sched::StampedJob item;
  item.ticket = arrival.ticket;
  item.arrival = arrival.time;
  item.job = make(arrival);
  return item;
}

OpenLoopDriver::OpenLoopDriver(Config config) : config_(std::move(config)) {
  expects(config_.ingest_threads >= 1,
          "OpenLoopDriver: need at least one ingest thread");
  expects(config_.slice > 0.0, "OpenLoopDriver: slice must be positive");
}

LoadReport OpenLoopDriver::run(sched::Qrm& qrm, const JobFactory& factory,
                               const std::vector<Arrival>& schedule) const {
  sched::AdmissionGateway gateway(qrm, config_.gateway);
  const Seconds start = qrm.now();
  std::vector<std::pair<std::uint64_t, int>> outcomes;
  outcomes.reserve(schedule.size());

  std::size_t next = 0;
  Seconds slice_end = start + config_.slice;
  while (next < schedule.size()) {
    std::size_t last = next;
    while (last < schedule.size() && schedule[last].time < slice_end)
      ++last;
    if (last > next) {
      // Real concurrent ingestion: the slice's arrivals are offered from
      // N threads racing on the lock-free shards. The interleaving is
      // whatever the OS gives us — tickets make it irrelevant.
      const std::size_t stride = config_.ingest_threads;
      std::vector<std::thread> workers;
      workers.reserve(stride);
      for (std::size_t w = 0; w < stride; ++w) {
        workers.emplace_back([&, w] {
          for (std::size_t k = next + w; k < last; k += stride)
            gateway.offer(factory.stamp(schedule[k]));
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    // Slice barrier: everything offered is visible, so the drain at the
    // boundary sees the complete slice and admits it in ticket order on
    // the simulated clock.
    qrm.advance_to(slice_end);
    const auto batch = gateway.drain_and_admit();
    outcomes.insert(outcomes.end(), batch.begin(), batch.end());
    next = last;
    slice_end += config_.slice;
  }
  if (config_.drain_at_end) qrm.drain();

  LoadReport report;
  report.offered = schedule.size();
  report.backpressure_events = gateway.backpressure_events();
  report.makespan = qrm.now() - start;
  report.conservation_ok = qrm.conservation().holds();

  std::sort(outcomes.begin(), outcomes.end());
  std::vector<Seconds> waits;
  waits.reserve(outcomes.size());
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  std::map<std::uint32_t, TenantOutcome> tenant_by_index;
  for (const Arrival& arrival : schedule)
    tenant_by_index[arrival.tenant].offered += 1;
  std::size_t cursor = 0;
  for (const auto& [ticket, id] : outcomes) {
    const sched::QuantumJobRecord& record = qrm.record(id);
    // Schedules and outcomes are both ticket-ordered, so the arrival for
    // this outcome is found by advancing a cursor, not searching.
    while (cursor < schedule.size() && schedule[cursor].ticket != ticket)
      ++cursor;
    ensure_state(cursor < schedule.size(),
                 "OpenLoopDriver: outcome ticket missing from schedule");
    TenantOutcome& tenant = tenant_by_index[schedule[cursor].tenant];
    switch (record.state) {
      case sched::QuantumJobState::kCompleted:
        report.completed += 1;
        tenant.admitted += 1;
        tenant.completed += 1;
        waits.push_back(record.wait_time());
        break;
      case sched::QuantumJobState::kRejectedOverload:
      case sched::QuantumJobState::kRejectedTooWide:
        report.rejected += 1;
        tenant.rejected += 1;
        break;
      case sched::QuantumJobState::kFailed:
        report.failed += 1;
        tenant.admitted += 1;
        break;
      case sched::QuantumJobState::kShed:
        report.shed += 1;
        tenant.admitted += 1;
        break;
      default:
        tenant.admitted += 1;
        break;
    }
    hash = fnv1a(hash, ticket);
    hash = fnv1a(hash, static_cast<std::uint64_t>(id));
    hash = fnv1a(hash, static_cast<std::uint64_t>(record.state));
    hash = fnv1a_double(hash, record.end_time);
  }
  report.admitted = report.offered - report.rejected;
  report.fingerprint = hash;

  std::sort(waits.begin(), waits.end());
  report.queue_wait_p50 = percentile(waits, 0.50);
  report.queue_wait_p99 = percentile(waits, 0.99);

  for (const auto& [index, outcome] : tenant_by_index)
    report.tenants.emplace(factory.tenant_name(index), outcome);
  return report;
}

}  // namespace hpcqc::load
