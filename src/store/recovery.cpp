#include "hpcqc/store/recovery.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "hpcqc/common/error.hpp"
#include "hpcqc/store/journal.hpp"
#include "hpcqc/store/snapshot.hpp"

namespace hpcqc::store {

namespace {

void erase_id(std::vector<int>& queue, int id) { std::erase(queue, id); }

/// Applies one replayed job event to a per-device image. The switch mirrors
/// the live Qrm mutation next to each emission site: the journal is
/// write-ahead, so "apply the event" and "what the QRM did" are the same
/// transition.
void apply_job_event(sched::QrmDurableState& img, const JobEventRecord& ev) {
  img.now = std::max(img.now, ev.at);
  if (ev.id > 0) img.next_id = std::max(img.next_id, ev.id + 1);
  switch (ev.kind) {
    case sched::JobEvent::Kind::kSubmitted:
      expects(ev.has_record && ev.has_job,
              "recovery: kSubmitted without payload");
      img.records[ev.id] = ev.record;
      img.pending[ev.id] = ev.job;
      break;
    case sched::JobEvent::Kind::kAdmitted:
      img.queue.push_back(ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      img.class_buckets[static_cast<int>(ev.priority)] = {ev.bucket_tokens,
                                                          ev.bucket_refill};
      break;
    case sched::JobEvent::Kind::kRejected:
      if (ev.has_record) img.records[ev.id] = ev.record;
      img.pending.erase(ev.id);
      break;
    case sched::JobEvent::Kind::kDispatched:
      erase_id(img.queue, ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      break;
    case sched::JobEvent::Kind::kCompleted:
      if (ev.has_record) img.records[ev.id] = ev.record;
      img.pending.erase(ev.id);
      break;
    case sched::JobEvent::Kind::kRetrying:
      img.retry_queue.push_back(ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      break;
    case sched::JobEvent::Kind::kRetryRequeued: {
      erase_id(img.retry_queue, ev.id);
      img.queue.insert(img.queue.begin(), ev.id);
      const auto it = img.records.find(ev.id);
      if (it != img.records.end()) {
        it->second.state = sched::QuantumJobState::kQueued;
        it->second.next_retry_at = -1.0;
      }
      break;
    }
    case sched::JobEvent::Kind::kInterrupted:
      img.queue.insert(img.queue.begin(), ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      break;
    case sched::JobEvent::Kind::kCancelled:
    case sched::JobEvent::Kind::kShed:
      erase_id(img.queue, ev.id);
      erase_id(img.retry_queue, ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      img.pending.erase(ev.id);
      break;
    case sched::JobEvent::Kind::kDeadLettered: {
      erase_id(img.queue, ev.id);
      erase_id(img.retry_queue, ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      sched::DeadLetterRecord letter;
      letter.id = ev.id;
      const auto rit = img.records.find(ev.id);
      if (rit != img.records.end()) {
        letter.name = rit->second.name;
        letter.attempts = rit->second.attempts;
        letter.trace = rit->second.trace;
      }
      letter.reason = ev.reason;
      letter.failed_at = ev.at;
      const auto pit = img.pending.find(ev.id);
      if (pit != img.pending.end()) {
        letter.job = std::move(pit->second);
        img.pending.erase(pit);
      }
      // No capacity enforcement here: overflow is its own journaled event
      // (kDlqDropped), so replay reproduces the live DLQ exactly.
      img.dead_letters.push_back(std::move(letter));
      break;
    }
    case sched::JobEvent::Kind::kDlqDropped:
      if (!img.dead_letters.empty())
        img.dead_letters.erase(img.dead_letters.begin());
      break;
    case sched::JobEvent::Kind::kDlqDrained:
      img.dead_letters.clear();
      break;
    case sched::JobEvent::Kind::kMigratedOut:
      erase_id(img.queue, ev.id);
      erase_id(img.retry_queue, ev.id);
      if (ev.has_record) img.records[ev.id] = ev.record;
      img.pending.erase(ev.id);
      break;
    case sched::JobEvent::Kind::kTenantDelta:
      img.tenants[ev.project] = {ev.bucket_tokens, ev.bucket_refill};
      break;
    case sched::JobEvent::Kind::kOffline:
      img.online = false;
      break;
    case sched::JobEvent::Kind::kOnline:
      img.online = true;
      break;
  }
}

void apply_fleet_event(sched::FleetDurableState& img,
                       const FleetEventRecord& ev) {
  img.now = std::max(img.now, ev.at);
  if (ev.id > 0) img.next_id = std::max(img.next_id, ev.id + 1);
  switch (ev.kind) {
    case sched::FleetEvent::Kind::kSubmitted: {
      sched::Fleet::FleetJobRecord record;
      record.id = ev.id;
      record.name = ev.name;
      record.device = ev.device;
      record.local_id = ev.local_id;
      record.submit_time = ev.at;
      record.width = ev.width;
      record.priority = ev.priority;
      if (ev.device < 0) {
        record.refused_state = ev.refused_state;
        record.refusal_reason = ev.reason;
      } else {
        record.hops.emplace_back(ev.device, ev.local_id);
      }
      img.records[ev.id] = std::move(record);
      break;
    }
    case sched::FleetEvent::Kind::kMigrated: {
      const auto it = img.records.find(ev.id);
      if (it == img.records.end()) break;
      it->second.device = ev.device;
      it->second.local_id = ev.local_id;
      it->second.migrations += 1;
      it->second.hops.emplace_back(ev.device, ev.local_id);
      break;
    }
  }
}

/// Records still marked admissible whose admission outcome (queue entry or
/// terminal refusal) was torn off the journal tail have no deterministic
/// continuation: cancel them, counted, rather than guess.
std::size_t scrub(sched::QrmDurableState& img) {
  std::size_t scrubbed = 0;
  for (auto& [id, record] : img.records) {
    const bool orphan_queued =
        record.state == sched::QuantumJobState::kQueued &&
        std::find(img.queue.begin(), img.queue.end(), id) == img.queue.end();
    const bool orphan_retrying =
        record.state == sched::QuantumJobState::kRetrying &&
        std::find(img.retry_queue.begin(), img.retry_queue.end(), id) ==
            img.retry_queue.end();
    if (!orphan_queued && !orphan_retrying) continue;
    record.state = sched::QuantumJobState::kCancelled;
    record.end_time = img.now;
    record.next_retry_at = -1.0;
    record.failure_reason =
        "recovery: admission outcome lost in torn journal tail";
    img.pending.erase(id);
    scrubbed += 1;
  }
  return scrubbed;
}

/// Rebuilds the structure-cache manifest exactly like capture_durable does,
/// so a recovered image round-trips byte-identically through a snapshot.
void rebuild_manifest(sched::QrmDurableState& img) {
  img.structure_manifest.clear();
  for (const auto& [id, job] : img.pending)
    if (job.parametric != nullptr)
      img.structure_manifest.push_back(job.parametric->structural_hash());
  std::sort(img.structure_manifest.begin(), img.structure_manifest.end());
  img.structure_manifest.erase(std::unique(img.structure_manifest.begin(),
                                           img.structure_manifest.end()),
                               img.structure_manifest.end());
}

}  // namespace

Recovery::Recovery(const WalBackend& backend, obs::MetricsRegistry* metrics,
                   obs::Tracer* tracer)
    : backend_(&backend), metrics_(metrics), tracer_(tracer) {}

sched::QrmDurableState Recovery::recover_qrm() {
  stats_ = RecoveryStats{};
  const WalScan scan = Wal::scan(*backend_);
  stats_.dropped_bytes = scan.dropped_bytes;
  stats_.torn_tail = scan.torn;

  sched::QrmDurableState img;
  std::size_t start = 0;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    const WalRecord& record = scan.records[i];
    if (record.type != static_cast<std::uint8_t>(RecordType::kSnapshot))
      continue;
    if (snapshot_scope(record.payload) != SnapshotScope::kQrm) continue;
    img = decode_qrm_snapshot(record.payload);
    stats_.snapshot_lsn = record.lsn;
    stats_.had_snapshot = true;
    start = i + 1;
  }
  for (std::size_t i = start; i < scan.records.size(); ++i) {
    const WalRecord& record = scan.records[i];
    if (record.type == static_cast<std::uint8_t>(RecordType::kJobEvent)) {
      apply_job_event(img, decode_job_event(record.payload));
      stats_.replayed += 1;
    }
  }
  stats_.scrubbed = scrub(img);
  rebuild_manifest(img);
  stats_.recovered_now = img.now;
  return img;
}

sched::FleetDurableState Recovery::recover_fleet(std::size_t min_devices) {
  stats_ = RecoveryStats{};
  const WalScan scan = Wal::scan(*backend_);
  stats_.dropped_bytes = scan.dropped_bytes;
  stats_.torn_tail = scan.torn;

  sched::FleetDurableState img;
  std::size_t start = 0;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    const WalRecord& record = scan.records[i];
    if (record.type != static_cast<std::uint8_t>(RecordType::kSnapshot))
      continue;
    if (snapshot_scope(record.payload) != SnapshotScope::kFleet) continue;
    img = decode_fleet_snapshot(record.payload);
    stats_.snapshot_lsn = record.lsn;
    stats_.had_snapshot = true;
    start = i + 1;
  }
  for (std::size_t i = start; i < scan.records.size(); ++i) {
    const WalRecord& record = scan.records[i];
    if (record.type == static_cast<std::uint8_t>(RecordType::kJobEvent)) {
      const JobEventRecord ev = decode_job_event(record.payload);
      expects(ev.device >= 0, "recovery: fleet journal event without tag");
      if (static_cast<std::size_t>(ev.device) >= img.devices.size())
        img.devices.resize(static_cast<std::size_t>(ev.device) + 1);
      apply_job_event(img.devices[static_cast<std::size_t>(ev.device)], ev);
      stats_.replayed += 1;
    } else if (record.type ==
               static_cast<std::uint8_t>(RecordType::kFleetEvent)) {
      apply_fleet_event(img, decode_fleet_event(record.payload));
      stats_.replayed += 1;
    }
  }
  if (img.devices.size() < min_devices) img.devices.resize(min_devices);
  for (sched::QrmDurableState& device : img.devices) {
    stats_.scrubbed += scrub(device);
    rebuild_manifest(device);
    img.now = std::max(img.now, device.now);
  }
  stats_.recovered_now = img.now;
  return img;
}

RecoveryStats Recovery::restore(sched::Qrm& qrm) {
  const sched::QrmDurableState img = recover_qrm();
  finish(qrm.restore_durable(img));
  return stats_;
}

RecoveryStats Recovery::restore(sched::Fleet& fleet) {
  const sched::FleetDurableState img = recover_fleet(fleet.num_devices());
  finish(fleet.restore_durable(img));
  return stats_;
}

void Recovery::finish(const sched::RestoreSummary& summary) {
  stats_.requeued = summary.requeued_in_flight;
  stats_.backfilled_traces = summary.backfilled_traces;
  if (metrics_ != nullptr) {
    metrics_->counter("store.recovery.replayed")
        .inc(static_cast<double>(stats_.replayed));
    metrics_->counter("store.recovery.requeued")
        .inc(static_cast<double>(stats_.requeued));
    metrics_->counter("store.recovery.dropped")
        .inc(static_cast<double>(stats_.dropped_bytes));
  }
  if (tracer_ != nullptr) {
    // Recovery is a control-plane instant on the simulated clock: the span
    // documents what happened (and anchors the recovered jobs' fresh spans
    // in time), not how long the wall-clock rebuild took.
    const Seconds at = stats_.recovered_now;
    const obs::SpanHandle root = tracer_->begin_span("recovery", at);
    const obs::TraceContext ctx = tracer_->context(root);
    const obs::SpanHandle load = tracer_->begin_span("snapshot-load", at, ctx);
    tracer_->set_attribute(load, "snapshot_lsn",
                           std::to_string(stats_.snapshot_lsn));
    tracer_->set_attribute(load, "had_snapshot",
                           stats_.had_snapshot ? "true" : "false");
    tracer_->end_span(load, at);
    const obs::SpanHandle replay =
        tracer_->begin_span("journal-replay", at, ctx);
    tracer_->set_attribute(replay, "replayed",
                           std::to_string(stats_.replayed));
    tracer_->set_attribute(replay, "requeued",
                           std::to_string(stats_.requeued));
    tracer_->set_attribute(replay, "dropped_bytes",
                           std::to_string(stats_.dropped_bytes));
    tracer_->set_attribute(replay, "scrubbed",
                           std::to_string(stats_.scrubbed));
    tracer_->set_attribute(replay, "torn_tail",
                           stats_.torn_tail ? "true" : "false");
    tracer_->end_span(replay, at);
    tracer_->end_span(root, at);
  }
}

}  // namespace hpcqc::store
