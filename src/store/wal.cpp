#include "hpcqc/store/wal.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>

#include "hpcqc/common/error.hpp"
#include "hpcqc/store/codec.hpp"

namespace hpcqc::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::size_t kFrameHeader = 8;  ///< u32 len + u32 crc

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- memory --

std::vector<std::uint64_t> MemoryWalBackend::segments() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(store_.size());
  for (const auto& [id, bytes] : store_) ids.push_back(id);
  return ids;
}

std::vector<std::uint8_t> MemoryWalBackend::read_segment(
    std::uint64_t id) const {
  const auto it = store_.find(id);
  if (it == store_.end())
    throw NotFoundError("MemoryWalBackend: no segment " + std::to_string(id));
  return it->second;
}

void MemoryWalBackend::open_segment(std::uint64_t id) {
  store_[id].clear();
  current_ = id;
  has_current_ = true;
}

void MemoryWalBackend::append(const std::uint8_t* data, std::size_t size) {
  ensure_state(has_current_, "MemoryWalBackend: no open segment");
  auto& segment = store_[current_];
  segment.insert(segment.end(), data, data + size);
}

void MemoryWalBackend::remove_segment(std::uint64_t id) {
  store_.erase(id);
  if (has_current_ && id == current_) has_current_ = false;
}

std::size_t MemoryWalBackend::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, bytes] : store_) total += bytes.size();
  return total;
}

void MemoryWalBackend::truncate_total(std::size_t bytes) {
  std::size_t kept = 0;
  for (auto it = store_.begin(); it != store_.end();) {
    auto& segment = it->second;
    if (kept >= bytes) {
      it = store_.erase(it);
      continue;
    }
    const std::size_t room = bytes - kept;
    if (segment.size() > room) segment.resize(room);
    kept += segment.size();
    ++it;
  }
  has_current_ = false;
}

void MemoryWalBackend::clear() {
  store_.clear();
  has_current_ = false;
}

// ------------------------------------------------------------------ file --

FileWalBackend::FileWalBackend(std::string directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::string FileWalBackend::segment_path(std::uint64_t id) const {
  std::string name = std::to_string(id);
  if (name.size() < 8) name.insert(0, 8 - name.size(), '0');
  return directory_ + "/wal-" + name + ".log";
}

std::vector<std::uint64_t> FileWalBackend::segments() const {
  std::vector<std::uint64_t> ids;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 9 || name.rfind("wal-", 0) != 0) continue;
    if (name.substr(name.size() - 4) != ".log") continue;
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    ids.push_back(std::stoull(digits));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::uint8_t> FileWalBackend::read_segment(
    std::uint64_t id) const {
  std::ifstream in(segment_path(id), std::ios::binary);
  if (!in)
    throw NotFoundError("FileWalBackend: no segment " + std::to_string(id));
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void FileWalBackend::open_segment(std::uint64_t id) {
  std::ofstream out(segment_path(id), std::ios::binary | std::ios::trunc);
  ensure_state(static_cast<bool>(out),
               "FileWalBackend: cannot open segment " + segment_path(id));
  current_ = id;
  has_current_ = true;
}

void FileWalBackend::append(const std::uint8_t* data, std::size_t size) {
  ensure_state(has_current_, "FileWalBackend: no open segment");
  std::ofstream out(segment_path(current_),
                    std::ios::binary | std::ios::app);
  ensure_state(static_cast<bool>(out),
               "FileWalBackend: cannot append to " + segment_path(current_));
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  out.flush();
}

void FileWalBackend::remove_segment(std::uint64_t id) {
  std::filesystem::remove(segment_path(id));
  if (has_current_ && id == current_) has_current_ = false;
}

// ------------------------------------------------------------------- wal --

Wal::Wal(WalBackend& backend) : Wal(backend, Config{}) {}

Wal::Wal(WalBackend& backend, Config config, obs::MetricsRegistry* metrics)
    : backend_(&backend), config_(config) {
  expects(config_.segment_bytes > 0, "Wal: segment_bytes must be positive");
  if (metrics != nullptr) {
    m_appended_ = &metrics->counter("store.wal.appended");
    m_bytes_ = &metrics->counter("store.wal.bytes");
  }
  // Continue the LSN sequence past everything intact on disk, and index the
  // surviving segments so truncate_below can drop them once replayed.
  std::uint64_t max_segment = 0;
  for (const std::uint64_t id : backend_->segments())
    max_segment = std::max(max_segment, id);
  const WalScan scan_result = scan(*backend_);
  for (const WalRecord& record : scan_result.records)
    next_lsn_ = std::max(next_lsn_, record.lsn + 1);
  // Index which segment each record landed in (re-walk per segment).
  for (const std::uint64_t id : backend_->segments()) {
    const std::vector<std::uint8_t> bytes = backend_->read_segment(id);
    SegmentMeta m;
    std::size_t pos = 0;
    while (bytes.size() - pos >= kFrameHeader) {
      ByteReader header(bytes.data() + pos, kFrameHeader);
      const std::uint32_t len = header.u32();
      const std::uint32_t crc = header.u32();
      if (len < 9 || bytes.size() - pos - kFrameHeader < len) break;
      if (crc32(bytes.data() + pos + kFrameHeader, len) != crc) break;
      ByteReader body(bytes.data() + pos + kFrameHeader, len);
      m.max_lsn = std::max(m.max_lsn, body.u64());
      m.any = true;
      pos += kFrameHeader + len;
    }
    meta_[id] = m;
  }
  // Never append after a possibly-torn tail: always start a fresh segment.
  current_segment_ = max_segment + 1;
  backend_->open_segment(current_segment_);
  meta_[current_segment_] = SegmentMeta{};
  open_bytes_ = 0;
}

std::uint64_t Wal::append(std::uint8_t type,
                          const std::vector<std::uint8_t>& payload) {
  const std::uint64_t lsn = next_lsn_++;
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(9 + payload.size()));
  frame.u32(0);  // CRC placeholder, patched below
  frame.u64(lsn);
  frame.u8(type);
  for (const std::uint8_t b : payload) frame.u8(b);
  std::vector<std::uint8_t> bytes = frame.take();
  // CRC over the body (lsn + type + payload), patched into the header.
  const std::uint32_t crc =
      crc32(bytes.data() + kFrameHeader, bytes.size() - kFrameHeader);
  for (int i = 0; i < 4; ++i)
    bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  backend_->append(bytes.data(), bytes.size());

  SegmentMeta& m = meta_[current_segment_];
  m.max_lsn = std::max(m.max_lsn, lsn);
  m.any = true;
  open_bytes_ += bytes.size();
  if (m_appended_ != nullptr) m_appended_->inc();
  if (m_bytes_ != nullptr) m_bytes_->inc(static_cast<double>(bytes.size()));
  if (open_bytes_ > config_.segment_bytes) rotate();
  return lsn;
}

void Wal::rotate() {
  current_segment_ += 1;
  backend_->open_segment(current_segment_);
  meta_[current_segment_] = SegmentMeta{};
  open_bytes_ = 0;
}

void Wal::truncate_below(std::uint64_t lsn) {
  for (auto it = meta_.begin(); it != meta_.end();) {
    if (it->first == current_segment_) {
      ++it;
      continue;
    }
    const bool replayed = !it->second.any || it->second.max_lsn < lsn;
    if (replayed) {
      backend_->remove_segment(it->first);
      it = meta_.erase(it);
    } else {
      ++it;
    }
  }
}

WalScan Wal::scan(const WalBackend& backend) {
  WalScan result;
  bool stopped = false;
  std::size_t dropped = 0;
  for (const std::uint64_t id : backend.segments()) {
    const std::vector<std::uint8_t> bytes = backend.read_segment(id);
    if (stopped) {
      // Prefix consistency: once a bad frame is found, everything after it
      // — including whole later segments — is untrusted.
      dropped += bytes.size();
      continue;
    }
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      if (bytes.size() - pos < kFrameHeader) {
        stopped = true;
        break;
      }
      ByteReader header(bytes.data() + pos, kFrameHeader);
      const std::uint32_t len = header.u32();
      const std::uint32_t crc = header.u32();
      if (len < 9 || bytes.size() - pos - kFrameHeader < len) {
        stopped = true;
        break;
      }
      if (crc32(bytes.data() + pos + kFrameHeader, len) != crc) {
        stopped = true;
        break;
      }
      ByteReader body(bytes.data() + pos + kFrameHeader, len);
      WalRecord record;
      record.lsn = body.u64();
      record.type = body.u8();
      record.payload.assign(bytes.data() + pos + kFrameHeader + 9,
                            bytes.data() + pos + kFrameHeader + len);
      result.records.push_back(std::move(record));
      pos += kFrameHeader + len;
    }
    if (stopped) dropped += bytes.size() - pos;
  }
  result.dropped_bytes = dropped;
  result.torn = stopped && dropped > 0;
  return result;
}

}  // namespace hpcqc::store
