#include "hpcqc/store/snapshot.hpp"

#include <chrono>

#include "hpcqc/common/error.hpp"
#include "hpcqc/store/codec.hpp"
#include "hpcqc/store/journal.hpp"

namespace hpcqc::store {

namespace {

constexpr std::uint32_t kMagic = 0x53445148u;  // "HQDS" little-endian
constexpr std::uint8_t kVersion = 1;

void encode_qrm_body(ByteWriter& out, const sched::QrmDurableState& state) {
  out.f64(state.now);
  out.i32(state.next_id);
  out.boolean(state.online);

  out.u32(static_cast<std::uint32_t>(state.queue.size()));
  for (const int id : state.queue) out.i32(id);
  out.u32(static_cast<std::uint32_t>(state.retry_queue.size()));
  for (const int id : state.retry_queue) out.i32(id);

  out.u32(static_cast<std::uint32_t>(state.records.size()));
  for (const auto& [id, record] : state.records) encode_record(out, record);
  out.u32(static_cast<std::uint32_t>(state.pending.size()));
  for (const auto& [id, job] : state.pending) {
    out.i32(id);
    encode_job(out, job);
  }

  out.u32(static_cast<std::uint32_t>(state.dead_letters.size()));
  for (const sched::DeadLetterRecord& letter : state.dead_letters) {
    out.i32(letter.id);
    out.str(letter.name);
    out.u64(letter.attempts);
    out.str(letter.reason);
    out.f64(letter.failed_at);
    encode_job(out, letter.job);
    out.u64(letter.trace.trace_id);
    out.u64(letter.trace.span);
  }

  for (const sched::TokenBucketState& bucket : state.class_buckets) {
    out.f64(bucket.tokens);
    out.f64(bucket.last_refill);
  }
  out.u32(static_cast<std::uint32_t>(state.tenants.size()));
  for (const auto& [project, bucket] : state.tenants) {
    out.str(project);
    out.f64(bucket.tokens);
    out.f64(bucket.last_refill);
  }

  out.u32(static_cast<std::uint32_t>(state.structure_manifest.size()));
  for (const std::uint64_t hash : state.structure_manifest) out.u64(hash);
}

sched::QrmDurableState decode_qrm_body(ByteReader& in) {
  sched::QrmDurableState state;
  state.now = in.f64();
  state.next_id = in.i32();
  state.online = in.boolean();

  const std::uint32_t nqueue = in.u32();
  state.queue.reserve(nqueue);
  for (std::uint32_t i = 0; i < nqueue; ++i) state.queue.push_back(in.i32());
  const std::uint32_t nretry = in.u32();
  state.retry_queue.reserve(nretry);
  for (std::uint32_t i = 0; i < nretry; ++i)
    state.retry_queue.push_back(in.i32());

  const std::uint32_t nrecords = in.u32();
  for (std::uint32_t i = 0; i < nrecords; ++i) {
    sched::QuantumJobRecord record = decode_record(in);
    const int id = record.id;
    state.records.emplace(id, std::move(record));
  }
  const std::uint32_t npending = in.u32();
  for (std::uint32_t i = 0; i < npending; ++i) {
    const int id = in.i32();
    state.pending.emplace(id, decode_job(in));
  }

  const std::uint32_t nletters = in.u32();
  state.dead_letters.reserve(nletters);
  for (std::uint32_t i = 0; i < nletters; ++i) {
    sched::DeadLetterRecord letter;
    letter.id = in.i32();
    letter.name = in.str();
    letter.attempts = in.u64();
    letter.reason = in.str();
    letter.failed_at = in.f64();
    letter.job = decode_job(in);
    letter.trace.trace_id = in.u64();
    letter.trace.span = in.u64();
    state.dead_letters.push_back(std::move(letter));
  }

  for (sched::TokenBucketState& bucket : state.class_buckets) {
    bucket.tokens = in.f64();
    bucket.last_refill = in.f64();
  }
  const std::uint32_t ntenants = in.u32();
  for (std::uint32_t i = 0; i < ntenants; ++i) {
    std::string project = in.str();
    sched::TokenBucketState bucket;
    bucket.tokens = in.f64();
    bucket.last_refill = in.f64();
    state.tenants.emplace(std::move(project), bucket);
  }

  const std::uint32_t nmanifest = in.u32();
  state.structure_manifest.reserve(nmanifest);
  for (std::uint32_t i = 0; i < nmanifest; ++i)
    state.structure_manifest.push_back(in.u64());
  return state;
}

void encode_fleet_body(ByteWriter& out,
                       const sched::FleetDurableState& state) {
  out.f64(state.now);
  out.i32(state.next_id);
  out.u32(static_cast<std::uint32_t>(state.records.size()));
  for (const auto& [id, record] : state.records) {
    out.i32(record.id);
    out.str(record.name);
    out.i32(record.device);
    out.i32(record.local_id);
    out.f64(record.submit_time);
    out.i32(record.width);
    out.u8(static_cast<std::uint8_t>(record.priority));
    out.u64(record.migrations);
    out.u8(static_cast<std::uint8_t>(record.refused_state));
    out.str(record.refusal_reason);
    out.u32(static_cast<std::uint32_t>(record.hops.size()));
    for (const auto& [device, local_id] : record.hops) {
      out.i32(device);
      out.i32(local_id);
    }
  }
  out.u32(static_cast<std::uint32_t>(state.devices.size()));
  for (const sched::QrmDurableState& device : state.devices)
    encode_qrm_body(out, device);
}

sched::FleetDurableState decode_fleet_body(ByteReader& in) {
  sched::FleetDurableState state;
  state.now = in.f64();
  state.next_id = in.i32();
  const std::uint32_t nrecords = in.u32();
  for (std::uint32_t i = 0; i < nrecords; ++i) {
    sched::Fleet::FleetJobRecord record;
    record.id = in.i32();
    record.name = in.str();
    record.device = in.i32();
    record.local_id = in.i32();
    record.submit_time = in.f64();
    record.width = in.i32();
    record.priority = static_cast<sched::JobPriority>(in.u8());
    record.migrations = in.u64();
    record.refused_state = static_cast<sched::QuantumJobState>(in.u8());
    record.refusal_reason = in.str();
    const std::uint32_t nhops = in.u32();
    record.hops.reserve(nhops);
    for (std::uint32_t h = 0; h < nhops; ++h) {
      const int device = in.i32();
      const int local_id = in.i32();
      record.hops.emplace_back(device, local_id);
    }
    const int id = record.id;
    state.records.emplace(id, std::move(record));
  }
  const std::uint32_t ndevices = in.u32();
  state.devices.reserve(ndevices);
  for (std::uint32_t i = 0; i < ndevices; ++i)
    state.devices.push_back(decode_qrm_body(in));
  return state;
}

std::uint8_t check_header(ByteReader& in) {
  expects(in.u32() == kMagic, "snapshot: bad magic");
  const std::uint8_t version = in.u8();
  if (version != kVersion)
    throw ParseError("snapshot: unsupported version " +
                     std::to_string(version));
  return in.u8();  // scope
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(
    const sched::QrmDurableState& state) {
  ByteWriter out;
  out.u32(kMagic);
  out.u8(kVersion);
  out.u8(static_cast<std::uint8_t>(SnapshotScope::kQrm));
  encode_qrm_body(out, state);
  return out.take();
}

std::vector<std::uint8_t> encode_snapshot(
    const sched::FleetDurableState& state) {
  ByteWriter out;
  out.u32(kMagic);
  out.u8(kVersion);
  out.u8(static_cast<std::uint8_t>(SnapshotScope::kFleet));
  encode_fleet_body(out, state);
  return out.take();
}

SnapshotScope snapshot_scope(const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  const std::uint8_t scope = check_header(in);
  expects(scope == 1 || scope == 2, "snapshot: bad scope byte");
  return static_cast<SnapshotScope>(scope);
}

sched::QrmDurableState decode_qrm_snapshot(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  expects(check_header(in) == static_cast<std::uint8_t>(SnapshotScope::kQrm),
          "snapshot: not a qrm snapshot");
  return decode_qrm_body(in);
}

sched::FleetDurableState decode_fleet_snapshot(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  expects(
      check_header(in) == static_cast<std::uint8_t>(SnapshotScope::kFleet),
      "snapshot: not a fleet snapshot");
  return decode_fleet_body(in);
}

// ---------------------------------------------------------------- cadence --

Checkpointer::Checkpointer(Wal& wal) : Checkpointer(wal, Config{}) {}

Checkpointer::Checkpointer(Wal& wal, Config config,
                           obs::MetricsRegistry* metrics)
    : wal_(&wal), config_(config) {
  expects(config_.interval > 0.0, "Checkpointer: interval must be positive");
  if (metrics != nullptr) {
    m_snapshots_ = &metrics->counter("store.snapshots");
    m_bytes_ = &metrics->counter("store.snapshot.bytes");
    m_duration_ = &metrics->histogram("store.snapshot.duration_s");
  }
}

bool Checkpointer::due(Seconds now) {
  if (!armed_) {
    armed_ = true;
    last_at_ = now;
    return false;
  }
  if (now - last_at_ < config_.interval) return false;
  last_at_ = now;
  return true;
}

bool Checkpointer::maybe_checkpoint(const sched::Fleet& fleet) {
  if (!due(fleet.now())) return false;
  checkpoint(fleet);
  return true;
}

bool Checkpointer::maybe_checkpoint(const sched::Qrm& qrm) {
  if (!due(qrm.now())) return false;
  checkpoint(qrm);
  return true;
}

void Checkpointer::checkpoint(const sched::Fleet& fleet) {
  write(encode_snapshot(fleet.capture_durable()));
}

void Checkpointer::checkpoint(const sched::Qrm& qrm) {
  write(encode_snapshot(qrm.capture_durable()));
}

void Checkpointer::write(std::vector<std::uint8_t> bytes) {
  // Wall-clock duration: an operational metric only, never part of a
  // deterministic report.
  const auto start = std::chrono::steady_clock::now();
  // Rotate first so the snapshot heads a fresh segment, then truncate below
  // the *previous* snapshot only: if a crash tears this snapshot's tail,
  // recovery falls back to the previous one plus the events since — the
  // journal never has a window where the only checkpoint is unverified.
  wal_->rotate();
  const std::uint64_t lsn =
      wal_->append(static_cast<std::uint8_t>(RecordType::kSnapshot), bytes);
  if (last_lsn_ > 0) wal_->truncate_below(last_lsn_);
  last_lsn_ = lsn;
  if (m_snapshots_ != nullptr) m_snapshots_->inc();
  if (m_bytes_ != nullptr) m_bytes_->inc(static_cast<double>(bytes.size()));
  if (m_duration_ != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    m_duration_->observe(elapsed.count());
  }
}

}  // namespace hpcqc::store
