#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpcqc/sched/journal.hpp"
#include "hpcqc/sched/qrm.hpp"
#include "hpcqc/store/wal.hpp"

namespace hpcqc::store {

/// WAL record types.
enum class RecordType : std::uint8_t {
  kJobEvent = 1,    ///< one sched::JobEvent (per-device lifecycle)
  kFleetEvent = 2,  ///< one sched::FleetEvent (placement / migration)
  kSnapshot = 3,    ///< full durable image (see snapshot.hpp)
};

/// A decoded job event: the flat, owning mirror of sched::JobEvent (whose
/// pointers are only valid inside the sink call). This is what recovery
/// replays.
struct JobEventRecord {
  sched::JobEvent::Kind kind{};
  int device = -1;
  int id = 0;
  Seconds at = 0.0;
  bool has_job = false;
  sched::QuantumJob job;
  bool has_record = false;
  sched::QuantumJobRecord record;
  std::string reason;
  std::uint64_t count = 0;
  sched::JobPriority priority{};
  double bucket_tokens = 0.0;
  Seconds bucket_refill = 0.0;
  std::string project;
};

/// A decoded fleet event.
struct FleetEventRecord {
  sched::FleetEvent::Kind kind{};
  int id = 0;
  Seconds at = 0.0;
  std::string name;
  int device = -1;
  int local_id = -1;
  int width = 0;
  sched::JobPriority priority{};
  sched::QuantumJobState refused_state{};
  std::string reason;
  int from = -1;
};

// Payload codecs (also reused by snapshots). Parametric payloads are
// serialized structurally (ops + binding) and the concrete circuit is
// re-bound at decode; plain circuits travel as qasm-lite text.
void encode_job(class ByteWriter& out, const sched::QuantumJob& job);
sched::QuantumJob decode_job(class ByteReader& in);
void encode_record(class ByteWriter& out, const sched::QuantumJobRecord& rec);
sched::QuantumJobRecord decode_record(class ByteReader& in);

std::vector<std::uint8_t> encode_job_event(const sched::JobEvent& event);
JobEventRecord decode_job_event(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encode_fleet_event(const sched::FleetEvent& event);
FleetEventRecord decode_fleet_event(const std::vector<std::uint8_t>& payload);

/// The JournalSink that writes every Qrm/Fleet lifecycle event into a Wal —
/// the write-ahead half of the durability story. Attach via
/// Qrm::Config::durability / Fleet::set_journal.
class Journal final : public sched::JournalSink {
public:
  explicit Journal(Wal& wal) : wal_(&wal) {}

  void on_event(const sched::JobEvent& event) override {
    wal_->append(static_cast<std::uint8_t>(RecordType::kJobEvent),
                 encode_job_event(event));
  }
  void on_fleet_event(const sched::FleetEvent& event) override {
    wal_->append(static_cast<std::uint8_t>(RecordType::kFleetEvent),
                 encode_fleet_event(event));
  }

  Wal& wal() { return *wal_; }

private:
  Wal* wal_;
};

}  // namespace hpcqc::store
