#pragma once

#include <cstdint>
#include <vector>

#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/sched/durable.hpp"
#include "hpcqc/store/wal.hpp"

namespace hpcqc::store {

/// Stable binary serialization of the durable images. Layout:
///   [u32 magic "HQDS"][u8 version][u8 scope (1 = qrm, 2 = fleet)][body]
/// Field order is append-only: new fields go at the end behind a version
/// bump, so old snapshots keep decoding.
std::vector<std::uint8_t> encode_snapshot(const sched::QrmDurableState& state);
std::vector<std::uint8_t> encode_snapshot(
    const sched::FleetDurableState& state);

/// Scope of an encoded snapshot without a full decode; throws ParseError on
/// a bad magic/version.
enum class SnapshotScope : std::uint8_t { kQrm = 1, kFleet = 2 };
SnapshotScope snapshot_scope(const std::vector<std::uint8_t>& bytes);

sched::QrmDurableState decode_qrm_snapshot(
    const std::vector<std::uint8_t>& bytes);
sched::FleetDurableState decode_fleet_snapshot(
    const std::vector<std::uint8_t>& bytes);

/// Checkpoints a durable image into the WAL on a simulated-clock cadence and
/// truncates the replayed journal prefix: rotate first, write the snapshot
/// at the head of a fresh segment, then drop every whole segment older than
/// the *previous* snapshot. Keeping two checkpoints is what makes
/// truncation crash-safe — if a crash tears the newest snapshot's tail,
/// recovery still has the previous one plus every event since.
class Checkpointer {
public:
  struct Config {
    Seconds interval = hours(6.0);
  };

  explicit Checkpointer(Wal& wal);
  Checkpointer(Wal& wal, Config config,
               obs::MetricsRegistry* metrics = nullptr);

  /// Checkpoints when at least `interval` of simulated time passed since
  /// the last one (the first call only arms the cadence). Returns true when
  /// a snapshot was written.
  bool maybe_checkpoint(const sched::Fleet& fleet);
  bool maybe_checkpoint(const sched::Qrm& qrm);

  /// Unconditional checkpoint.
  void checkpoint(const sched::Fleet& fleet);
  void checkpoint(const sched::Qrm& qrm);

  std::uint64_t last_snapshot_lsn() const { return last_lsn_; }

private:
  void write(std::vector<std::uint8_t> bytes);
  bool due(Seconds now);

  Wal* wal_;
  Config config_;
  Seconds last_at_ = -1.0;
  bool armed_ = false;
  std::uint64_t last_lsn_ = 0;
  obs::Counter* m_snapshots_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Histogram* m_duration_ = nullptr;
};

}  // namespace hpcqc::store
