#pragma once

#include <cstdint>

#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/obs/trace.hpp"
#include "hpcqc/sched/durable.hpp"
#include "hpcqc/store/wal.hpp"

namespace hpcqc::store {

/// What one recovery pass did.
struct RecoveryStats {
  std::uint64_t snapshot_lsn = 0;    ///< LSN of the base snapshot (0 = none)
  std::size_t replayed = 0;          ///< journal events applied on top
  std::size_t requeued = 0;          ///< in-flight attempts requeued at head
  std::size_t dropped_bytes = 0;     ///< torn/corrupt tail bytes discarded
  std::size_t scrubbed = 0;          ///< records whose admission outcome was
                                     ///< lost in the torn tail (cancelled)
  std::size_t backfilled_traces = 0; ///< DLQ/pending trace contexts patched
  bool torn_tail = false;
  bool had_snapshot = false;
  Seconds recovered_now = 0.0;  ///< simulated clock of the recovered image
};

/// Rebuilds a durable image from a WAL: load the last snapshot (if any),
/// replay every intact journal record after it, scrub records whose
/// admission outcome was torn off the tail. Exactly-once contract: a job
/// that is terminal in the recovered image is never re-executed; in-flight
/// attempts are requeued at the head (set_offline semantics), so at most the
/// unacknowledged suffix of work is repeated.
class Recovery {
public:
  explicit Recovery(const WalBackend& backend,
                    obs::MetricsRegistry* metrics = nullptr,
                    obs::Tracer* tracer = nullptr);

  /// Rebuilds a standalone-QRM image (journal written via Qrm::set_journal
  /// with the default device tag).
  sched::QrmDurableState recover_qrm();

  /// Rebuilds a fleet image; `min_devices` pads the per-device vector so it
  /// can be restored into a fleet of that size even when the tail devices
  /// never journaled an event.
  sched::FleetDurableState recover_fleet(std::size_t min_devices = 0);

  /// recover_* + restore_durable + metrics (store.recovery.*) + a
  /// "recovery" span with snapshot-load / journal-replay children. Attach
  /// the tracer to the target *before* calling restore so recovered jobs
  /// get fresh spans.
  RecoveryStats restore(sched::Qrm& qrm);
  RecoveryStats restore(sched::Fleet& fleet);

  /// Stats of the most recent recover_*/restore call.
  const RecoveryStats& stats() const { return stats_; }

private:
  void finish(const sched::RestoreSummary& summary);

  const WalBackend* backend_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  RecoveryStats stats_;
};

}  // namespace hpcqc::store
