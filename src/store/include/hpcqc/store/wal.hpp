#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpcqc/obs/metrics.hpp"

namespace hpcqc::store {

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), table-driven. `seed`
/// chains partial computations; the canonical test vector "123456789"
/// yields 0xCBF43926.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

/// One decoded journal record.
struct WalRecord {
  std::uint64_t lsn = 0;  ///< log sequence number, strictly increasing
  std::uint8_t type = 0;  ///< RecordType (see journal.hpp)
  std::vector<std::uint8_t> payload;
};

/// Storage behind a Wal: an ordered set of append-only segments. Exactly one
/// segment is open for appends at a time; scan/recovery reads them all in id
/// order. Two implementations: a deterministic in-memory backend (tests,
/// crash simulation) and a file backend.
class WalBackend {
public:
  virtual ~WalBackend() = default;
  /// Segment ids, ascending.
  virtual std::vector<std::uint64_t> segments() const = 0;
  virtual std::vector<std::uint8_t> read_segment(std::uint64_t id) const = 0;
  /// Creates (or truncates) segment `id` and makes it the append target.
  virtual void open_segment(std::uint64_t id) = 0;
  virtual void append(const std::uint8_t* data, std::size_t size) = 0;
  virtual void remove_segment(std::uint64_t id) = 0;
};

/// Deterministic in-memory backend with crash hooks: tests simulate a
/// process crash by truncating the byte stream at an arbitrary offset, which
/// produces exactly the torn tail a real crash leaves behind.
class MemoryWalBackend final : public WalBackend {
public:
  std::vector<std::uint64_t> segments() const override;
  std::vector<std::uint8_t> read_segment(std::uint64_t id) const override;
  void open_segment(std::uint64_t id) override;
  void append(const std::uint8_t* data, std::size_t size) override;
  void remove_segment(std::uint64_t id) override;

  /// Total bytes across all segments (in id order).
  std::size_t total_bytes() const;
  /// Crash hook: keep only the first `bytes` bytes of the concatenated
  /// segment stream (id order), dropping everything after — including whole
  /// later segments. Simulates a crash with a torn final frame.
  void truncate_total(std::size_t bytes);
  void clear();

private:
  std::map<std::uint64_t, std::vector<std::uint8_t>> store_;
  std::uint64_t current_ = 0;
  bool has_current_ = false;
};

/// File-backed segments (`wal-<id>.log` under one directory). Appends are
/// flushed per record; scan tolerates a torn tail exactly like the memory
/// backend.
class FileWalBackend final : public WalBackend {
public:
  explicit FileWalBackend(std::string directory);

  std::vector<std::uint64_t> segments() const override;
  std::vector<std::uint8_t> read_segment(std::uint64_t id) const override;
  void open_segment(std::uint64_t id) override;
  void append(const std::uint8_t* data, std::size_t size) override;
  void remove_segment(std::uint64_t id) override;

  const std::string& directory() const { return directory_; }

private:
  std::string segment_path(std::uint64_t id) const;

  std::string directory_;
  std::uint64_t current_ = 0;
  bool has_current_ = false;
};

/// Result of scanning a backend: every intact record in order, plus how many
/// trailing bytes were dropped as a torn/corrupt tail. The scan stops at the
/// first bad frame (bad length, bad CRC, truncated header) — everything
/// after it is untrusted, which is exactly the prefix-consistency a
/// write-ahead log guarantees.
struct WalScan {
  std::vector<WalRecord> records;
  std::size_t dropped_bytes = 0;
  bool torn = false;
};

/// Write-ahead log over a backend: CRC32-framed, length-prefixed records
/// with monotonically increasing LSNs and segment rotation.
///
/// Frame layout (little-endian):
///   [u32 body_len][u32 crc32(body)][body]
///   body = [u64 lsn][u8 type][payload...]
///
/// Construction scans the backend to continue the LSN sequence and always
/// opens a *fresh* segment — a reopened log never appends after a possibly
/// torn tail, so one crash cannot corrupt records written after recovery.
class Wal {
public:
  struct Config {
    /// Rotate once the open segment exceeds this many bytes.
    std::size_t segment_bytes = 256 * 1024;
  };

  explicit Wal(WalBackend& backend);
  Wal(WalBackend& backend, Config config,
      obs::MetricsRegistry* metrics = nullptr);

  /// Appends one record, returns its LSN.
  std::uint64_t append(std::uint8_t type,
                       const std::vector<std::uint8_t>& payload);

  /// Closes the open segment and starts a new one (checkpointing rotates
  /// *before* writing the snapshot record, so truncate_below can drop every
  /// fully-replayed segment).
  void rotate();

  /// Removes whole segments whose records all have lsn < `lsn`. The open
  /// segment is never removed.
  void truncate_below(std::uint64_t lsn);

  std::uint64_t next_lsn() const { return next_lsn_; }

  /// Decodes every intact record across all segments of `backend`.
  static WalScan scan(const WalBackend& backend);

private:
  struct SegmentMeta {
    std::uint64_t max_lsn = 0;
    bool any = false;
  };

  WalBackend* backend_;
  Config config_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t current_segment_ = 1;
  std::size_t open_bytes_ = 0;
  std::map<std::uint64_t, SegmentMeta> meta_;
  obs::Counter* m_appended_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
};

}  // namespace hpcqc::store
