#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hpcqc/common/error.hpp"

namespace hpcqc::store {

/// Little-endian byte packer for WAL record bodies and snapshots. Manual
/// byte-at-a-time packing keeps the wire format independent of host
/// endianness and struct layout — a journal written on one machine replays
/// bit-identically on any other.
class ByteWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
  std::vector<std::uint8_t> buf_;
};

/// Matching unpacker; throws ParseError on truncation so a corrupt payload
/// surfaces as a decode failure, never as garbage state.
class ByteReader {
public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n)
      throw ParseError("store: truncated record (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(size_ - pos_) + ")");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hpcqc::store
