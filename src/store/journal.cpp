#include "hpcqc/store/journal.hpp"

#include <memory>

#include "hpcqc/circuit/parametric.hpp"
#include "hpcqc/circuit/text.hpp"
#include "hpcqc/store/codec.hpp"

namespace hpcqc::store {

namespace {

void encode_trace(ByteWriter& out, const obs::TraceContext& trace) {
  out.u64(trace.trace_id);
  out.u64(trace.span);
}

obs::TraceContext decode_trace(ByteReader& in) {
  obs::TraceContext trace;
  trace.trace_id = in.u64();
  trace.span = in.u64();
  return trace;
}

void encode_param(ByteWriter& out, const circuit::ParamExpr& expr) {
  out.boolean(expr.is_literal());
  if (expr.is_literal()) {
    out.f64(expr.coefficient());
  } else {
    out.str(expr.name());
    out.f64(expr.coefficient());
    out.f64(expr.offset());
  }
}

circuit::ParamExpr decode_param(ByteReader& in) {
  if (in.boolean()) return circuit::ParamExpr::literal(in.f64());
  std::string name = in.str();
  const double coefficient = in.f64();
  const double offset = in.f64();
  return circuit::ParamExpr::symbol(std::move(name), coefficient, offset);
}

void encode_parametric(ByteWriter& out,
                       const circuit::ParametricCircuit& circuit) {
  out.i32(circuit.num_qubits());
  out.u32(static_cast<std::uint32_t>(circuit.ops().size()));
  for (const circuit::ParametricOperation& op : circuit.ops()) {
    out.u8(static_cast<std::uint8_t>(op.kind));
    out.u32(static_cast<std::uint32_t>(op.qubits.size()));
    for (const int q : op.qubits) out.i32(q);
    out.u32(static_cast<std::uint32_t>(op.params.size()));
    for (const circuit::ParamExpr& p : op.params) encode_param(out, p);
  }
}

circuit::ParametricCircuit decode_parametric(ByteReader& in) {
  circuit::ParametricCircuit circuit(in.i32());
  const std::uint32_t nops = in.u32();
  for (std::uint32_t i = 0; i < nops; ++i) {
    circuit::ParametricOperation op;
    op.kind = static_cast<circuit::OpKind>(in.u8());
    const std::uint32_t nq = in.u32();
    op.qubits.reserve(nq);
    for (std::uint32_t q = 0; q < nq; ++q) op.qubits.push_back(in.i32());
    const std::uint32_t np = in.u32();
    op.params.reserve(np);
    for (std::uint32_t p = 0; p < np; ++p) op.params.push_back(decode_param(in));
    circuit.append(std::move(op));
  }
  return circuit;
}

}  // namespace

void encode_job(ByteWriter& out, const sched::QuantumJob& job) {
  out.str(job.name);
  out.u64(job.shots);
  out.str(job.project);
  out.u8(static_cast<std::uint8_t>(job.priority));
  encode_trace(out, job.trace);
  out.u64(job.migrations);
  out.boolean(job.migrated_in);
  out.boolean(job.parametric != nullptr);
  if (job.parametric != nullptr) {
    encode_parametric(out, *job.parametric);
    out.u32(static_cast<std::uint32_t>(job.binding.size()));
    for (const auto& [name, value] : job.binding) {
      out.str(name);
      out.f64(value);
    }
  } else {
    out.str(circuit::to_text(job.circuit));
  }
}

sched::QuantumJob decode_job(ByteReader& in) {
  sched::QuantumJob job;
  job.name = in.str();
  job.shots = in.u64();
  job.project = in.str();
  job.priority = static_cast<sched::JobPriority>(in.u8());
  job.trace = decode_trace(in);
  job.migrations = in.u64();
  job.migrated_in = in.boolean();
  if (in.boolean()) {
    auto parametric =
        std::make_shared<circuit::ParametricCircuit>(decode_parametric(in));
    const std::uint32_t n = in.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string name = in.str();
      job.binding.emplace(std::move(name), in.f64());
    }
    // The concrete circuit is derived state: re-bind exactly like
    // Qrm::submit does, so width checks and estimates see real gates.
    job.circuit = parametric->bind(job.binding);
    job.parametric = std::move(parametric);
  } else {
    job.circuit = circuit::from_text(in.str());
  }
  return job;
}

void encode_record(ByteWriter& out, const sched::QuantumJobRecord& rec) {
  out.i32(rec.id);
  out.str(rec.name);
  out.u64(rec.shots);
  out.u8(static_cast<std::uint8_t>(rec.state));
  out.f64(rec.submit_time);
  out.f64(rec.start_time);
  out.f64(rec.end_time);
  // ExecutionResult minus the counts: the journal is an audit trail, not a
  // result store — measurement histograms stay with the caller.
  out.f64(rec.result.wall_time);
  out.f64(rec.result.estimated_fidelity);
  out.u64(rec.result.shots);
  out.u64(rec.attempts);
  out.u64(rec.interruptions);
  out.u64(rec.migrations);
  out.f64(rec.estimated_cost);
  out.f64(rec.next_retry_at);
  out.str(rec.failure_reason);
  out.u8(static_cast<std::uint8_t>(rec.priority));
  encode_trace(out, rec.trace);
}

sched::QuantumJobRecord decode_record(ByteReader& in) {
  sched::QuantumJobRecord rec;
  rec.id = in.i32();
  rec.name = in.str();
  rec.shots = in.u64();
  rec.state = static_cast<sched::QuantumJobState>(in.u8());
  rec.submit_time = in.f64();
  rec.start_time = in.f64();
  rec.end_time = in.f64();
  rec.result.wall_time = in.f64();
  rec.result.estimated_fidelity = in.f64();
  rec.result.shots = in.u64();
  rec.attempts = in.u64();
  rec.interruptions = in.u64();
  rec.migrations = in.u64();
  rec.estimated_cost = in.f64();
  rec.next_retry_at = in.f64();
  rec.failure_reason = in.str();
  rec.priority = static_cast<sched::JobPriority>(in.u8());
  rec.trace = decode_trace(in);
  return rec;
}

std::vector<std::uint8_t> encode_job_event(const sched::JobEvent& event) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(event.kind));
  out.i32(event.device);
  out.i32(event.id);
  out.f64(event.at);
  out.boolean(event.job != nullptr);
  if (event.job != nullptr) encode_job(out, *event.job);
  out.boolean(event.record != nullptr);
  if (event.record != nullptr) encode_record(out, *event.record);
  out.str(event.reason);
  out.u64(event.count);
  out.u8(static_cast<std::uint8_t>(event.priority));
  out.f64(event.bucket_tokens);
  out.f64(event.bucket_refill);
  out.str(event.project);
  return out.take();
}

JobEventRecord decode_job_event(const std::vector<std::uint8_t>& payload) {
  ByteReader in(payload);
  JobEventRecord event;
  event.kind = static_cast<sched::JobEvent::Kind>(in.u8());
  event.device = in.i32();
  event.id = in.i32();
  event.at = in.f64();
  event.has_job = in.boolean();
  if (event.has_job) event.job = decode_job(in);
  event.has_record = in.boolean();
  if (event.has_record) event.record = decode_record(in);
  event.reason = in.str();
  event.count = in.u64();
  event.priority = static_cast<sched::JobPriority>(in.u8());
  event.bucket_tokens = in.f64();
  event.bucket_refill = in.f64();
  event.project = in.str();
  return event;
}

std::vector<std::uint8_t> encode_fleet_event(const sched::FleetEvent& event) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(event.kind));
  out.i32(event.id);
  out.f64(event.at);
  out.str(event.name);
  out.i32(event.device);
  out.i32(event.local_id);
  out.i32(event.width);
  out.u8(static_cast<std::uint8_t>(event.priority));
  out.u8(static_cast<std::uint8_t>(event.refused_state));
  out.str(event.reason);
  out.i32(event.from);
  return out.take();
}

FleetEventRecord decode_fleet_event(const std::vector<std::uint8_t>& payload) {
  ByteReader in(payload);
  FleetEventRecord event;
  event.kind = static_cast<sched::FleetEvent::Kind>(in.u8());
  event.id = in.i32();
  event.at = in.f64();
  event.name = in.str();
  event.device = in.i32();
  event.local_id = in.i32();
  event.width = in.i32();
  event.priority = static_cast<sched::JobPriority>(in.u8());
  event.refused_state = static_cast<sched::QuantumJobState>(in.u8());
  event.reason = in.str();
  event.from = in.i32();
  return event;
}

}  // namespace hpcqc::store
