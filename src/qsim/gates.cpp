#include "hpcqc/qsim/gates.hpp"

#include <cmath>

namespace hpcqc::qsim {

namespace {
constexpr Complex kOne{1.0, 0.0};
constexpr Complex kZero{0.0, 0.0};
constexpr Complex kImag{0.0, 1.0};
}  // namespace

Matrix2 matmul(const Matrix2& a, const Matrix2& b) {
  Matrix2 out{};
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c)
      for (int k = 0; k < 2; ++k) out[2 * r + c] += a[2 * r + k] * b[2 * k + c];
  return out;
}

Matrix4 matmul(const Matrix4& a, const Matrix4& b) {
  Matrix4 out{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      for (int k = 0; k < 4; ++k) out[4 * r + c] += a[4 * r + k] * b[4 * k + c];
  return out;
}

Matrix2 adjoint(const Matrix2& m) {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

Matrix4 adjoint(const Matrix4& m) {
  Matrix4 out{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) out[4 * r + c] = std::conj(m[4 * c + r]);
  return out;
}

Matrix4 kron(const Matrix2& a, const Matrix2& b) {
  Matrix4 out{};
  for (int ar = 0; ar < 2; ++ar)
    for (int ac = 0; ac < 2; ++ac)
      for (int br = 0; br < 2; ++br)
        for (int bc = 0; bc < 2; ++bc)
          out[4 * (2 * ar + br) + (2 * ac + bc)] = a[2 * ar + ac] * b[2 * br + bc];
  return out;
}

namespace {

template <typename Mat, int N>
bool is_unitary_impl(const Mat& m, double tol) {
  // m† m == I
  for (int r = 0; r < N; ++r) {
    for (int c = 0; c < N; ++c) {
      Complex acc = kZero;
      for (int k = 0; k < N; ++k)
        acc += std::conj(m[N * k + r]) * m[N * k + c];
      const Complex expected = (r == c) ? kOne : kZero;
      if (std::abs(acc - expected) > tol) return false;
    }
  }
  return true;
}

}  // namespace

bool is_unitary(const Matrix2& m, double tol) {
  return is_unitary_impl<Matrix2, 2>(m, tol);
}

bool is_unitary(const Matrix4& m, double tol) {
  return is_unitary_impl<Matrix4, 4>(m, tol);
}

Matrix2 gate_i() { return {kOne, kZero, kZero, kOne}; }
Matrix2 gate_x() { return {kZero, kOne, kOne, kZero}; }
Matrix2 gate_y() { return {kZero, -kImag, kImag, kZero}; }
Matrix2 gate_z() { return {kOne, kZero, kZero, -kOne}; }

Matrix2 gate_h() {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  return {Complex{inv_sqrt2, 0}, Complex{inv_sqrt2, 0}, Complex{inv_sqrt2, 0},
          Complex{-inv_sqrt2, 0}};
}

Matrix2 gate_s() { return {kOne, kZero, kZero, kImag}; }
Matrix2 gate_sdg() { return {kOne, kZero, kZero, -kImag}; }

Matrix2 gate_t() {
  return {kOne, kZero, kZero, std::polar(1.0, M_PI / 4.0)};
}

Matrix2 gate_tdg() {
  return {kOne, kZero, kZero, std::polar(1.0, -M_PI / 4.0)};
}

Matrix2 gate_sx() {
  // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
  const Complex p{0.5, 0.5};
  const Complex q{0.5, -0.5};
  return {p, q, q, p};
}

Matrix2 gate_rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Complex{c, 0}, Complex{0, -s}, Complex{0, -s}, Complex{c, 0}};
}

Matrix2 gate_ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Complex{c, 0}, Complex{-s, 0}, Complex{s, 0}, Complex{c, 0}};
}

Matrix2 gate_rz(double theta) {
  return {std::polar(1.0, -theta / 2.0), kZero, kZero,
          std::polar(1.0, theta / 2.0)};
}

Matrix2 gate_u(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Complex{c, 0}, -std::polar(s, lambda), std::polar(s, phi),
          std::polar(c, phi + lambda)};
}

Matrix2 gate_prx(double theta, double phi) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  // RZ(phi) RX(theta) RZ(-phi) up to global phase:
  // [[cos, -i e^{-i phi} sin], [-i e^{i phi} sin, cos]]
  return {Complex{c, 0}, -kImag * std::polar(s, -phi),
          -kImag * std::polar(s, phi), Complex{c, 0}};
}

Matrix4 gate_cz() {
  Matrix4 m{};
  m[0] = kOne;
  m[5] = kOne;
  m[10] = kOne;
  m[15] = -kOne;
  return m;
}

Matrix4 gate_cx() {
  // Basis order |q1 q0>; control is q0 (the first apply_2q argument).
  Matrix4 m{};
  m[4 * 0 + 0] = kOne;   // |00> -> |00>
  m[4 * 3 + 1] = kOne;   // |01> -> |11>
  m[4 * 2 + 2] = kOne;   // |10> -> |10>
  m[4 * 1 + 3] = kOne;   // |11> -> |01>
  return m;
}

Matrix4 gate_swap() {
  Matrix4 m{};
  m[4 * 0 + 0] = kOne;
  m[4 * 2 + 1] = kOne;
  m[4 * 1 + 2] = kOne;
  m[4 * 3 + 3] = kOne;
  return m;
}

Matrix4 gate_iswap() {
  Matrix4 m{};
  m[4 * 0 + 0] = kOne;
  m[4 * 2 + 1] = kImag;
  m[4 * 1 + 2] = kImag;
  m[4 * 3 + 3] = kOne;
  return m;
}

Matrix4 gate_cphase(double theta) {
  Matrix4 m{};
  m[0] = kOne;
  m[5] = kOne;
  m[10] = kOne;
  m[15] = std::polar(1.0, theta);
  return m;
}

}  // namespace hpcqc::qsim
