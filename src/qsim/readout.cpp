#include "hpcqc/qsim/readout.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::qsim {

ReadoutError::ReadoutError(std::vector<ReadoutConfusion> per_qubit)
    : per_qubit_(std::move(per_qubit)) {
  for (const auto& conf : per_qubit_) {
    expects(conf.p_read1_given0 >= 0.0 && conf.p_read1_given0 <= 1.0 &&
                conf.p_read0_given1 >= 0.0 && conf.p_read0_given1 <= 1.0,
            "ReadoutError: confusion probabilities outside [0,1]");
  }
}

ReadoutError ReadoutError::uniform(int num_qubits, double p01, double p10) {
  expects(num_qubits > 0, "ReadoutError::uniform: need at least one qubit");
  return ReadoutError(std::vector<ReadoutConfusion>(
      static_cast<std::size_t>(num_qubits), ReadoutConfusion{p01, p10}));
}

const ReadoutConfusion& ReadoutError::qubit(int q) const {
  expects(q >= 0 && q < num_qubits(), "ReadoutError::qubit: out of range");
  return per_qubit_[static_cast<std::size_t>(q)];
}

std::uint64_t ReadoutError::corrupt(std::uint64_t outcome, Rng& rng) const {
  std::uint64_t corrupted = outcome;
  for (int q = 0; q < num_qubits(); ++q) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    const auto& conf = per_qubit_[static_cast<std::size_t>(q)];
    const double flip_prob =
        (outcome & bit) ? conf.p_read0_given1 : conf.p_read1_given0;
    if (rng.bernoulli(flip_prob)) corrupted ^= bit;
  }
  return corrupted;
}

void ReadoutError::corrupt_all(std::span<std::uint64_t> outcomes,
                               Rng& rng) const {
  for (auto& outcome : outcomes) outcome = corrupt(outcome, rng);
}

double ReadoutError::mean_assignment_fidelity() const {
  if (per_qubit_.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& conf : per_qubit_) acc += conf.assignment_fidelity();
  return acc / static_cast<double>(per_qubit_.size());
}

}  // namespace hpcqc::qsim
