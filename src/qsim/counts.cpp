#include "hpcqc/qsim/counts.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::qsim {

Counts::Counts(std::span<const std::uint64_t> samples, int num_qubits)
    : num_qubits_(num_qubits) {
  for (std::uint64_t s : samples) add(s);
}

void Counts::add(std::uint64_t outcome, std::uint64_t count) {
  counts_[outcome] += count;
  total_ += count;
}

void Counts::merge(const Counts& other) {
  for (const auto& [outcome, count] : other.counts_) add(outcome, count);
}

std::uint64_t Counts::count_of(std::uint64_t outcome) const {
  const auto it = counts_.find(outcome);
  return it == counts_.end() ? 0 : it->second;
}

double Counts::probability_of(std::uint64_t outcome) const {
  const std::uint64_t total = total_shots();
  if (total == 0) return 0.0;
  return static_cast<double>(count_of(outcome)) / static_cast<double>(total);
}

std::string Counts::bitstring(std::uint64_t outcome) const {
  expects(num_qubits_ > 0, "Counts::bitstring: qubit count not set");
  std::string out(static_cast<std::size_t>(num_qubits_), '0');
  for (int q = 0; q < num_qubits_; ++q)
    if (outcome & (std::uint64_t{1} << q))
      out[static_cast<std::size_t>(num_qubits_ - 1 - q)] = '1';
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> Counts::top(
    std::size_t k) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items(counts_.begin(),
                                                             counts_.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t i = 0; i < std::min(k, items.size()); ++i)
    out.emplace_back(bitstring(items[i].first), items[i].second);
  return out;
}

double Counts::expectation_z(std::uint64_t mask) const {
  const std::uint64_t total = total_shots();
  if (total == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [outcome, count] : counts_) {
    const int parity = std::popcount(outcome & mask) & 1;
    acc += (parity ? -1.0 : 1.0) * static_cast<double>(count);
  }
  return acc / static_cast<double>(total);
}

double Counts::total_variation_distance(std::span<const double> exact) const {
  const std::uint64_t total = total_shots();
  expects(total > 0, "total_variation_distance: empty counts");
  double tv = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double empirical =
        static_cast<double>(count_of(i)) / static_cast<double>(total);
    tv += std::abs(empirical - exact[i]);
  }
  // Outcomes beyond the exact support contribute their full mass.
  for (const auto& [outcome, count] : counts_)
    if (outcome >= exact.size())
      tv += static_cast<double>(count) / static_cast<double>(total);
  return 0.5 * tv;
}

double Counts::hellinger_fidelity(std::span<const double> exact) const {
  const std::uint64_t total = total_shots();
  expects(total > 0, "hellinger_fidelity: empty counts");
  double bc = 0.0;  // Bhattacharyya coefficient
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double empirical =
        static_cast<double>(count_of(i)) / static_cast<double>(total);
    bc += std::sqrt(empirical * exact[i]);
  }
  return bc * bc;
}

}  // namespace hpcqc::qsim
