#include "hpcqc/qsim/density_matrix.hpp"

#include <bit>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::qsim {

namespace {

Matrix2 conjugated(const Matrix2& m) {
  return {std::conj(m[0]), std::conj(m[1]), std::conj(m[2]), std::conj(m[3])};
}

Matrix4 conjugated(const Matrix4& m) {
  Matrix4 out{};
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(i)] =
        std::conj(m[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), super_(2 * num_qubits) {
  expects(num_qubits >= 1 && num_qubits <= 10,
          "DensityMatrix: qubit count must be in [1, 10]");
  // StateVector starts at |0...0> of 2n qubits, which is exactly
  // |0><0| flattened. Nothing further to do.
}

DensityMatrix::DensityMatrix(int num_qubits, StateVector super)
    : num_qubits_(num_qubits), super_(std::move(super)) {}

DensityMatrix DensityMatrix::from_state(const StateVector& state) {
  expects(state.num_qubits() <= 10,
          "DensityMatrix::from_state: at most 10 qubits");
  const int n = state.num_qubits();
  StateVector super(2 * n);
  auto& rho = super.mutable_amplitudes();
  const auto& amps = state.amplitudes();
  const std::uint64_t dim = std::uint64_t{1} << n;
  for (std::uint64_t r = 0; r < dim; ++r)
    for (std::uint64_t c = 0; c < dim; ++c)
      rho[(r << n) | c] = amps[r] * std::conj(amps[c]);
  return DensityMatrix(n, std::move(super));
}

Complex DensityMatrix::element(std::uint64_t row, std::uint64_t column) const {
  expects(row < dimension() && column < dimension(),
          "DensityMatrix::element: index out of range");
  return super_.amplitude((row << num_qubits_) | column);
}

void DensityMatrix::apply_1q(const Matrix2& u, int qubit) {
  expects(qubit >= 0 && qubit < num_qubits_,
          "DensityMatrix::apply_1q: qubit out of range");
  // U on the row index, U* on the column index.
  super_.apply_1q(u, num_qubits_ + qubit);
  super_.apply_1q(conjugated(u), qubit);
}

void DensityMatrix::apply_2q(const Matrix4& u, int qubit0, int qubit1) {
  expects(qubit0 >= 0 && qubit0 < num_qubits_ && qubit1 >= 0 &&
              qubit1 < num_qubits_ && qubit0 != qubit1,
          "DensityMatrix::apply_2q: invalid qubits");
  super_.apply_2q(u, num_qubits_ + qubit0, num_qubits_ + qubit1);
  super_.apply_2q(conjugated(u), qubit0, qubit1);
}

void DensityMatrix::apply_kraus_1q(std::span<const Matrix2> kraus,
                                   int qubit) {
  expects(!kraus.empty(), "DensityMatrix::apply_kraus_1q: empty Kraus set");
  const auto& original = super_.amplitudes();
  std::vector<Complex> accumulated(original.size(), Complex{0.0, 0.0});
  for (const Matrix2& k : kraus) {
    StateVector branch = super_;
    branch.apply_1q(k, num_qubits_ + qubit);
    branch.apply_1q(conjugated(k), qubit);
    const auto& amps = branch.amplitudes();
    for (std::size_t i = 0; i < accumulated.size(); ++i)
      accumulated[i] += amps[i];
  }
  super_.mutable_amplitudes() = std::move(accumulated);
}

void DensityMatrix::apply_depolarizing(int qubit, double p) {
  expects(p >= 0.0 && p <= 1.0,
          "DensityMatrix::apply_depolarizing: p outside [0,1]");
  const double q = std::sqrt(p / 3.0);
  const double keep = std::sqrt(1.0 - p);
  Matrix2 k0 = gate_i();
  Matrix2 k1 = gate_x();
  Matrix2 k2 = gate_y();
  Matrix2 k3 = gate_z();
  for (auto& entry : k0) entry *= keep;
  for (auto& entry : k1) entry *= q;
  for (auto& entry : k2) entry *= q;
  for (auto& entry : k3) entry *= q;
  const Matrix2 kraus[] = {k0, k1, k2, k3};
  apply_kraus_1q(kraus, qubit);
}

void DensityMatrix::apply_depolarizing_2q(int qubit0, int qubit1, double p) {
  expects(qubit0 >= 0 && qubit0 < num_qubits_ && qubit1 >= 0 &&
              qubit1 < num_qubits_ && qubit0 != qubit1,
          "DensityMatrix::apply_depolarizing_2q: invalid qubits");
  expects(p >= 0.0 && p <= 1.0,
          "DensityMatrix::apply_depolarizing_2q: p outside [0,1]");
  if (p == 0.0) return;
  // rho -> (1-p) rho + p/15 sum_{P != I (x) I} P rho P over the 15
  // non-identity two-qubit Paulis (all Hermitian, so P = P^dag).
  const Matrix2 paulis[4] = {gate_i(), gate_x(), gate_y(), gate_z()};
  std::vector<Complex> accumulated(super_.amplitudes().size(),
                                   Complex{0.0, 0.0});
  for (int k = 0; k < 16; ++k) {
    const double weight = k == 0 ? 1.0 - p : p / 15.0;
    StateVector branch = super_;
    const Matrix4 pair = kron(paulis[k / 4], paulis[k % 4]);
    branch.apply_2q(pair, num_qubits_ + qubit0, num_qubits_ + qubit1);
    branch.apply_2q(conjugated(pair), qubit0, qubit1);
    const auto& amps = branch.amplitudes();
    for (std::size_t i = 0; i < accumulated.size(); ++i)
      accumulated[i] += weight * amps[i];
  }
  super_.mutable_amplitudes() = std::move(accumulated);
}

void DensityMatrix::apply_amplitude_damping(int qubit, double gamma) {
  expects(gamma >= 0.0 && gamma <= 1.0,
          "DensityMatrix::apply_amplitude_damping: gamma outside [0,1]");
  const Matrix2 k0{Complex{1.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
                   Complex{std::sqrt(1.0 - gamma), 0.0}};
  const Matrix2 k1{Complex{0.0, 0.0}, Complex{std::sqrt(gamma), 0.0},
                   Complex{0.0, 0.0}, Complex{0.0, 0.0}};
  const Matrix2 kraus[] = {k0, k1};
  apply_kraus_1q(kraus, qubit);
}

void DensityMatrix::apply_phase_damping(int qubit, double lambda) {
  expects(lambda >= 0.0 && lambda <= 1.0,
          "DensityMatrix::apply_phase_damping: lambda outside [0,1]");
  Matrix2 k0 = gate_i();
  Matrix2 k1 = gate_z();
  for (auto& entry : k0) entry *= std::sqrt(1.0 - lambda);
  for (auto& entry : k1) entry *= std::sqrt(lambda);
  const Matrix2 kraus[] = {k0, k1};
  apply_kraus_1q(kraus, qubit);
}

double DensityMatrix::trace() const {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dimension(); ++i)
    acc += element(i, i).real();
  return acc;
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_{rc} |rho_{rc}|^2 for Hermitian rho.
  double acc = 0.0;
  for (const auto& amp : super_.amplitudes()) acc += std::norm(amp);
  return acc;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> probs(dimension());
  for (std::uint64_t i = 0; i < dimension(); ++i)
    probs[i] = element(i, i).real();
  return probs;
}

double DensityMatrix::fidelity(const StateVector& reference) const {
  expects(reference.num_qubits() == num_qubits_,
          "DensityMatrix::fidelity: register size mismatch");
  const auto& psi = reference.amplitudes();
  Complex acc{0.0, 0.0};
  for (std::uint64_t r = 0; r < dimension(); ++r)
    for (std::uint64_t c = 0; c < dimension(); ++c)
      acc += std::conj(psi[r]) * element(r, c) * psi[c];
  return acc.real();
}

double DensityMatrix::expectation_z(std::uint64_t mask) const {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    const int parity = std::popcount(i & mask) & 1;
    acc += (parity ? -1.0 : 1.0) * element(i, i).real();
  }
  return acc;
}

}  // namespace hpcqc::qsim
