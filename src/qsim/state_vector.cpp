#include "hpcqc/qsim/state_vector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::qsim {

namespace {
// Below this state size the OpenMP fork costs more than the loop.
constexpr std::uint64_t kParallelThreshold = std::uint64_t{1} << 14;
}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  expects(num_qubits >= 1 && num_qubits <= 28,
          "StateVector: qubit count must be in [1, 28]");
  amps_.assign(std::uint64_t{1} << num_qubits, Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

Complex StateVector::amplitude(std::uint64_t basis_state) const {
  expects(basis_state < dimension(), "amplitude: basis state out of range");
  return amps_[basis_state];
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

void StateVector::apply_1q(const Matrix2& u, int qubit) {
  expects(qubit >= 0 && qubit < num_qubits_, "apply_1q: qubit out of range");
  const std::uint64_t stride = std::uint64_t{1} << qubit;
  const std::uint64_t dim = dimension();
  const std::int64_t pairs = static_cast<std::int64_t>(dim >> 1);

  // The kernels below spell the complex arithmetic out over doubles:
  // std::complex operator* blocks vectorization at this optimization
  // level, and the gate kernels are the hot loops of the digital twin.
  double* a = reinterpret_cast<double*>(amps_.data());

  // Diagonal fast path (rz / z / s / t and their fusions): no pairing,
  // one multiply per amplitude, half the memory traffic.
  if (u[1] == Complex{0.0, 0.0} && u[2] == Complex{0.0, 0.0}) {
    const double d0r = u[0].real();
    const double d0i = u[0].imag();
    const double d1r = u[3].real();
    const double d1i = u[3].imag();
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
      const auto idx = static_cast<std::uint64_t>(i);
      const double dr = (idx & stride) ? d1r : d0r;
      const double di = (idx & stride) ? d1i : d0i;
      const double re = a[2 * idx];
      const double im = a[2 * idx + 1];
      a[2 * idx] = dr * re - di * im;
      a[2 * idx + 1] = dr * im + di * re;
    }
    return;
  }

  const double u0r = u[0].real(), u0i = u[0].imag();
  const double u1r = u[1].real(), u1i = u[1].imag();
  const double u2r = u[2].real(), u2i = u[2].imag();
  const double u3r = u[3].real(), u3i = u[3].imag();
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t k = 0; k < pairs; ++k) {
    // Index of the amplitude with the target bit clear.
    const auto kk = static_cast<std::uint64_t>(k);
    const std::uint64_t i0 =
        (((kk & ~(stride - 1)) << 1) | (kk & (stride - 1))) * 2;
    const std::uint64_t i1 = i0 + stride * 2;
    const double lr = a[i0], li = a[i0 + 1];
    const double hr = a[i1], hi = a[i1 + 1];
    a[i0] = (u0r * lr - u0i * li) + (u1r * hr - u1i * hi);
    a[i0 + 1] = (u0r * li + u0i * lr) + (u1r * hi + u1i * hr);
    a[i1] = (u2r * lr - u2i * li) + (u3r * hr - u3i * hi);
    a[i1 + 1] = (u2r * li + u2i * lr) + (u3r * hi + u3i * hr);
  }
}

void StateVector::apply_2q(const Matrix4& u, int qubit0, int qubit1) {
  expects(qubit0 >= 0 && qubit0 < num_qubits_ && qubit1 >= 0 &&
              qubit1 < num_qubits_,
          "apply_2q: qubit out of range");
  expects(qubit0 != qubit1, "apply_2q: qubits must differ");
  const std::uint64_t s0 = std::uint64_t{1} << qubit0;
  const std::uint64_t s1 = std::uint64_t{1} << qubit1;
  const std::uint64_t lo_stride = std::min(s0, s1);
  const std::uint64_t hi_stride = std::max(s0, s1);
  const std::uint64_t dim = dimension();
  const std::int64_t groups = static_cast<std::int64_t>(dim >> 2);
  double* a = reinterpret_cast<double*>(amps_.data());

  // Split the matrix into real/imag planes once; the group loop then runs
  // entirely on doubles (see apply_1q for why).
  double ur[16];
  double ui[16];
  for (int e = 0; e < 16; ++e) {
    ur[e] = u[static_cast<std::size_t>(e)].real();
    ui[e] = u[static_cast<std::size_t>(e)].imag();
  }

#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t g = 0; g < groups; ++g) {
    // Expand the group index into a base index with both target bits clear:
    // split g into (low | mid | top) around the two strides and shift the
    // mid/top parts up by one bit each.
    const auto gg = static_cast<std::uint64_t>(g);
    const std::uint64_t rest = gg / lo_stride;
    const std::uint64_t mid_combos = hi_stride / lo_stride / 2;
    std::uint64_t base = gg & (lo_stride - 1);
    base |= (rest % mid_combos) * (lo_stride * 2);
    base |= (rest / mid_combos) * (hi_stride * 2);

    // Matrix basis |q1 q0>: index = 2*q1 + q0.
    const std::uint64_t idx[4] = {base, base | s0, base | s1,
                                  base | s0 | s1};
    double vr[4];
    double vi[4];
    for (int col = 0; col < 4; ++col) {
      vr[col] = a[2 * idx[col]];
      vi[col] = a[2 * idx[col] + 1];
    }
    for (int row = 0; row < 4; ++row) {
      double re = 0.0;
      double im = 0.0;
      for (int col = 0; col < 4; ++col) {
        const double er = ur[4 * row + col];
        const double ei = ui[4 * row + col];
        re += er * vr[col] - ei * vi[col];
        im += er * vi[col] + ei * vr[col];
      }
      a[2 * idx[row]] = re;
      a[2 * idx[row] + 1] = im;
    }
  }
}

void StateVector::apply_cphase(double theta, int qubit0, int qubit1) {
  expects(qubit0 >= 0 && qubit0 < num_qubits_ && qubit1 >= 0 &&
              qubit1 < num_qubits_ && qubit0 != qubit1,
          "apply_cphase: invalid qubits");
  const std::uint64_t mask =
      (std::uint64_t{1} << qubit0) | (std::uint64_t{1} << qubit1);
  const Complex phase = std::polar(1.0, theta);
  const std::uint64_t dim = dimension();
  Complex* a = amps_.data();
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if ((idx & mask) == mask) a[idx] *= phase;
  }
}

double StateVector::norm() const {
  double acc = 0.0;
  const std::uint64_t dim = dimension();
  const Complex* a = amps_.data();
#pragma omp parallel for if (dim >= kParallelThreshold) reduction(+ : acc) \
    schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i)
    acc += std::norm(a[i]);
  return std::sqrt(acc);
}

void StateVector::normalize() {
  const double n = norm();
  ensure_state(n > 1e-300, "normalize: state has collapsed to zero");
  const double inv = 1.0 / n;
  const std::uint64_t dim = dimension();
  Complex* a = amps_.data();
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i)
    a[i] *= inv;
}

double StateVector::probability_one(int qubit) const {
  expects(qubit >= 0 && qubit < num_qubits_,
          "probability_one: qubit out of range");
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  const std::uint64_t dim = dimension();
  const Complex* a = amps_.data();
  double acc = 0.0;
#pragma omp parallel for if (dim >= kParallelThreshold) reduction(+ : acc) \
    schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i)
    if (static_cast<std::uint64_t>(i) & bit) acc += std::norm(a[i]);
  return acc;
}

std::vector<double> StateVector::probabilities() const {
  const std::uint64_t dim = dimension();
  std::vector<double> probs(dim);
  const Complex* a = amps_.data();
  double* p = probs.data();
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i)
    p[i] = std::norm(a[i]);
  return probs;
}

int StateVector::measure(int qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.bernoulli(p1) ? 1 : 0;
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  const std::uint64_t dim = dimension();
  Complex* a = amps_.data();
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
    const bool is_one = (static_cast<std::uint64_t>(i) & bit) != 0;
    if (is_one != (outcome == 1)) a[i] = Complex{0.0, 0.0};
  }
  normalize();
  return outcome;
}

std::uint64_t StateVector::sample_one(Rng& rng) const {
  // Single-pass inverse transform: walk the amplitudes once, subtracting
  // each probability from the draw until it is exhausted. No CDF is
  // materialized, so the per-shot cost is a read-only O(2^n) sweep.
  // Kept strictly serial: the trajectory engine calls this from inside an
  // OpenMP shot loop and the scan order must not depend on thread count.
  const std::uint64_t dim = dimension();
  double r = rng.uniform();
  std::uint64_t last_nonzero = 0;
  bool seen_nonzero = false;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const double p = std::norm(amps_[i]);
    if (p > 0.0) {
      last_nonzero = i;
      seen_nonzero = true;
    }
    r -= p;
    if (r < 0.0) return i;
  }
  // The draw fell past the accumulated mass (sub-unit norm or rounding):
  // attribute it to the last outcome with support.
  ensure_state(seen_nonzero, "sample_one: zero-norm state");
  return last_nonzero;
}

std::vector<std::uint64_t> StateVector::sample(std::size_t shots,
                                               Rng& rng) const {
  // One draw does not amortize a CDF build — use the single-pass sampler.
  if (shots == 1) return {sample_one(rng)};
  // Cumulative distribution + binary search per shot: O(2^n + S log 2^n).
  std::vector<double> cdf(dimension());
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    acc += std::norm(amps_[i]);
    cdf[i] = acc;
  }
  ensure_state(acc > 0.0, "sample: zero-norm state");
  std::vector<std::uint64_t> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double r = rng.uniform() * acc;
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
    out[s] = static_cast<std::uint64_t>(std::distance(cdf.begin(), it));
    if (out[s] >= dimension()) out[s] = dimension() - 1;
  }
  return out;
}

double StateVector::expectation_z(std::uint64_t mask) const {
  const std::uint64_t dim = dimension();
  const Complex* a = amps_.data();
  double acc = 0.0;
#pragma omp parallel for if (dim >= kParallelThreshold) reduction(+ : acc) \
    schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
    const int parity =
        std::popcount(static_cast<std::uint64_t>(i) & mask) & 1;
    acc += (parity ? -1.0 : 1.0) * std::norm(a[i]);
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

Complex StateVector::inner_product(const StateVector& other) const {
  expects(num_qubits_ == other.num_qubits_,
          "inner_product: qubit count mismatch");
  const std::uint64_t dim = dimension();
  const Complex* a = amps_.data();
  const Complex* b = other.amps_.data();
  // OpenMP has no portable std::complex reduction — reduce the parts.
  double re = 0.0;
  double im = 0.0;
#pragma omp parallel for if (dim >= kParallelThreshold) \
    reduction(+ : re, im) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
    const Complex term = std::conj(a[i]) * b[i];
    re += term.real();
    im += term.imag();
  }
  return Complex{re, im};
}

void StateVector::apply_pauli_error(int qubit, double p, Rng& rng) {
  expects(p >= 0.0 && p <= 1.0, "apply_pauli_error: p outside [0,1]");
  if (!rng.bernoulli(p)) return;
  static const Matrix2 kX = gate_x();
  static const Matrix2 kY = gate_y();
  static const Matrix2 kZ = gate_z();
  switch (rng.uniform_index(3)) {
    case 0: apply_1q(kX, qubit); break;
    case 1: apply_1q(kY, qubit); break;
    default: apply_1q(kZ, qubit); break;
  }
}

void StateVector::apply_pauli_error_2q(int qubit0, int qubit1, double p,
                                       Rng& rng) {
  expects(p >= 0.0 && p <= 1.0, "apply_pauli_error_2q: p outside [0,1]");
  if (!rng.bernoulli(p)) return;
  // Uniform over the 15 non-identity two-qubit Paulis.
  const std::uint64_t which = 1 + rng.uniform_index(15);
  const int p0 = static_cast<int>(which % 4);
  const int p1 = static_cast<int>(which / 4);
  static const Matrix2 kX = gate_x();
  static const Matrix2 kY = gate_y();
  static const Matrix2 kZ = gate_z();
  const auto apply_pauli = [this](int pauli, int q) {
    switch (pauli) {
      case 1: apply_1q(kX, q); break;
      case 2: apply_1q(kY, q); break;
      case 3: apply_1q(kZ, q); break;
      default: break;
    }
  };
  apply_pauli(p0, qubit0);
  apply_pauli(p1, qubit1);
}

void StateVector::apply_amplitude_damping(int qubit, double gamma, Rng& rng) {
  expects(gamma >= 0.0 && gamma <= 1.0,
          "apply_amplitude_damping: gamma outside [0,1]");
  if (gamma == 0.0) return;
  // Jump probability = gamma * P(|1>).
  const double p_jump = gamma * probability_one(qubit);
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  if (rng.bernoulli(p_jump)) {
    // Jump: K1 = sqrt(gamma) |0><1| — move |1> amplitude into |0>.
    for (std::uint64_t i = 0; i < dimension(); ++i) {
      if (i & bit) {
        amps_[i & ~bit] = amps_[i];
        amps_[i] = Complex{0.0, 0.0};
      }
    }
  } else {
    // No jump: K0 = diag(1, sqrt(1-gamma)).
    const double damp = std::sqrt(1.0 - gamma);
    for (std::uint64_t i = 0; i < dimension(); ++i)
      if (i & bit) amps_[i] *= damp;
  }
  normalize();
}

void StateVector::apply_phase_damping(int qubit, double lambda, Rng& rng) {
  expects(lambda >= 0.0 && lambda <= 1.0,
          "apply_phase_damping: lambda outside [0,1]");
  if (rng.bernoulli(lambda)) apply_1q(gate_z(), qubit);
}

double pauli_error_prob_from_avg_fidelity(double avg_fidelity,
                                          int num_qubits) {
  expects(num_qubits == 1 || num_qubits == 2,
          "pauli_error_prob: only 1- and 2-qubit gates supported");
  const double d = num_qubits == 1 ? 2.0 : 4.0;
  const double process_fidelity = ((d + 1.0) * avg_fidelity - 1.0) / d;
  return std::clamp(1.0 - process_fidelity, 0.0, 1.0);
}

double avg_fidelity_from_pauli_error_prob(double p, int num_qubits) {
  expects(num_qubits == 1 || num_qubits == 2,
          "avg_fidelity_from_pauli_error_prob: only 1- and 2-qubit gates");
  const double d = num_qubits == 1 ? 2.0 : 4.0;
  const double process_fidelity = 1.0 - p;
  return (d * process_fidelity + 1.0) / (d + 1.0);
}

}  // namespace hpcqc::qsim
