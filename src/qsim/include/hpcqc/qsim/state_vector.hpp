#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/qsim/gates.hpp"

namespace hpcqc::qsim {

/// Full state-vector simulator. Qubit 0 is the least significant bit of the
/// basis-state index. Amplitudes are stored contiguously; the gate-apply
/// kernels stride over the vector and are parallelized with OpenMP when the
/// state is large enough to amortize the fork.
///
/// This class is the stand-in for the physical 20-qubit QPU: the paper
/// onboards its users on "a digital twin of the quantum computer (an
/// emulator)", which is exactly this component.
class StateVector {
public:
  /// Constructs |0...0> on `num_qubits` qubits (max 28 to bound memory).
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }

  const std::vector<Complex>& amplitudes() const { return amps_; }
  /// Mutable amplitude access for components building on the gate kernels
  /// with non-state semantics (the density-matrix simulator stores rho as
  /// a 2n-qubit vector). Invariants (normalization) become the caller's.
  std::vector<Complex>& mutable_amplitudes() { return amps_; }
  Complex amplitude(std::uint64_t basis_state) const;

  /// Resets to |0...0>.
  void reset();

  /// Applies a single-qubit unitary to `qubit`.
  void apply_1q(const Matrix2& u, int qubit);

  /// Applies a two-qubit unitary; `qubit0` indexes the low bit of the 4x4
  /// matrix basis, `qubit1` the high bit. The qubits must differ.
  void apply_2q(const Matrix4& u, int qubit0, int qubit1);

  /// Diagonal two-qubit phase (fast path for CZ / CPhase).
  void apply_cphase(double theta, int qubit0, int qubit1);

  /// L2 norm of the state (1.0 up to rounding for unitary evolution).
  double norm() const;

  /// Rescales so that norm() == 1; throws if the state is numerically zero.
  void normalize();

  /// Probability of measuring `qubit` as 1.
  double probability_one(int qubit) const;

  /// Probability distribution over all 2^n basis states.
  std::vector<double> probabilities() const;

  /// Projectively measures one qubit, collapsing the state. Returns the
  /// outcome bit.
  int measure(int qubit, Rng& rng);

  /// Samples `shots` full-register outcomes from the current distribution
  /// without collapsing the state (the physical analogue: identical
  /// preparations measured repeatedly).
  std::vector<std::uint64_t> sample(std::size_t shots, Rng& rng) const;

  /// Samples one full-register outcome by single-pass inverse-transform
  /// over the amplitudes: O(2^n) time, zero allocation. This is the
  /// per-shot sampler of the trajectory engine — the batched `sample`
  /// builds an O(2^n) CDF which is wasteful for one draw.
  std::uint64_t sample_one(Rng& rng) const;

  /// <Z_mask>: expectation of the tensor product of Z on the qubits set in
  /// `mask` (identity elsewhere).
  double expectation_z(std::uint64_t mask) const;

  /// |<this|other>|^2 — state fidelity against another pure state.
  double fidelity(const StateVector& other) const;

  /// Inner product <this|other>.
  Complex inner_product(const StateVector& other) const;

  // ---- Trajectory noise (physical error injection) ------------------------

  /// Stochastic Pauli error: with probability `p` applies a uniformly random
  /// non-identity Pauli on `qubit`. Models depolarizing gate error; the
  /// process fidelity of the averaged channel is 1 - p.
  void apply_pauli_error(int qubit, double p, Rng& rng);

  /// Two-qubit stochastic Pauli error: with probability `p` applies a
  /// uniformly random non-identity two-qubit Pauli on the pair.
  void apply_pauli_error_2q(int qubit0, int qubit1, double p, Rng& rng);

  /// Amplitude damping (T1 decay) trajectory step with damping probability
  /// `gamma` = 1 - exp(-t/T1). Selects the jump/no-jump Kraus branch with
  /// the physically correct probability and renormalizes.
  void apply_amplitude_damping(int qubit, double gamma, Rng& rng);

  /// Pure dephasing trajectory step with phase-flip probability
  /// `lambda` (applies Z with probability lambda).
  void apply_phase_damping(int qubit, double lambda, Rng& rng);

private:
  int num_qubits_;
  std::vector<Complex> amps_;
};

/// Converts an average gate fidelity into the stochastic-Pauli error
/// probability used by apply_pauli_error(_2q): with d = 2^num_qubits,
/// process fidelity F_pro = ((d+1)·F_avg − 1)/d and p = 1 − F_pro.
double pauli_error_prob_from_avg_fidelity(double avg_fidelity,
                                          int num_qubits);

/// Inverse of pauli_error_prob_from_avg_fidelity.
double avg_fidelity_from_pauli_error_prob(double p, int num_qubits);

}  // namespace hpcqc::qsim
