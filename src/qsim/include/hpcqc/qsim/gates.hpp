#pragma once

#include <array>
#include <complex>

namespace hpcqc::qsim {

using Complex = std::complex<double>;

/// Row-major 2x2 unitary acting on one qubit.
using Matrix2 = std::array<Complex, 4>;

/// Row-major 4x4 unitary acting on two qubits; index convention is
/// |q_hi q_lo> with q_lo the first qubit argument of apply_2q.
using Matrix4 = std::array<Complex, 16>;

/// Matrix product of two 2x2 matrices (a * b).
Matrix2 matmul(const Matrix2& a, const Matrix2& b);

/// Matrix product of two 4x4 matrices (a * b).
Matrix4 matmul(const Matrix4& a, const Matrix4& b);

/// Hermitian adjoint.
Matrix2 adjoint(const Matrix2& m);
Matrix4 adjoint(const Matrix4& m);

/// Kronecker product a ⊗ b (a acts on the high qubit).
Matrix4 kron(const Matrix2& a, const Matrix2& b);

/// True when m is unitary to within `tol` in max-norm.
bool is_unitary(const Matrix2& m, double tol = 1e-10);
bool is_unitary(const Matrix4& m, double tol = 1e-10);

// ---- Standard single-qubit gates -----------------------------------------

Matrix2 gate_i();
Matrix2 gate_x();
Matrix2 gate_y();
Matrix2 gate_z();
Matrix2 gate_h();
Matrix2 gate_s();
Matrix2 gate_sdg();
Matrix2 gate_t();
Matrix2 gate_tdg();
Matrix2 gate_sx();

Matrix2 gate_rx(double theta);
Matrix2 gate_ry(double theta);
Matrix2 gate_rz(double theta);

/// Generic U(theta, phi, lambda) in the OpenQASM convention.
Matrix2 gate_u(double theta, double phi, double lambda);

/// IQM-style phased-RX: rotation by `theta` about the axis
/// cos(phi)·X + sin(phi)·Y. This is the native single-qubit gate of the
/// 20-qubit transmon device reproduced here: PRX(θ,φ) = RZ(φ)·RX(θ)·RZ(−φ).
Matrix2 gate_prx(double theta, double phi);

// ---- Standard two-qubit gates ---------------------------------------------

Matrix4 gate_cz();
Matrix4 gate_cx();  ///< control = first qubit argument (low index bit).
Matrix4 gate_swap();
Matrix4 gate_iswap();
Matrix4 gate_cphase(double theta);

}  // namespace hpcqc::qsim
