#pragma once

#include <span>

#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::qsim {

/// Exact open-system simulator: the density matrix rho evolves under
/// unitaries and Kraus channels without sampling noise. Quadratically more
/// expensive than the state vector (rho is stored as a 2n-qubit vector), so
/// it is capped at 10 qubits — its role is to *validate* the trajectory
/// noise channels the device twin uses, not to replace them.
class DensityMatrix {
public:
  /// |0...0><0...0| on `num_qubits` (1 to 10).
  explicit DensityMatrix(int num_qubits);

  /// |psi><psi| of a pure state.
  static DensityMatrix from_state(const StateVector& state);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }

  /// Element <r| rho |c>.
  Complex element(std::uint64_t row, std::uint64_t column) const;

  /// rho -> U rho U† on one / two qubits.
  void apply_1q(const Matrix2& u, int qubit);
  void apply_2q(const Matrix4& u, int qubit0, int qubit1);

  /// rho -> sum_k K_k rho K_k† (single-qubit Kraus set).
  void apply_kraus_1q(std::span<const Matrix2> kraus, int qubit);

  /// Depolarizing channel matching StateVector::apply_pauli_error's
  /// average: with probability p a uniformly random non-identity Pauli.
  void apply_depolarizing(int qubit, double p);

  /// Two-qubit depolarizing channel matching
  /// StateVector::apply_pauli_error_2q's average: with probability p a
  /// uniformly random non-identity two-qubit Pauli on the pair. This is the
  /// exact channel the trajectory engine samples per noisy two-qubit step,
  /// which is what lets the differential oracle in `verify/` compare the
  /// two simulators without sampling error on this side.
  void apply_depolarizing_2q(int qubit0, int qubit1, double p);

  /// Amplitude damping with decay probability gamma (T1 channel).
  void apply_amplitude_damping(int qubit, double gamma);

  /// Phase damping as a Z-flip with probability lambda (matches
  /// StateVector::apply_phase_damping's average).
  void apply_phase_damping(int qubit, double lambda);

  /// tr(rho): 1 for any physical evolution.
  double trace() const;
  /// tr(rho^2): 1 for pure states, down to 1/2^n when fully mixed.
  double purity() const;

  /// Diagonal of rho: measurement distribution over basis states.
  std::vector<double> probabilities() const;

  /// <psi| rho |psi> — fidelity against a pure reference.
  double fidelity(const StateVector& reference) const;

  /// tr(rho Z_mask).
  double expectation_z(std::uint64_t mask) const;

private:
  explicit DensityMatrix(int num_qubits, StateVector super);

  int num_qubits_;
  /// rho flattened: bits [0, n) index the column, bits [n, 2n) the row.
  StateVector super_;
};

}  // namespace hpcqc::qsim
