#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace hpcqc::qsim {

/// Histogram of measured bitstrings — the "most common output format for
/// circuit-based jobs" described in §2.4 of the paper. Keys are basis-state
/// indices (qubit 0 = least significant bit).
class Counts {
public:
  Counts() = default;
  Counts(std::span<const std::uint64_t> samples, int num_qubits);

  int num_qubits() const { return num_qubits_; }
  void set_num_qubits(int n) { num_qubits_ = n; }

  void add(std::uint64_t outcome, std::uint64_t count = 1);

  /// Accumulates another histogram into this one (the reduction step of
  /// the shot-parallel trajectory engine: thread-local Counts merge here).
  void merge(const Counts& other);

  /// O(1): the running total is maintained by add()/merge(), so metric
  /// loops (TVD, Hellinger, expectation) no longer re-sum the histogram
  /// per call.
  std::uint64_t total_shots() const { return total_; }
  std::uint64_t count_of(std::uint64_t outcome) const;
  double probability_of(std::uint64_t outcome) const;
  std::size_t distinct_outcomes() const { return counts_.size(); }

  const std::map<std::uint64_t, std::uint64_t>& raw() const { return counts_; }

  /// Renders an outcome as a bitstring, qubit (n-1) first (Qiskit order).
  std::string bitstring(std::uint64_t outcome) const;

  /// The `k` most frequent outcomes as (bitstring, count), descending.
  std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t k) const;

  /// Empirical expectation of Z on the qubits in `mask`.
  double expectation_z(std::uint64_t mask) const;

  /// Total-variation distance to an exact distribution over 2^n outcomes.
  double total_variation_distance(std::span<const double> exact) const;

  /// Hellinger fidelity against an exact distribution.
  double hellinger_fidelity(std::span<const double> exact) const;

private:
  int num_qubits_ = 0;
  std::uint64_t total_ = 0;
  std::map<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace hpcqc::qsim
