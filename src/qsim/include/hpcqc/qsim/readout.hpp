#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/qsim/counts.hpp"

namespace hpcqc::qsim {

/// Per-qubit binary readout confusion. `p_read1_given0` is the probability of
/// classifying a qubit prepared in |0> as 1, and vice versa. The symmetric
/// assignment fidelity of the qubit is 1 − (p01 + p10)/2 — this is the
/// "readout fidelity" series plotted in the paper's Figure 4.
struct ReadoutConfusion {
  double p_read1_given0 = 0.0;
  double p_read0_given1 = 0.0;

  double assignment_fidelity() const {
    return 1.0 - 0.5 * (p_read1_given0 + p_read0_given1);
  }
};

/// Readout error model for a full register: one confusion per qubit,
/// applied independently (crosstalk-free, as for dispersive multiplexed
/// readout with well-separated resonators).
class ReadoutError {
public:
  ReadoutError() = default;
  explicit ReadoutError(std::vector<ReadoutConfusion> per_qubit);

  /// Uniform confusion across `num_qubits` qubits.
  static ReadoutError uniform(int num_qubits, double p01, double p10);

  int num_qubits() const { return static_cast<int>(per_qubit_.size()); }
  const ReadoutConfusion& qubit(int q) const;

  /// Applies classification errors to one sampled outcome.
  std::uint64_t corrupt(std::uint64_t outcome, Rng& rng) const;

  /// Applies classification errors to a batch of samples in place.
  void corrupt_all(std::span<std::uint64_t> outcomes, Rng& rng) const;

  /// Mean assignment fidelity over the register.
  double mean_assignment_fidelity() const;

private:
  std::vector<ReadoutConfusion> per_qubit_;
};

}  // namespace hpcqc::qsim
