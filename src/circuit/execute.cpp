#include "hpcqc/circuit/execute.hpp"

#include "hpcqc/common/error.hpp"
#include "hpcqc/qsim/gates.hpp"

namespace hpcqc::circuit {

void apply_op(qsim::StateVector& state, const Operation& op) {
  using qsim::Matrix2;
  using qsim::Matrix4;
  // Constant gate matrices are built once per process, not per call —
  // the trajectory engine funnels every gate of every shot through here.
  static const Matrix2 kX = qsim::gate_x();
  static const Matrix2 kY = qsim::gate_y();
  static const Matrix2 kZ = qsim::gate_z();
  static const Matrix2 kH = qsim::gate_h();
  static const Matrix2 kS = qsim::gate_s();
  static const Matrix2 kSdg = qsim::gate_sdg();
  static const Matrix2 kT = qsim::gate_t();
  static const Matrix2 kTdg = qsim::gate_tdg();
  static const Matrix2 kSx = qsim::gate_sx();
  static const Matrix4 kCx = qsim::gate_cx();
  static const Matrix4 kSwap = qsim::gate_swap();
  static const Matrix4 kIswap = qsim::gate_iswap();
  switch (op.kind) {
    case OpKind::kBarrier:
      return;
    case OpKind::kMeasure:
      throw PreconditionError(
          "apply_op: measurements are handled by run_ideal, not apply_op");
    case OpKind::kI:
      return;
    case OpKind::kX: state.apply_1q(kX, op.qubits[0]); return;
    case OpKind::kY: state.apply_1q(kY, op.qubits[0]); return;
    case OpKind::kZ: state.apply_1q(kZ, op.qubits[0]); return;
    case OpKind::kH: state.apply_1q(kH, op.qubits[0]); return;
    case OpKind::kS: state.apply_1q(kS, op.qubits[0]); return;
    case OpKind::kSdg: state.apply_1q(kSdg, op.qubits[0]); return;
    case OpKind::kT: state.apply_1q(kT, op.qubits[0]); return;
    case OpKind::kTdg: state.apply_1q(kTdg, op.qubits[0]); return;
    case OpKind::kSx: state.apply_1q(kSx, op.qubits[0]); return;
    case OpKind::kRx:
      state.apply_1q(qsim::gate_rx(op.params[0]), op.qubits[0]);
      return;
    case OpKind::kRy:
      state.apply_1q(qsim::gate_ry(op.params[0]), op.qubits[0]);
      return;
    case OpKind::kRz:
      state.apply_1q(qsim::gate_rz(op.params[0]), op.qubits[0]);
      return;
    case OpKind::kU:
      state.apply_1q(qsim::gate_u(op.params[0], op.params[1], op.params[2]),
                     op.qubits[0]);
      return;
    case OpKind::kPrx:
      state.apply_1q(qsim::gate_prx(op.params[0], op.params[1]),
                     op.qubits[0]);
      return;
    case OpKind::kCz:
      state.apply_cphase(M_PI, op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kCx:
      state.apply_2q(kCx, op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kSwap:
      state.apply_2q(kSwap, op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kIswap:
      state.apply_2q(kIswap, op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kCphase:
      state.apply_cphase(op.params[0], op.qubits[0], op.qubits[1]);
      return;
  }
  throw Error("apply_op: unhandled op kind");
}

void apply_gates(qsim::StateVector& state, const Circuit& circuit) {
  expects(state.num_qubits() == circuit.num_qubits(),
          "apply_gates: register size mismatch");
  for (const auto& op : circuit.ops()) {
    if (op.kind == OpKind::kMeasure) continue;
    apply_op(state, op);
  }
}

std::uint64_t compact_outcome(std::uint64_t full,
                              std::span<const int> qubits) {
  std::uint64_t compact = 0;
  for (std::size_t i = 0; i < qubits.size(); ++i)
    if (full & (std::uint64_t{1} << qubits[i]))
      compact |= std::uint64_t{1} << i;
  return compact;
}

qsim::Counts run_ideal(const Circuit& circuit, std::size_t shots, Rng& rng) {
  qsim::StateVector state(circuit.num_qubits());
  apply_gates(state, circuit);
  const std::vector<int> measured = circuit.measured_qubits();
  auto samples = state.sample(shots, rng);
  qsim::Counts counts;
  counts.set_num_qubits(static_cast<int>(measured.size()));
  for (std::uint64_t s : samples) counts.add(compact_outcome(s, measured));
  return counts;
}

std::vector<double> ideal_distribution(const Circuit& circuit) {
  qsim::StateVector state(circuit.num_qubits());
  apply_gates(state, circuit);
  const std::vector<int> measured = circuit.measured_qubits();
  const auto full = state.probabilities();
  std::vector<double> marginal(std::size_t{1} << measured.size(), 0.0);
  for (std::uint64_t i = 0; i < full.size(); ++i)
    marginal[compact_outcome(i, measured)] += full[i];
  return marginal;
}

}  // namespace hpcqc::circuit
