#include "hpcqc/circuit/execute.hpp"

#include "hpcqc/common/error.hpp"
#include "hpcqc/qsim/gates.hpp"

namespace hpcqc::circuit {

void apply_op(qsim::StateVector& state, const Operation& op) {
  using qsim::Matrix2;
  using qsim::Matrix4;
  switch (op.kind) {
    case OpKind::kBarrier:
      return;
    case OpKind::kMeasure:
      throw PreconditionError(
          "apply_op: measurements are handled by run_ideal, not apply_op");
    case OpKind::kI:
      return;
    case OpKind::kX: state.apply_1q(qsim::gate_x(), op.qubits[0]); return;
    case OpKind::kY: state.apply_1q(qsim::gate_y(), op.qubits[0]); return;
    case OpKind::kZ: state.apply_1q(qsim::gate_z(), op.qubits[0]); return;
    case OpKind::kH: state.apply_1q(qsim::gate_h(), op.qubits[0]); return;
    case OpKind::kS: state.apply_1q(qsim::gate_s(), op.qubits[0]); return;
    case OpKind::kSdg: state.apply_1q(qsim::gate_sdg(), op.qubits[0]); return;
    case OpKind::kT: state.apply_1q(qsim::gate_t(), op.qubits[0]); return;
    case OpKind::kTdg: state.apply_1q(qsim::gate_tdg(), op.qubits[0]); return;
    case OpKind::kSx: state.apply_1q(qsim::gate_sx(), op.qubits[0]); return;
    case OpKind::kRx:
      state.apply_1q(qsim::gate_rx(op.params[0]), op.qubits[0]);
      return;
    case OpKind::kRy:
      state.apply_1q(qsim::gate_ry(op.params[0]), op.qubits[0]);
      return;
    case OpKind::kRz:
      state.apply_1q(qsim::gate_rz(op.params[0]), op.qubits[0]);
      return;
    case OpKind::kU:
      state.apply_1q(qsim::gate_u(op.params[0], op.params[1], op.params[2]),
                     op.qubits[0]);
      return;
    case OpKind::kPrx:
      state.apply_1q(qsim::gate_prx(op.params[0], op.params[1]),
                     op.qubits[0]);
      return;
    case OpKind::kCz:
      state.apply_cphase(M_PI, op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kCx:
      state.apply_2q(qsim::gate_cx(), op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kSwap:
      state.apply_2q(qsim::gate_swap(), op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kIswap:
      state.apply_2q(qsim::gate_iswap(), op.qubits[0], op.qubits[1]);
      return;
    case OpKind::kCphase:
      state.apply_cphase(op.params[0], op.qubits[0], op.qubits[1]);
      return;
  }
  throw Error("apply_op: unhandled op kind");
}

void apply_gates(qsim::StateVector& state, const Circuit& circuit) {
  expects(state.num_qubits() == circuit.num_qubits(),
          "apply_gates: register size mismatch");
  for (const auto& op : circuit.ops()) {
    if (op.kind == OpKind::kMeasure) continue;
    apply_op(state, op);
  }
}

std::uint64_t compact_outcome(std::uint64_t full,
                              std::span<const int> qubits) {
  std::uint64_t compact = 0;
  for (std::size_t i = 0; i < qubits.size(); ++i)
    if (full & (std::uint64_t{1} << qubits[i]))
      compact |= std::uint64_t{1} << i;
  return compact;
}

qsim::Counts run_ideal(const Circuit& circuit, std::size_t shots, Rng& rng) {
  qsim::StateVector state(circuit.num_qubits());
  apply_gates(state, circuit);
  const std::vector<int> measured = circuit.measured_qubits();
  auto samples = state.sample(shots, rng);
  qsim::Counts counts;
  counts.set_num_qubits(static_cast<int>(measured.size()));
  for (std::uint64_t s : samples) counts.add(compact_outcome(s, measured));
  return counts;
}

std::vector<double> ideal_distribution(const Circuit& circuit) {
  qsim::StateVector state(circuit.num_qubits());
  apply_gates(state, circuit);
  const std::vector<int> measured = circuit.measured_qubits();
  const auto full = state.probabilities();
  std::vector<double> marginal(std::size_t{1} << measured.size(), 0.0);
  for (std::uint64_t i = 0; i < full.size(); ++i)
    marginal[compact_outcome(i, measured)] += full[i];
  return marginal;
}

}  // namespace hpcqc::circuit
