#include "hpcqc/circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "hpcqc/common/error.hpp"

namespace hpcqc::circuit {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  expects(num_qubits >= 1, "Circuit: need at least one qubit");
}

void Circuit::append(Operation op) {
  const int arity = op_arity(op.kind);
  if (arity > 0) {
    expects(static_cast<int>(op.qubits.size()) == arity,
            "Circuit::append: wrong qubit operand count for op");
  }
  expects(static_cast<int>(op.params.size()) == op_param_count(op.kind),
          "Circuit::append: wrong parameter count for op");
  for (int q : op.qubits)
    expects(q >= 0 && q < num_qubits_, "Circuit::append: qubit out of range");
  if (op.qubits.size() == 2)
    expects(op.qubits[0] != op.qubits[1],
            "Circuit::append: two-qubit op needs distinct qubits");
  if (op.kind == OpKind::kMeasure && op.qubits.size() > 1) {
    // A repeated index would alias two outcome bits to one qubit, making
    // compact_outcome's bit order ambiguous — rejected, like repeated
    // operands on two-qubit gates.
    std::vector<int> sorted = op.qubits;
    std::sort(sorted.begin(), sorted.end());
    expects(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "Circuit::append: measure lists a qubit twice");
  }
  ops_.push_back(std::move(op));
}

Circuit& Circuit::add0(OpKind kind, int q) {
  append({kind, {q}, {}});
  return *this;
}

Circuit& Circuit::rx(double theta, int q) {
  append({OpKind::kRx, {q}, {theta}});
  return *this;
}

Circuit& Circuit::ry(double theta, int q) {
  append({OpKind::kRy, {q}, {theta}});
  return *this;
}

Circuit& Circuit::rz(double theta, int q) {
  append({OpKind::kRz, {q}, {theta}});
  return *this;
}

Circuit& Circuit::u(double theta, double phi, double lambda, int q) {
  append({OpKind::kU, {q}, {theta, phi, lambda}});
  return *this;
}

Circuit& Circuit::prx(double theta, double phi, int q) {
  append({OpKind::kPrx, {q}, {theta, phi}});
  return *this;
}

Circuit& Circuit::cz(int q0, int q1) {
  append({OpKind::kCz, {q0, q1}, {}});
  return *this;
}

Circuit& Circuit::cx(int control, int target) {
  append({OpKind::kCx, {control, target}, {}});
  return *this;
}

Circuit& Circuit::swap(int q0, int q1) {
  append({OpKind::kSwap, {q0, q1}, {}});
  return *this;
}

Circuit& Circuit::iswap(int q0, int q1) {
  append({OpKind::kIswap, {q0, q1}, {}});
  return *this;
}

Circuit& Circuit::cphase(double theta, int q0, int q1) {
  append({OpKind::kCphase, {q0, q1}, {theta}});
  return *this;
}

Circuit& Circuit::barrier() {
  append({OpKind::kBarrier, {}, {}});
  return *this;
}

Circuit& Circuit::measure(std::vector<int> qubits) {
  for (int q : qubits)
    expects(q >= 0 && q < num_qubits_, "Circuit::measure: qubit out of range");
  append({OpKind::kMeasure, std::move(qubits), {}});
  return *this;
}

std::size_t Circuit::gate_count() const {
  std::size_t n = 0;
  for (const auto& op : ops_)
    if (op.kind != OpKind::kBarrier && op.kind != OpKind::kMeasure) ++n;
  return n;
}

std::size_t Circuit::two_qubit_gate_count() const {
  std::size_t n = 0;
  for (const auto& op : ops_)
    if (op_is_two_qubit(op.kind)) ++n;
  return n;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> frontier(static_cast<std::size_t>(num_qubits_), 0);
  for (const auto& op : ops_) {
    if (op.kind == OpKind::kMeasure) continue;
    if (op.kind == OpKind::kBarrier) {
      const std::size_t level =
          *std::max_element(frontier.begin(), frontier.end());
      std::fill(frontier.begin(), frontier.end(), level);
      continue;
    }
    std::size_t level = 0;
    for (int q : op.qubits)
      level = std::max(level, frontier[static_cast<std::size_t>(q)]);
    ++level;
    for (int q : op.qubits) frontier[static_cast<std::size_t>(q)] = level;
  }
  return frontier.empty()
             ? 0
             : *std::max_element(frontier.begin(), frontier.end());
}

std::vector<int> Circuit::measured_qubits() const {
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->kind == OpKind::kMeasure) {
      if (it->qubits.empty()) break;  // measure-all
      // Declared order is significant: bit i of an outcome corresponds to
      // qubits[i], so compiled circuits keep virtual bit order.
      return it->qubits;
    }
  }
  std::vector<int> all(static_cast<std::size_t>(num_qubits_));
  std::iota(all.begin(), all.end(), 0);
  return all;
}

bool Circuit::is_native() const {
  for (const auto& op : ops_) {
    if (op.kind == OpKind::kBarrier || op.kind == OpKind::kMeasure) continue;
    if (!op_is_native(op.kind)) return false;
  }
  return true;
}

Circuit Circuit::remapped(std::span<const int> layout,
                          int new_num_qubits) const {
  expects(static_cast<int>(layout.size()) == num_qubits_,
          "Circuit::remapped: layout size must equal qubit count");
  Circuit out(new_num_qubits);
  for (const auto& op : ops_) {
    Operation mapped = op;
    // A measure-all on the source register must stay a measurement of the
    // source qubits (in virtual order), not of the whole target register.
    if (mapped.kind == OpKind::kMeasure && mapped.qubits.empty()) {
      mapped.qubits.resize(static_cast<std::size_t>(num_qubits_));
      std::iota(mapped.qubits.begin(), mapped.qubits.end(), 0);
    }
    for (auto& q : mapped.qubits) {
      expects(q >= 0 && q < static_cast<int>(layout.size()),
              "Circuit::remapped: qubit outside layout");
      q = layout[static_cast<std::size_t>(q)];
    }
    out.append(std::move(mapped));
  }
  return out;
}

Circuit Circuit::ghz(int num_qubits) {
  Circuit c(num_qubits);
  c.h(0);
  for (int q = 1; q < num_qubits; ++q) c.cx(q - 1, q);
  c.measure();
  return c;
}

Circuit Circuit::bell() { return ghz(2); }

Circuit Circuit::qft(int num_qubits) {
  Circuit c(num_qubits);
  for (int target = num_qubits - 1; target >= 0; --target) {
    c.h(target);
    for (int control = target - 1; control >= 0; --control) {
      const double theta = M_PI / std::pow(2.0, target - control);
      c.cphase(theta, control, target);
    }
  }
  for (int q = 0; q < num_qubits / 2; ++q) c.swap(q, num_qubits - 1 - q);
  return c;
}

std::uint64_t Circuit::structural_hash() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;  // FNV prime
  };
  mix(static_cast<std::uint64_t>(num_qubits_));
  for (const auto& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind) + 1);
    for (int q : op.qubits) mix(static_cast<std::uint64_t>(q) + 0x9e37);
    for (double p : op.params) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(p));
      std::memcpy(&bits, &p, sizeof(bits));
      mix(bits);
    }
  }
  return hash;
}

std::uint64_t Circuit::shape_hash() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;  // FNV prime
  };
  mix(static_cast<std::uint64_t>(num_qubits_));
  for (const auto& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind) + 1);
    for (int q : op.qubits) mix(static_cast<std::uint64_t>(q) + 0x9e37);
    mix(static_cast<std::uint64_t>(op.params.size()) + 0x51ed);
  }
  return hash;
}

void Circuit::set_param(std::size_t op_index, std::size_t param_index,
                        double value) {
  expects(op_index < ops_.size(), "Circuit::set_param: op index out of range");
  auto& op = ops_[op_index];
  expects(param_index < op.params.size(),
          "Circuit::set_param: parameter index out of range");
  op.params[param_index] = value;
}

namespace {

/// Appends the inverse of one gate operation (possibly as a sequence).
void append_inverse(Circuit& out, const Operation& op) {
  switch (op.kind) {
    // Self-inverse gates.
    case OpKind::kI:
    case OpKind::kX:
    case OpKind::kY:
    case OpKind::kZ:
    case OpKind::kH:
    case OpKind::kCz:
    case OpKind::kCx:
    case OpKind::kSwap:
    case OpKind::kBarrier:
      out.append(op);
      return;
    case OpKind::kS: out.append({OpKind::kSdg, op.qubits, {}}); return;
    case OpKind::kSdg: out.append({OpKind::kS, op.qubits, {}}); return;
    case OpKind::kT: out.append({OpKind::kTdg, op.qubits, {}}); return;
    case OpKind::kTdg: out.append({OpKind::kT, op.qubits, {}}); return;
    case OpKind::kSx:
      // SX† == RX(-pi/2) up to global phase.
      out.append({OpKind::kRx, op.qubits, {-M_PI / 2.0}});
      return;
    case OpKind::kRx:
    case OpKind::kRy:
    case OpKind::kRz:
    case OpKind::kCphase:
    case OpKind::kPrx:
      // Rotations invert by negating the angle (PRX keeps its axis phase).
      {
        Operation inverse = op;
        inverse.params[0] = -inverse.params[0];
        out.append(std::move(inverse));
      }
      return;
    case OpKind::kU:
      // U(theta, phi, lambda)† = U(-theta, -lambda, -phi).
      out.append({OpKind::kU, op.qubits,
                  {-op.params[0], -op.params[2], -op.params[1]}});
      return;
    case OpKind::kIswap:
      // (S⊗S · CZ · SWAP)† in circuit order: SWAP, CZ, S†, S†.
      out.append({OpKind::kSwap, op.qubits, {}});
      out.append({OpKind::kCz, op.qubits, {}});
      out.append({OpKind::kSdg, {op.qubits[0]}, {}});
      out.append({OpKind::kSdg, {op.qubits[1]}, {}});
      return;
    case OpKind::kMeasure:
      throw PreconditionError("inverse: circuits with measurements have no "
                              "adjoint — strip the measurement first");
  }
  throw Error("append_inverse: unhandled op kind");
}

}  // namespace

Circuit Circuit::inverse() const {
  Circuit out(num_qubits_);
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it)
    append_inverse(out, *it);
  return out;
}

Circuit Circuit::folded(int scale) const {
  expects(scale >= 1 && scale % 2 == 1,
          "Circuit::folded: scale must be an odd positive integer");
  // Split gates from the terminal measurement.
  Circuit body(num_qubits_);
  std::vector<Operation> measurements;
  for (const auto& op : ops_) {
    if (op.kind == OpKind::kMeasure)
      measurements.push_back(op);
    else
      body.append(op);
  }
  const Circuit body_inverse = body.inverse();
  Circuit out = body;
  for (int fold = 0; fold < (scale - 1) / 2; ++fold) {
    for (const auto& op : body_inverse.ops()) out.append(op);
    for (const auto& op : body.ops()) out.append(op);
  }
  for (auto& op : measurements) out.append(std::move(op));
  return out;
}

Circuit Circuit::random(int num_qubits, int depth, Rng& rng) {
  Circuit c(num_qubits);
  for (int layer = 0; layer < depth; ++layer) {
    for (int q = 0; q < num_qubits; ++q)
      c.prx(rng.uniform(0.0, 2.0 * M_PI), rng.uniform(0.0, 2.0 * M_PI), q);
    // Random disjoint pairing for the entangling layer.
    std::vector<int> order(static_cast<std::size_t>(num_qubits));
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    for (std::size_t i = 0; i + 1 < order.size(); i += 2)
      if (rng.bernoulli(0.7)) c.cz(order[i], order[i + 1]);
  }
  c.measure();
  return c;
}

}  // namespace hpcqc::circuit
