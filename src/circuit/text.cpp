#include "hpcqc/circuit/text.hpp"

#include <cctype>
#include <optional>
#include <sstream>

#include "hpcqc/common/error.hpp"

namespace hpcqc::circuit {

std::string to_text(const Circuit& circuit) {
  std::ostringstream oss;
  oss << "qubits " << circuit.num_qubits() << '\n';
  for (const auto& op : circuit.ops()) oss << to_string(op) << '\n';
  return oss.str();
}

namespace {

/// Minimal recursive-descent-ish line scanner for the text format.
class LineScanner {
public:
  LineScanner(std::string line, int line_number)
      : line_(std::move(line)), line_number_(line_number) {}

  void skip_spaces() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
  }

  bool at_end() {
    skip_spaces();
    return pos_ >= line_.size();
  }

  bool consume(char ch) {
    skip_spaces();
    if (pos_ < line_.size() && line_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string identifier() {
    skip_spaces();
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
            line_[pos_] == '_'))
      ++pos_;
    if (start == pos_) fail("expected identifier");
    return line_.substr(start, pos_ - start);
  }

  double number() {
    skip_spaces();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(line_.substr(pos_), &consumed);
    } catch (const std::exception&) {
      fail("expected number");
    }
    pos_ += consumed;
    return value;
  }

  int qubit() {
    skip_spaces();
    if (pos_ >= line_.size() || line_[pos_] != 'q')
      fail("expected qubit operand 'q<N>'");
    ++pos_;
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
    if (start == pos_) fail("expected qubit index after 'q'");
    return std::stoi(line_.substr(start, pos_ - start));
  }

  [[noreturn]] void fail(const std::string& message) {
    throw ParseError("line " + std::to_string(line_number_) + ": " + message +
                     " (near column " + std::to_string(pos_ + 1) + ")");
  }

private:
  std::string line_;
  int line_number_;
  std::size_t pos_ = 0;
};

std::string strip_comment(const std::string& line) {
  const auto hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

}  // namespace

Circuit from_text(const std::string& text) {
  std::istringstream stream(text);
  std::string raw_line;
  int line_number = 0;
  std::optional<Circuit> circuit;

  while (std::getline(stream, raw_line)) {
    ++line_number;
    LineScanner scan(strip_comment(raw_line), line_number);
    if (scan.at_end()) continue;

    const std::string word = scan.identifier();
    if (word == "qubits") {
      if (circuit.has_value())
        scan.fail("duplicate 'qubits' declaration");
      const double n = scan.number();
      if (n < 1 || n != static_cast<int>(n))
        scan.fail("'qubits' needs a positive integer");
      circuit.emplace(static_cast<int>(n));
      if (!scan.at_end()) scan.fail("trailing tokens after qubit count");
      continue;
    }

    if (!circuit.has_value())
      scan.fail("first statement must be 'qubits <N>'");

    Operation op;
    op.kind = op_kind_from_name(word);

    if (scan.consume('(')) {
      if (!scan.consume(')')) {
        do {
          op.params.push_back(scan.number());
        } while (scan.consume(','));
        if (!scan.consume(')')) scan.fail("expected ')' after parameters");
      }
    }
    if (static_cast<int>(op.params.size()) != op_param_count(op.kind))
      scan.fail(std::string("operation '") + word + "' takes " +
                std::to_string(op_param_count(op.kind)) + " parameter(s)");

    if (!scan.at_end()) {
      do {
        op.qubits.push_back(scan.qubit());
      } while (scan.consume(','));
    }
    if (!scan.at_end()) scan.fail("trailing tokens after operands");

    try {
      circuit->append(std::move(op));
    } catch (const Error& err) {
      throw ParseError("line " + std::to_string(line_number) + ": " +
                       err.what());
    }
  }

  if (!circuit.has_value())
    throw ParseError("empty input: missing 'qubits <N>' declaration");
  return *std::move(circuit);
}

}  // namespace hpcqc::circuit
