#include "hpcqc/circuit/op.hpp"

#include <array>
#include <iomanip>
#include <limits>
#include <sstream>

#include "hpcqc/common/error.hpp"

namespace hpcqc::circuit {

namespace {

struct OpInfo {
  OpKind kind;
  const char* name;
  int arity;        // 0 = variadic
  int param_count;
  bool native;
  bool two_qubit;
};

constexpr std::array<OpInfo, 22> kOpTable{{
    {OpKind::kI, "i", 1, 0, false, false},
    {OpKind::kX, "x", 1, 0, false, false},
    {OpKind::kY, "y", 1, 0, false, false},
    {OpKind::kZ, "z", 1, 0, false, false},
    {OpKind::kH, "h", 1, 0, false, false},
    {OpKind::kS, "s", 1, 0, false, false},
    {OpKind::kSdg, "sdg", 1, 0, false, false},
    {OpKind::kT, "t", 1, 0, false, false},
    {OpKind::kTdg, "tdg", 1, 0, false, false},
    {OpKind::kSx, "sx", 1, 0, false, false},
    {OpKind::kRx, "rx", 1, 1, false, false},
    {OpKind::kRy, "ry", 1, 1, false, false},
    {OpKind::kRz, "rz", 1, 1, false, false},
    {OpKind::kU, "u", 1, 3, false, false},
    {OpKind::kPrx, "prx", 1, 2, true, false},
    {OpKind::kCz, "cz", 2, 0, true, true},
    {OpKind::kCx, "cx", 2, 0, false, true},
    {OpKind::kSwap, "swap", 2, 0, false, true},
    {OpKind::kIswap, "iswap", 2, 0, false, true},
    {OpKind::kCphase, "cphase", 2, 1, false, true},
    {OpKind::kBarrier, "barrier", 0, 0, false, false},
    {OpKind::kMeasure, "measure", 0, 0, false, false},
}};

const OpInfo& info_of(OpKind kind) {
  for (const auto& info : kOpTable)
    if (info.kind == kind) return info;
  throw Error("op info: unknown kind");
}

}  // namespace

const char* op_name(OpKind kind) { return info_of(kind).name; }

OpKind op_kind_from_name(const std::string& name) {
  for (const auto& info : kOpTable)
    if (name == info.name) return info.kind;
  throw ParseError("unknown operation name: '" + name + "'");
}

int op_arity(OpKind kind) { return info_of(kind).arity; }
int op_param_count(OpKind kind) { return info_of(kind).param_count; }
bool op_is_native(OpKind kind) { return info_of(kind).native; }
bool op_is_two_qubit(OpKind kind) { return info_of(kind).two_qubit; }

std::string to_string(const Operation& op) {
  std::ostringstream oss;
  // max_digits10 keeps the text format lossless for round trips.
  oss << std::setprecision(std::numeric_limits<double>::max_digits10);
  oss << op_name(op.kind);
  if (!op.params.empty()) {
    oss << '(';
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << op.params[i];
    }
    oss << ')';
  }
  for (std::size_t i = 0; i < op.qubits.size(); ++i)
    oss << (i == 0 ? " " : ", ") << 'q' << op.qubits[i];
  return oss.str();
}

}  // namespace hpcqc::circuit
