#include "hpcqc/circuit/parametric.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "hpcqc/common/error.hpp"

namespace hpcqc::circuit {

ParamExpr ParamExpr::literal(double value) {
  ParamExpr expr;
  expr.coefficient_ = value;
  return expr;
}

ParamExpr ParamExpr::symbol(std::string name, double coefficient,
                            double offset) {
  expects(!name.empty(), "ParamExpr::symbol: name cannot be empty");
  ParamExpr expr;
  expr.name_ = std::move(name);
  expr.coefficient_ = coefficient;
  expr.offset_ = offset;
  return expr;
}

double ParamExpr::evaluate(
    const std::map<std::string, double>& binding) const {
  if (is_literal()) return coefficient_;
  const auto it = binding.find(name_);
  if (it == binding.end())
    throw NotFoundError("ParamExpr: unbound parameter '" + name_ + "'");
  return coefficient_ * it->second + offset_;
}

ParametricCircuit::ParametricCircuit(int num_qubits)
    : num_qubits_(num_qubits) {
  expects(num_qubits >= 1, "ParametricCircuit: need at least one qubit");
}

void ParametricCircuit::append(ParametricOperation op) {
  const int arity = op_arity(op.kind);
  if (arity > 0)
    expects(static_cast<int>(op.qubits.size()) == arity,
            "ParametricCircuit::append: wrong operand count");
  expects(static_cast<int>(op.params.size()) == op_param_count(op.kind),
          "ParametricCircuit::append: wrong parameter count");
  for (int q : op.qubits)
    expects(q >= 0 && q < num_qubits_,
            "ParametricCircuit::append: qubit out of range");
  if (op.qubits.size() == 2)
    expects(op.qubits[0] != op.qubits[1],
            "ParametricCircuit::append: two-qubit op needs distinct qubits");
  ops_.push_back(std::move(op));
}

ParametricCircuit& ParametricCircuit::rx(ParamExpr theta, int qubit) {
  append({OpKind::kRx, {qubit}, {std::move(theta)}});
  return *this;
}

ParametricCircuit& ParametricCircuit::ry(ParamExpr theta, int qubit) {
  append({OpKind::kRy, {qubit}, {std::move(theta)}});
  return *this;
}

ParametricCircuit& ParametricCircuit::rz(ParamExpr theta, int qubit) {
  append({OpKind::kRz, {qubit}, {std::move(theta)}});
  return *this;
}

ParametricCircuit& ParametricCircuit::prx(ParamExpr theta, ParamExpr phi,
                                          int qubit) {
  append({OpKind::kPrx, {qubit}, {std::move(theta), std::move(phi)}});
  return *this;
}

ParametricCircuit& ParametricCircuit::cphase(ParamExpr theta, int qubit0,
                                             int qubit1) {
  append({OpKind::kCphase, {qubit0, qubit1}, {std::move(theta)}});
  return *this;
}

ParametricCircuit& ParametricCircuit::h(int qubit) {
  append({OpKind::kH, {qubit}, {}});
  return *this;
}

ParametricCircuit& ParametricCircuit::x(int qubit) {
  append({OpKind::kX, {qubit}, {}});
  return *this;
}

ParametricCircuit& ParametricCircuit::cz(int qubit0, int qubit1) {
  append({OpKind::kCz, {qubit0, qubit1}, {}});
  return *this;
}

ParametricCircuit& ParametricCircuit::cx(int control, int target) {
  append({OpKind::kCx, {control, target}, {}});
  return *this;
}

ParametricCircuit& ParametricCircuit::barrier() {
  append({OpKind::kBarrier, {}, {}});
  return *this;
}

ParametricCircuit& ParametricCircuit::measure(std::vector<int> qubits) {
  std::set<int> seen;
  for (int q : qubits) {
    expects(q >= 0 && q < num_qubits_,
            "ParametricCircuit::measure: qubit out of range");
    expects(seen.insert(q).second,
            "ParametricCircuit::measure: duplicate qubit in measure list");
  }
  append({OpKind::kMeasure, std::move(qubits), {}});
  return *this;
}

std::vector<std::string> ParametricCircuit::parameters() const {
  std::set<std::string> names;
  for (const auto& op : ops_)
    for (const auto& param : op.params)
      if (!param.is_literal()) names.insert(param.name());
  return {names.begin(), names.end()};
}

std::uint64_t ParametricCircuit::structural_hash() const {
  // Symbols hash by their index in the sorted parameter list, so renaming
  // a parameter consistently does not change the structure.
  const auto names = parameters();
  std::map<std::string, std::uint64_t> index;
  for (std::size_t i = 0; i < names.size(); ++i) index[names[i]] = i;

  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;  // FNV prime
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(num_qubits_));
  for (const auto& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind) + 1);
    for (int q : op.qubits) mix(static_cast<std::uint64_t>(q) + 0x9e37);
    for (const auto& param : op.params) {
      if (param.is_literal()) {
        mix(0x11);
        mix_double(param.coefficient());
      } else {
        mix(0x22);
        mix(index.at(param.name()));
        mix_double(param.coefficient());
        mix_double(param.offset());
      }
    }
  }
  return hash;
}

Circuit ParametricCircuit::bind(
    const std::map<std::string, double>& binding) const {
  // Reject unknown binding entries (typo protection).
  const auto known = parameters();
  for (const auto& [name, value] : binding)
    expects(std::binary_search(known.begin(), known.end(), name),
            "ParametricCircuit::bind: unknown parameter '" + name + "'");

  Circuit circuit(num_qubits_);
  for (const auto& op : ops_) {
    Operation concrete;
    concrete.kind = op.kind;
    concrete.qubits = op.qubits;
    for (const auto& param : op.params)
      concrete.params.push_back(param.evaluate(binding));
    circuit.append(std::move(concrete));
  }
  return circuit;
}

}  // namespace hpcqc::circuit
