#pragma once

#include <string>
#include <vector>

namespace hpcqc::circuit {

/// Gate / instruction vocabulary of the circuit IR. The set covers the
/// common frontend gates (what the paper's adapters accept from Qiskit /
/// Cirq / Qrisp-style frontends) plus the device-native operations of the
/// reproduced 20-qubit transmon machine: PRX(θ, φ) and CZ.
enum class OpKind {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSx,
  kRx,
  kRy,
  kRz,
  kU,       // U(theta, phi, lambda)
  kPrx,     // native: phased RX(theta, phi)
  kCz,      // native two-qubit gate
  kCx,
  kSwap,
  kIswap,
  kCphase,  // CPhase(theta)
  kBarrier,
  kMeasure,
};

/// Lower-case mnemonic used by the text format ("prx", "cz", ...).
const char* op_name(OpKind kind);

/// Inverse of op_name; throws ParseError for unknown names.
OpKind op_kind_from_name(const std::string& name);

/// Number of qubit operands (0 means variadic: barrier / measure).
int op_arity(OpKind kind);

/// Number of real parameters the op carries.
int op_param_count(OpKind kind);

/// True for PRX and CZ — the native set executable without decomposition.
bool op_is_native(OpKind kind);

/// True for two-qubit entangling gates.
bool op_is_two_qubit(OpKind kind);

/// One instruction: an op kind, its qubit operands and real parameters.
struct Operation {
  OpKind kind = OpKind::kI;
  std::vector<int> qubits;
  std::vector<double> params;

  bool operator==(const Operation&) const = default;
};

/// Renders an op in the text format, e.g. "prx(1.5708, 0) q0".
std::string to_string(const Operation& op);

}  // namespace hpcqc::circuit
