#pragma once

#include <cstdint>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/qsim/counts.hpp"
#include "hpcqc/qsim/state_vector.hpp"

namespace hpcqc::circuit {

/// Applies one gate operation to a state vector (barriers are no-ops;
/// measurements are rejected — use run_ideal for measured circuits).
void apply_op(qsim::StateVector& state, const Operation& op);

/// Applies every gate of the circuit, skipping barriers and measurements.
/// This yields the ideal (noiseless) final state.
void apply_gates(qsim::StateVector& state, const Circuit& circuit);

/// Ideal execution: evolves |0..0> through the circuit and samples `shots`
/// outcomes of the measured qubits (compacted in ascending qubit order).
qsim::Counts run_ideal(const Circuit& circuit, std::size_t shots, Rng& rng);

/// Exact outcome distribution of the measured qubits (marginalized).
std::vector<double> ideal_distribution(const Circuit& circuit);

/// Compacts a full-register outcome to the bits of `qubits`
/// (qubits[i] becomes bit i of the result).
std::uint64_t compact_outcome(std::uint64_t full, std::span<const int> qubits);

}  // namespace hpcqc::circuit
