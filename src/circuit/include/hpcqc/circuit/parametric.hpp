#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"

namespace hpcqc::circuit {

/// An angle expression: either a literal or `coefficient * symbol + offset`.
/// This is the deferred-binding mechanism variational frontends rely on —
/// the circuit template is compiled/validated once and rebound with new
/// parameter values every optimizer iteration.
class ParamExpr {
public:
  /// A fixed angle.
  static ParamExpr literal(double value);
  /// A named parameter, scaled and shifted: coefficient * symbol + offset.
  static ParamExpr symbol(std::string name, double coefficient = 1.0,
                          double offset = 0.0);

  bool is_literal() const { return name_.empty(); }
  const std::string& name() const { return name_; }
  double coefficient() const { return coefficient_; }
  double offset() const { return offset_; }

  /// Evaluates against a binding; throws NotFoundError for unbound symbols.
  double evaluate(const std::map<std::string, double>& binding) const;

private:
  std::string name_;          // empty = literal
  double coefficient_ = 0.0;  // literal value when name_ is empty
  double offset_ = 0.0;
};

/// One templated instruction.
struct ParametricOperation {
  OpKind kind = OpKind::kI;
  std::vector<int> qubits;
  std::vector<ParamExpr> params;
};

/// A circuit template over named parameters. Structure (op kinds, qubit
/// operands, arity) is validated at append time; angles are bound later.
class ParametricCircuit {
public:
  explicit ParametricCircuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t size() const { return ops_.size(); }
  const std::vector<ParametricOperation>& ops() const { return ops_; }

  void append(ParametricOperation op);

  // Builder conveniences for the common parameterized gates; literal-only
  // gates route through the same append.
  ParametricCircuit& rx(ParamExpr theta, int qubit);
  ParametricCircuit& ry(ParamExpr theta, int qubit);
  ParametricCircuit& rz(ParamExpr theta, int qubit);
  ParametricCircuit& prx(ParamExpr theta, ParamExpr phi, int qubit);
  ParametricCircuit& cphase(ParamExpr theta, int qubit0, int qubit1);
  ParametricCircuit& h(int qubit);
  ParametricCircuit& x(int qubit);
  ParametricCircuit& cz(int qubit0, int qubit1);
  ParametricCircuit& cx(int control, int target);
  ParametricCircuit& barrier();
  ParametricCircuit& measure(std::vector<int> qubits = {});

  /// The distinct symbol names, sorted.
  std::vector<std::string> parameters() const;

  /// Instantiates a concrete circuit. Every symbol must be bound; extra
  /// entries in the binding are rejected to catch typos.
  Circuit bind(const std::map<std::string, double>& binding) const;

  /// FNV-1a hash of the template's structure with parameter *values*
  /// abstracted out: op kinds, operands, literal angle bits, and — for
  /// symbolic angles — the symbol's index in parameters() plus its affine
  /// (coefficient, offset). Two templates hash equal exactly when every
  /// binding produces structurally-identical circuits; the structure-phase
  /// compile cache keys on this.
  std::uint64_t structural_hash() const;

private:
  int num_qubits_;
  std::vector<ParametricOperation> ops_;
};

}  // namespace hpcqc::circuit
