#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hpcqc/circuit/op.hpp"
#include "hpcqc/common/rng.hpp"

namespace hpcqc::circuit {

/// Gate-level quantum circuit: an ordered operation list over a fixed
/// register. This is the exchange format between the frontend adapters,
/// the compiler passes and the QPU executor (the "shared IR" role that QIR
/// plays in the paper's MQSS diagram).
class Circuit {
public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Operation>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Appends a validated operation (qubits in range and distinct — for
  /// two-qubit gates and measure lists alike; parameter arity matches the
  /// op kind).
  void append(Operation op);

  // ---- Builder convenience -------------------------------------------------
  Circuit& i(int q) { return add0(OpKind::kI, q); }
  Circuit& x(int q) { return add0(OpKind::kX, q); }
  Circuit& y(int q) { return add0(OpKind::kY, q); }
  Circuit& z(int q) { return add0(OpKind::kZ, q); }
  Circuit& h(int q) { return add0(OpKind::kH, q); }
  Circuit& s(int q) { return add0(OpKind::kS, q); }
  Circuit& sdg(int q) { return add0(OpKind::kSdg, q); }
  Circuit& t(int q) { return add0(OpKind::kT, q); }
  Circuit& tdg(int q) { return add0(OpKind::kTdg, q); }
  Circuit& sx(int q) { return add0(OpKind::kSx, q); }
  Circuit& rx(double theta, int q);
  Circuit& ry(double theta, int q);
  Circuit& rz(double theta, int q);
  Circuit& u(double theta, double phi, double lambda, int q);
  Circuit& prx(double theta, double phi, int q);
  Circuit& cz(int q0, int q1);
  Circuit& cx(int control, int target);
  Circuit& swap(int q0, int q1);
  Circuit& iswap(int q0, int q1);
  Circuit& cphase(double theta, int q0, int q1);
  Circuit& barrier();
  /// Terminal measurement of the listed qubits (empty = all).
  Circuit& measure(std::vector<int> qubits = {});

  // ---- Queries --------------------------------------------------------------
  /// Count of non-measurement, non-barrier gate operations.
  std::size_t gate_count() const;
  std::size_t two_qubit_gate_count() const;

  /// Circuit depth: longest chain of gates over shared qubits (barriers
  /// synchronize all qubits; measurements are excluded).
  std::size_t depth() const;

  /// Qubits measured by the terminal measure op, in the declared order
  /// (bit i of an outcome corresponds to entry i — compiled circuits rely
  /// on this to keep virtual bit order); all qubits, ascending, if the
  /// circuit measures implicitly (no measure op present).
  std::vector<int> measured_qubits() const;

  /// True when every gate is in the native set (PRX / CZ).
  bool is_native() const;

  /// Returns a copy with all qubit indices remapped through `layout`
  /// (layout[virtual] = physical). The result register has `new_num_qubits`
  /// qubits (>= max mapped index + 1).
  Circuit remapped(std::span<const int> layout, int new_num_qubits) const;

  bool operator==(const Circuit&) const = default;

  /// Structural FNV-1a hash over ops (kind, operands, parameter bits).
  /// Equal circuits hash equal; used as a compile-cache key.
  std::uint64_t structural_hash() const;

  /// Like structural_hash() but with all parameter values abstracted out:
  /// two circuits that differ only in rotation angles hash equal. This is
  /// the shape a parameter rebind preserves, so prepared executables
  /// validate against it before patching angles in place.
  std::uint64_t shape_hash() const;

  /// Overwrites one parameter of one op in place (the parameter-binding
  /// phase of two-phase compilation: angles are patched into a compiled
  /// program without re-running any pass). Throws on out-of-range indices.
  void set_param(std::size_t op_index, std::size_t param_index, double value);

  // ---- Standard preparation circuits ----------------------------------------
  /// GHZ state preparation on `num_qubits` qubits plus terminal measurement —
  /// the standardized live-performance benchmark the paper runs regularly
  /// on the QPU (§3.2). The chain order allows nearest-neighbour CX.
  static Circuit ghz(int num_qubits);

  /// Bell pair on 2 qubits, measured.
  static Circuit bell();

  /// Quantum Fourier transform on `num_qubits` qubits (no measurement).
  static Circuit qft(int num_qubits);

  /// Random circuit of `depth` layers (each layer: PRX on every qubit,
  /// CZ on a random disjoint pairing), useful for property tests.
  static Circuit random(int num_qubits, int depth, Rng& rng);

  /// The adjoint circuit: gates reversed and individually inverted
  /// (global-phase-exact is not guaranteed, unitary action is). Rejects
  /// circuits containing measurements; barriers are preserved.
  Circuit inverse() const;

  /// Unitary folding for zero-noise extrapolation: G -> G (G† G)^k, i.e.
  /// noise scale = 2k + 1. Terminal measurements are re-appended after the
  /// folded body. `scale` must be an odd positive integer.
  Circuit folded(int scale) const;

private:
  Circuit& add0(OpKind kind, int q);

  int num_qubits_;
  std::vector<Operation> ops_;
};

}  // namespace hpcqc::circuit
