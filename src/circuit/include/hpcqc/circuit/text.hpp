#pragma once

#include <string>

#include "hpcqc/circuit/circuit.hpp"

namespace hpcqc::circuit {

/// Serializes a circuit to the hpcqc text format ("qasm-lite"):
///
///   # optional comments
///   qubits 3
///   h q0
///   cx q0, q1
///   prx(1.5708, 0) q2
///   barrier
///   measure q0, q1
///   measure            # no operands = measure all
///
/// This is the wire format of the textual frontend adapter — the stand-in
/// for the high-level-framework circuit exchange the paper's MQSS adapters
/// perform.
std::string to_text(const Circuit& circuit);

/// Parses the text format; throws hpcqc::ParseError with a line number on
/// malformed input.
Circuit from_text(const std::string& text);

}  // namespace hpcqc::circuit
