#include "hpcqc/mqss/client.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

const char* to_string(AccessPath path) {
  switch (path) {
    case AccessPath::kAuto: return "auto";
    case AccessPath::kHpc: return "hpc";
    case AccessPath::kRest: return "rest";
  }
  return "?";
}

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

bool detect_inside_hpc() {
  const char* override_flag = std::getenv("HPCQC_INSIDE_HPC");
  if (override_flag != nullptr)
    return std::strcmp(override_flag, "0") != 0;
  return std::getenv("SLURM_JOB_ID") != nullptr ||
         std::getenv("PBS_JOBID") != nullptr;
}

Client::Client(QpuService& service, SimClock& clock, AccessPath path,
               RestClientParams rest, ResilienceParams resilience)
    : service_(&service),
      clock_(&clock),
      path_(path),
      rest_(rest),
      resilience_(resilience) {
  if (path_ == AccessPath::kAuto)
    path_ = detect_inside_hpc() ? AccessPath::kHpc : AccessPath::kRest;
}

void Client::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_retries_ = m_fallbacks_ = m_breaker_opens_ = nullptr;
    m_turnaround_ = nullptr;
    service_->set_metrics(nullptr);
    return;
  }
  m_retries_ = &registry->counter("client.retries");
  m_fallbacks_ = &registry->counter("client.fallbacks");
  m_breaker_opens_ = &registry->counter("client.breaker_opens");
  m_turnaround_ = &registry->histogram("client.turnaround_s");
  service_->set_metrics(registry);
}

obs::TraceContext Client::submit_context() const {
  return tracer_ != nullptr && submit_span_ != obs::kNoSpan
             ? tracer_->context(submit_span_)
             : obs::TraceContext{};
}

BreakerState Client::breaker_state() const {
  if (!breaker_open_) return BreakerState::kClosed;
  return clock_->now() >= breaker_open_until_ ? BreakerState::kHalfOpen
                                              : BreakerState::kOpen;
}

void Client::note_failure() {
  ++retries_;
  if (m_retries_ != nullptr) m_retries_->inc();
  ++consecutive_failures_;
  if (consecutive_failures_ >= resilience_.breaker_threshold &&
      !breaker_open_) {
    breaker_open_ = true;
    ++breaker_opens_;
    if (m_breaker_opens_ != nullptr) m_breaker_opens_->inc();
    if (tracer_ != nullptr && submit_span_ != obs::kNoSpan)
      tracer_->add_event(submit_span_, clock_->now(), "breaker-opened",
                         std::to_string(consecutive_failures_) +
                             " consecutive failures");
  }
  if (breaker_open_)
    breaker_open_until_ = clock_->now() + resilience_.breaker_cooldown;
}

RunResult Client::emulator_fallback(const circuit::Circuit& circuit,
                                    std::size_t shots) {
  if (!resilience_.emulator_fallback)
    throw TransientError(
        "Client: QPU unavailable and emulator fallback disabled",
        ErrorCode::kDeviceUnavailable);
  ++fallbacks_;
  if (m_fallbacks_ != nullptr) m_fallbacks_->inc();
  if (tracer_ != nullptr && submit_span_ != obs::kNoSpan)
    tracer_->add_event(submit_span_, clock_->now(), "fallback-emulated",
                       "breaker " + std::string(to_string(breaker_state())));
  return service_->run_emulated(circuit, shots, submit_context());
}

RunResult Client::execute_resilient(const circuit::Circuit& circuit,
                                    std::size_t shots) {
  // Open breaker, cooldown not yet over: don't touch the machine at all —
  // it is mid-recovery and the paper's ops story (§3.5) is explicit that
  // recovery is staged and slow. Serve the emulator instead.
  if (breaker_state() == BreakerState::kOpen)
    return emulator_fallback(circuit, shots);

  // Half-open probes get exactly one attempt; a closed breaker spends the
  // full retry budget.
  const bool probing = breaker_state() == BreakerState::kHalfOpen;
  const std::size_t attempts =
      probing ? 1 : std::max<std::size_t>(1, resilience_.max_attempts);
  Seconds backoff = resilience_.initial_backoff;

  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    try {
      RunResult result = service_->run(circuit, shots, submit_context());
      consecutive_failures_ = 0;
      breaker_open_ = false;  // a success closes the breaker
      return result;
    } catch (const Error& error) {
      if (!error.transient()) throw;  // permanent: retrying is wasted time
      // The failed attempt burned its submission timeout waiting on a
      // machine that never answered.
      clock_->advance(resilience_.submit_timeout);
      note_failure();
      if (tracer_ != nullptr && submit_span_ != obs::kNoSpan)
        tracer_->add_event(submit_span_, clock_->now(),
                           "attempt-" + std::to_string(attempt + 1) +
                               "-failed",
                           error.what());
      if (breaker_open_) break;  // threshold crossed mid-loop
      if (attempt + 1 < attempts) {
        clock_->advance(backoff);
        backoff *= resilience_.backoff_factor;
      }
    }
  }
  return emulator_fallback(circuit, shots);
}

JobTicket Client::submit(const circuit::Circuit& circuit, std::size_t shots,
                         std::string name) {
  const int id = next_id_++;
  PendingJob job;
  job.name = std::move(name);
  job.submitted_at = clock_->now();

  if (tracer_ != nullptr) {
    submit_span_ =
        tracer_->begin_span("client.submit:" + job.name, clock_->now());
    tracer_->set_attribute(submit_span_, "path", to_string(path_));
    tracer_->set_attribute(submit_span_, "shots", std::to_string(shots));
  }

  if (path_ == AccessPath::kHpc) {
    // Tightly-coupled path: the run happens synchronously inside the
    // allocation; only the execution time itself elapses.
    job.result = execute_resilient(circuit, shots);
    clock_->advance(job.result.qpu_time);
    job.ready_at = clock_->now();
  } else {
    // REST path: the request travels out, waits in the shared remote queue,
    // executes, and the result becomes available for download.
    job.result = execute_resilient(circuit, shots);
    job.ready_at = clock_->now() + rest_.request_latency + rest_.queue_delay +
                   job.result.qpu_time;
  }
  if (tracer_ != nullptr && submit_span_ != obs::kNoSpan) {
    if (job.result.emulated)
      tracer_->set_attribute(submit_span_, "emulated", "true");
    tracer_->end_span(submit_span_, clock_->now());
    submit_span_ = obs::kNoSpan;
  }
  if (m_turnaround_ != nullptr)
    m_turnaround_->observe(clock_->now() - job.submitted_at);
  jobs_.emplace(id, std::move(job));
  return {id, path_};
}

std::vector<JobTicket> Client::submit_batch(
    const std::vector<circuit::Circuit>& circuits, std::size_t shots,
    std::string name) {
  expects(!circuits.empty(), "Client::submit_batch: empty batch");
  std::vector<JobTicket> tickets;
  tickets.reserve(circuits.size());

  if (path_ == AccessPath::kHpc) {
    for (std::size_t i = 0; i < circuits.size(); ++i)
      tickets.push_back(
          submit(circuits[i], shots, name + "-" + std::to_string(i)));
    return tickets;
  }

  // REST: one request carries the whole batch; jobs run back to back on
  // the shared QPU, so completion times accumulate.
  Seconds ready_at = clock_->now() + rest_.request_latency + rest_.queue_delay;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const int id = next_id_++;
    PendingJob job;
    job.name = name + "-" + std::to_string(i);
    job.submitted_at = clock_->now();
    job.result = execute_resilient(circuits[i], shots);
    ready_at = std::max(ready_at, clock_->now()) + job.result.qpu_time;
    job.ready_at = ready_at;
    jobs_.emplace(id, std::move(job));
    tickets.push_back({id, path_});
  }
  return tickets;
}

std::vector<ClientResult> Client::wait_all(
    const std::vector<JobTicket>& tickets) {
  std::vector<ClientResult> results;
  results.reserve(tickets.size());
  for (const auto& ticket : tickets) results.push_back(wait(ticket));
  return results;
}

bool Client::ready(const JobTicket& ticket) const {
  const auto it = jobs_.find(ticket.id);
  if (it == jobs_.end())
    throw NotFoundError("Client: unknown job id " + std::to_string(ticket.id));
  return clock_->now() >= it->second.ready_at;
}

ClientResult Client::wait(const JobTicket& ticket) {
  const auto it = jobs_.find(ticket.id);
  if (it == jobs_.end())
    throw NotFoundError("Client: unknown job id " + std::to_string(ticket.id));
  PendingJob& job = it->second;

  if (path_ == AccessPath::kRest) {
    // Poll the queue until the result materializes, then download it.
    while (clock_->now() < job.ready_at) {
      clock_->advance(std::min(rest_.poll_interval,
                               job.ready_at - clock_->now()));
      clock_->advance(rest_.request_latency);
      ++job.polls;
    }
    clock_->advance(rest_.request_latency);  // result download
  }

  ClientResult result;
  result.run = job.result;
  result.path = path_;
  result.turnaround = clock_->now() - job.submitted_at;
  result.polls = job.polls;
  return result;
}

}  // namespace hpcqc::mqss
