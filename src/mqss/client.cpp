#include "hpcqc/mqss/client.hpp"

#include <cstdlib>
#include <cstring>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

const char* to_string(AccessPath path) {
  switch (path) {
    case AccessPath::kAuto: return "auto";
    case AccessPath::kHpc: return "hpc";
    case AccessPath::kRest: return "rest";
  }
  return "?";
}

bool detect_inside_hpc() {
  const char* override_flag = std::getenv("HPCQC_INSIDE_HPC");
  if (override_flag != nullptr)
    return std::strcmp(override_flag, "0") != 0;
  return std::getenv("SLURM_JOB_ID") != nullptr ||
         std::getenv("PBS_JOBID") != nullptr;
}

Client::Client(QpuService& service, SimClock& clock, AccessPath path,
               RestClientParams rest)
    : service_(&service), clock_(&clock), path_(path), rest_(rest) {
  if (path_ == AccessPath::kAuto)
    path_ = detect_inside_hpc() ? AccessPath::kHpc : AccessPath::kRest;
}

JobTicket Client::submit(const circuit::Circuit& circuit, std::size_t shots,
                         std::string name) {
  const int id = next_id_++;
  PendingJob job;
  job.name = std::move(name);
  job.submitted_at = clock_->now();

  if (path_ == AccessPath::kHpc) {
    // Tightly-coupled path: the run happens synchronously inside the
    // allocation; only the execution time itself elapses.
    job.result = service_->run(circuit, shots);
    clock_->advance(job.result.qpu_time);
    job.ready_at = clock_->now();
  } else {
    // REST path: the request travels out, waits in the shared remote queue,
    // executes, and the result becomes available for download.
    job.result = service_->run(circuit, shots);
    job.ready_at = clock_->now() + rest_.request_latency + rest_.queue_delay +
                   job.result.qpu_time;
  }
  jobs_.emplace(id, std::move(job));
  return {id, path_};
}

std::vector<JobTicket> Client::submit_batch(
    const std::vector<circuit::Circuit>& circuits, std::size_t shots,
    std::string name) {
  expects(!circuits.empty(), "Client::submit_batch: empty batch");
  std::vector<JobTicket> tickets;
  tickets.reserve(circuits.size());

  if (path_ == AccessPath::kHpc) {
    for (std::size_t i = 0; i < circuits.size(); ++i)
      tickets.push_back(
          submit(circuits[i], shots, name + "-" + std::to_string(i)));
    return tickets;
  }

  // REST: one request carries the whole batch; jobs run back to back on
  // the shared QPU, so completion times accumulate.
  Seconds ready_at = clock_->now() + rest_.request_latency + rest_.queue_delay;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const int id = next_id_++;
    PendingJob job;
    job.name = name + "-" + std::to_string(i);
    job.submitted_at = clock_->now();
    job.result = service_->run(circuits[i], shots);
    ready_at += job.result.qpu_time;
    job.ready_at = ready_at;
    jobs_.emplace(id, std::move(job));
    tickets.push_back({id, path_});
  }
  return tickets;
}

std::vector<ClientResult> Client::wait_all(
    const std::vector<JobTicket>& tickets) {
  std::vector<ClientResult> results;
  results.reserve(tickets.size());
  for (const auto& ticket : tickets) results.push_back(wait(ticket));
  return results;
}

bool Client::ready(const JobTicket& ticket) const {
  const auto it = jobs_.find(ticket.id);
  if (it == jobs_.end())
    throw NotFoundError("Client: unknown job id " + std::to_string(ticket.id));
  return clock_->now() >= it->second.ready_at;
}

ClientResult Client::wait(const JobTicket& ticket) {
  const auto it = jobs_.find(ticket.id);
  if (it == jobs_.end())
    throw NotFoundError("Client: unknown job id " + std::to_string(ticket.id));
  PendingJob& job = it->second;

  if (path_ == AccessPath::kRest) {
    // Poll the queue until the result materializes, then download it.
    while (clock_->now() < job.ready_at) {
      clock_->advance(std::min(rest_.poll_interval,
                               job.ready_at - clock_->now()));
      clock_->advance(rest_.request_latency);
      ++job.polls;
    }
    clock_->advance(rest_.request_latency);  // result download
  }

  ClientResult result;
  result.run = job.result;
  result.path = path_;
  result.turnaround = clock_->now() - job.submitted_at;
  result.polls = job.polls;
  return result;
}

}  // namespace hpcqc::mqss
