#include "hpcqc/mqss/adapters.hpp"

#include "hpcqc/circuit/text.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

QpiProgram::QpiProgram(int num_qubits) : circuit_(num_qubits) {}

QpiProgram& QpiProgram::op(const std::string& name, std::vector<int> qubits,
                           std::vector<double> params) {
  circuit_.append({circuit::op_kind_from_name(name), std::move(qubits),
                   std::move(params)});
  return *this;
}

QpiProgram& QpiProgram::measure_all() {
  circuit_.measure();
  return *this;
}

AdapterRegistry AdapterRegistry::with_builtins() {
  AdapterRegistry registry;
  registry.register_adapter("text", [](const std::string& source) {
    return circuit::from_text(source);
  });
  return registry;
}

void AdapterRegistry::register_adapter(const std::string& name, AdapterFn fn) {
  expects(!name.empty(), "AdapterRegistry: adapter needs a name");
  expects(fn != nullptr, "AdapterRegistry: null adapter function");
  adapters_[name] = std::move(fn);
}

bool AdapterRegistry::has_adapter(const std::string& name) const {
  return adapters_.contains(name);
}

std::vector<std::string> AdapterRegistry::adapter_names() const {
  std::vector<std::string> names;
  for (const auto& [name, fn] : adapters_) names.push_back(name);
  return names;
}

circuit::Circuit AdapterRegistry::translate(const std::string& adapter,
                                            const std::string& source) const {
  const auto it = adapters_.find(adapter);
  if (it == adapters_.end())
    throw NotFoundError("AdapterRegistry: no adapter named '" + adapter + "'");
  return it->second(source);
}

}  // namespace hpcqc::mqss
