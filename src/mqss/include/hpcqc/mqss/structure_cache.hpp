#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "hpcqc/mqss/template.hpp"

namespace hpcqc::mqss {

/// Point-in-time statistics of a StructureCache. Hits and misses count
/// get_or_compile() calls (a get that joins an in-flight compile, or that
/// first touches a prefetched entry, is a miss: the work was paid for on
/// its behalf this epoch). Prefetches never count — whether a background
/// compile finishes before the foreground get must not change the stats.
struct StructureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Misses that joined a compile already in flight under the same key
  /// instead of starting their own (single-flight dedup).
  std::uint64_t single_flight_joins = 0;
  std::size_t size = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe, LRU-evicting, content-addressed store for structure-phase
/// compilation artifacts. Keys are the caller's content hash (circuit
/// structure x calibration epoch x health-mask fingerprint x compiler
/// options — see QpuService); values are immutable shared templates.
///
/// Single-flight: N concurrent get_or_compile() calls under one key run the
/// factory exactly once — the first caller compiles, the rest block on its
/// result. A factory exception propagates to every waiter of that flight
/// and caches nothing. prefetch() runs the same protocol from a background
/// worker without blocking stats or LRU order on worker timing.
class StructureCache {
public:
  explicit StructureCache(std::size_t capacity = 256);

  using Value = std::shared_ptr<const CompiledTemplate>;
  using Factory = std::function<Value()>;

  struct Lookup {
    Value value;
    bool hit = false;
  };

  /// Returns the cached template for `key`, compiling via `factory` on a
  /// miss. Blocks when another thread is already compiling `key`.
  Lookup get_or_compile(std::uint64_t key, const Factory& factory);

  /// Background fill: compiles `key` via `factory` unless it is already
  /// cached or in flight. Exceptions are swallowed (the foreground get
  /// will recompile and surface them on its own thread). The first
  /// get_or_compile() to touch a prefetched entry still counts a miss, so
  /// hit/miss statistics are identical at any worker count.
  void prefetch(std::uint64_t key, const Factory& factory);

  /// Capacity must be positive; shrinking evicts least-recently-used
  /// entries immediately.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void clear();
  StructureCacheStats stats() const;

private:
  struct Entry {
    Value value;
    /// Filled by prefetch and not yet claimed by a get (see prefetch()).
    bool prefetched = false;
    std::list<std::uint64_t>::iterator lru;
  };

  /// Evicts past capacity; requires the lock.
  void evict_excess_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Most-recently-used at the front.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, std::shared_future<Value>> inflight_;
  StructureCacheStats stats_;
};

}  // namespace hpcqc::mqss
