#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hpcqc/circuit/parametric.hpp"
#include "hpcqc/mqss/compiler.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::mqss {

/// One patchable angle in a compiled template: parameter `param_index` of
/// op `op_index` in the native circuit evaluates to
///   constant + sum over terms of coefficient * theta[parameter_index]
/// where `parameter_index` indexes CompiledTemplate::parameters. Virtual-Z
/// frame tracking makes native PRX phases affine combinations of *several*
/// source angles, so a slot carries a full linear form, not one symbol.
struct ParamSlot {
  std::uint32_t op_index = 0;
  std::uint32_t param_index = 0;
  double constant = 0.0;
  std::vector<std::pair<std::uint32_t, double>> terms;
};

/// The structure-phase artifact of two-phase compilation: a fully placed,
/// routed, decomposed and peephole-optimized native program whose
/// symbol-dependent angles are recorded as affine slots instead of values.
/// The parameter-binding phase (bind()) patches a fresh angle vector into a
/// copy of `base` without re-running any pass — the per-iteration cost of a
/// variational tight loop drops to a handful of multiply-adds.
///
/// Equivalence contract: for every binding theta,
///   bind(theta).native_circuit  ~  compile(source.bind(theta))
/// up to verify::FrameTolerance::kOutputZFrame. The programs need not be
/// structurally identical — a cold compile may drop rotations that happen
/// to be identities at one particular theta, while the template keeps every
/// symbol-dependent rotation so it stays correct for all bindings.
struct CompiledTemplate {
  /// Native program with every slot angle at its affine constant (i.e. the
  /// all-zeros binding). Never execute `base` directly for a parametric
  /// template — bind() first.
  CompiledProgram base;
  /// Canonical symbol order (ParametricCircuit::parameters(): sorted).
  std::vector<std::string> parameters;
  std::vector<ParamSlot> slots;

  bool is_parametric() const { return !parameters.empty(); }

  /// The parameter-binding phase: validates that `binding` covers exactly
  /// `parameters` (NotFoundError on a missing symbol, PreconditionError on
  /// an unknown extra entry), then patches every slot into a copy of the
  /// cached program. Runs no compiler pass.
  CompiledProgram bind(const std::map<std::string, double>& binding) const;
};

/// The structure phase: runs placement and routing on the parameter-free
/// skeleton (neither pass reads angles), then mirrors native decomposition
/// and the peephole through affine angle arithmetic, so every symbol's
/// contribution to every native angle is tracked exactly. Conservative by
/// construction: a rotation whose angle depends on a symbol is never
/// dropped or fused away unless the dependence provably cancels.
CompiledTemplate compile_template(const circuit::ParametricCircuit& circuit,
                                  const qdmi::DeviceInterface& device,
                                  const CompilerOptions& options = {});

/// Wraps an already-compiled concrete program as a zero-slot template, so
/// plain circuits and parametric templates share one cache value type.
CompiledTemplate as_template(CompiledProgram program);

}  // namespace hpcqc::mqss
