#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"

namespace hpcqc::mqss {

/// The QPI-style native programmatic frontend: a thin, name-driven builder
/// so that host applications (or FFI layers) can construct circuits without
/// touching the IR types — the role of the paper's "native C-based QPI"
/// adapter. Operations are validated as they are added.
class QpiProgram {
public:
  explicit QpiProgram(int num_qubits);

  /// Appends an operation by mnemonic ("h", "cx", "prx", ...).
  QpiProgram& op(const std::string& name, std::vector<int> qubits,
                 std::vector<double> params = {});

  /// Terminal measurement of all qubits.
  QpiProgram& measure_all();

  int num_qubits() const { return circuit_.num_qubits(); }
  std::size_t size() const { return circuit_.size(); }

  /// The built core-dialect circuit.
  const circuit::Circuit& circuit() const { return circuit_; }

private:
  circuit::Circuit circuit_;
};

/// Source-to-circuit translation function of one frontend.
using AdapterFn = std::function<circuit::Circuit(const std::string& source)>;

/// Frontend adapter registry: "modular Adapters for frameworks such as
/// CUDAQ, Qiskit, Pennylane, and its own QPI" — here, named translation
/// entry points into the shared core dialect. Ships with the built-in
/// "text" adapter (the hpcqc text format).
class AdapterRegistry {
public:
  /// A registry pre-loaded with the built-in adapters.
  static AdapterRegistry with_builtins();

  void register_adapter(const std::string& name, AdapterFn fn);
  bool has_adapter(const std::string& name) const;
  std::vector<std::string> adapter_names() const;

  /// Translates `source` with the named adapter; throws NotFoundError for
  /// unknown adapters and ParseError for bad source.
  circuit::Circuit translate(const std::string& adapter,
                             const std::string& source) const;

private:
  std::map<std::string, AdapterFn> adapters_;
};

}  // namespace hpcqc::mqss
