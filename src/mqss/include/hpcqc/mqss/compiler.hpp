#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::mqss {

/// Dialect levels of the progressive-lowering pipeline, mirroring the
/// MLIR-based MQSS compiler: frontend circuits arrive in the *core* dialect
/// (any gate in the vocabulary, virtual qubits), and lowering produces the
/// *native* dialect (PRX/CZ on physical qubits, topology-legal).
enum class Dialect { kCore, kPlaced, kRouted, kNative };

const char* to_string(Dialect dialect);

/// How the JIT chooses physical qubits.
enum class PlacementStrategy {
  /// Identity layout: virtual qubit i -> physical qubit i. What a static
  /// (calibration-unaware) compiler does.
  kStatic,
  /// Greedy fidelity-aware subgraph growth over live QDMI metrics — the
  /// "JIT adaptation of compilation" enabled by QDMI; per [26], just-in-time
  /// transpilation against live calibration data reduces noise.
  kFidelityAware,
};

const char* to_string(PlacementStrategy strategy);

struct CompilerOptions {
  PlacementStrategy placement = PlacementStrategy::kFidelityAware;
  bool optimize = true;
  /// Weight SWAP routes by live CZ fidelities (-log F edge costs) instead
  /// of plain hop count — the routing half of QDMI-driven JIT adaptation.
  bool fidelity_aware_routing = true;
};

/// A compilation unit moving through the pass pipeline.
struct CompilationUnit {
  circuit::Circuit circuit{1};
  Dialect dialect = Dialect::kCore;
  /// layout[virtual] = physical; identity until placement runs. After
  /// routing the entry reflects where each virtual qubit *started*.
  std::vector<int> layout;
  /// Names of passes applied, in order (the lowering trace).
  std::vector<std::string> trace;
  /// Gate count after each pass in `trace` (same indexing) — what the
  /// per-pass tracing spans report.
  std::vector<std::size_t> trace_gate_counts;
  /// SWAPs inserted by routing (before native decomposition).
  std::size_t swaps_inserted = 0;
};

/// Final artifact: a native, topology-legal circuit over the full device
/// register plus bookkeeping for interpreting measured bits.
struct CompiledProgram {
  circuit::Circuit native_circuit{1};
  std::vector<int> initial_layout;
  std::vector<std::string> pass_trace;
  /// Gate count after each pass in `pass_trace` (same indexing).
  std::vector<std::size_t> pass_gate_counts;
  std::size_t native_gate_count = 0;
  std::size_t swap_count = 0;

  /// Human-readable compilation report — the "greater transparency in the
  /// quantum circuit compilation process" §4's users asked for: pass
  /// pipeline, chosen layout, gate/SWAP statistics and the native program.
  std::string describe() const;
};

/// One compiler pass.
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual void run(CompilationUnit& unit,
                   const qdmi::DeviceInterface& device) const = 0;
};

/// Orders and runs passes, recording the trace.
class PassManager {
public:
  void add(std::unique_ptr<Pass> pass);
  std::size_t pass_count() const { return passes_.size(); }
  void run(CompilationUnit& unit, const qdmi::DeviceInterface& device) const;

private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Builds the standard pipeline for the given options:
/// placement -> routing -> native decomposition [-> peephole optimization].
PassManager standard_pipeline(const CompilerOptions& options);

/// Convenience front door: compile a frontend circuit for a device using
/// live QDMI data.
CompiledProgram compile(const circuit::Circuit& circuit,
                        const qdmi::DeviceInterface& device,
                        const CompilerOptions& options = {});

// ---- Individual passes (exposed for testing and ablation) -----------------

/// Chooses the initial virtual->physical layout and rewrites the circuit
/// onto the device register.
class PlacementPass final : public Pass {
public:
  explicit PlacementPass(PlacementStrategy strategy) : strategy_(strategy) {}
  std::string name() const override;
  void run(CompilationUnit& unit,
           const qdmi::DeviceInterface& device) const override;

private:
  PlacementStrategy strategy_;
};

/// Inserts SWAPs so every two-qubit gate acts on coupled qubits. Greedy
/// shortest-path routing; with `fidelity_aware` the path metric is
/// -log(CZ fidelity) per coupler (plus a small hop penalty) queried live
/// through QDMI, so SWAP chains avoid degraded couplers.
class RoutingPass final : public Pass {
public:
  explicit RoutingPass(bool fidelity_aware = false)
      : fidelity_aware_(fidelity_aware) {}
  std::string name() const override {
    return fidelity_aware_ ? "route-fidelity-aware" : "route";
  }
  void run(CompilationUnit& unit,
           const qdmi::DeviceInterface& device) const override;

private:
  bool fidelity_aware_;
};

/// Lowers every gate to the native set {PRX, CZ} using virtual-Z phase
/// tracking (RZ costs nothing on this hardware: it is a frame update).
class NativeDecompositionPass final : public Pass {
public:
  std::string name() const override { return "decompose-native"; }
  void run(CompilationUnit& unit,
           const qdmi::DeviceInterface& device) const override;
};

/// Peephole cleanup on the native dialect: drops identity rotations, fuses
/// same-axis PRX chains, cancels adjacent CZ pairs.
class PeepholePass final : public Pass {
public:
  std::string name() const override { return "peephole"; }
  void run(CompilationUnit& unit,
           const qdmi::DeviceInterface& device) const override;
};

/// Greedy fidelity-aware layout over live metrics (exposed for tests).
/// Restricted to the largest healthy connected component when the device
/// reports a degraded capability set.
std::vector<int> fidelity_aware_layout(int virtual_qubits,
                                       const qdmi::DeviceInterface& device);

/// The serving set under degraded-mode operation: the largest connected
/// component of the subgraph of kOperational qubits joined by kOperational
/// couplers, sorted ascending. Equals [0, num_qubits) on a healthy device.
/// Placement confines layouts to this set and routing never leaves it, so a
/// partially-failed device keeps accepting every job that fits it.
std::vector<int> usable_qubits(const qdmi::DeviceInterface& device);

}  // namespace hpcqc::mqss
