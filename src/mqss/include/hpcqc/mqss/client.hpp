#pragma once

#include <map>
#include <optional>
#include <string>

#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/mqss/service.hpp"

namespace hpcqc::mqss {

/// How a job reaches the QPU (§2.6's "two fundamentally distinct
/// user-interaction modes").
enum class AccessPath {
  kAuto,  ///< detect from the execution environment
  kHpc,   ///< in-HPC accelerator-style, tightly-coupled low-latency path
  kRest,  ///< remote asynchronous REST-queue path
};

const char* to_string(AccessPath path);

/// Environment detection: inside an HPC allocation when a batch-system
/// job variable (SLURM_JOB_ID / PBS_JOBID) or the explicit override
/// HPCQC_INSIDE_HPC=1 is present.
bool detect_inside_hpc();

/// Handle of a submitted job.
struct JobTicket {
  int id = 0;
  AccessPath path = AccessPath::kHpc;
};

/// Completed-job view returned by Client::wait.
struct ClientResult {
  RunResult run;
  AccessPath path = AccessPath::kHpc;
  Seconds turnaround = 0.0;  ///< submit -> result, in simulated time
  std::size_t polls = 0;     ///< REST poll count (0 on the HPC path)
};

/// Latency model of the REST access path.
struct RestClientParams {
  Seconds request_latency = milliseconds(60.0);  ///< one HTTP round trip
  Seconds queue_delay = seconds(5.0);            ///< shared-queue wait
  Seconds poll_interval = seconds(2.0);
};

/// The MQSS client of Fig. 2: "without requiring any code modifications
/// from the user, the client automatically detects whether a job originates
/// inside or outside an HPC environment and routes it accordingly" — to the
/// HPC backend (synchronous, microsecond-scale overhead) or the REST
/// backend (asynchronous submission, polling, queueing latency).
class Client {
public:
  /// `service` and `clock` must outlive the client. `path` kAuto engages
  /// environment detection at construction.
  Client(QpuService& service, SimClock& clock,
         AccessPath path = AccessPath::kAuto, RestClientParams rest = {});

  /// The path this client resolved to.
  AccessPath resolved_path() const { return path_; }

  /// Submits a frontend circuit. On the HPC path execution is immediate
  /// (the call returns after the tightly-coupled run); on the REST path
  /// the job enters the remote queue and completes asynchronously.
  JobTicket submit(const circuit::Circuit& circuit, std::size_t shots,
                   std::string name = "job");

  /// Batch submission — the feature the early users asked for in §4
  /// ("users requested features such as batch-job support"). On the REST
  /// path the whole batch travels in one request, so the per-job round-trip
  /// latency is amortized; jobs still execute sequentially on the QPU.
  std::vector<JobTicket> submit_batch(
      const std::vector<circuit::Circuit>& circuits, std::size_t shots,
      std::string name = "batch");

  /// Waits for every ticket, in order.
  std::vector<ClientResult> wait_all(const std::vector<JobTicket>& tickets);

  /// True when the job's result is available at the current clock time.
  bool ready(const JobTicket& ticket) const;

  /// Blocks (advancing the simulated clock through REST polling) until the
  /// job completes, then returns the result.
  ClientResult wait(const JobTicket& ticket);

private:
  struct PendingJob {
    std::string name;
    Seconds submitted_at = 0.0;
    Seconds ready_at = 0.0;
    RunResult result;
    std::size_t polls = 0;
  };

  QpuService* service_;
  SimClock* clock_;
  AccessPath path_;
  RestClientParams rest_;
  int next_id_ = 1;
  std::map<int, PendingJob> jobs_;
};

}  // namespace hpcqc::mqss
