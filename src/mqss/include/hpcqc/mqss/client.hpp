#pragma once

#include <map>
#include <optional>
#include <string>

#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/mqss/service.hpp"

namespace hpcqc::mqss {

/// How a job reaches the QPU (§2.6's "two fundamentally distinct
/// user-interaction modes").
enum class AccessPath {
  kAuto,  ///< detect from the execution environment
  kHpc,   ///< in-HPC accelerator-style, tightly-coupled low-latency path
  kRest,  ///< remote asynchronous REST-queue path
};

const char* to_string(AccessPath path);

/// Circuit-breaker state of a client's QPU path.
enum class BreakerState {
  kClosed,    ///< QPU path healthy; submissions go to the machine
  kOpen,      ///< too many consecutive failures; all traffic to the emulator
  kHalfOpen,  ///< cooldown elapsed; the next submission probes the QPU once
};

const char* to_string(BreakerState state);

/// Environment detection: inside an HPC allocation when a batch-system
/// job variable (SLURM_JOB_ID / PBS_JOBID) or the explicit override
/// HPCQC_INSIDE_HPC=1 is present.
bool detect_inside_hpc();

/// Handle of a submitted job.
struct JobTicket {
  int id = 0;
  AccessPath path = AccessPath::kHpc;
};

/// Completed-job view returned by Client::wait.
struct ClientResult {
  RunResult run;
  AccessPath path = AccessPath::kHpc;
  Seconds turnaround = 0.0;  ///< submit -> result, in simulated time
  std::size_t polls = 0;     ///< REST poll count (0 on the HPC path)
};

/// Latency model of the REST access path.
struct RestClientParams {
  Seconds request_latency = milliseconds(60.0);  ///< one HTTP round trip
  Seconds queue_delay = seconds(5.0);            ///< shared-queue wait
  Seconds poll_interval = seconds(2.0);
};

/// Client-side resilience: per-submission timeout + retry with exponential
/// backoff over transient failures, and a circuit breaker that degrades to
/// the digital-twin emulator path (results tagged `emulated`) while the
/// QPU is down, instead of hammering a machine that is mid-recovery.
struct ResilienceParams {
  std::size_t max_attempts = 3;  ///< per submission, including the first
  Seconds submit_timeout = seconds(10.0);  ///< burned by each failed attempt
  Seconds initial_backoff = seconds(1.0);
  double backoff_factor = 2.0;
  /// Consecutive underlying failures that open the breaker.
  std::size_t breaker_threshold = 3;
  /// Open-state hold before a half-open probe is allowed.
  Seconds breaker_cooldown = minutes(10.0);
  /// Degrade to run_emulated when attempts are exhausted or the breaker is
  /// open. When false, exhausted submissions rethrow the TransientError.
  bool emulator_fallback = true;
};

/// The MQSS client of Fig. 2: "without requiring any code modifications
/// from the user, the client automatically detects whether a job originates
/// inside or outside an HPC environment and routes it accordingly" — to the
/// HPC backend (synchronous, microsecond-scale overhead) or the REST
/// backend (asynchronous submission, polling, queueing latency).
class Client {
public:
  /// `service` and `clock` must outlive the client. `path` kAuto engages
  /// environment detection at construction.
  Client(QpuService& service, SimClock& clock,
         AccessPath path = AccessPath::kAuto, RestClientParams rest = {},
         ResilienceParams resilience = {});

  /// The path this client resolved to.
  AccessPath resolved_path() const { return path_; }

  /// Submits a frontend circuit. On the HPC path execution is immediate
  /// (the call returns after the tightly-coupled run); on the REST path
  /// the job enters the remote queue and completes asynchronously.
  /// Transient QPU failures are retried with backoff; when the circuit
  /// breaker is open (or attempts run out) the submission transparently
  /// falls back to the emulator and the result is tagged `emulated`.
  JobTicket submit(const circuit::Circuit& circuit, std::size_t shots,
                   std::string name = "job");

  /// Batch submission — the feature the early users asked for in §4
  /// ("users requested features such as batch-job support"). On the REST
  /// path the whole batch travels in one request, so the per-job round-trip
  /// latency is amortized; jobs still execute sequentially on the QPU.
  std::vector<JobTicket> submit_batch(
      const std::vector<circuit::Circuit>& circuits, std::size_t shots,
      std::string name = "batch");

  /// Waits for every ticket, in order.
  std::vector<ClientResult> wait_all(const std::vector<JobTicket>& tickets);

  /// True when the job's result is available at the current clock time.
  bool ready(const JobTicket& ticket) const;

  /// Blocks (advancing the simulated clock through REST polling) until the
  /// job completes, then returns the result.
  ClientResult wait(const JobTicket& ticket);

  /// Breaker state at the current clock time.
  BreakerState breaker_state() const;
  const ResilienceParams& resilience() const { return resilience_; }
  // Thin shims over the client's registry metrics (kept for pre-registry
  // callers; the counters below mirror into the registry when attached).
  std::size_t retries() const { return retries_; }          ///< failed attempts
  std::size_t fallbacks() const { return fallbacks_; }      ///< emulated runs
  std::size_t breaker_opens() const { return breaker_opens_; }

  /// Attaches a tracer: each submission becomes a client.submit root span
  /// (timestamped on the client's SimClock) whose context is threaded into
  /// the service, so the whole path shares one trace. nullptr disables.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Mirrors client counters (client.retries / fallbacks / breaker_opens)
  /// and the client.turnaround_s histogram into `registry`; also forwards
  /// the registry to the service. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

private:
  struct PendingJob {
    std::string name;
    Seconds submitted_at = 0.0;
    Seconds ready_at = 0.0;
    RunResult result;
    std::size_t polls = 0;
  };

  RunResult execute_resilient(const circuit::Circuit& circuit,
                              std::size_t shots);
  obs::TraceContext submit_context() const;
  RunResult emulator_fallback(const circuit::Circuit& circuit,
                              std::size_t shots);
  void note_failure();

  QpuService* service_;
  SimClock* clock_;
  AccessPath path_;
  RestClientParams rest_;
  ResilienceParams resilience_;
  int next_id_ = 1;
  std::map<int, PendingJob> jobs_;

  bool breaker_open_ = false;
  Seconds breaker_open_until_ = 0.0;
  std::size_t consecutive_failures_ = 0;
  std::size_t retries_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t breaker_opens_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::SpanHandle submit_span_ = obs::kNoSpan;  ///< open during submit()
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_fallbacks_ = nullptr;
  obs::Counter* m_breaker_opens_ = nullptr;
  obs::Histogram* m_turnaround_ = nullptr;
};

}  // namespace hpcqc::mqss
