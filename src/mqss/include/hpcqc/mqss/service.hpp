#pragma once

#include <map>
#include <memory>
#include <string>

#include "hpcqc/circuit/parametric.hpp"
#include "hpcqc/common/rng.hpp"
#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/mqss/compile_farm.hpp"
#include "hpcqc/mqss/compiler.hpp"
#include "hpcqc/mqss/structure_cache.hpp"
#include "hpcqc/mqss/template.hpp"
#include "hpcqc/net/formats.hpp"
#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/obs/trace.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::mqss {

/// Result of one job run through the stack.
struct RunResult {
  qsim::Counts counts;
  double estimated_fidelity = 1.0;
  Seconds qpu_time = 0.0;  ///< shots x shot duration on the device
  std::size_t native_gate_count = 0;
  std::size_t swap_count = 0;
  std::vector<int> initial_layout;
  /// True when the result came from the noiseless digital-twin emulator
  /// (the §4 onboarding path) instead of the QPU — the degraded-mode
  /// fallback clients take while the circuit breaker is open.
  bool emulated = false;
};

/// The execution core both access paths converge on: JIT-compiles the
/// frontend circuit against live QDMI data and executes it on the device
/// twin. This is the "QRM + JIT LLVM-based compiler" box of Fig. 2 reduced
/// to its semantics: compile with live metrics, then run.
///
/// Compilation is two-phase. The *structure phase* (placement, routing,
/// native decomposition, peephole) is cached in a thread-safe LRU
/// StructureCache, content-addressed on
///   structural hash (parameters abstracted out)
///   x calibration epoch x health-mask fingerprint x compiler options,
/// so a mask flip that does not bump the device epoch (e.g. a sensor-driven
/// telemetry view) still invalidates affected entries. The *bind phase*
/// patches a ParametricCircuit binding's angles into the cached template
/// without re-running any pass. An optional CompileFarm runs structure
/// misses on background workers with single-flight dedup.
class QpuService {
public:
  QpuService(device::DeviceModel& device, const qdmi::DeviceInterface& qdmi,
             Rng& rng, CompilerOptions options = {});

  const device::DeviceModel& device() const { return *device_; }
  const qdmi::DeviceInterface& qdmi() const { return *qdmi_; }
  const CompilerOptions& compiler_options() const { return options_; }

  /// Compile (JIT, against the current calibration) and execute. Throws
  /// TransientError (kDeviceUnavailable / kTimeout / kNetwork) when the
  /// QPU is offline or an attached fault injector has an open window over
  /// one of the path's injection sites.
  /// `parent` (when valid) parents the run's span tree — callers thread
  /// their job context through so one submission stays one trace.
  RunResult run(const circuit::Circuit& circuit, std::size_t shots,
                obs::TraceContext parent = {});

  /// The variational tight-loop entry: structure phase through the cache,
  /// then a parameter bind — per-iteration compile cost is a handful of
  /// multiply-adds once the structure is warm. Same fault/tracing contract
  /// as run(), with compile.structure / compile.bind child spans.
  RunResult run_parametric(const circuit::ParametricCircuit& circuit,
                           const std::map<std::string, double>& binding,
                           std::size_t shots, obs::TraceContext parent = {});

  /// The onboarding-emulator path (§4): same JIT compilation, but the
  /// native program is sampled from its ideal distribution instead of the
  /// noisy device. Always available — it is what clients degrade to when
  /// the QPU is down. Results are tagged `emulated`.
  RunResult run_emulated(const circuit::Circuit& circuit, std::size_t shots,
                         obs::TraceContext parent = {});

  /// Compile only (exposed for transparency — §4's users asked for
  /// "greater transparency in the quantum circuit compilation process").
  CompiledProgram compile_only(const circuit::Circuit& circuit) const;

  /// Structure phase only: the cached (or freshly compiled) template for a
  /// parametric circuit under the current calibration/health/options key.
  std::shared_ptr<const CompiledTemplate> compile_structure(
      const circuit::ParametricCircuit& circuit) const;

  /// Structure phase + bind phase, uncached bind (the template itself is
  /// cached). Equivalent to compile_structure(circuit)->bind(binding).
  CompiledProgram compile_parametric(
      const circuit::ParametricCircuit& circuit,
      const std::map<std::string, double>& binding) const;

  /// Queues the structure compile for `circuit` on the attached farm (a
  /// no-op without a farm or with the cache disabled). The QRM prefetches
  /// every queued parametric job before dispatching, so N distinct misses
  /// compile concurrently while single-flight dedup keeps each key's
  /// compile unique.
  void prefetch_structure(
      std::shared_ptr<const circuit::ParametricCircuit> circuit) const;

  /// Attaches a compile-worker pool (must outlive the service; nullptr
  /// detaches). Only prefetch_structure() uses it — foreground compiles
  /// stay on the calling thread, so results and stats are bit-identical at
  /// any worker count.
  void set_compile_farm(CompileFarm* farm) { farm_ = farm; }
  CompileFarm* compile_farm() const { return farm_; }

  /// Attaches a fault injector + the clock used to position queries inside
  /// its windows. Both must outlive the service; pass nullptr to detach.
  void set_fault_context(const fault::FaultInjector* injector,
                         const SimClock* clock);

  /// Attaches a tracer: run()/run_emulated() then produce qpu.run spans
  /// with compile (per-pass children) and execute stages. Must outlive the
  /// service; nullptr disables.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Attaches a metrics registry (mqss.runs, mqss.runs_emulated,
  /// mqss.compile_cache_hits / _misses / _evictions, the
  /// mqss.compile_cache_hit_rate gauge, and the parametric-path
  /// mqss.structure_cache_hits / _misses / _size). Must outlive the
  /// service. Metrics are mirrored on the calling thread only — farm
  /// workers never touch the registry.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Names the device this service fronts. The name is folded into every
  /// compile-cache key, so caches can never serve an entry compiled for a
  /// different device identity — fleet serving reuses one structural hash
  /// across N otherwise-identical devices, and a swapped cache (or a
  /// service re-pointed at a new device) must miss, not resurrect the old
  /// device's placements.
  void set_device_identity(const std::string& name);
  const std::string& device_identity() const { return device_identity_; }

  /// JIT compile cache controls. Enabled by default; entries are evicted
  /// least-recently-used past `capacity`. Keys carry the calibration epoch
  /// and the QDMI view's health fingerprint, so recalibrations and mask
  /// changes (even epoch-silent ones) miss instead of serving stale
  /// placements.
  void set_compile_cache_enabled(bool enabled);
  void set_compile_cache_capacity(std::size_t capacity);
  std::size_t cache_size() const { return cache_.stats().size; }
  std::size_t cache_hits() const { return cache_.stats().hits; }
  std::size_t cache_misses() const { return cache_.stats().misses; }
  StructureCacheStats cache_stats() const { return cache_.stats(); }

  /// Serializes a run's counts in the given §2.4 output format.
  net::Payload serialize(const RunResult& result,
                         net::ResultFormat format) const;

private:
  bool fault_active(fault::FaultSite site) const;
  /// Content-addressed cache key for the current epoch / health / options.
  std::uint64_t cache_key(std::uint64_t structural_hash) const;
  /// Cache lookup for a concrete circuit, with metric mirroring.
  StructureCache::Lookup lookup_concrete(
      const circuit::Circuit& circuit) const;
  /// Cache lookup for a parametric structure, with metric mirroring.
  StructureCache::Lookup lookup_structure(
      const circuit::ParametricCircuit& circuit) const;
  /// Mirrors a lookup outcome into the bound counters/gauges (calling
  /// thread only).
  void mirror_cache_metrics(bool hit, bool structure) const;
  /// compile_only() plus a compile span (per-pass children, cache
  /// attributes) under `parent` when tracing is on.
  CompiledProgram compile_traced(const circuit::Circuit& circuit,
                                 obs::Span& parent);
  /// Two-phase compile with compile.structure / compile.bind child spans.
  CompiledProgram compile_parametric_traced(
      const circuit::ParametricCircuit& circuit,
      const std::map<std::string, double>& binding, obs::Span& parent);
  /// Adds the cache-stats attributes the satellite dashboards read.
  void annotate_cache_stats(obs::Span& span) const;
  /// The shared post-compile path of run()/run_parametric(): execution
  /// fault sites, execute span, result assembly.
  RunResult finish_run(const CompiledProgram& program, std::size_t shots,
                       obs::Span& span);

  device::DeviceModel* device_;
  const qdmi::DeviceInterface* qdmi_;
  Rng* rng_;
  CompilerOptions options_;

  const fault::FaultInjector* injector_ = nullptr;
  const SimClock* clock_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  CompileFarm* farm_ = nullptr;
  obs::Counter* m_runs_ = nullptr;
  obs::Counter* m_runs_emulated_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_cache_evictions_ = nullptr;
  obs::Counter* m_structure_hits_ = nullptr;
  obs::Counter* m_structure_misses_ = nullptr;
  obs::Gauge* m_cache_hit_rate_ = nullptr;
  obs::Gauge* m_structure_size_ = nullptr;

  std::string device_identity_;
  std::uint64_t identity_salt_ = 0;  ///< FNV-1a of device_identity_

  bool cache_enabled_ = true;
  mutable StructureCache cache_{256};
  /// Evictions already mirrored into m_cache_evictions_ (caller thread).
  mutable std::uint64_t mirrored_evictions_ = 0;
};

}  // namespace hpcqc::mqss
