#pragma once

#include <deque>
#include <map>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/mqss/compiler.hpp"
#include "hpcqc/net/formats.hpp"
#include "hpcqc/obs/metrics.hpp"
#include "hpcqc/obs/trace.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::mqss {

/// Result of one job run through the stack.
struct RunResult {
  qsim::Counts counts;
  double estimated_fidelity = 1.0;
  Seconds qpu_time = 0.0;  ///< shots x shot duration on the device
  std::size_t native_gate_count = 0;
  std::size_t swap_count = 0;
  std::vector<int> initial_layout;
  /// True when the result came from the noiseless digital-twin emulator
  /// (the §4 onboarding path) instead of the QPU — the degraded-mode
  /// fallback clients take while the circuit breaker is open.
  bool emulated = false;
};

/// The execution core both access paths converge on: JIT-compiles the
/// frontend circuit against live QDMI data and executes it on the device
/// twin. This is the "QRM + JIT LLVM-based compiler" box of Fig. 2 reduced
/// to its semantics: compile with live metrics, then run.
class QpuService {
public:
  QpuService(device::DeviceModel& device, const qdmi::DeviceInterface& qdmi,
             Rng& rng, CompilerOptions options = {});

  const device::DeviceModel& device() const { return *device_; }
  const qdmi::DeviceInterface& qdmi() const { return *qdmi_; }
  const CompilerOptions& compiler_options() const { return options_; }

  /// Compile (JIT, against the current calibration) and execute. Throws
  /// TransientError (kDeviceUnavailable / kTimeout / kNetwork) when the
  /// QPU is offline or an attached fault injector has an open window over
  /// one of the path's injection sites.
  /// `parent` (when valid) parents the run's span tree — callers thread
  /// their job context through so one submission stays one trace.
  RunResult run(const circuit::Circuit& circuit, std::size_t shots,
                obs::TraceContext parent = {});

  /// The onboarding-emulator path (§4): same JIT compilation, but the
  /// native program is sampled from its ideal distribution instead of the
  /// noisy device. Always available — it is what clients degrade to when
  /// the QPU is down. Results are tagged `emulated`.
  RunResult run_emulated(const circuit::Circuit& circuit, std::size_t shots,
                         obs::TraceContext parent = {});

  /// Compile only (exposed for transparency — §4's users asked for
  /// "greater transparency in the quantum circuit compilation process").
  CompiledProgram compile_only(const circuit::Circuit& circuit) const;

  /// Attaches a fault injector + the clock used to position queries inside
  /// its windows. Both must outlive the service; pass nullptr to detach.
  void set_fault_context(const fault::FaultInjector* injector,
                         const SimClock* clock);

  /// Attaches a tracer: run()/run_emulated() then produce qpu.run spans
  /// with compile (per-pass children) and execute stages. Must outlive the
  /// service; nullptr disables.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Attaches a metrics registry (mqss.runs, mqss.runs_emulated,
  /// mqss.compile_cache_hits / _misses). Must outlive the service.
  void set_metrics(obs::MetricsRegistry* registry);

  /// JIT compile cache: hits while the device's calibration epoch counter
  /// is unchanged (any recalibration bumps it — the JIT placement must see
  /// the new metrics, even when a recovery lands at an identical simulated
  /// timestamp). Keyed by the circuit's structural hash. Enabled by
  /// default; repeated variational submissions of *identical* circuits
  /// skip recompilation. Bounded: the oldest entries are evicted past
  /// `capacity` so long variational campaigns cannot grow it unboundedly.
  void set_compile_cache_enabled(bool enabled);
  void set_compile_cache_capacity(std::size_t capacity);
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }

  /// Serializes a run's counts in the given §2.4 output format.
  net::Payload serialize(const RunResult& result,
                         net::ResultFormat format) const;

private:
  bool fault_active(fault::FaultSite site) const;
  /// compile_only() plus a compile span (per-pass children, cache
  /// attributes) under `parent` when tracing is on.
  CompiledProgram compile_traced(const circuit::Circuit& circuit,
                                 obs::Span& parent);

  device::DeviceModel* device_;
  const qdmi::DeviceInterface* qdmi_;
  Rng* rng_;
  CompilerOptions options_;

  const fault::FaultInjector* injector_ = nullptr;
  const SimClock* clock_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_runs_ = nullptr;
  obs::Counter* m_runs_emulated_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;

  bool cache_enabled_ = true;
  std::size_t cache_capacity_ = 256;
  mutable std::map<std::uint64_t, CompiledProgram> cache_;
  mutable std::deque<std::uint64_t> cache_order_;  ///< insertion order (FIFO)
  mutable std::uint64_t cache_epoch_ = ~std::uint64_t{0};
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;
};

}  // namespace hpcqc::mqss
