#pragma once

#include <map>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/mqss/compiler.hpp"
#include "hpcqc/net/formats.hpp"
#include "hpcqc/qdmi/qdmi.hpp"

namespace hpcqc::mqss {

/// Result of one job run through the stack.
struct RunResult {
  qsim::Counts counts;
  double estimated_fidelity = 1.0;
  Seconds qpu_time = 0.0;  ///< shots x shot duration on the device
  std::size_t native_gate_count = 0;
  std::size_t swap_count = 0;
  std::vector<int> initial_layout;
};

/// The execution core both access paths converge on: JIT-compiles the
/// frontend circuit against live QDMI data and executes it on the device
/// twin. This is the "QRM + JIT LLVM-based compiler" box of Fig. 2 reduced
/// to its semantics: compile with live metrics, then run.
class QpuService {
public:
  QpuService(device::DeviceModel& device, const qdmi::DeviceInterface& qdmi,
             Rng& rng, CompilerOptions options = {});

  const device::DeviceModel& device() const { return *device_; }
  const qdmi::DeviceInterface& qdmi() const { return *qdmi_; }
  const CompilerOptions& compiler_options() const { return options_; }

  /// Compile (JIT, against the current calibration) and execute.
  RunResult run(const circuit::Circuit& circuit, std::size_t shots);

  /// Compile only (exposed for transparency — §4's users asked for
  /// "greater transparency in the quantum circuit compilation process").
  CompiledProgram compile_only(const circuit::Circuit& circuit) const;

  /// JIT compile cache: hits while the device's calibration epoch is
  /// unchanged (recalibration invalidates everything — the JIT placement
  /// must see the new metrics). Keyed by the circuit's structural hash.
  /// Enabled by default; repeated variational submissions of *identical*
  /// circuits skip recompilation.
  void set_compile_cache_enabled(bool enabled);
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }

  /// Serializes a run's counts in the given §2.4 output format.
  net::Payload serialize(const RunResult& result,
                         net::ResultFormat format) const;

private:
  device::DeviceModel* device_;
  const qdmi::DeviceInterface* qdmi_;
  Rng* rng_;
  CompilerOptions options_;

  bool cache_enabled_ = true;
  mutable std::map<std::uint64_t, CompiledProgram> cache_;
  mutable double cache_epoch_ = -1.0;  ///< calibration timestamp of entries
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;
};

}  // namespace hpcqc::mqss
