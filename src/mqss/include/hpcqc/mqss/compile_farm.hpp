#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcqc::mqss {

/// Fixed pool of compile workers draining a MPMC work queue. The farm runs
/// structure-phase compiles (enqueued by QpuService::prefetch and by the
/// QRM's dispatch loop) in parallel; single-flight dedup lives in the
/// StructureCache, so N queued misses on the same key still compile once.
///
/// Determinism contract: tasks are pure content-addressed compiles — the
/// same key always produces the same artifact — so worker count and
/// scheduling order can never change results, only wall-clock latency.
/// Callers must not mutate device state (calibration installs, drift,
/// health masks) while tasks are in flight; wait_idle() is the barrier.
/// Observability note: tasks run off the orchestration thread, so they must
/// not touch single-threaded instrumentation — QDMI views handed to a
/// farm-backed service should have no metrics registry attached.
class CompileFarm {
public:
  /// `workers` may be 0: enqueue() then runs tasks inline on the calling
  /// thread (useful for bit-identity comparisons against threaded runs).
  explicit CompileFarm(std::size_t workers);

  /// Drains the queue and joins all workers.
  ~CompileFarm();

  CompileFarm(const CompileFarm&) = delete;
  CompileFarm& operator=(const CompileFarm&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Queues `task` for a worker (or runs it inline with 0 workers). Tasks
  /// must not throw — wrap fallible work (the StructureCache prefetch
  /// protocol already swallows compile failures for background fills).
  void enqueue(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Tasks completed so far, total and per worker (index 0 counts inline
  /// execution by callers when the farm has no workers).
  std::uint64_t tasks_executed() const;
  std::vector<std::uint64_t> per_worker_executed() const;

private:
  void worker_loop(std::size_t worker_index);

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::vector<std::uint64_t> executed_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace hpcqc::mqss
