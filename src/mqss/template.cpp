#include "hpcqc/mqss/template.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

using circuit::OpKind;
using circuit::Operation;
using circuit::ParamExpr;
using circuit::ParametricCircuit;

namespace {

constexpr double kPi = M_PI;
constexpr double kHalfPi = M_PI / 2.0;

/// An angle as an affine form over the template's canonical parameters:
/// constant + sum(coefficient_i * theta_i). Terms are kept sorted by
/// parameter index with exact-zero coefficients dropped, so symbolic() is
/// a syntactic check: a form with no terms is binding-independent.
struct Affine {
  double constant = 0.0;
  std::vector<std::pair<std::uint32_t, double>> terms;

  bool symbolic() const { return !terms.empty(); }
};

Affine affine_literal(double value) { return {value, {}}; }

void add_term(Affine& a, std::uint32_t index, double coefficient) {
  if (coefficient == 0.0) return;
  auto it = std::lower_bound(
      a.terms.begin(), a.terms.end(), index,
      [](const auto& term, std::uint32_t i) { return term.first < i; });
  if (it != a.terms.end() && it->first == index) {
    it->second += coefficient;
    if (it->second == 0.0) a.terms.erase(it);
  } else {
    a.terms.insert(it, {index, coefficient});
  }
}

Affine affine_add(const Affine& a, const Affine& b) {
  Affine out = a;
  out.constant = a.constant + b.constant;
  for (const auto& [index, coefficient] : b.terms)
    add_term(out, index, coefficient);
  return out;
}

Affine affine_neg(const Affine& a) {
  Affine out;
  out.constant = -a.constant;
  out.terms.reserve(a.terms.size());
  for (const auto& [index, coefficient] : a.terms)
    out.terms.emplace_back(index, -coefficient);
  return out;
}

Affine affine_sub(const Affine& a, const Affine& b) {
  return affine_add(a, affine_neg(b));
}

Affine affine_scale(const Affine& a, double factor) {
  Affine out;
  out.constant = a.constant * factor;
  for (const auto& [index, coefficient] : a.terms)
    add_term(out, index, coefficient * factor);
  return out;
}

bool is_multiple_of_two_pi(double angle) {
  const double wrapped = std::remainder(angle, 2.0 * M_PI);
  return std::abs(wrapped) < 1e-12;
}

/// Identity test usable without a binding: literal AND a 2-pi multiple.
/// Symbol-dependent angles are never identities "for all theta".
bool affine_is_identity_rotation(const Affine& a) {
  return !a.symbolic() && is_multiple_of_two_pi(a.constant);
}

/// One instruction with affine angles — the intermediate form the structure
/// phase lowers instead of concrete Operations.
struct AffineOp {
  OpKind kind = OpKind::kI;
  std::vector<int> qubits;
  std::vector<Affine> params;
};

/// ZYZ parameters with affine angles; mirrors compiler.cpp's u3_of.
struct AffineU3 {
  Affine theta;
  Affine phi;
  Affine lambda;
};

AffineU3 u3_of(const AffineOp& op) {
  const auto lit = affine_literal;
  switch (op.kind) {
    case OpKind::kI: return {lit(0.0), lit(0.0), lit(0.0)};
    case OpKind::kX: return {lit(kPi), lit(0.0), lit(kPi)};
    case OpKind::kY: return {lit(kPi), lit(kHalfPi), lit(kHalfPi)};
    case OpKind::kZ: return {lit(0.0), lit(0.0), lit(kPi)};
    case OpKind::kH: return {lit(kHalfPi), lit(0.0), lit(kPi)};
    case OpKind::kS: return {lit(0.0), lit(0.0), lit(kHalfPi)};
    case OpKind::kSdg: return {lit(0.0), lit(0.0), lit(-kHalfPi)};
    case OpKind::kT: return {lit(0.0), lit(0.0), lit(kPi / 4.0)};
    case OpKind::kTdg: return {lit(0.0), lit(0.0), lit(-kPi / 4.0)};
    case OpKind::kSx: return {lit(kHalfPi), lit(-kHalfPi), lit(kHalfPi)};
    case OpKind::kRx: return {op.params[0], lit(-kHalfPi), lit(kHalfPi)};
    case OpKind::kRy: return {op.params[0], lit(0.0), lit(0.0)};
    case OpKind::kRz: return {lit(0.0), lit(0.0), op.params[0]};
    case OpKind::kU: return {op.params[0], op.params[1], op.params[2]};
    case OpKind::kPrx:
      return {op.params[0], affine_sub(op.params[1], lit(kHalfPi)),
              affine_sub(lit(kHalfPi), op.params[1])};
    default:
      throw Error("compile_template: not a single-qubit gate");
  }
}

/// Mirrors compiler.cpp's expand_2q on affine angles.
void expand_2q(const AffineOp& op, std::vector<AffineOp>& out) {
  const int a = op.qubits[0];
  const int b = op.qubits[1];
  const auto cx = [&out](int control, int target) {
    out.push_back({OpKind::kH, {target}, {}});
    out.push_back({OpKind::kCz, {control, target}, {}});
    out.push_back({OpKind::kH, {target}, {}});
  };
  switch (op.kind) {
    case OpKind::kCz:
      out.push_back(op);
      return;
    case OpKind::kCx:
      cx(a, b);
      return;
    case OpKind::kSwap:
      cx(a, b);
      cx(b, a);
      cx(a, b);
      return;
    case OpKind::kIswap:
      out.push_back({OpKind::kS, {a}, {}});
      out.push_back({OpKind::kS, {b}, {}});
      out.push_back({OpKind::kCz, {a, b}, {}});
      expand_2q({OpKind::kSwap, {a, b}, {}}, out);
      return;
    case OpKind::kCphase: {
      const Affine half = affine_scale(op.params[0], 0.5);
      out.push_back({OpKind::kRz, {a}, {half}});
      cx(a, b);
      out.push_back({OpKind::kRz, {b}, {affine_neg(half)}});
      cx(a, b);
      out.push_back({OpKind::kRz, {b}, {half}});
      return;
    }
    default:
      throw Error("compile_template: not a two-qubit gate");
  }
}

std::size_t affine_gate_count(const std::vector<AffineOp>& ops) {
  std::size_t count = 0;
  for (const auto& op : ops)
    if (op.kind != OpKind::kBarrier && op.kind != OpKind::kMeasure) ++count;
  return count;
}

/// Lifts a ParamExpr to an affine form over the canonical parameter order.
Affine lift(const ParamExpr& expr,
            const std::map<std::string, std::uint32_t>& index) {
  if (expr.is_literal()) return affine_literal(expr.coefficient());
  Affine out = affine_literal(expr.offset());
  add_term(out, index.at(expr.name()), expr.coefficient());
  return out;
}

}  // namespace

CompiledTemplate compile_template(const ParametricCircuit& circuit,
                                  const qdmi::DeviceInterface& device,
                                  const CompilerOptions& options) {
  expects(circuit.num_qubits() <= device.num_qubits(),
          "compile_template: circuit does not fit the device");

  const std::vector<std::string> names = circuit.parameters();
  std::map<std::string, std::uint32_t> index;
  for (std::size_t i = 0; i < names.size(); ++i)
    index[names[i]] = static_cast<std::uint32_t>(i);

  // Placement and routing never read angles, so they run on the all-zeros
  // skeleton; the affine forms are re-attached to the routed stream below.
  std::map<std::string, double> zeros;
  for (const auto& name : names) zeros[name] = 0.0;

  CompilationUnit unit;
  unit.circuit = circuit.bind(zeros);
  unit.dialect = Dialect::kCore;
  const PlacementPass place(options.placement);
  place.run(unit, device);
  unit.trace.push_back(place.name());
  unit.trace_gate_counts.push_back(unit.circuit.gate_count());
  const RoutingPass route(options.fidelity_aware_routing);
  route.run(unit, device);
  unit.trace.push_back(route.name());
  unit.trace_gate_counts.push_back(unit.circuit.gate_count());

  // Re-attach: routing preserves every source op (kind unchanged, qubits
  // remapped) in order and only ever *inserts* parameter-free kSwap ops, so
  // source angles map onto the routed stream positionally.
  std::vector<AffineOp> routed;
  routed.reserve(unit.circuit.size());
  std::size_t cursor = 0;
  const auto& source_ops = circuit.ops();
  for (const auto& op : unit.circuit.ops()) {
    AffineOp affine_op;
    affine_op.kind = op.kind;
    affine_op.qubits = op.qubits;
    if (cursor < source_ops.size() && source_ops[cursor].kind == op.kind) {
      for (const auto& expr : source_ops[cursor].params)
        affine_op.params.push_back(lift(expr, index));
      ++cursor;
    } else {
      ensure_state(op.kind == OpKind::kSwap && op.params.empty(),
                   "compile_template: routed stream diverged from source");
    }
    ensure_state(affine_op.params.size() == op.params.size(),
                 "compile_template: parameter arity diverged in routing");
    routed.push_back(std::move(affine_op));
  }
  ensure_state(cursor == source_ops.size(),
               "compile_template: routing dropped a source op");

  // Native decomposition, mirroring NativeDecompositionPass on affine
  // angles. A rotation whose angle is symbol-dependent is always emitted:
  // it is only an identity at isolated bindings, never for all of them.
  std::vector<AffineOp> intermediate;
  intermediate.reserve(routed.size() * 2);
  for (const auto& op : routed) {
    if (circuit::op_is_two_qubit(op.kind)) {
      expand_2q(op, intermediate);
    } else {
      intermediate.push_back(op);
    }
  }
  std::vector<AffineOp> native;
  native.reserve(intermediate.size());
  std::vector<Affine> frame(
      static_cast<std::size_t>(unit.circuit.num_qubits()),
      affine_literal(0.0));
  for (const auto& op : intermediate) {
    if (op.kind == OpKind::kBarrier || op.kind == OpKind::kMeasure ||
        op.kind == OpKind::kCz) {
      native.push_back(op);
      continue;
    }
    const AffineU3 u = u3_of(op);
    const auto q = static_cast<std::size_t>(op.qubits[0]);
    if (!affine_is_identity_rotation(u.theta)) {
      const Affine phi = affine_sub(
          affine_sub(affine_literal(kHalfPi), u.lambda), frame[q]);
      native.push_back({OpKind::kPrx, {op.qubits[0]}, {u.theta, phi}});
    }
    frame[q] = affine_add(frame[q], affine_add(u.phi, u.lambda));
  }
  unit.trace.emplace_back("decompose-native");
  unit.trace_gate_counts.push_back(affine_gate_count(native));

  // Peephole, mirroring PeepholePass with binding-independent rewrite
  // conditions only: fusion requires the two PRX phases to differ by a
  // *literal* multiple of 2*pi (the fused angle sum stays affine); identity
  // drops require a literal 2*pi-multiple angle.
  if (options.optimize) {
    std::vector<AffineOp> ops = std::move(native);
    bool changed = true;
    int iterations = 0;
    while (changed && iterations++ < 32) {
      changed = false;
      std::vector<long> last_touch(
          static_cast<std::size_t>(unit.circuit.num_qubits()), -1);
      std::vector<AffineOp> result;
      result.reserve(ops.size());

      const auto touch = [&](const AffineOp& op) {
        for (int q : op.qubits)
          last_touch[static_cast<std::size_t>(q)] =
              static_cast<long>(result.size());
      };

      for (const auto& op : ops) {
        if (op.kind == OpKind::kPrx &&
            affine_is_identity_rotation(op.params[0])) {
          changed = true;
          continue;
        }
        if (op.kind == OpKind::kPrx) {
          const auto q = static_cast<std::size_t>(op.qubits[0]);
          const long prev = last_touch[q];
          if (prev >= 0) {
            AffineOp& before = result[static_cast<std::size_t>(prev)];
            if (before.kind == OpKind::kPrx && before.qubits == op.qubits) {
              const Affine delta =
                  affine_sub(before.params[1], op.params[1]);
              if (!delta.symbolic() &&
                  std::abs(std::remainder(delta.constant, 2.0 * M_PI)) <
                      1e-12) {
                before.params[0] = affine_add(before.params[0], op.params[0]);
                changed = true;
                continue;
              }
            }
          }
        }
        if (op.kind == OpKind::kCz) {
          const auto a = static_cast<std::size_t>(op.qubits[0]);
          const auto b = static_cast<std::size_t>(op.qubits[1]);
          const long pa = last_touch[a];
          if (pa >= 0 && pa == last_touch[b]) {
            const AffineOp& before = result[static_cast<std::size_t>(pa)];
            if (before.kind == OpKind::kCz &&
                ((before.qubits[0] == op.qubits[0] &&
                  before.qubits[1] == op.qubits[1]) ||
                 (before.qubits[0] == op.qubits[1] &&
                  before.qubits[1] == op.qubits[0]))) {
              result[static_cast<std::size_t>(pa)] = {
                  OpKind::kPrx,
                  {op.qubits[0]},
                  {affine_literal(0.0), affine_literal(0.0)}};
              changed = true;
              continue;
            }
          }
        }
        if (op.kind == OpKind::kBarrier) {
          std::fill(last_touch.begin(), last_touch.end(),
                    static_cast<long>(result.size()));
          result.push_back(op);
          continue;
        }
        touch(op);
        result.push_back(op);
      }
      ops = std::move(result);
    }
    native.clear();
    for (auto& op : ops) {
      if (op.kind == OpKind::kPrx &&
          affine_is_identity_rotation(op.params[0]))
        continue;
      native.push_back(std::move(op));
    }
    unit.trace.emplace_back("peephole");
    unit.trace_gate_counts.push_back(affine_gate_count(native));
  }

  // Emit: base carries every angle at its affine constant; slots record the
  // symbol-dependent ones for the bind phase to patch.
  CompiledTemplate result;
  circuit::Circuit emitted(unit.circuit.num_qubits());
  for (std::size_t i = 0; i < native.size(); ++i) {
    const AffineOp& op = native[i];
    Operation concrete;
    concrete.kind = op.kind;
    concrete.qubits = op.qubits;
    for (std::size_t j = 0; j < op.params.size(); ++j) {
      concrete.params.push_back(op.params[j].constant);
      if (op.params[j].symbolic()) {
        ParamSlot slot;
        slot.op_index = static_cast<std::uint32_t>(i);
        slot.param_index = static_cast<std::uint32_t>(j);
        slot.constant = op.params[j].constant;
        slot.terms = op.params[j].terms;
        result.slots.push_back(std::move(slot));
      }
    }
    emitted.append(std::move(concrete));
  }

  result.base.native_circuit = std::move(emitted);
  result.base.initial_layout = std::move(unit.layout);
  result.base.pass_trace = std::move(unit.trace);
  result.base.pass_gate_counts = std::move(unit.trace_gate_counts);
  result.base.native_gate_count = result.base.native_circuit.gate_count();
  result.base.swap_count = unit.swaps_inserted;
  result.parameters = names;
  return result;
}

CompiledProgram CompiledTemplate::bind(
    const std::map<std::string, double>& binding) const {
  for (const auto& [name, value] : binding) {
    (void)value;
    expects(std::binary_search(parameters.begin(), parameters.end(), name),
            "CompiledTemplate::bind: unknown parameter '" + name + "'");
  }
  std::vector<double> values(parameters.size());
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    const auto it = binding.find(parameters[i]);
    if (it == binding.end())
      throw NotFoundError("CompiledTemplate::bind: unbound parameter '" +
                          parameters[i] + "'");
    values[i] = it->second;
  }
  CompiledProgram program = base;
  for (const auto& slot : slots) {
    double value = slot.constant;
    for (const auto& [param, coefficient] : slot.terms)
      value += coefficient * values[param];
    program.native_circuit.set_param(slot.op_index, slot.param_index, value);
  }
  return program;
}

CompiledTemplate as_template(CompiledProgram program) {
  CompiledTemplate result;
  result.base = std::move(program);
  return result;
}

}  // namespace hpcqc::mqss
