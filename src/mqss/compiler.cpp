#include "hpcqc/mqss/compiler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

using circuit::Circuit;
using circuit::Operation;
using circuit::OpKind;

const char* to_string(Dialect dialect) {
  switch (dialect) {
    case Dialect::kCore: return "core";
    case Dialect::kPlaced: return "placed";
    case Dialect::kRouted: return "routed";
    case Dialect::kNative: return "native";
  }
  return "?";
}

const char* to_string(PlacementStrategy strategy) {
  return strategy == PlacementStrategy::kStatic ? "static"
                                                : "fidelity-aware";
}

void PassManager::add(std::unique_ptr<Pass> pass) {
  expects(pass != nullptr, "PassManager: null pass");
  passes_.push_back(std::move(pass));
}

void PassManager::run(CompilationUnit& unit,
                      const qdmi::DeviceInterface& device) const {
  for (const auto& pass : passes_) {
    pass->run(unit, device);
    unit.trace.push_back(pass->name());
    unit.trace_gate_counts.push_back(unit.circuit.gate_count());
  }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

namespace {

double qubit_quality(const qdmi::DeviceInterface& device, int q) {
  return device.qubit_property(qdmi::QubitProperty::kFidelity1q, q) *
         device.qubit_property(qdmi::QubitProperty::kReadoutFidelity, q);
}

bool coupler_operational(const qdmi::DeviceInterface& device, int a, int b) {
  return device.coupler_property(qdmi::CouplerProperty::kOperational, a, b) >=
         0.5;
}

}  // namespace

std::vector<int> usable_qubits(const qdmi::DeviceInterface& device) {
  const int n = device.num_qubits();
  std::vector<char> up(static_cast<std::size_t>(n), 0);
  for (int q = 0; q < n; ++q)
    up[static_cast<std::size_t>(q)] =
        device.qubit_property(qdmi::QubitProperty::kOperational, q) >= 0.5;

  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n));
  for (const auto& [a, b] : device.coupling_map()) {
    if (!up[static_cast<std::size_t>(a)] || !up[static_cast<std::size_t>(b)])
      continue;
    if (!coupler_operational(device, a, b)) continue;
    adjacency[static_cast<std::size_t>(a)].push_back(b);
    adjacency[static_cast<std::size_t>(b)].push_back(a);
  }

  // Largest connected component; smallest-member tiebreak keeps the result
  // a deterministic function of the reported capability set.
  std::vector<int> best;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  for (int start = 0; start < n; ++start) {
    if (visited[static_cast<std::size_t>(start)] ||
        !up[static_cast<std::size_t>(start)])
      continue;
    std::vector<int> component{start};
    visited[static_cast<std::size_t>(start)] = 1;
    for (std::size_t head = 0; head < component.size(); ++head) {
      for (int next : adjacency[static_cast<std::size_t>(component[head])]) {
        if (visited[static_cast<std::size_t>(next)]) continue;
        visited[static_cast<std::size_t>(next)] = 1;
        component.push_back(next);
      }
    }
    if (component.size() > best.size()) best = std::move(component);
  }
  std::sort(best.begin(), best.end());
  return best;
}

std::vector<int> fidelity_aware_layout(int virtual_qubits,
                                       const qdmi::DeviceInterface& device) {
  const int n = device.num_qubits();
  expects(virtual_qubits >= 1 && virtual_qubits <= n,
          "fidelity_aware_layout: circuit larger than the device");
  const std::vector<int> usable = usable_qubits(device);
  if (virtual_qubits > static_cast<int>(usable.size())) {
    throw TransientError(
        "fidelity_aware_layout: circuit needs " +
            std::to_string(virtual_qubits) +
            " qubits but the largest healthy component has " +
            std::to_string(usable.size()),
        ErrorCode::kDeviceUnavailable);
  }
  const std::set<int> in_usable(usable.begin(), usable.end());

  if (virtual_qubits == 1) {
    int best = usable.front();
    for (int q : usable)
      if (qubit_quality(device, q) > qubit_quality(device, best)) best = q;
    return {best};
  }

  // Candidate couplers: operational edges inside the serving component.
  std::vector<std::pair<int, int>> edges;
  for (const auto& [a, b] : device.coupling_map())
    if (in_usable.contains(a) && in_usable.contains(b) &&
        coupler_operational(device, a, b))
      edges.emplace_back(a, b);
  ensure_state(!edges.empty(),
               "fidelity_aware_layout: no usable coupler in the healthy set");

  // Seed with the best coupler (cz fidelity x endpoint quality), then grow
  // the connected set greedily by the best (coupler x quality) frontier.
  const auto edge_score = [&](int a, int b) {
    return device.coupler_property(qdmi::CouplerProperty::kFidelityCz, a, b) *
           qubit_quality(device, a) * qubit_quality(device, b);
  };
  int seed_a = edges.front().first;
  int seed_b = edges.front().second;
  for (const auto& [a, b] : edges)
    if (edge_score(a, b) > edge_score(seed_a, seed_b)) {
      seed_a = a;
      seed_b = b;
    }

  std::vector<int> chosen{seed_a, seed_b};
  std::set<int> in_set{seed_a, seed_b};
  while (static_cast<int>(chosen.size()) < virtual_qubits) {
    int best_candidate = -1;
    double best_score = -1.0;
    for (const auto& [a, b] : edges) {
      const bool a_in = in_set.contains(a);
      const bool b_in = in_set.contains(b);
      if (a_in == b_in) continue;  // need exactly one endpoint inside
      const int candidate = a_in ? b : a;
      const double score =
          device.coupler_property(qdmi::CouplerProperty::kFidelityCz, a, b) *
          qubit_quality(device, candidate);
      if (score > best_score) {
        best_score = score;
        best_candidate = candidate;
      }
    }
    ensure_state(best_candidate >= 0,
                 "fidelity_aware_layout: device coupling graph disconnected");
    chosen.push_back(best_candidate);
    in_set.insert(best_candidate);
  }
  return chosen;
}

std::string PlacementPass::name() const {
  return std::string("place-") + to_string(strategy_);
}

void PlacementPass::run(CompilationUnit& unit,
                        const qdmi::DeviceInterface& device) const {
  expects(unit.dialect == Dialect::kCore,
          "PlacementPass: expected the core dialect");
  const int virtual_qubits = unit.circuit.num_qubits();
  std::vector<int> layout;
  if (strategy_ == PlacementStrategy::kStatic) {
    // Identity over the serving set: virtual qubit i -> i-th usable physical
    // qubit. On a healthy device this is the plain identity layout.
    std::vector<int> usable = usable_qubits(device);
    if (virtual_qubits > static_cast<int>(usable.size())) {
      throw TransientError(
          "PlacementPass: circuit needs " + std::to_string(virtual_qubits) +
              " qubits but the largest healthy component has " +
              std::to_string(usable.size()),
          ErrorCode::kDeviceUnavailable);
    }
    usable.resize(static_cast<std::size_t>(virtual_qubits));
    layout = std::move(usable);
  } else {
    layout = fidelity_aware_layout(virtual_qubits, device);
  }
  unit.circuit = unit.circuit.remapped(layout, device.num_qubits());
  unit.layout = std::move(layout);
  unit.dialect = Dialect::kPlaced;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

namespace {

/// Weighted shortest path between two device qubits (Dijkstra; a uniform
/// weight of 1 reduces to BFS hop-count routing).
std::vector<int> shortest_path(
    const std::vector<std::vector<std::pair<int, double>>>& adjacency,
    int from, int to) {
  const std::size_t n = adjacency.size();
  std::vector<double> distance(n, std::numeric_limits<double>::infinity());
  std::vector<int> parent(n, -1);
  std::vector<bool> settled(n, false);
  distance[static_cast<std::size_t>(from)] = 0.0;
  parent[static_cast<std::size_t>(from)] = from;
  for (std::size_t round = 0; round < n; ++round) {
    int node = -1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!settled[i] && distance[i] < best) {
        best = distance[i];
        node = static_cast<int>(i);
      }
    }
    if (node < 0 || node == to) break;
    settled[static_cast<std::size_t>(node)] = true;
    for (const auto& [next, weight] : adjacency[static_cast<std::size_t>(node)]) {
      const double candidate = distance[static_cast<std::size_t>(node)] + weight;
      if (candidate < distance[static_cast<std::size_t>(next)]) {
        distance[static_cast<std::size_t>(next)] = candidate;
        parent[static_cast<std::size_t>(next)] = node;
      }
    }
  }
  ensure_state(parent[static_cast<std::size_t>(to)] >= 0,
               "RoutingPass: coupling graph disconnected");
  std::vector<int> path{to};
  while (path.back() != from)
    path.push_back(parent[static_cast<std::size_t>(path.back())]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

void RoutingPass::run(CompilationUnit& unit,
                      const qdmi::DeviceInterface& device) const {
  expects(unit.dialect == Dialect::kPlaced,
          "RoutingPass: expected the placed dialect");
  const int n = device.num_qubits();
  std::vector<std::vector<std::pair<int, double>>> adjacency(
      static_cast<std::size_t>(n));
  std::set<std::pair<int, int>> edge_set;
  for (const auto& [a, b] : device.coupling_map()) {
    // Degraded-mode serving: masked couplers (or couplers with a masked
    // endpoint) are invisible to routing, so SWAP chains never leave the
    // healthy subgraph.
    if (!coupler_operational(device, a, b)) continue;
    double weight = 1.0;
    if (fidelity_aware_) {
      // -log F per coupler plus a hop penalty so equal-fidelity routes
      // still prefer fewer SWAPs. Floor F to keep weights finite.
      const double fidelity = std::max(
          0.5, device.coupler_property(qdmi::CouplerProperty::kFidelityCz,
                                       a, b));
      weight = -std::log(fidelity) + 0.01;
    }
    adjacency[static_cast<std::size_t>(a)].emplace_back(b, weight);
    adjacency[static_cast<std::size_t>(b)].emplace_back(a, weight);
    edge_set.insert({std::min(a, b), std::max(a, b)});
  }
  const auto coupled = [&](int a, int b) {
    return edge_set.contains({std::min(a, b), std::max(a, b)});
  };

  // wire_to_phys[w]: current physical position of the logical wire that
  // started at physical position w after placement.
  std::vector<int> wire_to_phys(static_cast<std::size_t>(n));
  std::iota(wire_to_phys.begin(), wire_to_phys.end(), 0);
  std::vector<int> phys_to_wire = wire_to_phys;

  const auto apply_swap = [&](int pa, int pb) {
    const int wa = phys_to_wire[static_cast<std::size_t>(pa)];
    const int wb = phys_to_wire[static_cast<std::size_t>(pb)];
    std::swap(phys_to_wire[static_cast<std::size_t>(pa)],
              phys_to_wire[static_cast<std::size_t>(pb)]);
    wire_to_phys[static_cast<std::size_t>(wa)] = pb;
    wire_to_phys[static_cast<std::size_t>(wb)] = pa;
  };

  Circuit routed(n);
  for (const auto& op : unit.circuit.ops()) {
    if (op.kind == OpKind::kBarrier) {
      routed.append(op);
      continue;
    }
    if (op.kind == OpKind::kMeasure) {
      Operation measure = op;
      for (auto& q : measure.qubits)
        q = wire_to_phys[static_cast<std::size_t>(q)];
      routed.append(std::move(measure));
      continue;
    }
    if (!circuit::op_is_two_qubit(op.kind)) {
      Operation mapped = op;
      mapped.qubits[0] = wire_to_phys[static_cast<std::size_t>(op.qubits[0])];
      routed.append(std::move(mapped));
      continue;
    }
    // Two-qubit gate: bring the operands adjacent with SWAPs.
    int pa = wire_to_phys[static_cast<std::size_t>(op.qubits[0])];
    const int pb = wire_to_phys[static_cast<std::size_t>(op.qubits[1])];
    if (!coupled(pa, pb)) {
      const std::vector<int> path = shortest_path(adjacency, pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        routed.swap(path[i], path[i + 1]);
        apply_swap(path[i], path[i + 1]);
        ++unit.swaps_inserted;
      }
      pa = wire_to_phys[static_cast<std::size_t>(op.qubits[0])];
    }
    Operation mapped = op;
    mapped.qubits[0] = pa;
    mapped.qubits[1] = wire_to_phys[static_cast<std::size_t>(op.qubits[1])];
    routed.append(std::move(mapped));
  }
  unit.circuit = std::move(routed);
  unit.dialect = Dialect::kRouted;
}

// ---------------------------------------------------------------------------
// Native decomposition (virtual-Z / PRX + CZ)
// ---------------------------------------------------------------------------

namespace {

/// ZYZ parameters (theta, phi, lambda) with U = RZ(phi) RY(theta) RZ(lambda)
/// up to global phase.
struct U3 {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
};

constexpr double kPi = M_PI;
constexpr double kHalfPi = M_PI / 2.0;

U3 u3_of(const Operation& op) {
  switch (op.kind) {
    case OpKind::kI: return {0.0, 0.0, 0.0};
    case OpKind::kX: return {kPi, 0.0, kPi};
    case OpKind::kY: return {kPi, kHalfPi, kHalfPi};
    case OpKind::kZ: return {0.0, 0.0, kPi};
    case OpKind::kH: return {kHalfPi, 0.0, kPi};
    case OpKind::kS: return {0.0, 0.0, kHalfPi};
    case OpKind::kSdg: return {0.0, 0.0, -kHalfPi};
    case OpKind::kT: return {0.0, 0.0, kPi / 4.0};
    case OpKind::kTdg: return {0.0, 0.0, -kPi / 4.0};
    case OpKind::kSx: return {kHalfPi, -kHalfPi, kHalfPi};
    case OpKind::kRx: return {op.params[0], -kHalfPi, kHalfPi};
    case OpKind::kRy: return {op.params[0], 0.0, 0.0};
    case OpKind::kRz: return {0.0, 0.0, op.params[0]};
    case OpKind::kU: return {op.params[0], op.params[1], op.params[2]};
    case OpKind::kPrx:
      return {op.params[0], op.params[1] - kHalfPi, kHalfPi - op.params[1]};
    default:
      throw Error("u3_of: not a single-qubit gate");
  }
}

/// Expands a non-native two-qubit gate into 1q gates + CZ, appending to
/// `out` (recursively for SWAP-built gates).
void expand_2q(const Operation& op, std::vector<Operation>& out) {
  const int a = op.qubits[0];
  const int b = op.qubits[1];
  const auto cx = [&out](int control, int target) {
    out.push_back({OpKind::kH, {target}, {}});
    out.push_back({OpKind::kCz, {control, target}, {}});
    out.push_back({OpKind::kH, {target}, {}});
  };
  switch (op.kind) {
    case OpKind::kCz:
      out.push_back(op);
      return;
    case OpKind::kCx:
      cx(a, b);
      return;
    case OpKind::kSwap:
      cx(a, b);
      cx(b, a);
      cx(a, b);
      return;
    case OpKind::kIswap:
      // iSWAP = SWAP . CZ . (S (x) S)   (operator order; circuit order below)
      out.push_back({OpKind::kS, {a}, {}});
      out.push_back({OpKind::kS, {b}, {}});
      out.push_back({OpKind::kCz, {a, b}, {}});
      expand_2q({OpKind::kSwap, {a, b}, {}}, out);
      return;
    case OpKind::kCphase: {
      const double theta = op.params[0];
      out.push_back({OpKind::kRz, {a}, {theta / 2.0}});
      cx(a, b);
      out.push_back({OpKind::kRz, {b}, {-theta / 2.0}});
      cx(a, b);
      out.push_back({OpKind::kRz, {b}, {theta / 2.0}});
      return;
    }
    default:
      throw Error("expand_2q: not a two-qubit gate");
  }
}

bool is_multiple_of_two_pi(double angle) {
  const double wrapped = std::remainder(angle, 2.0 * M_PI);
  return std::abs(wrapped) < 1e-12;
}

}  // namespace

void NativeDecompositionPass::run(CompilationUnit& unit,
                                  const qdmi::DeviceInterface& device) const {
  expects(unit.dialect == Dialect::kRouted || unit.dialect == Dialect::kPlaced,
          "NativeDecompositionPass: expected a routed/placed circuit");
  (void)device;

  // Stage 1: eliminate non-native two-qubit gates.
  std::vector<Operation> intermediate;
  intermediate.reserve(unit.circuit.size() * 2);
  for (const auto& op : unit.circuit.ops()) {
    if (circuit::op_is_two_qubit(op.kind)) {
      expand_2q(op, intermediate);
    } else {
      intermediate.push_back(op);
    }
  }

  // Stage 2: virtual-Z lowering of all single-qubit gates to PRX.
  // Invariant: logical state = RZ(frame[q]) applied to the emitted state;
  // frames commute through CZ and are irrelevant at Z-basis measurement.
  Circuit native(unit.circuit.num_qubits());
  std::vector<double> frame(
      static_cast<std::size_t>(unit.circuit.num_qubits()), 0.0);
  for (const auto& op : intermediate) {
    if (op.kind == OpKind::kBarrier || op.kind == OpKind::kMeasure ||
        op.kind == OpKind::kCz) {
      native.append(op);
      continue;
    }
    const U3 u = u3_of(op);
    const auto q = static_cast<std::size_t>(op.qubits[0]);
    if (!is_multiple_of_two_pi(u.theta)) {
      native.prx(u.theta, kHalfPi - u.lambda - frame[q], op.qubits[0]);
    }
    frame[q] += u.phi + u.lambda;
  }
  unit.circuit = std::move(native);
  unit.dialect = Dialect::kNative;
}

// ---------------------------------------------------------------------------
// Peephole optimization
// ---------------------------------------------------------------------------

void PeepholePass::run(CompilationUnit& unit,
                       const qdmi::DeviceInterface& device) const {
  (void)device;
  expects(unit.dialect == Dialect::kNative,
          "PeepholePass: expected the native dialect");

  std::vector<Operation> ops(unit.circuit.ops().begin(),
                             unit.circuit.ops().end());
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 32) {
    changed = false;
    // last_touch[q]: index into `result` of the last op acting on q.
    std::vector<long> last_touch(
        static_cast<std::size_t>(unit.circuit.num_qubits()), -1);
    std::vector<Operation> result;
    result.reserve(ops.size());

    const auto touch = [&](const Operation& op) {
      for (int q : op.qubits)
        last_touch[static_cast<std::size_t>(q)] =
            static_cast<long>(result.size());
    };

    for (const auto& op : ops) {
      if (op.kind == OpKind::kPrx && is_multiple_of_two_pi(op.params[0])) {
        changed = true;
        continue;  // identity rotation
      }
      if (op.kind == OpKind::kPrx) {
        const auto q = static_cast<std::size_t>(op.qubits[0]);
        const long prev = last_touch[q];
        if (prev >= 0) {
          Operation& before = result[static_cast<std::size_t>(prev)];
          if (before.kind == OpKind::kPrx && before.qubits == op.qubits &&
              std::abs(std::remainder(before.params[1] - op.params[1],
                                      2.0 * M_PI)) < 1e-12) {
            before.params[0] += op.params[0];  // same-axis fusion
            changed = true;
            continue;
          }
        }
      }
      if (op.kind == OpKind::kCz) {
        const auto a = static_cast<std::size_t>(op.qubits[0]);
        const auto b = static_cast<std::size_t>(op.qubits[1]);
        const long pa = last_touch[a];
        if (pa >= 0 && pa == last_touch[b]) {
          const Operation& before = result[static_cast<std::size_t>(pa)];
          if (before.kind == OpKind::kCz &&
              ((before.qubits[0] == op.qubits[0] &&
                before.qubits[1] == op.qubits[1]) ||
               (before.qubits[0] == op.qubits[1] &&
                before.qubits[1] == op.qubits[0]))) {
            // CZ . CZ = I: drop both. Mark the earlier one as identity PRX
            // so indices stay stable, and skip this one.
            result[static_cast<std::size_t>(pa)] = {OpKind::kPrx,
                                                    {op.qubits[0]},
                                                    {0.0, 0.0}};
            changed = true;
            continue;
          }
        }
      }
      if (op.kind == OpKind::kBarrier) {
        std::fill(last_touch.begin(), last_touch.end(),
                  static_cast<long>(result.size()));
        result.push_back(op);
        continue;
      }
      touch(op);
      result.push_back(op);
    }
    ops = std::move(result);
  }

  Circuit cleaned(unit.circuit.num_qubits());
  for (auto& op : ops) {
    if (op.kind == OpKind::kPrx && is_multiple_of_two_pi(op.params[0]))
      continue;  // identities introduced by CZ cancellation
    cleaned.append(std::move(op));
  }
  unit.circuit = std::move(cleaned);
}

// ---------------------------------------------------------------------------
// Pipeline assembly
// ---------------------------------------------------------------------------

PassManager standard_pipeline(const CompilerOptions& options) {
  PassManager pm;
  pm.add(std::make_unique<PlacementPass>(options.placement));
  pm.add(std::make_unique<RoutingPass>(options.fidelity_aware_routing));
  pm.add(std::make_unique<NativeDecompositionPass>());
  if (options.optimize) pm.add(std::make_unique<PeepholePass>());
  return pm;
}

std::string CompiledProgram::describe() const {
  std::string report = "compilation report\n  passes:";
  for (const auto& pass : pass_trace) report += " " + pass;
  report += "\n  initial layout (virtual -> physical):";
  for (std::size_t v = 0; v < initial_layout.size(); ++v)
    report += " q" + std::to_string(v) + "->q" +
              std::to_string(initial_layout[v]);
  report += "\n  native gates: " + std::to_string(native_gate_count);
  report += " (2q: " +
            std::to_string(native_circuit.two_qubit_gate_count()) +
            ", SWAPs routed: " + std::to_string(swap_count) + ")";
  report += "\n  depth: " + std::to_string(native_circuit.depth());
  report += "\n  native program:\n";
  for (const auto& op : native_circuit.ops())
    report += "    " + circuit::to_string(op) + "\n";
  return report;
}

CompiledProgram compile(const circuit::Circuit& circuit,
                        const qdmi::DeviceInterface& device,
                        const CompilerOptions& options) {
  expects(circuit.num_qubits() <= device.num_qubits(),
          "compile: circuit does not fit the device");
  CompilationUnit unit;
  unit.circuit = circuit;
  unit.dialect = Dialect::kCore;
  standard_pipeline(options).run(unit, device);

  CompiledProgram program;
  program.native_circuit = std::move(unit.circuit);
  program.initial_layout = std::move(unit.layout);
  program.pass_trace = std::move(unit.trace);
  program.pass_gate_counts = std::move(unit.trace_gate_counts);
  program.native_gate_count = program.native_circuit.gate_count();
  program.swap_count = unit.swaps_inserted;
  return program;
}

}  // namespace hpcqc::mqss
