#include "hpcqc/mqss/compile_farm.hpp"

#include <numeric>

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

CompileFarm::CompileFarm(std::size_t workers) {
  executed_.resize(workers == 0 ? 1 : workers, 0);
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

CompileFarm::~CompileFarm() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void CompileFarm::enqueue(std::function<void()> task) {
  expects(task != nullptr, "CompileFarm::enqueue: null task");
  if (threads_.empty()) {
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    ++executed_[0];
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void CompileFarm::worker_loop(std::size_t worker_index) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++executed_[worker_index];
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void CompileFarm::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::uint64_t CompileFarm::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::accumulate(executed_.begin(), executed_.end(),
                         std::uint64_t{0});
}

std::vector<std::uint64_t> CompileFarm::per_worker_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

}  // namespace hpcqc::mqss
