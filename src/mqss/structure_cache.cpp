#include "hpcqc/mqss/structure_cache.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

StructureCache::StructureCache(std::size_t capacity) : capacity_(capacity) {
  expects(capacity > 0, "StructureCache: capacity must be positive");
}

void StructureCache::evict_excess_locked() {
  while (entries_.size() > capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  stats_.size = entries_.size();
}

StructureCache::Lookup StructureCache::get_or_compile(
    std::uint64_t key, const Factory& factory) {
  std::promise<Value> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // A prefetched entry's first get still counts a miss: the structure
      // compile happened on this key's behalf since the last get, and
      // counting it a hit would make stats depend on worker timing.
      const bool was_prefetched = it->second.prefetched;
      it->second.prefetched = false;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      if (was_prefetched) {
        ++stats_.misses;
      } else {
        ++stats_.hits;
      }
      return {it->second.value, !was_prefetched};
    }
    const auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      ++stats_.misses;
      ++stats_.single_flight_joins;
      std::shared_future<Value> future = flight->second;
      lock.unlock();
      Value value = future.get();  // rethrows the compiler's exception
      std::lock_guard<std::mutex> relock(mutex_);
      const auto done = entries_.find(key);
      if (done != entries_.end()) done->second.prefetched = false;
      return {std::move(value), false};
    }
    ++stats_.misses;
    inflight_.emplace(key, promise.get_future().share());
  }

  Value value;
  try {
    value = factory();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    lru_.push_front(key);
    entries_[key] = Entry{value, false, lru_.begin()};
    evict_excess_locked();
  }
  promise.set_value(value);
  return {std::move(value), false};
}

void StructureCache::prefetch(std::uint64_t key, const Factory& factory) {
  std::promise<Value> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.contains(key) || inflight_.contains(key)) return;
    inflight_.emplace(key, promise.get_future().share());
  }
  Value value;
  try {
    value = factory();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    // Waiters joined to this flight see the exception; nobody else does —
    // the next foreground get recompiles and throws on its own thread.
    promise.set_exception(std::current_exception());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    lru_.push_front(key);
    entries_[key] = Entry{value, true, lru_.begin()};
    evict_excess_locked();
  }
  promise.set_value(std::move(value));
}

void StructureCache::set_capacity(std::size_t capacity) {
  expects(capacity > 0, "StructureCache: capacity must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_excess_locked();
}

std::size_t StructureCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void StructureCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.size = 0;
}

StructureCacheStats StructureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hpcqc::mqss
