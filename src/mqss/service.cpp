#include "hpcqc/mqss/service.hpp"

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

QpuService::QpuService(device::DeviceModel& device,
                       const qdmi::DeviceInterface& qdmi, Rng& rng,
                       CompilerOptions options)
    : device_(&device), qdmi_(&qdmi), rng_(&rng), options_(options) {}

void QpuService::set_fault_context(const fault::FaultInjector* injector,
                                   const SimClock* clock) {
  injector_ = injector;
  clock_ = clock;
}

void QpuService::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_runs_ = m_runs_emulated_ = m_cache_hits_ = m_cache_misses_ = nullptr;
    m_cache_evictions_ = m_structure_hits_ = m_structure_misses_ = nullptr;
    m_cache_hit_rate_ = m_structure_size_ = nullptr;
    return;
  }
  m_runs_ = &registry->counter("mqss.runs");
  m_runs_emulated_ = &registry->counter("mqss.runs_emulated");
  m_cache_hits_ = &registry->counter("mqss.compile_cache_hits");
  m_cache_misses_ = &registry->counter("mqss.compile_cache_misses");
  m_cache_evictions_ = &registry->counter("mqss.compile_cache_evictions");
  m_structure_hits_ = &registry->counter("mqss.structure_cache_hits");
  m_structure_misses_ = &registry->counter("mqss.structure_cache_misses");
  m_cache_hit_rate_ = &registry->gauge("mqss.compile_cache_hit_rate");
  m_structure_size_ = &registry->gauge("mqss.structure_cache_size");
}

namespace {

/// Forwards device batch progress into instant events on the execute span.
struct ExecSpanObserver final : device::ExecObserver {
  obs::Span* span = nullptr;

  void on_shot_batch(std::size_t batch_index, std::size_t first_shot,
                     std::size_t shots_in_batch, std::size_t errored_shots,
                     Seconds /*elapsed*/) override {
    span->add_event("shot-batch-" + std::to_string(batch_index),
                    "shots " + std::to_string(first_shot) + "+" +
                        std::to_string(shots_in_batch) + ", " +
                        std::to_string(errored_shots) + " errored");
  }
};

/// FNV-1a fold of the QDMI view's per-qubit / per-coupler kOperational
/// bits. This is what keys masked-topology state into the compile cache:
/// a view that masks qubits without bumping the device's calibration epoch
/// (telemetry-driven sensors, health overlays) still changes the
/// fingerprint, so stale placements can never be served after a mask flip.
std::uint64_t health_fingerprint(const qdmi::DeviceInterface& device) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  const int num_qubits = device.num_qubits();
  for (int q = 0; q < num_qubits; ++q)
    mix(device.qubit_property(qdmi::QubitProperty::kOperational, q) >= 0.5
            ? 0x71ULL
            : 0x70ULL);
  for (const auto& [a, b] : device.coupling_map())
    mix(device.coupler_property(qdmi::CouplerProperty::kOperational, a, b) >=
                0.5
            ? 0x63ULL
            : 0x62ULL);
  return hash;
}

}  // namespace

bool QpuService::fault_active(fault::FaultSite site) const {
  return injector_ != nullptr && clock_ != nullptr &&
         injector_->active(site, clock_->now());
}

std::uint64_t QpuService::cache_key(std::uint64_t structural_hash) const {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  mix(structural_hash);
  // A recalibration bumps the device's epoch counter; entries keyed under
  // the old epoch were compiled against metrics the JIT must no longer
  // trust. (The counter — not the calibration timestamp — is keyed: two
  // calibrations can land at the same simulated instant.)
  mix(device_->calibration_epoch());
  mix(health_fingerprint(*qdmi_));
  mix(static_cast<std::uint64_t>(options_.placement) + 1);
  mix(options_.optimize ? 0x6f7074ULL : 0x726177ULL);
  mix(options_.fidelity_aware_routing ? 0x666964ULL : 0x686f70ULL);
  // Device identity: two fleet devices with identical registers, epochs,
  // and masks still key disjoint entries.
  mix(identity_salt_);
  return hash;
}

void QpuService::set_device_identity(const std::string& name) {
  device_identity_ = name;
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  identity_salt_ = hash;
}

void QpuService::mirror_cache_metrics(bool hit, bool structure) const {
  const StructureCacheStats stats = cache_.stats();
  if (structure) {
    if (hit && m_structure_hits_ != nullptr) m_structure_hits_->inc();
    if (!hit && m_structure_misses_ != nullptr) m_structure_misses_->inc();
  } else {
    if (hit && m_cache_hits_ != nullptr) m_cache_hits_->inc();
    if (!hit && m_cache_misses_ != nullptr) m_cache_misses_->inc();
  }
  if (m_cache_evictions_ != nullptr && stats.evictions > mirrored_evictions_)
    m_cache_evictions_->inc(
        static_cast<double>(stats.evictions - mirrored_evictions_));
  mirrored_evictions_ = stats.evictions;
  if (m_cache_hit_rate_ != nullptr) m_cache_hit_rate_->set(stats.hit_rate());
  if (m_structure_size_ != nullptr)
    m_structure_size_->set(static_cast<double>(stats.size));
}

StructureCache::Lookup QpuService::lookup_concrete(
    const circuit::Circuit& circuit) const {
  const std::uint64_t key = cache_key(circuit.structural_hash());
  auto lookup = cache_.get_or_compile(key, [this, &circuit] {
    return std::make_shared<const CompiledTemplate>(
        as_template(compile(circuit, *qdmi_, options_)));
  });
  mirror_cache_metrics(lookup.hit, /*structure=*/false);
  return lookup;
}

StructureCache::Lookup QpuService::lookup_structure(
    const circuit::ParametricCircuit& circuit) const {
  const std::uint64_t key = cache_key(circuit.structural_hash());
  auto lookup = cache_.get_or_compile(key, [this, &circuit] {
    return std::make_shared<const CompiledTemplate>(
        compile_template(circuit, *qdmi_, options_));
  });
  mirror_cache_metrics(lookup.hit, /*structure=*/true);
  return lookup;
}

RunResult QpuService::run(const circuit::Circuit& circuit, std::size_t shots,
                          obs::TraceContext parent) {
  expects(shots > 0, "QpuService::run: need at least one shot");
  if (m_runs_ != nullptr) m_runs_->inc();
  obs::Span span;  // inert without a tracer
  if (tracer_ != nullptr) {
    span = tracer_->span("qpu.run", parent);
    span.set_attribute("shots", std::to_string(shots));
  }
  try {
    if (fault_active(fault::FaultSite::kQdmiQuery))
      throw TransientError("QpuService::run: QDMI metric query timed out",
                           ErrorCode::kTimeout);
    const auto status = qdmi_->status();
    if (status == qdmi::DeviceStatus::kOffline ||
        status == qdmi::DeviceStatus::kMaintenance)
      throw TransientError(std::string("QpuService::run: QPU unavailable (") +
                               qdmi::to_string(status) + ")",
                           ErrorCode::kDeviceUnavailable);
    const CompiledProgram program = compile_traced(circuit, span);
    return finish_run(program, shots, span);
  } catch (const Error& error) {
    if (span) {
      span.add_event("error", error.what());
      span.set_status(obs::SpanStatus::kError);
    }
    throw;  // the Span destructor ends the span with the error status
  }
}

RunResult QpuService::run_parametric(const circuit::ParametricCircuit& circuit,
                                     const std::map<std::string, double>& binding,
                                     std::size_t shots,
                                     obs::TraceContext parent) {
  expects(shots > 0, "QpuService::run_parametric: need at least one shot");
  if (m_runs_ != nullptr) m_runs_->inc();
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->span("qpu.run", parent);
    span.set_attribute("shots", std::to_string(shots));
    span.set_attribute("parametric", "true");
  }
  try {
    if (fault_active(fault::FaultSite::kQdmiQuery))
      throw TransientError(
          "QpuService::run_parametric: QDMI metric query timed out",
          ErrorCode::kTimeout);
    const auto status = qdmi_->status();
    if (status == qdmi::DeviceStatus::kOffline ||
        status == qdmi::DeviceStatus::kMaintenance)
      throw TransientError(
          std::string("QpuService::run_parametric: QPU unavailable (") +
              qdmi::to_string(status) + ")",
          ErrorCode::kDeviceUnavailable);
    const CompiledProgram program =
        compile_parametric_traced(circuit, binding, span);
    return finish_run(program, shots, span);
  } catch (const Error& error) {
    if (span) {
      span.add_event("error", error.what());
      span.set_status(obs::SpanStatus::kError);
    }
    throw;
  }
}

RunResult QpuService::finish_run(const CompiledProgram& program,
                                 std::size_t shots, obs::Span& span) {
  if (fault_active(fault::FaultSite::kDeviceExecution))
    throw TransientError("QpuService::run: QPU aborted the job",
                         ErrorCode::kDeviceUnavailable);
  obs::Span exec_span;
  ExecSpanObserver batch_events;
  device::ExecObserver* observer = nullptr;
  if (span) {
    exec_span = span.child("execute");
    batch_events.span = &exec_span;
    observer = &batch_events;
  }
  const auto exec = device_->execute(program.native_circuit, shots, *rng_,
                                     device::ExecutionMode::kAuto, observer);
  if (exec_span) {
    exec_span.set_attribute("estimated_fidelity",
                            std::to_string(exec.estimated_fidelity));
    exec_span.set_attribute("qpu_time_s", std::to_string(exec.wall_time));
    exec_span.end();
  }
  if (fault_active(fault::FaultSite::kNetworkTransfer))
    throw TransientError("QpuService::run: result transfer corrupted",
                         ErrorCode::kNetwork);
  if (span) span.add_event("result-transferred");
  RunResult result;
  result.counts = exec.counts;
  result.estimated_fidelity = exec.estimated_fidelity;
  result.qpu_time = exec.wall_time;
  result.native_gate_count = program.native_gate_count;
  result.swap_count = program.swap_count;
  result.initial_layout = program.initial_layout;
  return result;
}

void QpuService::annotate_cache_stats(obs::Span& span) const {
  const StructureCacheStats stats = cache_.stats();
  span.set_attribute("cache_hits", std::to_string(stats.hits));
  span.set_attribute("cache_misses", std::to_string(stats.misses));
  span.set_attribute("cache_evictions", std::to_string(stats.evictions));
  span.set_attribute("cache_size", std::to_string(stats.size));
}

CompiledProgram QpuService::compile_traced(const circuit::Circuit& circuit,
                                           obs::Span& parent) {
  if (!parent) return compile_only(circuit);
  obs::Span compile_span = parent.child("compile");
  CompiledProgram program;
  bool hit = false;
  if (cache_enabled_) {
    auto lookup = lookup_concrete(circuit);
    program = lookup.value->base;
    hit = lookup.hit;
  } else {
    program = compile(circuit, *qdmi_, options_);
  }
  compile_span.set_attribute("cache", hit ? "hit" : "miss");
  compile_span.set_attribute("calibration_epoch",
                             std::to_string(device_->calibration_epoch()));
  if (!hit) {
    // Per-pass child spans reconstructed from the pass trace (zero duration
    // on the simulated clock: JIT compilation is modeled as instantaneous,
    // its cost lives in the QRM's job_overhead).
    for (std::size_t i = 0; i < program.pass_trace.size(); ++i) {
      obs::Span pass_span = compile_span.child("pass:" +
                                               program.pass_trace[i]);
      if (i < program.pass_gate_counts.size())
        pass_span.set_attribute(
            "gates", std::to_string(program.pass_gate_counts[i]));
    }
  }
  compile_span.set_attribute("native_gates",
                             std::to_string(program.native_gate_count));
  compile_span.set_attribute("swaps", std::to_string(program.swap_count));
  annotate_cache_stats(compile_span);
  return program;
}

CompiledProgram QpuService::compile_parametric_traced(
    const circuit::ParametricCircuit& circuit,
    const std::map<std::string, double>& binding, obs::Span& parent) {
  if (!parent) return compile_parametric(circuit, binding);
  obs::Span compile_span = parent.child("compile");
  std::shared_ptr<const CompiledTemplate> tmpl;
  bool hit = false;
  {
    obs::Span structure_span = compile_span.child("compile.structure");
    if (cache_enabled_) {
      auto lookup = lookup_structure(circuit);
      tmpl = lookup.value;
      hit = lookup.hit;
    } else {
      tmpl = std::make_shared<const CompiledTemplate>(
          compile_template(circuit, *qdmi_, options_));
    }
    structure_span.set_attribute("cache", hit ? "hit" : "miss");
    structure_span.set_attribute("calibration_epoch",
                                 std::to_string(device_->calibration_epoch()));
    if (!hit) {
      for (std::size_t i = 0; i < tmpl->base.pass_trace.size(); ++i) {
        obs::Span pass_span =
            structure_span.child("pass:" + tmpl->base.pass_trace[i]);
        if (i < tmpl->base.pass_gate_counts.size())
          pass_span.set_attribute(
              "gates", std::to_string(tmpl->base.pass_gate_counts[i]));
      }
    }
  }
  CompiledProgram program;
  {
    obs::Span bind_span = compile_span.child("compile.bind");
    program = tmpl->bind(binding);
    bind_span.set_attribute("slots", std::to_string(tmpl->slots.size()));
    bind_span.set_attribute("parameters",
                            std::to_string(tmpl->parameters.size()));
  }
  compile_span.set_attribute("cache", hit ? "hit" : "miss");
  compile_span.set_attribute("native_gates",
                             std::to_string(program.native_gate_count));
  compile_span.set_attribute("swaps", std::to_string(program.swap_count));
  annotate_cache_stats(compile_span);
  return program;
}

RunResult QpuService::run_emulated(const circuit::Circuit& circuit,
                                   std::size_t shots,
                                   obs::TraceContext parent) {
  expects(shots > 0, "QpuService::run_emulated: need at least one shot");
  if (m_runs_emulated_ != nullptr) m_runs_emulated_->inc();
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->span("qpu.run_emulated", parent);
    span.set_attribute("shots", std::to_string(shots));
  }
  // Compilation reuses the cache and the twin's last-known metrics — the
  // emulator keeps serving even while the physical machine (and its live
  // QDMI feed) is down.
  const CompiledProgram program = compile_traced(circuit, span);
  RunResult result;
  result.counts = circuit::run_ideal(program.native_circuit, shots, *rng_);
  result.estimated_fidelity = 1.0;  // noiseless by construction
  result.qpu_time = 0.0;            // no QPU seconds consumed
  result.native_gate_count = program.native_gate_count;
  result.swap_count = program.swap_count;
  result.initial_layout = program.initial_layout;
  result.emulated = true;
  return result;
}

CompiledProgram QpuService::compile_only(const circuit::Circuit& circuit) const {
  if (!cache_enabled_) return compile(circuit, *qdmi_, options_);
  return lookup_concrete(circuit).value->base;
}

std::shared_ptr<const CompiledTemplate> QpuService::compile_structure(
    const circuit::ParametricCircuit& circuit) const {
  if (!cache_enabled_)
    return std::make_shared<const CompiledTemplate>(
        compile_template(circuit, *qdmi_, options_));
  return lookup_structure(circuit).value;
}

CompiledProgram QpuService::compile_parametric(
    const circuit::ParametricCircuit& circuit,
    const std::map<std::string, double>& binding) const {
  return compile_structure(circuit)->bind(binding);
}

void QpuService::prefetch_structure(
    std::shared_ptr<const circuit::ParametricCircuit> circuit) const {
  if (farm_ == nullptr || !cache_enabled_ || circuit == nullptr) return;
  // The key (and its QDMI health queries) is computed here, on the
  // orchestration thread — workers only run the pure compile.
  const std::uint64_t key = cache_key(circuit->structural_hash());
  StructureCache* cache = &cache_;
  const qdmi::DeviceInterface* qdmi = qdmi_;
  const CompilerOptions options = options_;
  farm_->enqueue([cache, key, qdmi, options, circuit = std::move(circuit)] {
    cache->prefetch(key, [&] {
      return std::make_shared<const CompiledTemplate>(
          compile_template(*circuit, *qdmi, options));
    });
  });
}

void QpuService::set_compile_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) cache_.clear();
}

void QpuService::set_compile_cache_capacity(std::size_t capacity) {
  expects(capacity > 0, "compile cache capacity must be positive");
  cache_.set_capacity(capacity);
}

net::Payload QpuService::serialize(const RunResult& result,
                                   net::ResultFormat format) const {
  switch (format) {
    case net::ResultFormat::kHistogram:
      return net::encode_histogram(result.counts);
    case net::ResultFormat::kBitstringsPerShot: {
      // Expand the histogram back into per-shot records (order is not
      // semantically meaningful for terminal measurements).
      std::vector<std::uint64_t> samples;
      samples.reserve(result.counts.total_shots());
      for (const auto& [outcome, count] : result.counts.raw())
        samples.insert(samples.end(), count, outcome);
      return net::encode_bitstrings(samples, result.counts.num_qubits());
    }
    case net::ResultFormat::kRawIq: {
      // Synthesize IQ-plane points consistent with the classified bits:
      // |0> clusters near (+1, 0), |1> near (-1, 0), with spread.
      std::vector<float> iq;
      const int nq = result.counts.num_qubits();
      iq.reserve(2 * static_cast<std::size_t>(nq) *
                 result.counts.total_shots());
      for (const auto& [outcome, count] : result.counts.raw()) {
        for (std::uint64_t s = 0; s < count; ++s) {
          for (int q = 0; q < nq; ++q) {
            const double center = (outcome >> q) & 1 ? -1.0 : 1.0;
            iq.push_back(static_cast<float>(center + 0.2 * rng_->normal()));
            iq.push_back(static_cast<float>(0.2 * rng_->normal()));
          }
        }
      }
      return net::encode_raw_iq(iq, nq, result.counts.total_shots());
    }
  }
  throw PermanentError("QpuService::serialize: unhandled format",
                       ErrorCode::kInternal);
}

}  // namespace hpcqc::mqss
