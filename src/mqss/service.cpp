#include "hpcqc/mqss/service.hpp"

#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

QpuService::QpuService(device::DeviceModel& device,
                       const qdmi::DeviceInterface& qdmi, Rng& rng,
                       CompilerOptions options)
    : device_(&device), qdmi_(&qdmi), rng_(&rng), options_(options) {}

RunResult QpuService::run(const circuit::Circuit& circuit, std::size_t shots) {
  expects(shots > 0, "QpuService::run: need at least one shot");
  const CompiledProgram program = compile_only(circuit);
  const auto exec = device_->execute(program.native_circuit, shots, *rng_);
  RunResult result;
  result.counts = exec.counts;
  result.estimated_fidelity = exec.estimated_fidelity;
  result.qpu_time = exec.wall_time;
  result.native_gate_count = program.native_gate_count;
  result.swap_count = program.swap_count;
  result.initial_layout = program.initial_layout;
  return result;
}

CompiledProgram QpuService::compile_only(const circuit::Circuit& circuit) const {
  if (!cache_enabled_) return compile(circuit, *qdmi_, options_);

  // A recalibration moves the epoch; stale entries were compiled against
  // metrics the JIT must no longer trust.
  const double epoch = device_->calibration().calibrated_at;
  if (epoch != cache_epoch_) {
    cache_.clear();
    cache_epoch_ = epoch;
  }
  const std::uint64_t key = circuit.structural_hash();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  auto program = compile(circuit, *qdmi_, options_);
  cache_.emplace(key, program);
  return program;
}

void QpuService::set_compile_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) {
    cache_.clear();
    cache_epoch_ = -1.0;
  }
}

net::Payload QpuService::serialize(const RunResult& result,
                                   net::ResultFormat format) const {
  switch (format) {
    case net::ResultFormat::kHistogram:
      return net::encode_histogram(result.counts);
    case net::ResultFormat::kBitstringsPerShot: {
      // Expand the histogram back into per-shot records (order is not
      // semantically meaningful for terminal measurements).
      std::vector<std::uint64_t> samples;
      samples.reserve(result.counts.total_shots());
      for (const auto& [outcome, count] : result.counts.raw())
        samples.insert(samples.end(), count, outcome);
      return net::encode_bitstrings(samples, result.counts.num_qubits());
    }
    case net::ResultFormat::kRawIq: {
      // Synthesize IQ-plane points consistent with the classified bits:
      // |0> clusters near (+1, 0), |1> near (-1, 0), with spread.
      std::vector<float> iq;
      const int nq = result.counts.num_qubits();
      iq.reserve(2 * static_cast<std::size_t>(nq) *
                 result.counts.total_shots());
      for (const auto& [outcome, count] : result.counts.raw()) {
        for (std::uint64_t s = 0; s < count; ++s) {
          for (int q = 0; q < nq; ++q) {
            const double center = (outcome >> q) & 1 ? -1.0 : 1.0;
            iq.push_back(static_cast<float>(center + 0.2 * rng_->normal()));
            iq.push_back(static_cast<float>(0.2 * rng_->normal()));
          }
        }
      }
      return net::encode_raw_iq(iq, nq, result.counts.total_shots());
    }
  }
  throw Error("QpuService::serialize: unhandled format");
}

}  // namespace hpcqc::mqss
