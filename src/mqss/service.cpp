#include "hpcqc/mqss/service.hpp"

#include "hpcqc/circuit/execute.hpp"
#include "hpcqc/common/error.hpp"

namespace hpcqc::mqss {

QpuService::QpuService(device::DeviceModel& device,
                       const qdmi::DeviceInterface& qdmi, Rng& rng,
                       CompilerOptions options)
    : device_(&device), qdmi_(&qdmi), rng_(&rng), options_(options) {}

void QpuService::set_fault_context(const fault::FaultInjector* injector,
                                   const SimClock* clock) {
  injector_ = injector;
  clock_ = clock;
}

void QpuService::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_runs_ = m_runs_emulated_ = m_cache_hits_ = m_cache_misses_ = nullptr;
    return;
  }
  m_runs_ = &registry->counter("mqss.runs");
  m_runs_emulated_ = &registry->counter("mqss.runs_emulated");
  m_cache_hits_ = &registry->counter("mqss.compile_cache_hits");
  m_cache_misses_ = &registry->counter("mqss.compile_cache_misses");
}

namespace {

/// Forwards device batch progress into instant events on the execute span.
struct ExecSpanObserver final : device::ExecObserver {
  obs::Span* span = nullptr;

  void on_shot_batch(std::size_t batch_index, std::size_t first_shot,
                     std::size_t shots_in_batch, std::size_t errored_shots,
                     Seconds /*elapsed*/) override {
    span->add_event("shot-batch-" + std::to_string(batch_index),
                    "shots " + std::to_string(first_shot) + "+" +
                        std::to_string(shots_in_batch) + ", " +
                        std::to_string(errored_shots) + " errored");
  }
};

}  // namespace

bool QpuService::fault_active(fault::FaultSite site) const {
  return injector_ != nullptr && clock_ != nullptr &&
         injector_->active(site, clock_->now());
}

RunResult QpuService::run(const circuit::Circuit& circuit, std::size_t shots,
                          obs::TraceContext parent) {
  expects(shots > 0, "QpuService::run: need at least one shot");
  if (m_runs_ != nullptr) m_runs_->inc();
  obs::Span span;  // inert without a tracer
  if (tracer_ != nullptr) {
    span = tracer_->span("qpu.run", parent);
    span.set_attribute("shots", std::to_string(shots));
  }
  try {
    if (fault_active(fault::FaultSite::kQdmiQuery))
      throw TransientError("QpuService::run: QDMI metric query timed out",
                           ErrorCode::kTimeout);
    const auto status = qdmi_->status();
    if (status == qdmi::DeviceStatus::kOffline ||
        status == qdmi::DeviceStatus::kMaintenance)
      throw TransientError(std::string("QpuService::run: QPU unavailable (") +
                               qdmi::to_string(status) + ")",
                           ErrorCode::kDeviceUnavailable);
    const CompiledProgram program = compile_traced(circuit, span);
    if (fault_active(fault::FaultSite::kDeviceExecution))
      throw TransientError("QpuService::run: QPU aborted the job",
                           ErrorCode::kDeviceUnavailable);
    obs::Span exec_span;
    ExecSpanObserver batch_events;
    device::ExecObserver* observer = nullptr;
    if (span) {
      exec_span = span.child("execute");
      batch_events.span = &exec_span;
      observer = &batch_events;
    }
    const auto exec =
        device_->execute(program.native_circuit, shots, *rng_,
                         device::ExecutionMode::kAuto, observer);
    if (exec_span) {
      exec_span.set_attribute("estimated_fidelity",
                              std::to_string(exec.estimated_fidelity));
      exec_span.set_attribute("qpu_time_s", std::to_string(exec.wall_time));
      exec_span.end();
    }
    if (fault_active(fault::FaultSite::kNetworkTransfer))
      throw TransientError("QpuService::run: result transfer corrupted",
                           ErrorCode::kNetwork);
    if (span) span.add_event("result-transferred");
    RunResult result;
    result.counts = exec.counts;
    result.estimated_fidelity = exec.estimated_fidelity;
    result.qpu_time = exec.wall_time;
    result.native_gate_count = program.native_gate_count;
    result.swap_count = program.swap_count;
    result.initial_layout = program.initial_layout;
    return result;
  } catch (const Error& error) {
    if (span) {
      span.add_event("error", error.what());
      span.set_status(obs::SpanStatus::kError);
    }
    throw;  // the Span destructor ends the span with the error status
  }
}

CompiledProgram QpuService::compile_traced(const circuit::Circuit& circuit,
                                           obs::Span& parent) {
  if (!parent) return compile_only(circuit);
  obs::Span compile_span = parent.child("compile");
  const std::size_t hits_before = cache_hits_;
  const CompiledProgram program = compile_only(circuit);
  const bool hit = cache_hits_ > hits_before;
  compile_span.set_attribute("cache", hit ? "hit" : "miss");
  compile_span.set_attribute("calibration_epoch",
                             std::to_string(device_->calibration_epoch()));
  if (!hit) {
    // Per-pass child spans reconstructed from the pass trace (zero duration
    // on the simulated clock: JIT compilation is modeled as instantaneous,
    // its cost lives in the QRM's job_overhead).
    for (std::size_t i = 0; i < program.pass_trace.size(); ++i) {
      obs::Span pass_span = compile_span.child("pass:" +
                                               program.pass_trace[i]);
      if (i < program.pass_gate_counts.size())
        pass_span.set_attribute(
            "gates", std::to_string(program.pass_gate_counts[i]));
    }
  }
  compile_span.set_attribute("native_gates",
                             std::to_string(program.native_gate_count));
  compile_span.set_attribute("swaps", std::to_string(program.swap_count));
  return program;
}

RunResult QpuService::run_emulated(const circuit::Circuit& circuit,
                                   std::size_t shots,
                                   obs::TraceContext parent) {
  expects(shots > 0, "QpuService::run_emulated: need at least one shot");
  if (m_runs_emulated_ != nullptr) m_runs_emulated_->inc();
  obs::Span span;
  if (tracer_ != nullptr) {
    span = tracer_->span("qpu.run_emulated", parent);
    span.set_attribute("shots", std::to_string(shots));
  }
  // Compilation reuses the cache and the twin's last-known metrics — the
  // emulator keeps serving even while the physical machine (and its live
  // QDMI feed) is down.
  const CompiledProgram program = compile_traced(circuit, span);
  RunResult result;
  result.counts = circuit::run_ideal(program.native_circuit, shots, *rng_);
  result.estimated_fidelity = 1.0;  // noiseless by construction
  result.qpu_time = 0.0;            // no QPU seconds consumed
  result.native_gate_count = program.native_gate_count;
  result.swap_count = program.swap_count;
  result.initial_layout = program.initial_layout;
  result.emulated = true;
  return result;
}

CompiledProgram QpuService::compile_only(const circuit::Circuit& circuit) const {
  if (!cache_enabled_) return compile(circuit, *qdmi_, options_);

  // A recalibration bumps the device's epoch counter; stale entries were
  // compiled against metrics the JIT must no longer trust. (The counter —
  // not the calibration timestamp — is the key: two calibrations can land
  // at the same simulated instant.)
  const std::uint64_t epoch = device_->calibration_epoch();
  if (epoch != cache_epoch_) {
    cache_.clear();
    cache_order_.clear();
    cache_epoch_ = epoch;
  }
  const std::uint64_t key = circuit.structural_hash();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    if (m_cache_hits_ != nullptr) m_cache_hits_->inc();
    return it->second;
  }
  ++cache_misses_;
  if (m_cache_misses_ != nullptr) m_cache_misses_->inc();
  auto program = compile(circuit, *qdmi_, options_);
  while (cache_.size() >= cache_capacity_ && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  cache_.emplace(key, program);
  cache_order_.push_back(key);
  return program;
}

void QpuService::set_compile_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) {
    cache_.clear();
    cache_order_.clear();
    cache_epoch_ = ~std::uint64_t{0};
  }
}

void QpuService::set_compile_cache_capacity(std::size_t capacity) {
  expects(capacity > 0, "compile cache capacity must be positive");
  cache_capacity_ = capacity;
  while (cache_.size() > cache_capacity_ && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
}

net::Payload QpuService::serialize(const RunResult& result,
                                   net::ResultFormat format) const {
  switch (format) {
    case net::ResultFormat::kHistogram:
      return net::encode_histogram(result.counts);
    case net::ResultFormat::kBitstringsPerShot: {
      // Expand the histogram back into per-shot records (order is not
      // semantically meaningful for terminal measurements).
      std::vector<std::uint64_t> samples;
      samples.reserve(result.counts.total_shots());
      for (const auto& [outcome, count] : result.counts.raw())
        samples.insert(samples.end(), count, outcome);
      return net::encode_bitstrings(samples, result.counts.num_qubits());
    }
    case net::ResultFormat::kRawIq: {
      // Synthesize IQ-plane points consistent with the classified bits:
      // |0> clusters near (+1, 0), |1> near (-1, 0), with spread.
      std::vector<float> iq;
      const int nq = result.counts.num_qubits();
      iq.reserve(2 * static_cast<std::size_t>(nq) *
                 result.counts.total_shots());
      for (const auto& [outcome, count] : result.counts.raw()) {
        for (std::uint64_t s = 0; s < count; ++s) {
          for (int q = 0; q < nq; ++q) {
            const double center = (outcome >> q) & 1 ? -1.0 : 1.0;
            iq.push_back(static_cast<float>(center + 0.2 * rng_->normal()));
            iq.push_back(static_cast<float>(0.2 * rng_->normal()));
          }
        }
      }
      return net::encode_raw_iq(iq, nq, result.counts.total_shots());
    }
  }
  throw PermanentError("QpuService::serialize: unhandled format",
                       ErrorCode::kInternal);
}

}  // namespace hpcqc::mqss
