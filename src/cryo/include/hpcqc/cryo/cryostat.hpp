#pragma once

#include <array>
#include <string>

#include "hpcqc/common/units.hpp"

namespace hpcqc::cryo {

/// Operating regime of the cryostat, derived from the MXC-stage temperature
/// and whether active cooling runs.
enum class CryoState {
  kOperating,    ///< at base temperature (MXC <= 100 mK) with cooling on
  kCoolingDown,  ///< cooling on, not yet at base
  kWarmingUp,    ///< cooling lost, temperature rising
  kWarm,         ///< near ambient
};

const char* to_string(CryoState state);

/// Tunables of the thermal model. Defaults reproduce the paper's §3.5
/// quantitative claims:
///  - after a cooling fault it takes ~2 minutes for the QPU to exceed 1 K
///    (log-space warm-up constant ~26 s ⇒ 10 mK→1 K in 2 min);
///  - a full cooldown from ambient takes 2–5 days depending on the thermal
///    mass (`thermal_mass_factor`) and the temperature reached.
struct CryostatParams {
  Kelvin ambient = celsius(21.0);
  Kelvin base_temperature = millikelvin(10.0);
  /// MXC must be below this for computation ("below 100 mK, and ideally
  /// back to 10 mK").
  Kelvin operating_threshold = millikelvin(100.0);
  /// Calibration survives excursions below this bound (§3.5).
  Kelvin calibration_preserved_below = 1.0;
  /// Log-space warm-up time constant when cooling is lost.
  Seconds warmup_log_tau = 26.0;
  /// Above this temperature the warm-up slows toward ambient with
  /// `warmup_high_tau` (exponential approach).
  Kelvin warmup_knee = 4.0;
  Seconds warmup_high_tau = hours(30.0);
  /// Cooldown proceeds at a constant log-temperature rate, two-regime:
  /// slow above the knee (pulse tubes against the full thermal mass),
  /// faster below it (dilution circuit, tiny heat capacities). Defaults
  /// give a ~2.8-day cooldown from ambient and ~9 h from a 1 K excursion.
  double cooldown_log_rate_high = 2.0 / days(1.0);  ///< d(ln T)/dt above knee
  double cooldown_log_rate_low = 6.0 / days(1.0);   ///< below knee
  /// Relative thermal mass of the cryostat; 1.0 gives a ~2.8-day full
  /// cooldown, larger systems take proportionally longer (up to ~5 days).
  double thermal_mass_factor = 1.0;
  /// Vacuum integrity survives this long warm before oxidation risk.
  Seconds vacuum_holds_warm_for = days(21.0);
};

/// Lumped-parameter thermal model of the dilution-refrigerator cold stage
/// (the "chandelier"'s mixing-chamber plate that carries the QPU). Tracks
/// the quantities §3.5's recovery procedure depends on: current and peak
/// temperature, active-cooling state, vacuum integrity, and cooldown /
/// warm-up timing.
class Cryostat {
public:
  explicit Cryostat(CryostatParams params = {});

  const CryostatParams& params() const { return params_; }

  Kelvin temperature() const { return temperature_; }
  /// Highest MXC temperature reached since operation was last (re)entered.
  Kelvin peak_since_operating() const { return peak_since_operating_; }

  bool cooling_active() const { return cooling_active_; }
  void set_cooling(bool active);

  bool vacuum_intact() const { return vacuum_intact_; }
  /// Deliberately opening (or physically moving) the cryostat vents it.
  void open_vessel();
  /// Pump-down restores vacuum; only allowed warm.
  void restore_vacuum();

  CryoState state() const;
  bool at_base() const { return temperature_ <= params_.operating_threshold; }

  /// True while the excursion has stayed below the 1 K bound, i.e. the
  /// calibration state is "largely maintained" and a quick recalibration
  /// suffices after recovery (§3.5).
  bool calibration_preserved() const;

  /// Advances the thermal state by `dt` (internally sub-stepped).
  void step(Seconds dt);

  /// Analytic estimate of the time to cool from `from` to the operating
  /// threshold with the current thermal mass.
  Seconds cooldown_time_from(Kelvin from) const;

  /// Analytic estimate of the time to warm from base to `target` after a
  /// cooling loss.
  Seconds warmup_time_to(Kelvin target) const;

  /// Resets the peak tracker (called when recovery completes).
  void acknowledge_recovery();

private:
  void step_once(Seconds dt);

  CryostatParams params_;
  Kelvin temperature_;
  Kelvin peak_since_operating_;
  bool cooling_active_ = true;
  bool vacuum_intact_ = true;
  Seconds warm_duration_ = 0.0;  ///< cumulative time spent near ambient
};

}  // namespace hpcqc::cryo
