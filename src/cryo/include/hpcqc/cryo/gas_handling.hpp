#pragma once

#include "hpcqc/common/units.hpp"

namespace hpcqc::cryo {

/// The cryogenic gas handling system: turbomolecular pumps circulating
/// low-pressure helium plus the compressor driving pneumatic valves. It is
/// the component that trips "when the cooling water temperature exceeds the
/// upper temperature limit" (§3.5) and the one serviced in the six-monthly
/// preventive-maintenance window (LN2 flush, tip-seal replacement).
class GasHandlingSystem {
public:
  struct Params {
    double water_temp_max_c = 25.0;  ///< cryostat-manufacturer upper limit
    double water_temp_min_c = 15.0;
    double ln2_capacity_l = 15.0;
    double ln2_weekly_use_l = 10.0;  ///< "approximately ten liters ... every week"
    Seconds tip_seal_lifetime = days(365.0);
  };

  GasHandlingSystem();
  explicit GasHandlingSystem(Params params);

  const Params& params() const { return params_; }

  bool running() const { return running_; }

  /// Feeds the current cooling-water temperature; exceeding the limit trips
  /// the pumps (returns true on a trip edge).
  bool update_water_temperature(double water_c);
  double water_temperature() const { return water_c_; }

  /// Manual restart after a trip; requires water back in range.
  void restart();
  void trip() { running_ = false; }

  double ln2_level_l() const { return ln2_level_l_; }
  /// Weekly on-site task: top the LN2 trap back up to capacity.
  void refill_ln2();
  /// True when the trap needs the weekly ten-liter top-up.
  bool ln2_low() const { return ln2_level_l_ < 0.3 * params_.ln2_capacity_l; }

  /// Remaining tip-seal life fraction in [0, 1].
  double tip_seal_health() const;
  /// Preventive-maintenance action: new tip seals.
  void replace_tip_seals();
  /// Preventive-maintenance action: flush accumulated ice/debris.
  void flush_ln2_system();
  bool needs_flush() const { return time_since_flush_ > days(183.0); }

  /// Advances consumption/wear clocks.
  void step(Seconds dt);

private:
  Params params_;
  bool running_ = true;
  double water_c_ = 20.0;
  double ln2_level_l_;
  Seconds tip_seal_age_ = 0.0;
  Seconds time_since_flush_ = 0.0;
};

}  // namespace hpcqc::cryo
