#include "hpcqc/cryo/gas_handling.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::cryo {

GasHandlingSystem::GasHandlingSystem() : GasHandlingSystem(Params{}) {}

GasHandlingSystem::GasHandlingSystem(Params params)
    : params_(params), ln2_level_l_(params.ln2_capacity_l) {
  expects(params_.water_temp_max_c > params_.water_temp_min_c,
          "GasHandlingSystem: invalid water temperature window");
  expects(params_.ln2_capacity_l > 0.0,
          "GasHandlingSystem: LN2 capacity must be positive");
}

bool GasHandlingSystem::update_water_temperature(double water_c) {
  water_c_ = water_c;
  if (running_ && water_c > params_.water_temp_max_c) {
    running_ = false;
    return true;
  }
  return false;
}

void GasHandlingSystem::restart() {
  ensure_state(water_c_ <= params_.water_temp_max_c,
               "GasHandlingSystem: cooling water still over temperature");
  running_ = true;
}

void GasHandlingSystem::refill_ln2() { ln2_level_l_ = params_.ln2_capacity_l; }

double GasHandlingSystem::tip_seal_health() const {
  return std::clamp(1.0 - tip_seal_age_ / params_.tip_seal_lifetime, 0.0, 1.0);
}

void GasHandlingSystem::replace_tip_seals() { tip_seal_age_ = 0.0; }

void GasHandlingSystem::flush_ln2_system() { time_since_flush_ = 0.0; }

void GasHandlingSystem::step(Seconds dt) {
  expects(dt >= 0.0, "GasHandlingSystem::step: negative interval");
  if (running_) {
    ln2_level_l_ = std::max(
        0.0, ln2_level_l_ - params_.ln2_weekly_use_l * (dt / days(7.0)));
    tip_seal_age_ += dt;
  }
  time_since_flush_ += dt;
}

}  // namespace hpcqc::cryo
