#include "hpcqc/cryo/cryostat.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"

namespace hpcqc::cryo {

const char* to_string(CryoState state) {
  switch (state) {
    case CryoState::kOperating: return "operating";
    case CryoState::kCoolingDown: return "cooling-down";
    case CryoState::kWarmingUp: return "warming-up";
    case CryoState::kWarm: return "warm";
  }
  return "?";
}

Cryostat::Cryostat(CryostatParams params)
    : params_(params),
      temperature_(params.base_temperature),
      peak_since_operating_(params.base_temperature) {
  expects(params_.base_temperature > 0.0 &&
              params_.base_temperature < params_.operating_threshold,
          "Cryostat: base temperature must be below operating threshold");
  expects(params_.warmup_log_tau > 0.0 &&
              params_.cooldown_log_rate_high > 0.0 &&
              params_.cooldown_log_rate_low > 0.0,
          "Cryostat: time constants must be positive");
}

void Cryostat::set_cooling(bool active) {
  ensure_state(!active || vacuum_intact_,
               "Cryostat: cannot cool with broken vacuum — pump down first");
  cooling_active_ = active;
}

void Cryostat::open_vessel() {
  ensure_state(!cooling_active_ && temperature_ > celsius(0.0),
               "Cryostat: the vessel may only be opened warm with cooling off");
  vacuum_intact_ = false;
}

void Cryostat::restore_vacuum() {
  ensure_state(temperature_ > celsius(0.0),
               "Cryostat: pump-down happens at ambient temperature");
  vacuum_intact_ = true;
}

CryoState Cryostat::state() const {
  if (cooling_active_)
    return at_base() ? CryoState::kOperating : CryoState::kCoolingDown;
  return temperature_ >= 0.95 * params_.ambient ? CryoState::kWarm
                                                : CryoState::kWarmingUp;
}

bool Cryostat::calibration_preserved() const {
  return peak_since_operating_ < params_.calibration_preserved_below;
}

void Cryostat::step(Seconds dt) {
  expects(dt >= 0.0, "Cryostat::step: negative interval");
  // Sub-step for stability and so the peak tracker cannot jump over
  // threshold crossings.
  const Seconds max_step = 10.0;
  while (dt > 0.0) {
    const Seconds h = std::min(dt, max_step);
    step_once(h);
    dt -= h;
  }
}

void Cryostat::step_once(Seconds dt) {
  if (cooling_active_) {
    // Constant log-temperature descent, two-regime around the knee.
    const double rate = (temperature_ > params_.warmup_knee
                             ? params_.cooldown_log_rate_high
                             : params_.cooldown_log_rate_low) /
                        params_.thermal_mass_factor;
    temperature_ = std::max(params_.base_temperature,
                            temperature_ * std::exp(-rate * dt));
  } else {
    if (temperature_ < params_.warmup_knee) {
      // Fast low-temperature warm-up: tiny heat capacity at mK scale.
      temperature_ =
          std::min(params_.warmup_knee * 1.001,
                   temperature_ * std::exp(dt / params_.warmup_log_tau));
    } else {
      // Slow approach toward ambient.
      const double alpha = 1.0 - std::exp(-dt / params_.warmup_high_tau);
      temperature_ += alpha * (params_.ambient - temperature_);
    }
    if (temperature_ >= 0.95 * params_.ambient) warm_duration_ += dt;
    if (warm_duration_ > params_.vacuum_holds_warm_for) vacuum_intact_ = false;
  }
  peak_since_operating_ = std::max(peak_since_operating_, temperature_);
}

Seconds Cryostat::cooldown_time_from(Kelvin from) const {
  expects(from > 0.0, "cooldown_time_from: temperature must be positive");
  if (from <= params_.operating_threshold) return 0.0;
  const double mass = params_.thermal_mass_factor;
  Seconds total = 0.0;
  double temperature = from;
  if (temperature > params_.warmup_knee) {
    total += std::log(temperature / params_.warmup_knee) /
             (params_.cooldown_log_rate_high / mass);
    temperature = params_.warmup_knee;
  }
  total += std::log(temperature / params_.operating_threshold) /
           (params_.cooldown_log_rate_low / mass);
  return total;
}

Seconds Cryostat::warmup_time_to(Kelvin target) const {
  expects(target > params_.base_temperature,
          "warmup_time_to: target below base temperature");
  if (target <= params_.warmup_knee)
    return params_.warmup_log_tau *
           std::log(target / params_.base_temperature);
  const Seconds to_knee =
      params_.warmup_log_tau *
      std::log(params_.warmup_knee / params_.base_temperature);
  const double frac = (target - params_.warmup_knee) /
                      (params_.ambient - params_.warmup_knee);
  expects(frac < 1.0, "warmup_time_to: target not reachable (>= ambient)");
  return to_knee - params_.warmup_high_tau * std::log(1.0 - frac);
}

void Cryostat::acknowledge_recovery() {
  peak_since_operating_ = temperature_;
  warm_duration_ = 0.0;
}

}  // namespace hpcqc::cryo
