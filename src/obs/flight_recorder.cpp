#include "hpcqc/obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

#include "hpcqc/common/error.hpp"
#include "hpcqc/obs/export.hpp"

namespace hpcqc::obs {

FlightRecorder::FlightRecorder(std::size_t span_capacity,
                               std::size_t post_mortem_capacity)
    : span_capacity_(span_capacity),
      post_mortem_capacity_(post_mortem_capacity) {
  expects(span_capacity_ > 0, "FlightRecorder: span capacity must be > 0");
  expects(post_mortem_capacity_ > 0,
          "FlightRecorder: post-mortem capacity must be > 0");
}

void FlightRecorder::note_span_end(const SpanRecord& record) {
  if (recent_.size() == span_capacity_) {
    recent_.pop_front();
    ++spans_dropped_;
  }
  recent_.push_back(record);
}

void FlightRecorder::record_failure(std::uint64_t trace_id,
                                    std::string reason, Seconds at) {
  PostMortem pm;
  pm.trace_id = trace_id;
  pm.reason = std::move(reason);
  pm.at = at;
  for (const SpanRecord& record : recent_)
    if (record.trace_id == trace_id) pm.spans.push_back(record);
  // Spans were appended in end order; restore creation order so parents
  // precede children for the tree renderer.
  std::sort(pm.spans.begin(), pm.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.handle < b.handle;
            });
  if (sink_ != nullptr) dump_post_mortem(*sink_, pm);
  if (post_mortems_.size() == post_mortem_capacity_) {
    post_mortems_.erase(post_mortems_.begin());
    ++post_mortems_dropped_;
  }
  post_mortems_.push_back(std::move(pm));
}

void FlightRecorder::dump(std::ostream& os) const {
  os << "flight recorder: " << recent_.size() << " retained span(s), "
     << spans_dropped_ << " dropped, " << post_mortems_.size()
     << " post-mortem(s)\n";
  std::vector<SpanRecord> spans(recent_.begin(), recent_.end());
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.handle < b.handle;
            });
  write_text_tree(os, spans, 1);
}

void FlightRecorder::dump_post_mortem(std::ostream& os, const PostMortem& pm) {
  char at[32];
  std::snprintf(at, sizeof(at), "%.3f", pm.at);
  os << "post-mortem: " << pm.reason << " at t=" << at << " s ("
     << pm.spans.size() << " span(s) retained)\n";
  write_text_tree(os, pm.spans, 1);
}

}  // namespace hpcqc::obs
