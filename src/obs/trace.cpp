#include "hpcqc/obs/trace.hpp"

#include "hpcqc/common/error.hpp"
#include "hpcqc/obs/flight_recorder.hpp"

namespace hpcqc::obs {

const char* to_string(SpanStatus status) {
  switch (status) {
    case SpanStatus::kUnset: return "unset";
    case SpanStatus::kOk: return "ok";
    case SpanStatus::kError: return "error";
  }
  return "?";
}

const std::string* SpanRecord::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes)
    if (k == key) return &v;
  return nullptr;
}

Tracer::Tracer(std::uint64_t seed) : id_state_(seed) {}

SpanRecord& Tracer::mutable_record(SpanHandle handle) {
  expects(handle != kNoSpan && handle <= records_.size(),
          "Tracer: invalid span handle");
  return records_[static_cast<std::size_t>(handle - 1)];
}

const SpanRecord& Tracer::record(SpanHandle handle) const {
  expects(handle != kNoSpan && handle <= records_.size(),
          "Tracer: invalid span handle");
  return records_[static_cast<std::size_t>(handle - 1)];
}

SpanHandle Tracer::begin_span(std::string name, Seconds at,
                              TraceContext parent) {
  SpanRecord record;
  record.span_id = splitmix64(id_state_);
  record.handle = records_.size() + 1;
  record.name = std::move(name);
  record.start = at;
  if (parent.valid()) {
    record.trace_id = parent.trace_id;
    record.parent = parent.span;
  } else {
    record.trace_id = splitmix64(id_state_);
  }
  records_.push_back(std::move(record));
  return records_.back().handle;
}

void Tracer::end_span(SpanHandle handle, Seconds at, SpanStatus status) {
  SpanRecord& record = mutable_record(handle);
  if (!record.open()) return;  // idempotent: defensive double-ends are fine
  record.end = at < record.start ? record.start : at;
  if (status != SpanStatus::kUnset) record.status = status;
  if (record.status == SpanStatus::kUnset) record.status = SpanStatus::kOk;
  if (recorder_ != nullptr) recorder_->note_span_end(record);
}

void Tracer::add_event(SpanHandle handle, Seconds at, std::string name,
                       std::string detail) {
  mutable_record(handle).events.push_back(
      {at, std::move(name), std::move(detail)});
}

void Tracer::set_attribute(SpanHandle handle, std::string key,
                           std::string value) {
  SpanRecord& record = mutable_record(handle);
  for (auto& [k, v] : record.attributes) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  record.attributes.emplace_back(std::move(key), std::move(value));
}

void Tracer::set_status(SpanHandle handle, SpanStatus status) {
  mutable_record(handle).status = status;
}

TraceContext Tracer::context(SpanHandle handle) const {
  const SpanRecord& record = this->record(handle);
  return {record.trace_id, record.handle};
}

Span Tracer::span(std::string name, TraceContext parent) {
  return Span(this, begin_span(std::move(name), now(), parent));
}

std::size_t Tracer::open_spans() const {
  std::size_t open = 0;
  for (const auto& record : records_)
    if (record.open()) ++open;
  return open;
}

std::vector<const SpanRecord*> Tracer::trace(std::uint64_t trace_id) const {
  std::vector<const SpanRecord*> spans;
  for (const auto& record : records_)
    if (record.trace_id == trace_id) spans.push_back(&record);
  return spans;
}

std::uint64_t Tracer::trace_id(SpanHandle handle) const {
  return record(handle).trace_id;
}

void Tracer::record_failure(std::uint64_t trace_id, const std::string& reason,
                            Seconds at) {
  if (recorder_ != nullptr) recorder_->record_failure(trace_id, reason, at);
}

void Span::finish(SpanStatus status) {
  if (tracer_ == nullptr) return;
  tracer_->end_span(handle_, tracer_->now(), status);
  tracer_ = nullptr;
  handle_ = kNoSpan;
}

}  // namespace hpcqc::obs
