#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "hpcqc/obs/trace.hpp"

namespace hpcqc::obs {

/// Captured failure: the retained spans of one trace at the moment a job
/// reached a failure terminal state.
struct PostMortem {
  std::uint64_t trace_id = 0;
  std::string reason;
  Seconds at = 0.0;
  std::vector<SpanRecord> spans;  ///< creation order (parents before children)
};

/// Bounded ring buffer of recently-completed spans. The tracer notifies it
/// on every span end; when a job reaches a failure terminal state
/// (dead-letter, shed, rejected) the recorder snapshots everything it still
/// holds for that trace into a PostMortem — automatically producing the
/// "where did this job spend its time and why did it fail" record without
/// keeping every span of a months-long campaign alive. An optional sink
/// stream gets a text dump of each post-mortem as it is captured, so chaos
/// campaigns print their own incident reports.
class FlightRecorder {
public:
  explicit FlightRecorder(std::size_t span_capacity = 1024,
                          std::size_t post_mortem_capacity = 64);

  /// Called by the tracer on each span end (public so custom pipelines can
  /// feed records directly).
  void note_span_end(const SpanRecord& record);

  /// Captures a post-mortem of `trace_id` from the retained spans. The
  /// oldest post-mortem is evicted past capacity (evictions are counted).
  void record_failure(std::uint64_t trace_id, std::string reason, Seconds at);

  const std::deque<SpanRecord>& recent() const { return recent_; }
  const std::vector<PostMortem>& post_mortems() const { return post_mortems_; }
  std::size_t spans_dropped() const { return spans_dropped_; }
  std::size_t post_mortems_dropped() const { return post_mortems_dropped_; }
  std::size_t span_capacity() const { return span_capacity_; }

  /// Text dump of every post-mortem captured as it happens; nullptr
  /// disables (the default).
  void set_dump_sink(std::ostream* sink) { sink_ = sink; }

  /// Writes the retained ring (API-triggered dump).
  void dump(std::ostream& os) const;
  /// Writes one post-mortem as an indented span tree.
  static void dump_post_mortem(std::ostream& os, const PostMortem& pm);

private:
  std::size_t span_capacity_;
  std::size_t post_mortem_capacity_;
  std::deque<SpanRecord> recent_;
  std::vector<PostMortem> post_mortems_;
  std::size_t spans_dropped_ = 0;
  std::size_t post_mortems_dropped_ = 0;
  std::ostream* sink_ = nullptr;
};

}  // namespace hpcqc::obs
