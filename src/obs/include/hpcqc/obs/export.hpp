#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hpcqc/obs/trace.hpp"

namespace hpcqc::obs {

/// Writes spans in Chrome's trace_event JSON format — loadable in
/// chrome://tracing / Perfetto ("Open trace file"). Each closed span becomes
/// one complete ("ph":"X") event with microsecond timestamps on the
/// simulated clock; span events become instant ("ph":"i") events. Traces are
/// mapped to tids in first-seen order so every job gets its own lane.
/// Output is byte-stable for identical span sets (integer microseconds,
/// fixed field order).
void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans);

/// Chrome trace of every span the tracer holds.
std::string chrome_trace_json(const Tracer& tracer);

/// Indented plain-text span tree (children under parents, siblings by start
/// time then creation order). Spans whose parent is absent from `spans` are
/// printed as roots, so partial sets (flight-recorder rings) still render.
void write_text_tree(std::ostream& os, const std::vector<SpanRecord>& spans,
                     int indent = 0);

/// Text tree of one trace (or of every trace with trace_id == 0).
std::string text_tree(const Tracer& tracer, std::uint64_t trace_id = 0);

/// Result of validating an exported trace against the schema checker.
struct TraceValidation {
  bool ok = false;
  std::size_t events = 0;  ///< traceEvents entries seen
  std::vector<std::string> errors;
};

/// Small schema checker for exported Chrome traces: well-formed JSON, a
/// top-level object with a "traceEvents" array, and per event — "name"
/// (string), "ph" in {"X","i"}, numeric non-negative "ts", "pid"/"tid",
/// plus a non-negative "dur" for "X" events. CI runs this over the drill's
/// export so a malformed trace fails the build, not the viewer.
TraceValidation validate_chrome_trace(const std::string& json);
TraceValidation validate_chrome_trace(std::istream& is);

}  // namespace hpcqc::obs
