#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/common/units.hpp"

namespace hpcqc::obs {

class FlightRecorder;
class Span;

/// Opaque handle of a span inside its Tracer (1-based creation index;
/// 0 = no span). Handles stay valid for the tracer's lifetime.
using SpanHandle = std::uint64_t;
inline constexpr SpanHandle kNoSpan = 0;

/// Propagation context: enough to attach a child span from another
/// component. Carried by jobs as they hop between the MQSS client, the QRM,
/// the compiler and the device, so one submission yields one connected tree.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no active trace
  SpanHandle span = kNoSpan;   ///< parent span handle

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

enum class SpanStatus { kUnset, kOk, kError };

const char* to_string(SpanStatus status);

/// Point-in-time annotation inside a span.
struct SpanEvent {
  Seconds time = 0.0;
  std::string name;
  std::string detail;

  bool operator==(const SpanEvent&) const = default;
};

/// One completed (or still-open) unit of work on the simulated clock.
struct SpanRecord {
  std::uint64_t span_id = 0;   ///< display id from the tracer's seeded stream
  std::uint64_t trace_id = 0;  ///< display id of the owning trace
  SpanHandle handle = kNoSpan;
  SpanHandle parent = kNoSpan;  ///< kNoSpan for trace roots
  std::string name;
  Seconds start = 0.0;
  Seconds end = -1.0;  ///< < 0 while the span is open
  SpanStatus status = SpanStatus::kUnset;
  /// Insertion-ordered key/value annotations (duplicate keys overwrite).
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<SpanEvent> events;

  bool open() const { return end < 0.0; }
  Seconds duration() const { return open() ? 0.0 : end - start; }
  const std::string* attribute(const std::string& key) const;

  bool operator==(const SpanRecord&) const = default;
};

/// Records structured spans against the simulated clock.
///
/// Determinism contract: span/trace display ids come from a SplitMix64
/// stream seeded at construction and advanced once per allocation, so a
/// rerun of the same workload produces bit-identical records; timestamps
/// are simulated (never wall-clock), and all recording happens on the
/// orchestration thread, so traces are independent of OMP_NUM_THREADS.
///
/// Two API styles:
///  - explicit-timestamp begin/end for long-lived spans (a job that lives
///    across scheduler phases), keyed by SpanHandle;
///  - RAII `Span` wrappers (see below) for lexically-scoped stages, which
///    stamp their end from the tracer's now-source.
///
/// A null `Tracer*` is the disabled path: every integration point in the
/// stack guards on it, so the cost of tracing when off is one pointer test.
class Tracer {
public:
  explicit Tracer(std::uint64_t seed = 0x0b5eed0b5eedULL);

  /// Clock used by the RAII API (and Tracer::now()). Components that carry
  /// their own simulated time (the QRM) pass explicit timestamps instead.
  void set_now_source(std::function<Seconds()> now) { now_ = std::move(now); }
  Seconds now() const { return now_ ? now_() : 0.0; }

  /// Ring buffer notified on every span end; may be null. Must outlive the
  /// tracer (or be detached first).
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* flight_recorder() const { return recorder_; }

  // -- explicit-timestamp API ----------------------------------------------

  /// Starts a span at `at`. With an invalid `parent` context a new trace is
  /// opened and the span becomes its root.
  SpanHandle begin_span(std::string name, Seconds at,
                        TraceContext parent = {});
  /// Ends an open span (idempotent: ending a closed span is a no-op, so
  /// cleanup paths can end defensively).
  void end_span(SpanHandle handle, Seconds at,
                SpanStatus status = SpanStatus::kOk);
  void add_event(SpanHandle handle, Seconds at, std::string name,
                 std::string detail = "");
  void set_attribute(SpanHandle handle, std::string key, std::string value);
  void set_status(SpanHandle handle, SpanStatus status);

  /// Context for attaching children to `handle`.
  TraceContext context(SpanHandle handle) const;

  // -- RAII API -------------------------------------------------------------

  /// Scoped span starting at now(); ends at destruction (status kOk unless
  /// set otherwise) or at an explicit end_at().
  Span span(std::string name, TraceContext parent = {});

  // -- inspection -----------------------------------------------------------

  const std::vector<SpanRecord>& records() const { return records_; }
  const SpanRecord& record(SpanHandle handle) const;
  std::size_t open_spans() const;

  /// Spans of one trace, in creation order.
  std::vector<const SpanRecord*> trace(std::uint64_t trace_id) const;
  /// Display trace id of a span's trace.
  std::uint64_t trace_id(SpanHandle handle) const;

  /// Forwards a failure post-mortem request to the attached flight
  /// recorder (no-op without one). `reason` names the terminal state.
  void record_failure(std::uint64_t trace_id, const std::string& reason,
                      Seconds at);

private:
  SpanRecord& mutable_record(SpanHandle handle);

  std::uint64_t id_state_;  ///< SplitMix64 stream for display ids
  std::function<Seconds()> now_;
  FlightRecorder* recorder_ = nullptr;
  std::vector<SpanRecord> records_;
};

/// Movable RAII wrapper over one tracer span. A default-constructed Span is
/// inert (all operations no-ops), which lets instrumented code hold spans
/// unconditionally while tracing is disabled.
class Span {
public:
  Span() = default;
  Span(Tracer* tracer, SpanHandle handle)
      : tracer_(tracer), handle_(handle) {}
  ~Span() { finish(SpanStatus::kUnset); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish(SpanStatus::kUnset);
      tracer_ = other.tracer_;
      handle_ = other.handle_;
      other.tracer_ = nullptr;
      other.handle_ = kNoSpan;
    }
    return *this;
  }

  explicit operator bool() const { return tracer_ != nullptr; }
  SpanHandle handle() const { return handle_; }
  TraceContext context() const {
    return tracer_ ? tracer_->context(handle_) : TraceContext{};
  }

  void set_attribute(std::string key, std::string value) {
    if (tracer_) tracer_->set_attribute(handle_, std::move(key),
                                        std::move(value));
  }
  void add_event(std::string name, std::string detail = "") {
    if (tracer_)
      tracer_->add_event(handle_, tracer_->now(), std::move(name),
                         std::move(detail));
  }
  void add_event_at(Seconds at, std::string name, std::string detail = "") {
    if (tracer_) tracer_->add_event(handle_, at, std::move(name),
                                    std::move(detail));
  }
  void set_status(SpanStatus status) {
    if (tracer_) tracer_->set_status(handle_, status);
  }

  /// Child span starting now.
  Span child(std::string name) {
    return tracer_ ? tracer_->span(std::move(name), context()) : Span{};
  }

  /// Ends the span now (kOk unless a status was set); further calls no-op.
  void end() { finish(SpanStatus::kUnset); }
  void end_at(Seconds at, SpanStatus status) {
    if (tracer_) tracer_->end_span(handle_, at, status);
    tracer_ = nullptr;
    handle_ = kNoSpan;
  }

private:
  void finish(SpanStatus status);

  Tracer* tracer_ = nullptr;
  SpanHandle handle_ = kNoSpan;
};

}  // namespace hpcqc::obs
