#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::obs {

/// Monotone accumulator.
class Counter {
public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }
  std::uint64_t count() const {
    return static_cast<std::uint64_t>(value_ + 0.5);
  }

private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds()` are the inclusive upper edges of the
/// first `bounds().size()` buckets; one implicit overflow bucket catches
/// everything above the last edge. Quantiles are estimated by linear
/// interpolation inside the selected bucket (observations are assumed
/// non-negative; the overflow bucket reports its lower edge). Fixed buckets
/// keep snapshots bit-identical across reruns: no reservoir sampling, no
/// randomness, pure counting.
class Histogram {
public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size = bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Estimated q-quantile, q in [0, 1]; 0 when empty.
  double quantile(double q) const;

private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Default histogram edges for simulated-time durations: powers of two from
/// 1/16 s to ~3 days. Covers shot batches (ms..s), queue waits (s..h) and
/// outage recoveries (h..d) with relative error bounded by the bucket ratio.
std::vector<double> default_time_bounds();

/// Default edges for rates (shots/s and similar): powers of four from 1e-2
/// to ~2.6e6.
std::vector<double> default_rate_bounds();

/// Pull-model snapshot of a registry: plain sorted values, equality
/// comparable (the chaos-campaign determinism tests compare snapshots
/// bit-for-bit across reruns and OMP_NUM_THREADS).
struct MetricsSnapshot {
  struct Value {
    std::string name;
    double value = 0.0;
    bool operator==(const Value&) const = default;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    bool operator==(const HistogramValue&) const = default;
  };

  std::vector<Value> counters;
  std::vector<Value> gauges;
  std::vector<HistogramValue> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  const Value* counter(const std::string& name) const;
  const Value* gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;

  /// Stable JSON rendering (sorted names, %.17g numbers) — the machine-
  /// readable side of the pull API.
  std::string to_json() const;
  /// Human-readable table dump.
  void print(std::ostream& os) const;
};

/// Named metrics, create-on-first-use. References returned by counter() /
/// gauge() / histogram() stay valid for the registry's lifetime (node-based
/// storage), so hot paths bind once and increment through the pointer.
/// Names are dot-separated paths ("qrm.jobs_completed") mirroring the
/// telemetry sensor convention, which is what lets the telemetry bridge
/// re-export them onto the alert-rule engine unchanged.
class MetricsRegistry {
public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First call fixes the bucket layout; `bounds` empty selects
  /// default_time_bounds(). Later calls with different bounds are an error.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  bool has_histogram(const std::string& name) const;
  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  MetricsSnapshot snapshot() const;
  /// Snapshot restricted to series whose name starts with `prefix` — lets
  /// reports carve one subsystem (e.g. "qrm.tenant.") out of a shared
  /// registry without copying the rest.
  MetricsSnapshot snapshot(const std::string& prefix) const;

private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hpcqc::obs
