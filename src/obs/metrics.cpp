#include "hpcqc/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "hpcqc/common/error.hpp"

namespace hpcqc::obs {

namespace {

/// Shortest-round-trip decimal rendering, locale-independent — identical
/// output for identical doubles, which the bit-identical-snapshot contract
/// depends on.
std::string num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  expects(!bounds_.empty(), "Histogram: need at least one bucket edge");
  expects(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bucket edges must be sorted ascending");
  expects(std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
          "Histogram: bucket edges must be distinct");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const std::uint64_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= rank) {
      if (b == bounds_.size()) return bounds_.back();  // overflow bucket
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      const double upper = bounds_[b];
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[b]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::vector<double> default_time_bounds() {
  std::vector<double> bounds;
  for (double edge = 0.0625; edge <= 262144.0; edge *= 2.0)
    bounds.push_back(edge);
  return bounds;
}

std::vector<double> default_rate_bounds() {
  std::vector<double> bounds;
  for (double edge = 0.01; edge <= 3.0e6; edge *= 4.0)
    bounds.push_back(edge);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    expects(bounds.empty() || bounds == it->second.bounds(),
            "MetricsRegistry: histogram '" + name +
                "' re-registered with different bucket edges");
    return it->second;
  }
  if (bounds.empty()) bounds = default_time_bounds();
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return counters_.count(name) != 0;
}
bool MetricsRegistry::has_gauge(const std::string& name) const {
  return gauges_.count(name) != 0;
}
bool MetricsRegistry::has_histogram(const std::string& name) const {
  return histograms_.count(name) != 0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_)
    snap.counters.push_back({name, counter.value()});
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.push_back({name, gauge.value()});
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = hist.count();
    value.sum = hist.sum();
    value.p50 = hist.quantile(0.50);
    value.p95 = hist.quantile(0.95);
    value.p99 = hist.quantile(0.99);
    value.bounds = hist.bounds();
    value.buckets = hist.bucket_counts();
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::snapshot(const std::string& prefix) const {
  const auto matches = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_)
    if (matches(name)) snap.counters.push_back({name, counter.value()});
  for (const auto& [name, gauge] : gauges_)
    if (matches(name)) snap.gauges.push_back({name, gauge.value()});
  for (const auto& [name, hist] : histograms_) {
    if (!matches(name)) continue;
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = hist.count();
    value.sum = hist.sum();
    value.p50 = hist.quantile(0.50);
    value.p95 = hist.quantile(0.95);
    value.p99 = hist.quantile(0.99);
    value.bounds = hist.bounds();
    value.buckets = hist.bucket_counts();
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

const MetricsSnapshot::Value* MetricsSnapshot::counter(
    const std::string& name) const {
  for (const auto& value : counters)
    if (value.name == name) return &value;
  return nullptr;
}

const MetricsSnapshot::Value* MetricsSnapshot::gauge(
    const std::string& name) const {
  for (const auto& value : gauges)
    if (value.name == name) return &value;
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& value : histograms)
    if (value.name == name) return &value;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string json = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) json += ',';
    json += '"' + counters[i].name + "\":" + num(counters[i].value);
  }
  json += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) json += ',';
    json += '"' + gauges[i].name + "\":" + num(gauges[i].value);
  }
  json += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    if (i > 0) json += ',';
    json += '"' + h.name + "\":{\"count\":" + std::to_string(h.count) +
            ",\"sum\":" + num(h.sum) + ",\"p50\":" + num(h.p50) +
            ",\"p95\":" + num(h.p95) + ",\"p99\":" + num(h.p99) +
            ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) json += ',';
      json += std::to_string(h.buckets[b]);
    }
    json += "]}";
  }
  json += "}}";
  return json;
}

void MetricsSnapshot::print(std::ostream& os) const {
  os << "counters:\n";
  for (const auto& value : counters)
    os << "  " << value.name << " = " << num(value.value) << '\n';
  os << "gauges:\n";
  for (const auto& value : gauges)
    os << "  " << value.name << " = " << num(value.value) << '\n';
  os << "histograms:\n";
  for (const auto& h : histograms)
    os << "  " << h.name << ": n=" << h.count << " mean="
       << num(h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count))
       << " p50=" << num(h.p50) << " p95=" << num(h.p95) << " p99="
       << num(h.p99) << '\n';
}

}  // namespace hpcqc::obs
