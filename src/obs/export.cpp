#include "hpcqc/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

namespace hpcqc::obs {

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex_id(std::uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

/// Simulated seconds -> integer microseconds (Chrome's ts unit). Integer
/// output keeps the export byte-stable across platforms.
long long micros(Seconds t) { return std::llround(t * 1e6); }

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  // One lane (tid) per trace, numbered in first-seen order.
  std::map<std::uint64_t, int> lanes;
  const auto lane = [&lanes](std::uint64_t trace_id) {
    const auto it = lanes.find(trace_id);
    if (it != lanes.end()) return it->second;
    const int next = static_cast<int>(lanes.size()) + 1;
    lanes.emplace(trace_id, next);
    return next;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    const int tid = lane(span.trace_id);
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(span.name)
       << "\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":" << micros(span.start)
       << ",\"dur\":" << (span.open() ? 0 : micros(span.end) -
                                            micros(span.start))
       << ",\"pid\":1,\"tid\":" << tid << ",\"args\":{\"span_id\":\""
       << hex_id(span.span_id) << "\",\"trace_id\":\""
       << hex_id(span.trace_id) << "\",\"status\":\""
       << to_string(span.status) << '"';
    if (span.open()) os << ",\"open\":true";
    for (const auto& [key, value] : span.attributes)
      os << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
         << '"';
    os << "}}";
    for (const SpanEvent& event : span.events) {
      os << ",{\"name\":\"" << json_escape(event.name)
         << "\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << micros(event.time) << ",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"span_id\":\"" << hex_id(span.span_id) << '"';
      if (!event.detail.empty())
        os << ",\"detail\":\"" << json_escape(event.detail) << '"';
      os << "}}";
    }
  }
  os << "]}";
}

std::string chrome_trace_json(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer.records());
  return os.str();
}

namespace {

void print_span_line(std::ostream& os, const SpanRecord& span, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  char timing[64];
  if (span.open())
    std::snprintf(timing, sizeof(timing), "[%.3f s .. open]", span.start);
  else
    std::snprintf(timing, sizeof(timing), "[%.3f s +%.3f s]", span.start,
                  span.end - span.start);
  os << timing << ' ' << span.name << " (" << to_string(span.status) << ')';
  for (const auto& [key, value] : span.attributes)
    os << ' ' << key << '=' << value;
  os << '\n';
  for (const SpanEvent& event : span.events) {
    for (int i = 0; i < depth + 1; ++i) os << "  ";
    char at[32];
    std::snprintf(at, sizeof(at), "@%.3f s", event.time);
    os << at << ' ' << event.name;
    if (!event.detail.empty()) os << ": " << event.detail;
    os << '\n';
  }
}

void print_subtree(std::ostream& os, const std::vector<SpanRecord>& spans,
                   const std::multimap<SpanHandle, std::size_t>& children,
                   std::size_t index, int depth) {
  print_span_line(os, spans[index], depth);
  const auto [lo, hi] = children.equal_range(spans[index].handle);
  for (auto it = lo; it != hi; ++it)
    print_subtree(os, spans, children, it->second, depth + 1);
}

}  // namespace

void write_text_tree(std::ostream& os, const std::vector<SpanRecord>& spans,
                     int indent) {
  // Index children by parent handle; handles absent from `spans` (pruned by
  // a ring buffer) promote their orphans to roots.
  std::multimap<SpanHandle, std::size_t> children;
  std::vector<char> present_as_child(spans.size(), 0);
  const auto find_index = [&spans](SpanHandle handle) {
    for (std::size_t i = 0; i < spans.size(); ++i)
      if (spans[i].handle == handle) return i;
    return spans.size();
  };
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == kNoSpan) continue;
    if (find_index(spans[i].parent) == spans.size()) continue;  // orphan
    children.emplace(spans[i].parent, i);
    present_as_child[i] = 1;
  }
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (!present_as_child[i]) {
      if (spans[i].parent == kNoSpan) {
        for (int d = 0; d < indent; ++d) os << "  ";
        os << "trace " << hex_id(spans[i].trace_id) << '\n';
      }
      print_subtree(os, spans, children, i, indent + 1);
    }
}

std::string text_tree(const Tracer& tracer, std::uint64_t trace_id) {
  std::vector<SpanRecord> spans;
  for (const SpanRecord& record : tracer.records())
    if (trace_id == 0 || record.trace_id == trace_id)
      spans.push_back(record);
  std::ostringstream os;
  write_text_tree(os, spans);
  return os.str();
}

// ---------------------------------------------------------------------------
// Schema checker: a compact recursive-descent JSON parser (objects, arrays,
// strings, numbers, booleans, null) feeding structural checks. Not a general
// JSON library — just enough to refuse a malformed or mis-shaped export.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = at("trailing content after top-level value");
      return false;
    }
    return true;
  }

private:
  std::string at(const std::string& what) const {
    return what + " (offset " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      error = at("expected string");
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          error = at("dangling escape");
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              error = at("truncated \\u escape");
              return false;
            }
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                error = at("bad \\u escape");
                return false;
              }
            }
            pos_ += 4;
            c = '?';  // code point value is irrelevant to validation
            break;
          }
          default:
            error = at("unknown escape");
            return false;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      error = at("unterminated string");
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out, std::string& error) {
    skip_ws();
    if (pos_ >= text_.size()) {
      error = at("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, error);
    if (c == '[') return parse_array(out, error);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.text, error);
    }
    if (literal("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    // Number.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
        digits = true;
      ++pos_;
    }
    if (!digits) {
      error = at("expected value");
      return false;
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool parse_object(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error = at("expected ':' in object");
        return false;
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      error = at("expected ',' or '}' in object");
      return false;
    }
  }

  bool parse_array(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      error = at("expected ',' or ']' in array");
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void check_event(const JsonValue& event, std::size_t index,
                 std::vector<std::string>& errors) {
  const auto fail = [&errors, index](const std::string& what) {
    errors.push_back("traceEvents[" + std::to_string(index) + "]: " + what);
  };
  if (event.type != JsonValue::Type::kObject) {
    fail("not an object");
    return;
  }
  const JsonValue* name = event.find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString ||
      name->text.empty())
    fail("missing non-empty string \"name\"");
  const JsonValue* ph = event.find("ph");
  const bool is_complete =
      ph != nullptr && ph->type == JsonValue::Type::kString &&
      ph->text == "X";
  const bool is_instant =
      ph != nullptr && ph->type == JsonValue::Type::kString &&
      ph->text == "i";
  if (!is_complete && !is_instant)
    fail("\"ph\" must be \"X\" or \"i\"");
  const JsonValue* ts = event.find("ts");
  if (ts == nullptr || ts->type != JsonValue::Type::kNumber ||
      ts->number < 0.0)
    fail("missing non-negative numeric \"ts\"");
  if (is_complete) {
    const JsonValue* dur = event.find("dur");
    if (dur == nullptr || dur->type != JsonValue::Type::kNumber ||
        dur->number < 0.0)
      fail("\"X\" event missing non-negative numeric \"dur\"");
  }
  for (const char* field : {"pid", "tid"}) {
    const JsonValue* v = event.find(field);
    if (v == nullptr || v->type != JsonValue::Type::kNumber)
      fail(std::string("missing numeric \"") + field + '"');
  }
  const JsonValue* args = event.find("args");
  if (args != nullptr && args->type != JsonValue::Type::kObject)
    fail("\"args\" must be an object");
}

}  // namespace

TraceValidation validate_chrome_trace(const std::string& json) {
  TraceValidation result;
  JsonValue root;
  std::string error;
  if (!JsonParser(json).parse(root, error)) {
    result.errors.push_back("JSON parse error: " + error);
    return result;
  }
  if (root.type != JsonValue::Type::kObject) {
    result.errors.push_back("top-level value is not an object");
    return result;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    result.errors.push_back("missing \"traceEvents\" array");
    return result;
  }
  result.events = events->array.size();
  for (std::size_t i = 0; i < events->array.size(); ++i)
    check_event(events->array[i], i, result.errors);
  result.ok = result.errors.empty();
  return result;
}

TraceValidation validate_chrome_trace(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return validate_chrome_trace(buffer.str());
}

}  // namespace hpcqc::obs
