#include "hpcqc/sched/accounting.hpp"

#include <ostream>

#include "hpcqc/common/error.hpp"

namespace hpcqc::sched {

void Accounting::register_project(const std::string& project,
                                  Seconds budget) {
  expects(!project.empty(), "Accounting: project needs a name");
  expects(budget >= 0.0, "Accounting: budget cannot be negative");
  auto [it, inserted] = projects_.try_emplace(project);
  it->second.project = project;
  it->second.budget += budget;
}

bool Accounting::has_project(const std::string& project) const {
  return projects_.contains(project);
}

bool Accounting::can_afford(const std::string& project,
                            Seconds estimated) const {
  const auto it = projects_.find(project);
  if (it == projects_.end()) return false;
  return it->second.used + estimated <= it->second.budget;
}

void Accounting::charge(const std::string& project, Seconds used,
                        std::uint64_t shots) {
  const auto it = projects_.find(project);
  if (it == projects_.end())
    throw NotFoundError("Accounting: unknown project '" + project + "'");
  expects(used >= 0.0, "Accounting::charge: negative usage");
  it->second.used += used;
  it->second.jobs += 1;
  it->second.shots += shots;
}

Accounting::ProjectStatus Accounting::status(
    const std::string& project) const {
  const auto it = projects_.find(project);
  if (it == projects_.end())
    throw NotFoundError("Accounting: unknown project '" + project + "'");
  return it->second;
}

std::vector<Accounting::ProjectStatus> Accounting::all_projects() const {
  std::vector<ProjectStatus> out;
  for (const auto& [name, status] : projects_) out.push_back(status);
  return out;
}

double Accounting::total_utilization() const {
  Seconds budget = 0.0;
  Seconds used = 0.0;
  for (const auto& [name, status] : projects_) {
    budget += status.budget;
    used += status.used;
  }
  return budget > 0.0 ? used / budget : 0.0;
}

void Accounting::print(std::ostream& os) const {
  os << "QPU usage by project:\n";
  for (const auto& [name, status] : projects_) {
    os << "  " << name << ": " << status.used << " / " << status.budget
       << " QPU-s (" << 100.0 * status.utilization() << " %), "
       << status.jobs << " jobs, " << status.shots << " shots\n";
  }
}

}  // namespace hpcqc::sched
