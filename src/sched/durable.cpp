#include "hpcqc/sched/durable.hpp"

#include <algorithm>

#include "hpcqc/common/error.hpp"

namespace hpcqc::sched {

QrmDurableState Qrm::capture_durable() const {
  QrmDurableState state;
  state.now = now_;
  state.next_id = next_id_;
  state.online = online_;
  state.queue = queue_;
  state.retry_queue = retry_queue_;
  state.records = records_;
  state.pending = pending_jobs_;
  state.dead_letters = dead_letters_;
  for (int p = 0; p < 3; ++p) {
    state.class_buckets[p].tokens = buckets_[p].tokens;
    state.class_buckets[p].last_refill = buckets_[p].last_refill;
  }
  for (const auto& [project, tenant] : tenants_)
    state.tenants.emplace(
        project,
        TokenBucketState{tenant.bucket.tokens, tenant.bucket.last_refill});
  for (const auto& [id, job] : pending_jobs_)
    if (job.parametric != nullptr)
      state.structure_manifest.push_back(job.parametric->structural_hash());
  std::sort(state.structure_manifest.begin(), state.structure_manifest.end());
  state.structure_manifest.erase(std::unique(state.structure_manifest.begin(),
                                             state.structure_manifest.end()),
                                 state.structure_manifest.end());
  return state;
}

RestoreSummary Qrm::restore_durable(const QrmDurableState& state) {
  ensure_state(records_.empty() && pending_jobs_.empty() && next_id_ == 1,
               "Qrm::restore_durable: restore requires a fresh QRM");
  RestoreSummary summary;
  now_ = state.now;
  // The recovered device model starts fresh at `now`; drift resumes from
  // here instead of replaying the whole pre-crash span in one step.
  drifted_until_ = state.now;
  online_ = state.online;
  status_ = online_ ? qdmi::DeviceStatus::kIdle : qdmi::DeviceStatus::kOffline;
  next_id_ = state.next_id;
  records_ = state.records;
  pending_jobs_ = state.pending;
  dead_letters_ = state.dead_letters;
  for (int p = 0; p < 3; ++p) {
    if (!state.class_buckets[p].observed()) continue;
    buckets_[p].tokens = state.class_buckets[p].tokens;
    buckets_[p].last_refill = state.class_buckets[p].last_refill;
  }
  for (const auto& [project, bucket_state] : state.tenants) {
    TenantState* tenant = tenant_state(project);
    tenant->bucket.tokens = bucket_state.tokens;
    tenant->bucket.last_refill = bucket_state.last_refill;
  }

  // Trace backfill, mirroring the DLQ drain/replay path: a payload the
  // client submitted without a context inherits the failed run's root, so a
  // post-recovery replay joins the original trace.
  for (DeadLetterRecord& letter : dead_letters_) {
    if (!letter.job.trace.valid() && letter.trace.valid()) {
      letter.job.trace = letter.trace;
      summary.backfilled_traces += 1;
    }
  }
  for (auto& [id, job] : pending_jobs_) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;
    if (!job.trace.valid() && it->second.trace.valid()) {
      job.trace = it->second.trace;
      summary.backfilled_traces += 1;
    }
  }

  queue_ = state.queue;
  retry_queue_ = state.retry_queue;
  for (const int id : queue_) track_enqueue(id, /*retry=*/false);
  for (const int id : retry_queue_) track_enqueue(id, /*retry=*/true);

  // In-flight attempts: the crash interrupted them exactly like an outage
  // would have, so they re-enter at the queue head per the pinned
  // set_offline semantics — no retry attempt charged, interruption noted.
  for (auto& [id, record] : records_) {
    if (record.state != QuantumJobState::kRunning) continue;
    record.state = QuantumJobState::kQueued;
    record.start_time = -1.0;
    record.end_time = -1.0;
    if (record.attempts > 0) record.attempts -= 1;
    record.interruptions += 1;
    record.failure_reason =
        "interrupted by control-plane crash; requeued at recovery";
    queue_.insert(queue_.begin(), id);
    track_enqueue(id, /*retry=*/false);
    summary.requeued_in_flight += 1;
  }

  // Metrics: terminal counters are audit state, recomputed from the
  // records; throughput counters (shots, busy time, retries) restart at
  // zero — they are observability, not audit, and the report layer treats
  // them as per-incarnation.
  std::size_t completed = 0, failed = 0, cancelled = 0, rejected_overload = 0,
              rejected_too_wide = 0, shed = 0, migrated = 0;
  for (const auto& [id, record] : records_) {
    switch (record.state) {
      case QuantumJobState::kCompleted: completed += 1; break;
      case QuantumJobState::kFailed: failed += 1; break;
      case QuantumJobState::kCancelled: cancelled += 1; break;
      case QuantumJobState::kRejectedOverload: rejected_overload += 1; break;
      case QuantumJobState::kRejectedTooWide: rejected_too_wide += 1; break;
      case QuantumJobState::kShed: shed += 1; break;
      case QuantumJobState::kMigrated: migrated += 1; break;
      case QuantumJobState::kQueued:
      case QuantumJobState::kRunning:
      case QuantumJobState::kRetrying:
        break;
    }
  }
  m_submitted_->inc(static_cast<double>(records_.size()));
  m_completed_->inc(static_cast<double>(completed));
  m_failed_->inc(static_cast<double>(failed));
  m_cancelled_->inc(static_cast<double>(cancelled));
  m_rejected_overload_->inc(static_cast<double>(rejected_overload));
  m_rejected_too_wide_->inc(static_cast<double>(rejected_too_wide));
  m_shed_->inc(static_cast<double>(shed));
  m_migrated_out_->inc(static_cast<double>(migrated));
  note_queue_gauge();

  // Fresh spans for surviving work (attach the tracer *before* restoring):
  // each non-terminal job reopens a root parented at its pre-crash context,
  // so the recovered run's spans join the original trace.
  if (tracer_ != nullptr) {
    for (auto& [id, record] : records_) {
      if (is_terminal(record.state)) continue;
      JobSpans spans;
      spans.root = tracer_->begin_span("job:" + record.name, now_,
                                       record.trace);
      tracer_->set_attribute(spans.root, "job_id", std::to_string(id));
      tracer_->set_attribute(spans.root, "recovered", "true");
      record.trace = tracer_->context(spans.root);
      job_spans_.emplace(id, spans);
      if (record.state == QuantumJobState::kQueued) {
        open_queue_span(id, "restored after recovery");
      } else if (record.state == QuantumJobState::kRetrying) {
        JobSpans& js = job_spans_.at(id);
        js.backoff = tracer_->begin_span("retry-backoff", now_,
                                         tracer_->context(js.root));
        tracer_->set_attribute(js.backoff, "recovered", "true");
      }
    }
  }

  summary.restored_jobs = records_.size();
  if (log_)
    log_->info(now_, "qrm",
               "restored " + std::to_string(summary.restored_jobs) +
                   " job records (" +
                   std::to_string(summary.requeued_in_flight) +
                   " in-flight requeued)");
  return summary;
}

FleetDurableState Fleet::capture_durable() const {
  FleetDurableState state;
  state.now = now_;
  state.next_id = next_id_;
  state.records = records_;
  state.devices.reserve(slots_.size());
  for (const auto& s : slots_)
    state.devices.push_back(s->qrm->capture_durable());
  return state;
}

RestoreSummary Fleet::restore_durable(const FleetDurableState& state) {
  ensure_state(records_.empty(),
               "Fleet::restore_durable: restore requires a fresh fleet");
  ensure_state(state.devices.size() == slots_.size(),
               "Fleet::restore_durable: device roster mismatch (image has " +
                   std::to_string(state.devices.size()) + ", fleet has " +
                   std::to_string(slots_.size()) + ")");
  now_ = state.now;
  next_id_ = state.next_id;
  records_ = state.records;

  RestoreSummary total;
  for (std::size_t d = 0; d < slots_.size(); ++d) {
    Slot& s = *slots_[d];
    const RestoreSummary r = s.qrm->restore_durable(state.devices[d]);
    total.restored_jobs += r.restored_jobs;
    total.requeued_in_flight += r.requeued_in_flight;
    total.backfilled_traces += r.backfilled_traces;
    s.clock->advance_to(std::max(state.devices[d].now, now_));
    s.qdmi->set_status(s.qrm->status());
  }

  // local_to_fleet is derived state: each fleet record's *current*
  // (device, local id) pair is exactly the mapping (older hops were erased
  // when the job migrated away).
  for (const auto& [id, record] : records_) {
    if (record.device < 0) continue;
    slot(record.device).local_to_fleet.emplace(record.local_id, id);
  }

  // Fleet-level roots for surviving jobs, so migration hops after recovery
  // still land under one span tree per submission.
  if (tracer_ != nullptr) {
    for (const auto& [id, record] : records_) {
      if (record.device < 0) continue;
      const QuantumJobState s = this->state(id);
      if (is_terminal(s)) continue;
      const obs::SpanHandle span =
          tracer_->begin_span("fleet-job:" + record.name, now_);
      tracer_->set_attribute(span, "fleet_id", std::to_string(id));
      tracer_->set_attribute(span, "recovered", "true");
      open_spans_.emplace(id, span);
    }
  }

  note_gauges();
  if (log_)
    log_->info(now_, "fleet",
               "restored " + std::to_string(records_.size()) +
                   " fleet records across " + std::to_string(slots_.size()) +
                   " devices");
  return total;
}

}  // namespace hpcqc::sched
