#include "hpcqc/sched/hpc_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "hpcqc/common/error.hpp"

namespace hpcqc::sched {

HpcScheduler::HpcScheduler(int total_nodes)
    : total_nodes_(total_nodes), free_nodes_(total_nodes) {
  expects(total_nodes >= 1, "HpcScheduler: need at least one node");
}

int HpcScheduler::submit(HpcJob job) {
  expects(job.nodes >= 1 && job.nodes <= total_nodes_,
          "HpcScheduler::submit: job node count outside the cluster");
  expects(job.walltime > 0.0, "HpcScheduler::submit: walltime must be > 0");
  const int id = next_id_++;
  JobRecord record;
  record.id = id;
  record.job = std::move(job);
  record.submit_time = now_;
  records_.emplace(id, std::move(record));
  queue_.push_back(id);
  schedule();
  return id;
}

void HpcScheduler::start(JobRecord& record) {
  record.state = JobState::kRunning;
  record.start_time = now_;
  record.end_time = now_ + record.job.walltime;
  free_nodes_ -= record.job.nodes;
  running_.push_back(record.id);
}

void HpcScheduler::schedule() {
  // FCFS: start queue-head jobs while they fit.
  while (!queue_.empty()) {
    JobRecord& head = records_.at(queue_.front());
    if (head.job.nodes > free_nodes_) break;
    start(head);
    queue_.erase(queue_.begin());
  }
  if (queue_.empty()) return;

  // EASY backfill. Compute the shadow time: the earliest time the head job
  // can start, and the number of nodes spare at that moment.
  const JobRecord& head = records_.at(queue_.front());
  std::vector<std::pair<Seconds, int>> releases;  // (end_time, nodes)
  releases.reserve(running_.size());
  for (int id : running_) {
    const JobRecord& r = records_.at(id);
    releases.emplace_back(r.end_time, r.job.nodes);
  }
  std::sort(releases.begin(), releases.end());
  int available = free_nodes_;
  Seconds shadow_time = std::numeric_limits<double>::infinity();
  for (const auto& [end_time, nodes] : releases) {
    available += nodes;
    if (available >= head.job.nodes) {
      shadow_time = end_time;
      break;
    }
  }
  // Nodes spare at the shadow time once the head's reservation is taken.
  const int spare_at_shadow = available - head.job.nodes;

  // A later job may start now iff it fits now AND it does not delay the
  // head: it either ends before the shadow time or uses only spare nodes.
  for (std::size_t i = 1; i < queue_.size();) {
    JobRecord& candidate = records_.at(queue_[i]);
    const bool fits_now = candidate.job.nodes <= free_nodes_;
    const bool ends_before_shadow =
        now_ + candidate.job.walltime <= shadow_time;
    const bool within_spare = candidate.job.nodes <= spare_at_shadow;
    if (fits_now && (ends_before_shadow || within_spare)) {
      start(candidate);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void HpcScheduler::complete_due_jobs(Seconds until) {
  while (true) {
    // Earliest-finishing running job not later than `until`.
    int earliest_id = -1;
    Seconds earliest_end = until;
    for (int id : running_) {
      const JobRecord& r = records_.at(id);
      if (r.end_time <= earliest_end) {
        earliest_end = r.end_time;
        earliest_id = id;
      }
    }
    if (earliest_id < 0) return;
    JobRecord& done = records_.at(earliest_id);
    now_ = std::max(now_, done.end_time);
    done.state = JobState::kCompleted;
    free_nodes_ += done.job.nodes;
    running_.erase(std::find(running_.begin(), running_.end(), earliest_id));
    schedule();
  }
}

void HpcScheduler::advance_to(Seconds t) {
  expects(t >= now_, "HpcScheduler::advance_to: time cannot go backwards");
  complete_due_jobs(t);
  now_ = t;
}

void HpcScheduler::drain() {
  while (!running_.empty() || !queue_.empty())
    complete_due_jobs(std::numeric_limits<double>::infinity());
}

const JobRecord& HpcScheduler::record(int id) const {
  const auto it = records_.find(id);
  if (it == records_.end())
    throw NotFoundError("HpcScheduler: unknown job id " + std::to_string(id));
  return it->second;
}

std::vector<int> HpcScheduler::queued_ids() const { return queue_; }
std::vector<int> HpcScheduler::running_ids() const { return running_; }

std::size_t HpcScheduler::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(), [](const auto& kv) {
        return kv.second.state == JobState::kCompleted;
      }));
}

Seconds HpcScheduler::mean_wait() const {
  Seconds total = 0.0;
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.state == JobState::kCompleted) {
      total += record.wait_time();
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double HpcScheduler::utilization(Seconds t0, Seconds t1) const {
  expects(t1 > t0, "utilization: empty window");
  double node_seconds = 0.0;
  for (const auto& [id, record] : records_) {
    if (record.start_time < 0.0) continue;
    const Seconds start = std::max(t0, record.start_time);
    const Seconds end =
        std::min(t1, record.end_time < 0.0 ? t1 : record.end_time);
    if (end > start) node_seconds += record.job.nodes * (end - start);
  }
  return node_seconds / (static_cast<double>(total_nodes_) * (t1 - t0));
}

Seconds HpcScheduler::earliest_slot(int nodes) const {
  expects(nodes >= 1 && nodes <= total_nodes_,
          "earliest_slot: node count outside the cluster");
  if (nodes <= free_nodes_) return now_;
  std::vector<std::pair<Seconds, int>> releases;
  for (int id : running_) {
    const JobRecord& r = records_.at(id);
    releases.emplace_back(r.end_time, r.job.nodes);
  }
  std::sort(releases.begin(), releases.end());
  int available = free_nodes_;
  for (const auto& [end_time, released] : releases) {
    available += released;
    if (available >= nodes) return end_time;
  }
  return now_;  // unreachable when job fits the cluster
}

}  // namespace hpcqc::sched
