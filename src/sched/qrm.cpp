#include "hpcqc/sched/qrm.hpp"

#include <algorithm>
#include <cmath>

#include "hpcqc/common/error.hpp"
#include "hpcqc/mqss/service.hpp"

namespace hpcqc::sched {

const char* to_string(QuantumJobState state) {
  switch (state) {
    case QuantumJobState::kQueued: return "queued";
    case QuantumJobState::kRunning: return "running";
    case QuantumJobState::kCompleted: return "completed";
    case QuantumJobState::kRetrying: return "retrying";
    case QuantumJobState::kFailed: return "failed";
    case QuantumJobState::kCancelled: return "cancelled";
    case QuantumJobState::kRejectedOverload: return "rejected-overload";
    case QuantumJobState::kRejectedTooWide: return "rejected-too-wide";
    case QuantumJobState::kShed: return "shed";
    case QuantumJobState::kMigrated: return "migrated";
  }
  return "?";
}

const char* to_string(JobPriority priority) {
  switch (priority) {
    case JobPriority::kHigh: return "high";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kLow: return "low";
  }
  return "?";
}

Seconds RetryPolicy::backoff(std::size_t failures) const {
  expects(failures > 0, "RetryPolicy::backoff: failures is 1-based");
  const double scaled =
      initial_backoff *
      std::pow(backoff_factor, static_cast<double>(failures - 1));
  return std::min(scaled, max_backoff);
}

namespace {

void validate_config(const Qrm::Config& config) {
  const auto check = [](bool ok, const std::string& what) {
    if (!ok)
      throw PermanentError("Qrm::Config: " + what, ErrorCode::kPrecondition);
  };
  check(config.retry.max_attempts >= 1, "retry.max_attempts must be >= 1");
  check(config.retry.initial_backoff > 0.0,
        "retry.initial_backoff must be positive");
  check(config.retry.backoff_factor >= 1.0,
        "retry.backoff_factor must be >= 1");
  check(config.retry.max_backoff >= config.retry.initial_backoff,
        "retry.max_backoff must be >= retry.initial_backoff");
  check(config.job_overhead >= 0.0, "job_overhead cannot be negative");
  check(config.benchmark_overhead >= 0.0,
        "benchmark_overhead cannot be negative");
  check(config.max_defer_factor >= 1.0, "max_defer_factor must be >= 1");
  check(config.benchmark.shots >= 1, "benchmark.shots must be >= 1");
  check(config.benchmark.qubits >= 0, "benchmark.qubits cannot be negative");

  const auto& controller = config.controller;
  check(controller.benchmark_period > 0.0,
        "controller.benchmark_period must be positive");
  check(controller.max_calibration_age > 0.0,
        "controller.max_calibration_age must be positive");
  check(controller.fixed_interval > 0.0,
        "controller.fixed_interval must be positive");
  check(controller.quick_fraction > 0.0 && controller.quick_fraction <= 1.0,
        "controller.quick_fraction must be in (0, 1]");
  check(controller.full_fraction > 0.0 &&
            controller.full_fraction <= controller.quick_fraction,
        "controller.full_fraction must be in (0, quick_fraction]");

  const AdmissionPolicy& admission = config.admission;
  check(admission.queue_capacity >= 1, "admission.queue_capacity must be >= 1");
  check(admission.dead_letter_capacity >= 1,
        "admission.dead_letter_capacity must be >= 1");
  check(admission.high_rate_per_hour > 0.0,
        "admission.high_rate_per_hour must be positive");
  check(admission.normal_rate_per_hour > 0.0,
        "admission.normal_rate_per_hour must be positive");
  check(admission.low_rate_per_hour > 0.0,
        "admission.low_rate_per_hour must be positive");
  check(admission.burst >= 1.0, "admission.burst must be >= 1");
  check(admission.brownout_wait_limit > 0.0,
        "admission.brownout_wait_limit must be positive");
  check(admission.brownout_exit_fraction > 0.0 &&
            admission.brownout_exit_fraction <= 1.0,
        "admission.brownout_exit_fraction must be in (0, 1]");
  check(admission.max_tenant_queue_share > 0.0 &&
            admission.max_tenant_queue_share <= 1.0,
        "admission.max_tenant_queue_share must be in (0, 1]");
  check(admission.tenant_rate_per_hour >= 0.0,
        "admission.tenant_rate_per_hour cannot be negative");
  check(admission.tenant_burst >= 1.0, "admission.tenant_burst must be >= 1");
}

/// Adapts the device's deterministic per-batch progress callbacks into
/// instant events on the job's execute span. `base` is the execute span's
/// start plus the job overhead, so batch events land inside the span on the
/// simulated clock.
struct BatchEventObserver final : device::ExecObserver {
  obs::Tracer* tracer = nullptr;
  obs::SpanHandle span = obs::kNoSpan;
  Seconds base = 0.0;

  void on_shot_batch(std::size_t batch_index, std::size_t first_shot,
                     std::size_t shots_in_batch, std::size_t errored_shots,
                     Seconds elapsed) override {
    tracer->add_event(span, base + elapsed,
                      "shot-batch-" + std::to_string(batch_index),
                      "shots " + std::to_string(first_shot) + "+" +
                          std::to_string(shots_in_batch) + ", " +
                          std::to_string(errored_shots) + " errored");
  }
};

}  // namespace

int circuit_width(const circuit::Circuit& circuit) {
  std::vector<char> touched(static_cast<std::size_t>(circuit.num_qubits()), 0);
  for (const auto& op : circuit.ops()) {
    if (op.kind == circuit::OpKind::kBarrier) continue;
    for (int q : op.qubits) touched[static_cast<std::size_t>(q)] = 1;
  }
  return static_cast<int>(
      std::count(touched.begin(), touched.end(), char{1}));
}

bool Qrm::TokenBucket::try_take(Seconds now) {
  tokens = std::min(burst,
                    tokens + (now - last_refill) * rate_per_hour / 3600.0);
  last_refill = now;
  if (tokens < 1.0) return false;
  tokens -= 1.0;
  return true;
}

Qrm::Qrm(device::DeviceModel& device, Config config, Rng& rng, EventLog* log,
         obs::MetricsRegistry* metrics)
    : device_(&device),
      // Validated while initializing the first config-derived member:
      // degenerate values must surface as one PermanentError naming
      // Qrm::Config, not as whichever downstream component (controller,
      // benchmark) happens to trip over them first.
      config_((validate_config(config), config)),
      rng_(&rng),
      log_(log),
      controller_(config.controller),
      benchmark_(config.benchmark),
      engine_() {
  const double rates[3] = {config_.admission.high_rate_per_hour,
                           config_.admission.normal_rate_per_hour,
                           config_.admission.low_rate_per_hour};
  for (int p = 0; p < 3; ++p) {
    buckets_[p].rate_per_hour = rates[p];
    buckets_[p].burst = config_.admission.burst;
    buckets_[p].tokens = config_.admission.burst;  // start full
    buckets_[p].last_refill = 0.0;
  }
  if (metrics == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  } else {
    registry_ = metrics;
  }
  journal_ = config_.durability.sink;
  journal_tag_ = config_.durability.device_tag;
  bind_metrics();
}

void Qrm::emit(JobEvent event) {
  if (journal_ == nullptr) return;
  event.device = journal_tag_;
  event.at = now_;
  journal_->on_event(event);
}

void Qrm::bind_metrics() {
  m_submitted_ = &registry_->counter("qrm.jobs_submitted");
  m_completed_ = &registry_->counter("qrm.jobs_completed");
  m_failed_ = &registry_->counter("qrm.jobs_failed");
  m_cancelled_ = &registry_->counter("qrm.jobs_cancelled");
  m_retries_ = &registry_->counter("qrm.retries");
  m_execution_faults_ = &registry_->counter("qrm.execution_faults");
  m_calibrations_failed_ = &registry_->counter("qrm.calibrations_failed");
  m_rejected_overload_ = &registry_->counter("qrm.jobs_rejected_overload");
  m_rejected_too_wide_ = &registry_->counter("qrm.jobs_rejected_too_wide");
  m_shed_ = &registry_->counter("qrm.jobs_shed");
  m_degraded_holds_ = &registry_->counter("qrm.degraded_holds");
  m_dead_letters_dropped_ = &registry_->counter("qrm.dead_letters_dropped");
  m_migrated_out_ = &registry_->counter("qrm.jobs_migrated_out");
  m_migrated_in_ = &registry_->counter("qrm.jobs_migrated_in");
  m_dead_letters_drained_ = &registry_->counter("qrm.dead_letters_drained");
  m_total_shots_ = &registry_->counter("qrm.total_shots");
  m_good_shots_ = &registry_->counter("qrm.good_shots");
  m_busy_time_ = &registry_->counter("qrm.busy_time_s");
  m_calibration_time_ = &registry_->counter("qrm.calibration_time_s");
  m_benchmark_time_ = &registry_->counter("qrm.benchmark_time_s");
  m_queue_length_ = &registry_->gauge("qrm.queue_length");
  m_brownout_ = &registry_->gauge("qrm.brownout");
  m_queue_wait_ = &registry_->histogram("qrm.queue_wait_s");
  m_execute_ = &registry_->histogram("qrm.execute_s");
  m_shots_per_s_ =
      &registry_->histogram("qrm.shots_per_s", obs::default_rate_bounds());
  m_overhead_ = &registry_->histogram("qrm.job_overhead_s");
}

void Qrm::note_queue_gauge() {
  m_queue_length_->set(static_cast<double>(queue_.size()));
}

void Qrm::open_queue_span(int id, const char* why) {
  if (tracer_ == nullptr) return;
  JobSpans& spans = job_spans_[id];
  spans.queue = tracer_->begin_span("queue-wait", now_,
                                    tracer_->context(spans.root));
  tracer_->set_attribute(spans.queue, "reason", why);
}

void Qrm::close_root(int id, obs::SpanStatus status) {
  if (tracer_ == nullptr) return;
  const auto it = job_spans_.find(id);
  if (it == job_spans_.end()) return;
  tracer_->end_span(it->second.root, now_, status);
  job_spans_.erase(it);
}

Qrm::TokenBucket& Qrm::bucket(JobPriority priority) {
  return buckets_[static_cast<int>(priority)];
}

Seconds Qrm::estimated_wait() const {
  // O(1) on purpose: this sits on the admission hot path (every submit,
  // probe, and brownout update reads it), so the per-job costs are summed
  // incrementally as jobs move instead of walking the queue. The retry
  // backlog counts too — those jobs re-enter at the queue head, so a
  // device nursing a deep backlog must not look idle to fleet selection.
  const Seconds busy = phase_ == Phase::kIdle ? 0.0 : phase_end_ - now_;
  return busy + std::max(0.0, queued_work_) + std::max(0.0, retry_work_);
}

std::size_t Qrm::tenant_pending(const std::string& project) const {
  const auto it = tenants_.find(project);
  return it == tenants_.end() ? 0 : it->second.pending;
}

Qrm::TenantState* Qrm::tenant_state(const std::string& project) {
  const auto it = tenants_.find(project);
  if (it != tenants_.end()) return &it->second;
  TenantState state;
  state.bucket.rate_per_hour = config_.admission.tenant_rate_per_hour;
  state.bucket.burst = config_.admission.tenant_burst;
  state.bucket.tokens = config_.admission.tenant_burst;
  state.bucket.last_refill = now_;
  // Metric cardinality cap: only the first tenant_metric_series distinct
  // projects get their own qrm.tenant.<project>.* counters; the tail binds
  // the shared qrm.tenant.other.* rollup so a zipf population of thousands
  // cannot blow up the registry. The admission state above stays exact per
  // tenant either way.
  const bool dedicated =
      tenant_series_ < config_.admission.tenant_metric_series;
  if (dedicated) ++tenant_series_;
  const std::string prefix =
      dedicated ? "qrm.tenant." + project + "." : "qrm.tenant.other.";
  state.submitted = &registry_->counter(prefix + "submitted");
  state.admitted = &registry_->counter(prefix + "admitted");
  state.rejected = &registry_->counter(prefix + "rejected");
  return &tenants_.emplace(project, state).first->second;
}

void Qrm::track_enqueue(int id, bool retry) {
  const Seconds cost = records_.at(id).estimated_cost;
  (retry ? retry_work_ : queued_work_) += cost;
  const QuantumJob& job = pending_jobs_.at(id);
  if (!job.project.empty()) tenant_state(job.project)->pending += 1;
}

void Qrm::track_dequeue(int id, bool retry) {
  const Seconds cost = records_.at(id).estimated_cost;
  (retry ? retry_work_ : queued_work_) -= cost;
  const QuantumJob& job = pending_jobs_.at(id);
  if (!job.project.empty()) {
    TenantState* tenant = tenant_state(job.project);
    if (tenant->pending > 0) tenant->pending -= 1;
  }
}

Qrm::AdmissionProbe Qrm::probe_admission(int width,
                                         JobPriority priority) const {
  if (!online_) return AdmissionProbe::kOffline;
  if (!device_->health().all_healthy()) {
    const int capacity = static_cast<int>(
        device_->health().largest_component(device_->topology()).size());
    if (width > capacity) return AdmissionProbe::kTooWide;
  }
  if (queue_.size() >= config_.admission.queue_capacity)
    return AdmissionProbe::kQueueFull;
  // Mirror what update_brownout() would decide at submit, without latching.
  const bool would_brownout =
      brownout_ || estimated_wait() > config_.admission.brownout_wait_limit;
  if (would_brownout && priority == JobPriority::kLow)
    return AdmissionProbe::kBrownout;
  const TokenBucket& b = buckets_[static_cast<int>(priority)];
  const double tokens = std::min(
      b.burst, b.tokens + (now_ - b.last_refill) * b.rate_per_hour / 3600.0);
  if (tokens < 1.0) return AdmissionProbe::kRateLimited;
  return AdmissionProbe::kAdmissible;
}

JobConservation Qrm::conservation() const {
  JobConservation audit;
  audit.submitted = records_.size();
  for (const auto& [id, record] : records_) {
    switch (record.state) {
      case QuantumJobState::kCompleted: audit.completed += 1; break;
      case QuantumJobState::kFailed: audit.failed += 1; break;
      case QuantumJobState::kCancelled: audit.cancelled += 1; break;
      case QuantumJobState::kRejectedOverload:
        audit.rejected_overload += 1;
        break;
      case QuantumJobState::kRejectedTooWide:
        audit.rejected_too_wide += 1;
        break;
      case QuantumJobState::kShed: audit.shed += 1; break;
      case QuantumJobState::kMigrated: audit.migrated += 1; break;
      case QuantumJobState::kQueued:
      case QuantumJobState::kRunning:
      case QuantumJobState::kRetrying:
        audit.in_flight += 1;
        break;
    }
  }
  return audit;
}

int Qrm::reject(QuantumJobRecord record, QuantumJobState state,
                const std::string& reason) {
  record.state = state;
  record.end_time = now_;
  record.failure_reason = reason;
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kRejected;
    event.id = record.id;
    event.record = &record;
    event.reason = reason;
    emit(event);
  }
  if (state == QuantumJobState::kRejectedOverload)
    m_rejected_overload_->inc();
  else
    m_rejected_too_wide_->inc();
  if (log_)
    log_->warning(now_, "qrm",
                  "job '" + record.name + "' " + to_string(state) + ": " +
                      reason);
  const int id = record.id;
  if (tracer_ != nullptr) {
    const JobSpans& spans = job_spans_.at(id);
    tracer_->add_event(spans.admission, now_, "refused", reason);
    tracer_->end_span(spans.admission, now_, obs::SpanStatus::kError);
    close_root(id, obs::SpanStatus::kError);
    tracer_->record_failure(record.trace.trace_id,
                            std::string(to_string(state)) + ": " + reason,
                            now_);
  }
  records_.emplace(id, std::move(record));
  return id;
}

void Qrm::shed_low_priority() {
  std::vector<int> victims;
  for (const int id : queue_)
    if (records_.at(id).priority == JobPriority::kLow) victims.push_back(id);
  for (const int id : victims) {
    track_dequeue(id, /*retry=*/false);
    std::erase(queue_, id);
    auto& record = records_.at(id);
    record.state = QuantumJobState::kShed;
    record.end_time = now_;
    record.failure_reason = "shed by brownout (overloaded queue)";
    pending_jobs_.erase(id);
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kShed;
      event.id = id;
      event.record = &record;
      event.reason = record.failure_reason;
      emit(event);
    }
    m_shed_->inc();
    if (tracer_ != nullptr) {
      const JobSpans& spans = job_spans_.at(id);
      tracer_->add_event(spans.queue, now_, "shed",
                         "brownout shed low-priority job");
      tracer_->end_span(spans.queue, now_, obs::SpanStatus::kError);
      close_root(id, obs::SpanStatus::kError);
      tracer_->record_failure(record.trace.trace_id, "shed: brownout", now_);
    }
    if (log_)
      log_->warning(now_, "qrm", "job '" + record.name + "' shed (brownout)");
  }
  note_queue_gauge();
}

void Qrm::update_brownout() {
  const Seconds wait = estimated_wait();
  if (!brownout_ && wait > config_.admission.brownout_wait_limit) {
    brownout_ = true;
    m_brownout_->set(1.0);
    if (log_)
      log_->warning(now_, "qrm",
                    "brownout: estimated wait " + std::to_string(wait) +
                        " s exceeds " +
                        std::to_string(config_.admission.brownout_wait_limit) +
                        " s; shedding low-priority work");
    shed_low_priority();
  } else if (brownout_ &&
             wait <= config_.admission.brownout_exit_fraction *
                         config_.admission.brownout_wait_limit) {
    brownout_ = false;
    m_brownout_->set(0.0);
    if (log_)
      log_->info(now_, "qrm",
                 "brownout cleared (estimated wait " + std::to_string(wait) +
                     " s)");
  }
}

int Qrm::submit(QuantumJob job) {
  expects(job.shots > 0, "Qrm::submit: need at least one shot");
  if (job.parametric != nullptr) {
    expects(compile_service_ != nullptr,
            "Qrm::submit: parametric jobs need a compile service "
            "(set_compile_service)");
    // The bound source circuit stands in for admission: width checks and
    // duration estimates see the job's real gate content, while the
    // two-phase compile is deferred to dispatch (where it hits the shared
    // structure cache).
    job.circuit = job.parametric->bind(job.binding);
  }
  if (accounting_ != nullptr && !job.project.empty()) {
    const Seconds estimate =
        static_cast<double>(job.shots) * device_->shot_duration(job.circuit);
    ensure_state(accounting_->can_afford(job.project, estimate),
                 "Qrm::submit: project '" + job.project +
                     "' cannot afford the estimated " +
                     std::to_string(estimate) + " QPU-seconds");
  }
  QuantumJobRecord record;
  record.id = next_id_++;
  record.name = job.name;
  record.shots = job.shots;
  record.submit_time = now_;
  record.priority = job.priority;
  record.migrations = job.migrations;
  record.estimated_cost =
      config_.job_overhead +
      static_cast<double>(job.shots) * device_->shot_duration(job.circuit);
  m_submitted_->inc();
  TenantState* tenant =
      job.project.empty() ? nullptr : tenant_state(job.project);
  if (tenant != nullptr) tenant->submitted->inc();

  if (tracer_ != nullptr) {
    // Root span of this submission's trace; the client's context (when set)
    // makes it a child of the client-side submission span.
    JobSpans spans;
    spans.root = tracer_->begin_span("job:" + job.name, now_, job.trace);
    tracer_->set_attribute(spans.root, "job_id", std::to_string(record.id));
    tracer_->set_attribute(spans.root, "shots", std::to_string(job.shots));
    tracer_->set_attribute(spans.root, "priority", to_string(job.priority));
    if (!job.project.empty())
      tracer_->set_attribute(spans.root, "project", job.project);
    if (job.migrations > 0)
      tracer_->set_attribute(spans.root, "migrations",
                             std::to_string(job.migrations));
    spans.admission =
        tracer_->begin_span("admission", now_, tracer_->context(spans.root));
    record.trace = tracer_->context(spans.root);
    job_spans_.emplace(record.id, spans);
  }

  // Write-ahead: the submission (with its full payload) is journaled before
  // any admission outcome, so a crash between here and the decision leaves a
  // record recovery can scrub deterministically.
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kSubmitted;
    event.id = record.id;
    event.job = &job;
    event.record = &record;
    emit(event);
  }

  // Degraded capability check: a job wider than the largest healthy
  // connected component can never run until repairs land, so refuse it now
  // instead of parking it in the queue indefinitely.
  if (!device_->health().all_healthy()) {
    const int width = circuit_width(job.circuit);
    const int capacity = static_cast<int>(
        device_->health().largest_component(device_->topology()).size());
    if (width > capacity) {
      if (tenant != nullptr) tenant->rejected->inc();
      return reject(std::move(record), QuantumJobState::kRejectedTooWide,
                    "needs " + std::to_string(width) +
                        " qubits; largest healthy component has " +
                        std::to_string(capacity));
    }
  }

  // Overload control: brownout class suspension, hard queue cap, tenant
  // fair-share + quota, then the per-priority token bucket. A migrated-in
  // job was rate-controlled once at its fleet-wide admission, so only the
  // capacity cap applies to it.
  update_brownout();
  if (!job.migrated_in && brownout_ && job.priority == JobPriority::kLow) {
    if (tenant != nullptr) tenant->rejected->inc();
    return reject(std::move(record), QuantumJobState::kRejectedOverload,
                  "brownout: low-priority admissions suspended");
  }
  if (queue_.size() >= config_.admission.queue_capacity) {
    if (tenant != nullptr) tenant->rejected->inc();
    return reject(std::move(record), QuantumJobState::kRejectedOverload,
                  "queue full (" +
                      std::to_string(config_.admission.queue_capacity) +
                      " jobs)");
  }
  if (tenant != nullptr && !job.migrated_in &&
      config_.admission.max_tenant_queue_share < 1.0) {
    const auto cap = static_cast<std::size_t>(std::ceil(
        config_.admission.max_tenant_queue_share *
        static_cast<double>(config_.admission.queue_capacity)));
    if (tenant->pending >= cap) {
      tenant->rejected->inc();
      return reject(std::move(record), QuantumJobState::kRejectedOverload,
                    "tenant '" + job.project + "' exceeds its fair share (" +
                        std::to_string(cap) + " pending jobs)");
    }
  }
  if (tenant != nullptr && !job.migrated_in &&
      config_.admission.tenant_rate_per_hour > 0.0) {
    if (!tenant->bucket.try_take(now_)) {
      tenant->rejected->inc();
      return reject(std::move(record), QuantumJobState::kRejectedOverload,
                    "tenant '" + job.project + "' admission rate exceeded");
    }
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kTenantDelta;
      event.id = record.id;
      event.project = job.project;
      event.bucket_tokens = tenant->bucket.tokens;
      event.bucket_refill = tenant->bucket.last_refill;
      emit(event);
    }
  }
  if (!job.migrated_in && !bucket(job.priority).try_take(now_)) {
    if (tenant != nullptr) tenant->rejected->inc();
    return reject(std::move(record), QuantumJobState::kRejectedOverload,
                  std::string("admission rate exceeded for ") +
                      to_string(job.priority) + " priority");
  }
  if (job.migrated_in) m_migrated_in_->inc();
  if (tenant != nullptr) tenant->admitted->inc();

  const int id = record.id;
  if (tracer_ != nullptr) {
    tracer_->end_span(job_spans_.at(id).admission, now_,
                      obs::SpanStatus::kOk);
  }
  records_.emplace(id, std::move(record));
  pending_jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  track_enqueue(id, /*retry=*/false);
  if (journal_ != nullptr) {
    const QuantumJob& admitted = pending_jobs_.at(id);
    const TokenBucket& b = bucket(admitted.priority);
    JobEvent event;
    event.kind = JobEvent::Kind::kAdmitted;
    event.id = id;
    event.record = &records_.at(id);
    event.priority = admitted.priority;
    event.bucket_tokens = b.tokens;
    event.bucket_refill = b.last_refill;
    emit(event);
  }
  open_queue_span(id, "admitted");
  note_queue_gauge();
  update_brownout();
  return id;
}

std::vector<int> Qrm::submit_batch(std::vector<QuantumJob> jobs) {
  std::vector<int> ids;
  ids.reserve(jobs.size());
  for (QuantumJob& job : jobs) ids.push_back(submit(std::move(job)));
  // Batched dispatch into the compile farm: warm every admitted parametric
  // structure now (single-flight dedup collapses repeats), so the farm
  // overlaps compilation with the rest of the ingest window. No wait_idle
  // here — the dispatch path still barriers before mutating the device.
  if (compile_service_ != nullptr &&
      compile_service_->compile_farm() != nullptr) {
    for (const int id : ids) {
      const auto it = pending_jobs_.find(id);
      if (it == pending_jobs_.end() || it->second.parametric == nullptr)
        continue;
      compile_service_->prefetch_structure(it->second.parametric);
    }
  }
  return ids;
}

bool Qrm::cancel(int id, const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end())
    throw NotFoundError("Qrm: unknown job id " + std::to_string(id));
  QuantumJobRecord& record = it->second;
  if (record.state != QuantumJobState::kQueued &&
      record.state != QuantumJobState::kRetrying)
    return false;
  track_dequeue(id, record.state == QuantumJobState::kRetrying);
  std::erase(queue_, id);
  std::erase(retry_queue_, id);
  record.state = QuantumJobState::kCancelled;
  record.failure_reason = reason;
  record.end_time = now_;
  record.next_retry_at = -1.0;
  pending_jobs_.erase(id);
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kCancelled;
    event.id = id;
    event.record = &record;
    event.reason = reason;
    emit(event);
  }
  m_cancelled_->inc();
  note_queue_gauge();
  if (tracer_ != nullptr) {
    // A cancellation ends the tree without a post-mortem: it is a user
    // decision, not a failure worth a flight-recorder dump.
    JobSpans& spans = job_spans_.at(id);
    const obs::SpanHandle stage =
        spans.queue != obs::kNoSpan ? spans.queue : spans.backoff;
    if (stage != obs::kNoSpan) {
      tracer_->add_event(stage, now_, "cancelled", reason);
      tracer_->end_span(stage, now_, obs::SpanStatus::kOk);
    }
    close_root(id, obs::SpanStatus::kError);
  }
  if (log_)
    log_->info(now_, "qrm", "job '" + record.name + "' cancelled: " + reason);
  return true;
}

const QuantumJob& Qrm::pending_job(int id) const {
  const auto it = pending_jobs_.find(id);
  if (it == pending_jobs_.end())
    throw NotFoundError("Qrm: job " + std::to_string(id) +
                        " has no pending payload");
  return it->second;
}

std::optional<Qrm::MigratedJob> Qrm::extract_job(int id,
                                                 const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  QuantumJobRecord& record = it->second;
  if (record.state != QuantumJobState::kQueued &&
      record.state != QuantumJobState::kRetrying)
    return std::nullopt;
  track_dequeue(id, record.state == QuantumJobState::kRetrying);
  std::erase(queue_, id);
  std::erase(retry_queue_, id);
  MigratedJob out;
  out.id = id;
  out.job = std::move(pending_jobs_.at(id));
  pending_jobs_.erase(id);
  record.state = QuantumJobState::kMigrated;
  record.end_time = now_;
  record.next_retry_at = -1.0;
  record.failure_reason = "migrated: " + reason;
  out.job.migrations += 1;
  out.job.migrated_in = true;
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kMigratedOut;
    event.id = id;
    event.record = &record;
    event.reason = reason;
    emit(event);
  }
  m_migrated_out_->inc();
  note_queue_gauge();
  if (tracer_ != nullptr) {
    // Migration ends this device's span tree cleanly — the job is not
    // failing, it is moving; the destination opens its own root under the
    // same client context.
    JobSpans& spans = job_spans_.at(id);
    const obs::SpanHandle stage =
        spans.queue != obs::kNoSpan ? spans.queue : spans.backoff;
    if (stage != obs::kNoSpan) {
      tracer_->add_event(stage, now_, "migrated", reason);
      tracer_->end_span(stage, now_, obs::SpanStatus::kOk);
    }
    close_root(id, obs::SpanStatus::kOk);
  }
  if (log_)
    log_->info(now_, "qrm",
               "job '" + record.name + "' migrated out: " + reason);
  return out;
}

std::vector<Qrm::MigratedJob> Qrm::extract_pending(const std::string& reason) {
  std::vector<int> ids = queue_;
  ids.insert(ids.end(), retry_queue_.begin(), retry_queue_.end());
  std::vector<MigratedJob> out;
  out.reserve(ids.size());
  for (const int id : ids) {
    auto migrated = extract_job(id, reason);
    if (migrated.has_value()) out.push_back(std::move(*migrated));
  }
  return out;
}

void Qrm::push_dead_letter(const QuantumJobRecord& record, QuantumJob job) {
  DeadLetterRecord letter;
  letter.id = record.id;
  letter.name = record.name;
  letter.attempts = record.attempts;
  letter.reason = record.failure_reason;
  letter.failed_at = now_;
  letter.trace = record.trace;
  letter.job = std::move(job);
  dead_letters_.push_back(std::move(letter));
  if (dead_letters_.size() > config_.admission.dead_letter_capacity) {
    // Oldest-first overflow: the DLQ is an audit window, not unbounded
    // storage; the drop is counted so nothing vanishes unaccounted.
    const int dropped = dead_letters_.front().id;
    dead_letters_.erase(dead_letters_.begin());
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kDlqDropped;
      event.id = dropped;
      emit(event);
    }
    m_dead_letters_dropped_->inc();
  }
}

bool Qrm::dead_letter_job(int id, const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  QuantumJobRecord& record = it->second;
  if (record.state != QuantumJobState::kQueued &&
      record.state != QuantumJobState::kRetrying)
    return false;
  track_dequeue(id, record.state == QuantumJobState::kRetrying);
  std::erase(queue_, id);
  std::erase(retry_queue_, id);
  record.state = QuantumJobState::kFailed;
  record.end_time = now_;
  record.next_retry_at = -1.0;
  record.failure_reason = reason;
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kDeadLettered;
    event.id = id;
    event.record = &record;
    event.reason = reason;
    emit(event);
  }
  push_dead_letter(record, std::move(pending_jobs_.at(id)));
  pending_jobs_.erase(id);
  m_failed_->inc();
  note_queue_gauge();
  if (tracer_ != nullptr) {
    JobSpans& spans = job_spans_.at(id);
    const obs::SpanHandle stage =
        spans.queue != obs::kNoSpan ? spans.queue : spans.backoff;
    if (stage != obs::kNoSpan) {
      tracer_->add_event(stage, now_, "dead-lettered", reason);
      tracer_->end_span(stage, now_, obs::SpanStatus::kError);
    }
    close_root(id, obs::SpanStatus::kError);
    tracer_->record_failure(record.trace.trace_id, "dead-letter: " + reason,
                            now_);
  }
  if (log_)
    log_->error(now_, "qrm",
                "job '" + record.name + "' dead-lettered: " + reason);
  return true;
}

std::vector<DeadLetterRecord> Qrm::drain_dead_letters() {
  std::vector<DeadLetterRecord> out;
  out.swap(dead_letters_);
  for (DeadLetterRecord& letter : out) {
    if (!letter.job.trace.valid() && letter.trace.valid())
      letter.job.trace = letter.trace;
  }
  if (journal_ != nullptr && !out.empty()) {
    JobEvent event;
    event.kind = JobEvent::Kind::kDlqDrained;
    event.count = out.size();
    emit(event);
  }
  m_dead_letters_drained_->inc(static_cast<double>(out.size()));
  if (log_ && !out.empty())
    log_->info(now_, "qrm",
               "drained " + std::to_string(out.size()) +
                   " dead letters for replay");
  return out;
}

void Qrm::set_offline(const std::string& reason) {
  online_ = false;
  status_ = qdmi::DeviceStatus::kOffline;
  // An outage aborts whatever was in flight; the job returns to the queue
  // head (the "more robust job restart tools after system outages" users
  // asked for in §4 exist because of exactly this path). The interruption
  // is recorded but no retry attempt is charged: the outage is the
  // facility's fault, not the job's.
  if (phase_ == Phase::kJob && active_job_ >= 0) {
    auto& record = records_.at(active_job_);
    record.state = QuantumJobState::kQueued;
    record.start_time = -1.0;
    record.end_time = -1.0;
    if (record.attempts > 0) record.attempts -= 1;
    record.interruptions += 1;
    record.failure_reason = "interrupted by outage: " + reason;
    queue_.insert(queue_.begin(), active_job_);
    track_enqueue(active_job_, /*retry=*/false);
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kInterrupted;
      event.id = active_job_;
      event.record = &record;
      event.reason = reason;
      emit(event);
    }
    note_queue_gauge();
    if (tracer_ != nullptr) {
      JobSpans& spans = job_spans_.at(active_job_);
      tracer_->add_event(spans.execute, now_, "interrupted",
                         "outage: " + reason);
      tracer_->end_span(spans.execute, now_, obs::SpanStatus::kError);
      tracer_->end_span(spans.attempt, now_, obs::SpanStatus::kError);
      spans.execute = obs::kNoSpan;
      spans.attempt = obs::kNoSpan;
      open_queue_span(active_job_, "requeued after outage");
    }
    if (log_)
      log_->warning(now_, "qrm",
                    "job '" + record.name + "' requeued (outage mid-run)");
  }
  // A recovery/forced calibration that was interrupted must not be lost:
  // re-arm it so it runs first when the QPU returns to service.
  if (phase_ == Phase::kCalibration && active_calibration_.has_value()) {
    if (!forced_calibration_.has_value() ||
        *active_calibration_ == calibration::CalibrationKind::kFull)
      forced_calibration_ = *active_calibration_;
    if (log_)
      log_->warning(now_, "qrm", "calibration aborted by outage; re-armed");
  }
  if (tracer_ != nullptr && phase_span_ != obs::kNoSpan) {
    tracer_->add_event(phase_span_, now_, "aborted", "outage: " + reason);
    tracer_->end_span(phase_span_, now_, obs::SpanStatus::kError);
    phase_span_ = obs::kNoSpan;
  }
  phase_ = Phase::kIdle;
  active_job_ = -1;
  active_job_faulted_ = false;
  active_calibration_.reset();
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kOffline;
    event.reason = reason;
    emit(event);
  }
  if (log_) log_->warning(now_, "qrm", "QPU offline: " + reason);
}

void Qrm::set_online() {
  online_ = true;
  status_ = qdmi::DeviceStatus::kIdle;
  if (journal_ != nullptr) {
    JobEvent event;
    event.kind = JobEvent::Kind::kOnline;
    emit(event);
  }
  if (log_) log_->info(now_, "qrm", "QPU back in service");
}

void Qrm::request_calibration(calibration::CalibrationKind kind) {
  // A full request supersedes a pending quick one, never the reverse.
  if (!forced_calibration_.has_value() ||
      kind == calibration::CalibrationKind::kFull)
    forced_calibration_ = kind;
}

void Qrm::apply_drift_until(Seconds t) {
  if (t > drifted_until_) {
    device_->drift(t - drifted_until_, *rng_);
    drifted_until_ = t;
  }
}

void Qrm::promote_due_retries() {
  // Due retries re-enter at the queue head, preserving their backoff order,
  // so a recovered job does not start over behind a day of fresh arrivals.
  std::vector<int> due;
  for (const int id : retry_queue_)
    if (records_.at(id).next_retry_at <= now_) due.push_back(id);
  if (due.empty()) return;
  for (auto it = due.rbegin(); it != due.rend(); ++it) {
    queue_.insert(queue_.begin(), *it);
    // Emitted per insertion (reverse order) so a replay that applies
    // "insert at head" per event reproduces the final queue order exactly.
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kRetryRequeued;
      event.id = *it;
      emit(event);
    }
  }
  for (const int id : due) {
    track_dequeue(id, /*retry=*/true);
    track_enqueue(id, /*retry=*/false);
    std::erase(retry_queue_, id);
    auto& record = records_.at(id);
    record.state = QuantumJobState::kQueued;
    record.next_retry_at = -1.0;
    if (tracer_ != nullptr) {
      JobSpans& spans = job_spans_.at(id);
      tracer_->end_span(spans.backoff, now_, obs::SpanStatus::kOk);
      spans.backoff = obs::kNoSpan;
      open_queue_span(id, "retry requeued");
    }
  }
  note_queue_gauge();
}

void Qrm::fail_active_job() {
  auto& record = records_.at(active_job_);
  const QuantumJob& job = pending_jobs_.at(active_job_);
  m_execution_faults_->inc();
  // Retries are metered: the failed attempt occupied the machine for its
  // full wall time, and the project pays for it (shots yield nothing).
  if (accounting_ != nullptr && !job.project.empty())
    accounting_->charge(job.project, record.result.wall_time, 0);
  m_busy_time_->inc(now_ - record.start_time);

  if (tracer_ != nullptr) {
    JobSpans& spans = job_spans_.at(active_job_);
    tracer_->add_event(spans.execute, now_, "execution-fault",
                       "injected device fault");
    tracer_->end_span(spans.execute, now_, obs::SpanStatus::kError);
    tracer_->end_span(spans.attempt, now_, obs::SpanStatus::kError);
    spans.execute = obs::kNoSpan;
    spans.attempt = obs::kNoSpan;
  }

  if (record.attempts >= config_.retry.max_attempts) {
    record.state = QuantumJobState::kFailed;
    record.end_time = now_;
    record.failure_reason = "execution fault; retry budget exhausted after " +
                            std::to_string(record.attempts) + " attempts";
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kDeadLettered;
      event.id = active_job_;
      event.record = &record;
      event.reason = record.failure_reason;
      emit(event);
    }
    push_dead_letter(record, std::move(pending_jobs_.at(active_job_)));
    m_failed_->inc();
    pending_jobs_.erase(active_job_);
    if (tracer_ != nullptr) {
      close_root(active_job_, obs::SpanStatus::kError);
      tracer_->record_failure(record.trace.trace_id,
                              "dead-letter: " + record.failure_reason, now_);
    }
    if (log_)
      log_->error(now_, "qrm",
                  "job '" + record.name + "' dead-lettered after " +
                      std::to_string(record.attempts) + " attempts");
  } else {
    record.state = QuantumJobState::kRetrying;
    record.failure_reason = "execution fault (attempt " +
                            std::to_string(record.attempts) + ")";
    record.next_retry_at = now_ + config_.retry.backoff(record.attempts);
    retry_queue_.push_back(active_job_);
    track_enqueue(active_job_, /*retry=*/true);
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kRetrying;
      event.id = active_job_;
      event.record = &record;
      event.reason = record.failure_reason;
      emit(event);
    }
    m_retries_->inc();
    if (tracer_ != nullptr) {
      JobSpans& spans = job_spans_.at(active_job_);
      spans.backoff = tracer_->begin_span("retry-backoff", now_,
                                          tracer_->context(spans.root));
      tracer_->set_attribute(spans.backoff, "attempt",
                             std::to_string(record.attempts));
      tracer_->set_attribute(
          spans.backoff, "backoff_s",
          std::to_string(record.next_retry_at - now_));
    }
    if (log_)
      log_->warning(now_, "qrm",
                    "job '" + record.name + "' failed attempt " +
                        std::to_string(record.attempts) + "; retry in " +
                        std::to_string(record.next_retry_at - now_) + " s");
  }
  active_job_ = -1;
  active_job_faulted_ = false;
}

void Qrm::finish_phase(Rng& rng) {
  switch (phase_) {
    case Phase::kIdle:
      break;
    case Phase::kJob: {
      if (active_job_faulted_) {
        fail_active_job();
        break;
      }
      auto& record = records_.at(active_job_);
      record.state = QuantumJobState::kCompleted;
      record.end_time = now_;
      if (journal_ != nullptr) {
        JobEvent event;
        event.kind = JobEvent::Kind::kCompleted;
        event.id = active_job_;
        event.record = &record;
        emit(event);
      }
      m_completed_->inc();
      m_total_shots_->inc(static_cast<double>(record.shots));
      m_good_shots_->inc(static_cast<double>(record.shots) *
                         record.result.estimated_fidelity);
      const Seconds busy = now_ - record.start_time;
      m_busy_time_->inc(busy);
      m_execute_->observe(busy);
      if (busy > 0.0)
        m_shots_per_s_->observe(static_cast<double>(record.shots) / busy);
      if (tracer_ != nullptr) {
        JobSpans& spans = job_spans_.at(active_job_);
        tracer_->set_attribute(
            spans.execute, "estimated_fidelity",
            std::to_string(record.result.estimated_fidelity));
        tracer_->end_span(spans.execute, now_, obs::SpanStatus::kOk);
        tracer_->end_span(spans.attempt, now_, obs::SpanStatus::kOk);
        close_root(active_job_, obs::SpanStatus::kOk);
      }
      if (log_)
        log_->debug(now_, "qrm",
                    "job '" + record.name + "' completed (est. fidelity " +
                        std::to_string(record.result.estimated_fidelity) + ")");
      const QuantumJob& job = pending_jobs_.at(active_job_);
      if (accounting_ != nullptr && !job.project.empty())
        accounting_->charge(job.project, record.result.wall_time,
                            record.shots);
      pending_jobs_.erase(active_job_);
      active_job_ = -1;
      // A completed job shrinks the backlog; let brownout clear as soon as
      // the estimated wait is back under the exit threshold.
      update_brownout();
      break;
    }
    case Phase::kBenchmark: {
      const auto result = benchmark_.run(*device_, now_, rng);
      controller_.note_benchmark(result);
      m_benchmark_time_->inc(config_.benchmark_overhead);
      if (tracer_ != nullptr && phase_span_ != obs::kNoSpan) {
        tracer_->set_attribute(phase_span_, "ghz_success",
                               std::to_string(result.ghz_success));
        tracer_->end_span(phase_span_, now_, obs::SpanStatus::kOk);
        phase_span_ = obs::kNoSpan;
      }
      if (log_)
        log_->debug(now_, "qrm",
                    "health benchmark: ghz_success=" +
                        std::to_string(result.ghz_success));
      break;
    }
    case Phase::kCalibration: {
      // An injected calibration fault makes the run not converge: the
      // device keeps its drifted state and the slot is re-armed so the
      // calibration retries once the window passes.
      if (injector_ != nullptr &&
          injector_->active(fault::FaultSite::kCalibration, phase_start_)) {
        m_calibrations_failed_->inc();
        m_calibration_time_->inc(now_ - phase_start_);
        if (!forced_calibration_.has_value() ||
            *active_calibration_ == calibration::CalibrationKind::kFull)
          forced_calibration_ = *active_calibration_;
        if (tracer_ != nullptr && phase_span_ != obs::kNoSpan) {
          tracer_->add_event(phase_span_, now_, "calibration-fault",
                             "failed to converge (injected fault); re-armed");
          tracer_->end_span(phase_span_, now_, obs::SpanStatus::kError);
          phase_span_ = obs::kNoSpan;
        }
        if (log_)
          log_->error(now_, "qrm",
                      std::string("calibration (") +
                          to_string(*active_calibration_) +
                          ") failed to converge (injected fault); re-armed");
        active_calibration_.reset();
        break;
      }
      const auto outcome =
          engine_.run(*device_, *active_calibration_, phase_start_, rng);
      controller_.note_calibration(outcome);
      m_calibration_time_->inc(outcome.duration);
      if (tracer_ != nullptr && phase_span_ != obs::kNoSpan) {
        tracer_->set_attribute(
            phase_span_, "median_1q_after",
            std::to_string(outcome.median_fidelity_1q_after));
        tracer_->end_span(phase_span_, now_, obs::SpanStatus::kOk);
        phase_span_ = obs::kNoSpan;
      }
      if (log_)
        log_->info(now_, "qrm",
                   std::string("calibration (") + to_string(outcome.kind) +
                       ") done: median 1q=" +
                       std::to_string(outcome.median_fidelity_1q_after) +
                       " cz=" +
                       std::to_string(outcome.median_fidelity_cz_after));
      active_calibration_.reset();
      break;
    }
  }
  phase_ = Phase::kIdle;
  status_ = qdmi::DeviceStatus::kIdle;
}

void Qrm::begin_next_work() {
  promote_due_retries();

  // 1. Forced calibrations (recovery procedures) run first.
  if (forced_calibration_.has_value()) {
    active_calibration_ = *forced_calibration_;
    forced_calibration_.reset();
    const auto procedure =
        *active_calibration_ == calibration::CalibrationKind::kQuick
            ? calibration::quick_procedure()
            : calibration::full_procedure();
    phase_ = Phase::kCalibration;
    phase_start_ = now_;
    phase_end_ = now_ + procedure.total_duration();
    status_ = qdmi::DeviceStatus::kCalibrating;
    if (tracer_ != nullptr) {
      phase_span_ = tracer_->begin_span("calibration", now_);
      tracer_->set_attribute(phase_span_, "kind",
                             to_string(*active_calibration_));
      tracer_->set_attribute(phase_span_, "forced", "true");
    }
    return;
  }

  // 2. Periodic health benchmark.
  if (controller_.benchmark_due(now_)) {
    const auto ghz = calibration::GhzBenchmark::chain_circuit(
        *device_, benchmark_.params().qubits == 0
                      ? device_->num_qubits()
                      : benchmark_.params().qubits);
    phase_ = Phase::kBenchmark;
    phase_start_ = now_;
    phase_end_ = now_ + config_.benchmark_overhead +
                 static_cast<double>(benchmark_.params().shots) *
                     device_->shot_duration(ghz);
    status_ = qdmi::DeviceStatus::kExecuting;
    if (tracer_ != nullptr)
      phase_span_ = tracer_->begin_span("health-benchmark", now_);
    return;
  }

  // 3. Controller-driven calibration. A scheduler-controlled policy waits
  //    for an empty queue, but is forced past the defer bound. A closed
  //    fleet gate defers the slot to a later pass (at most K devices
  //    calibrate concurrently; forced recovery calibrations above bypass
  //    the gate — an outage already serialized that device).
  if (calibration_gate_ == nullptr || calibration_gate_()) {
    const Seconds age = now_ - device_->calibration().calibrated_at;
    const bool defer_expired =
        age >
        config_.max_defer_factor * config_.controller.max_calibration_age;
    const auto request =
        controller_.decide(now_, *device_, queue_.empty() || defer_expired);
    if (request.has_value()) {
      active_calibration_ = request->kind;
      const auto procedure =
          request->kind == calibration::CalibrationKind::kQuick
              ? calibration::quick_procedure()
              : calibration::full_procedure();
      phase_ = Phase::kCalibration;
      phase_start_ = now_;
      phase_end_ = now_ + procedure.total_duration();
      status_ = qdmi::DeviceStatus::kCalibrating;
      if (tracer_ != nullptr) {
        phase_span_ = tracer_->begin_span("calibration", now_);
        tracer_->set_attribute(phase_span_, "kind", to_string(request->kind));
        tracer_->set_attribute(phase_span_, "reason", request->reason);
      }
      if (log_)
        log_->info(now_, "qrm",
                   std::string("starting ") + to_string(request->kind) +
                       " calibration: " + request->reason);
      return;
    }
  }

  // 4. User jobs. On a degraded device, jobs whose compiled circuits touch
  //    currently-masked hardware are held in place (they run once the
  //    supervisor unmasks after targeted recalibration); the first runnable
  //    job is picked instead, so healthy capacity keeps flowing.
  if (!queue_.empty()) {
    // Warm the structure cache for every queued parametric job before
    // picking: distinct shapes compile concurrently on the farm while
    // single-flight dedup collapses duplicates. wait_idle() brackets the
    // farm work inside this scheduler pass, so later device mutation
    // (drift, recalibration) never races an in-flight compile.
    if (compile_service_ != nullptr &&
        compile_service_->compile_farm() != nullptr) {
      bool any = false;
      for (int queued_id : queue_) {
        const QuantumJob& queued = pending_jobs_.at(queued_id);
        if (queued.parametric == nullptr) continue;
        compile_service_->prefetch_structure(queued.parametric);
        any = true;
      }
      if (any) compile_service_->compile_farm()->wait_idle();
    }
    std::size_t pick = 0;
    if (!device_->health().all_healthy()) {
      const int capacity = static_cast<int>(
          device_->health().largest_component(device_->topology()).size());
      pick = queue_.size();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const QuantumJob& candidate = pending_jobs_.at(queue_[i]);
        // A parametric job recompiles against the masked topology at
        // dispatch, so it is runnable whenever its logical width fits the
        // healthy component; a pre-compiled job must be legal as-is.
        const bool runnable =
            candidate.parametric != nullptr
                ? circuit_width(candidate.circuit) <= capacity
                : device_->health().circuit_legal(device_->topology(),
                                                  candidate.circuit);
        if (runnable) {
          pick = i;
          break;
        }
        m_degraded_holds_->inc();
        if (tracer_ != nullptr) {
          // One event per hold *stretch*, not per scheduler pass — a job
          // parked across a long repair would otherwise flood its span.
          JobSpans& spans = job_spans_.at(queue_[i]);
          if (!spans.held)
            tracer_->add_event(spans.queue, now_, "degraded-hold",
                               "circuit touches masked hardware");
          spans.held = true;
          spans.held_scans += 1;
        }
      }
      if (pick == queue_.size()) return;  // everything queued is held
    }
    const int id = queue_[pick];
    track_dequeue(id, /*retry=*/false);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    note_queue_gauge();
    auto& record = records_.at(id);
    const QuantumJob& job = pending_jobs_.at(id);
    record.state = QuantumJobState::kRunning;
    record.start_time = now_;
    record.attempts += 1;
    // Write-ahead of the attempt itself: the journal shows the dispatch
    // before any device side effect, so a crash mid-execution recovers the
    // job as in-flight (requeued at head) rather than silently lost.
    if (journal_ != nullptr) {
      JobEvent event;
      event.kind = JobEvent::Kind::kDispatched;
      event.id = id;
      event.record = &record;
      emit(event);
    }
    m_queue_wait_->observe(now_ - record.submit_time);
    m_overhead_->observe(config_.job_overhead);

    device::ExecObserver* observer = nullptr;
    BatchEventObserver batch_events;
    if (tracer_ != nullptr) {
      JobSpans& spans = job_spans_.at(id);
      if (spans.held_scans > 0) {
        tracer_->set_attribute(spans.queue, "degraded_hold_scans",
                               std::to_string(spans.held_scans));
        spans.held = false;
        spans.held_scans = 0;
      }
      tracer_->end_span(spans.queue, now_, obs::SpanStatus::kOk);
      spans.queue = obs::kNoSpan;
      spans.attempt =
          tracer_->begin_span("attempt-" + std::to_string(record.attempts),
                              now_, tracer_->context(spans.root));
      spans.execute = tracer_->begin_span("execute", now_,
                                          tracer_->context(spans.attempt));
      batch_events.tracer = tracer_;
      batch_events.span = spans.execute;
      batch_events.base = now_ + config_.job_overhead;
      observer = &batch_events;
    }
    if (job.parametric != nullptr) {
      // Two-phase path: structure from the shared cache (warmed by the
      // prefetch above), angles patched in, and the device-level program
      // rebound instead of recompiled when the shape repeats.
      const mqss::CompiledProgram program =
          compile_service_->compile_parametric(*job.parametric, job.binding);
      record.result =
          device_->execute(program.native_circuit, job.shots, *rng_,
                           config_.execution_mode, observer, &prepared_);
    } else {
      record.result = device_->execute(job.circuit, job.shots, *rng_,
                                       config_.execution_mode, observer);
    }
    // The attempt occupies the machine for its full wall time either way;
    // whether it comes back with results or an abort is decided by the
    // fault window covering its start.
    active_job_faulted_ =
        injector_ != nullptr &&
        injector_->active(fault::FaultSite::kDeviceExecution, now_);
    phase_ = Phase::kJob;
    phase_start_ = now_;
    phase_end_ = now_ + config_.job_overhead + record.result.wall_time;
    active_job_ = id;
    status_ = qdmi::DeviceStatus::kExecuting;
    return;
  }
}

void Qrm::advance_to(Seconds t) {
  expects(t >= now_, "Qrm::advance_to: time cannot go backwards");
  while (true) {
    if (!online_) {
      apply_drift_until(t);
      now_ = t;
      return;
    }
    if (phase_ != Phase::kIdle) {
      if (phase_end_ <= t) {
        apply_drift_until(phase_end_);
        now_ = phase_end_;
        finish_phase(*rng_);
        continue;
      }
      apply_drift_until(t);
      now_ = t;
      return;
    }
    begin_next_work();
    if (phase_ != Phase::kIdle) continue;

    // Nothing to do now; wake at the next benchmark due time or retry
    // release if one falls inside the window.
    Seconds wake = t;
    if (!controller_.benchmark_history().empty()) {
      const Seconds due = controller_.benchmark_history().back().run_at +
                          config_.controller.benchmark_period;
      if (due > now_ && due < wake) wake = due;
    }
    for (const int id : retry_queue_) {
      const Seconds due = records_.at(id).next_retry_at;
      if (due > now_ && due < wake) wake = due;
    }
    apply_drift_until(wake);
    now_ = wake;
    if (wake >= t) return;
  }
}

void Qrm::drain() {
  int safety = 0;
  while (phase_ != Phase::kIdle || !queue_.empty() || !retry_queue_.empty() ||
         forced_calibration_.has_value()) {
    advance_to(now_ + hours(1.0));
    expects(++safety < 100000, "Qrm::drain: runaway event loop");
  }
}

const QuantumJobRecord& Qrm::record(int id) const {
  const auto it = records_.find(id);
  if (it == records_.end())
    throw NotFoundError("Qrm: unknown job id " + std::to_string(id));
  return it->second;
}

QrmMetrics Qrm::metrics() const {
  QrmMetrics metrics;
  metrics.jobs_completed = m_completed_->count();
  metrics.total_shots = m_total_shots_->count();
  metrics.good_shots = m_good_shots_->value();
  metrics.busy_time = m_busy_time_->value();
  metrics.calibration_time = m_calibration_time_->value();
  metrics.benchmark_time = m_benchmark_time_->value();
  metrics.jobs_failed = m_failed_->count();
  metrics.jobs_cancelled = m_cancelled_->count();
  metrics.retries = m_retries_->count();
  metrics.execution_faults = m_execution_faults_->count();
  metrics.calibrations_failed = m_calibrations_failed_->count();
  metrics.jobs_rejected_overload = m_rejected_overload_->count();
  metrics.jobs_rejected_too_wide = m_rejected_too_wide_->count();
  metrics.jobs_shed = m_shed_->count();
  metrics.degraded_holds = m_degraded_holds_->count();
  metrics.dead_letters_dropped = m_dead_letters_dropped_->count();
  metrics.jobs_migrated_out = m_migrated_out_->count();
  metrics.jobs_migrated_in = m_migrated_in_->count();
  metrics.dead_letters_drained = m_dead_letters_drained_->count();
  Seconds total_wait = 0.0;
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.state == QuantumJobState::kCompleted) {
      total_wait += record.wait_time();
      ++n;
    }
  }
  metrics.mean_wait = n == 0 ? 0.0 : total_wait / static_cast<double>(n);
  return metrics;
}

}  // namespace hpcqc::sched
