#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hpcqc/common/sim_clock.hpp"
#include "hpcqc/mqss/compile_farm.hpp"
#include "hpcqc/mqss/service.hpp"
#include "hpcqc/qdmi/model_device.hpp"
#include "hpcqc/sched/qrm.hpp"

namespace hpcqc::sched {

struct FleetDurableState;
struct RestoreSummary;

/// The fleet-level scheduler the paper's scaling argument (20 -> 54 -> 150
/// qubits) points at: N simulated QPUs — each with its own DeviceModel,
/// calibration epoch, drift state, health mask, QDMI view, compile service
/// (per-device structure cache), and QRM — behind one submission front door.
///
/// On top of the per-device QRMs the fleet adds:
///  - admission control that refuses a job only when *no* device can serve
///    it (an outage becomes a capacity event, not an availability cliff);
///  - a device-selection policy scoring candidates by predicted fidelity
///    (calibration state x healthy fraction) against estimated queue wait;
///  - cross-device migration: when a device goes offline or its mask
///    strands queued work, pending and retry-backlog jobs are re-placed on
///    healthy peers (re-compiled there through the peer's structure cache)
///    or dead-lettered when no peer fits, with every hop accounted in job
///    records, spans, and fleet metrics;
///  - calibration-slot coordination: at most `max_concurrent_calibrations`
///    devices run controller-driven calibration at once, so the fleet never
///    drains itself into a maintenance window.
///
/// Determinism: devices advance in index order over fixed coordination
/// slices, all randomness flows from the one seeded Rng, and every decision
/// (scores, tie-breaks, migration order) is a pure function of simulated
/// state — campaigns replay bit-identically.
class Fleet {
public:
  struct Config {
    /// Per-device QRM configuration (validated by each Qrm at add_device).
    Qrm::Config qrm;
    /// At most this many devices in controller-driven calibration at once.
    /// Clamped to fleet size - 1 once a second device exists, so the fleet
    /// always keeps at least one device serving.
    std::size_t max_concurrent_calibrations = 1;
    /// Placement score = fidelity_weight x predicted fidelity
    ///                 - wait_weight x estimated wait (hours).
    double fidelity_weight = 1.0;
    double wait_weight = 1.0;
    /// Devices advance in lockstep slices of this length; migration and
    /// calibration-slot decisions happen at slice boundaries.
    Seconds coordination_step = minutes(15.0);
    /// Workers of the shared compile farm (0 = compile inline).
    std::size_t compile_workers = 0;
    /// Also migrate queued jobs stranded by a health mask (width no longer
    /// fits the device's largest healthy component) to peers that fit.
    bool migrate_on_mask = true;
    /// Optional shared journal sink: fleet placement/migration events plus
    /// every device QRM's lifecycle events (tagged with the device index)
    /// flow into one write-ahead journal. `device_tag` is ignored — the
    /// fleet assigns tags per slot.
    DurabilityConfig durability;
  };

  /// Fleet-side view of one submission. The per-device lifecycle lives in
  /// the owning QRM's record; this tracks which device owns the job now and
  /// where it has been.
  struct FleetJobRecord {
    int id = 0;
    std::string name;
    int device = -1;    ///< current owner; -1 = refused at fleet admission
    int local_id = -1;  ///< id on the owning QRM
    Seconds submit_time = 0.0;
    int width = 0;  ///< distinct touched qubits (placement eligibility)
    JobPriority priority = JobPriority::kNormal;
    std::size_t migrations = 0;
    /// Terminal state + reason when no device could serve (device == -1).
    QuantumJobState refused_state = QuantumJobState::kQueued;
    std::string refusal_reason;
    /// Placement history, oldest first: (device, local id) per hop,
    /// including the current placement.
    std::vector<std::pair<int, int>> hops;
  };

  /// Throws PermanentError on degenerate config (no calibration slots,
  /// negative score weights, non-positive coordination step).
  Fleet(Config config, Rng& rng, EventLog* log = nullptr,
        obs::MetricsRegistry* metrics = nullptr);
  ~Fleet();

  /// Adds one QPU (with its own QDMI view, compile service, and QRM) and
  /// returns its device index. Empty name -> "qpu<index>". The per-device
  /// QRM validates config.qrm here (PermanentError on degenerate values).
  int add_device(std::unique_ptr<device::DeviceModel> model,
                 std::string name = "");

  std::size_t num_devices() const { return slots_.size(); }
  const std::string& device_name(int device) const;
  Qrm& qrm(int device);
  const Qrm& qrm(int device) const;
  device::DeviceModel& device_model(int device);
  mqss::QpuService& service(int device);
  mqss::CompileFarm* compile_farm() { return farm_.get(); }

  Seconds now() const { return now_; }
  std::size_t devices_online() const;
  std::size_t devices_calibrating() const;

  /// Places the job on the best eligible device (highest placement score,
  /// lowest index on ties) and returns a fleet job id. When no device can
  /// serve, the fleet record is terminal (kRejectedTooWide when width is
  /// the only obstacle, kRejectedOverload otherwise) — refusals are
  /// auditable, never silent. Plain pre-compiled circuits are only eligible
  /// for devices whose register matches; parametric jobs re-compile at
  /// dispatch and fit any device their width allows.
  int submit(QuantumJob job);

  /// Advances every device in index order over coordination slices,
  /// rebalancing at each slice boundary.
  void advance_to(Seconds t);

  /// Runs until every device is idle with empty queues and backlogs.
  void drain();

  /// Re-places pending work: every queued/retry job on an offline device is
  /// migrated to the best healthy peer or dead-lettered when none fits;
  /// with migrate_on_mask, mask-stranded queued jobs move to peers they
  /// still fit. Called automatically at slice boundaries.
  void rebalance();

  /// Takes one device out of service (jobs migrate at the next rebalance —
  /// call rebalance() directly for immediate re-placement).
  void set_device_offline(int device, const std::string& reason);
  void set_device_online(int device);

  const FleetJobRecord& record(int id) const;
  /// Current lifecycle state, resolved through the owning device's QRM
  /// (never kMigrated: the fleet record follows the job to its new owner).
  QuantumJobState state(int id) const;

  /// Fleet-wide conservation audit over every fleet submission, each
  /// counted once at its current owner.
  JobConservation conservation() const;

  /// Wires the tracer into every device QRM and compile service; each
  /// fleet submission also gets a fleet-level root span that migration
  /// hops re-attach to.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches (or replaces) the shared journal sink: fleet events plus
  /// every existing and future device QRM (tagged by index). The sink must
  /// outlive the fleet; nullptr detaches everywhere.
  void set_journal(JournalSink* sink);
  JournalSink* journal() const { return journal_; }

  /// Captures the fleet-wide durable image (fleet records + one
  /// QrmDurableState per device, in index order).
  FleetDurableState capture_durable() const;

  /// Reconstructs a recovered image onto a fresh fleet that already has the
  /// same device roster (StateError when device counts disagree or jobs
  /// were already submitted). Returns the summed per-device summary.
  RestoreSummary restore_durable(const FleetDurableState& state);

  obs::MetricsRegistry& metrics_registry() { return *registry_; }
  const obs::MetricsRegistry& metrics_registry() const { return *registry_; }

private:
  struct Slot {
    std::string name;
    std::unique_ptr<device::DeviceModel> model;
    std::unique_ptr<SimClock> clock;
    std::unique_ptr<qdmi::ModelBackedDevice> qdmi;
    std::unique_ptr<mqss::QpuService> service;
    std::unique_ptr<Qrm> qrm;
    std::map<int, int> local_to_fleet;
    obs::Counter* m_migrations_in = nullptr;
    obs::Counter* m_migrations_out = nullptr;
  };

  Slot& slot(int device);
  const Slot& slot(int device) const;
  /// Higher is better; negative infinity when ineligible.
  double placement_score(const Slot& s, const circuit::Circuit& circuit) const;
  bool register_fits(const Slot& s, const QuantumJob& job) const;
  /// Best peer (by score) that would accept a migrated job of this shape;
  /// -1 when none. Migrations bypass rate control, so only offline,
  /// too-wide, and queue-full probes disqualify a peer.
  int best_migration_peer(int from, const QuantumJob& job, int width) const;
  void migrate_job(int from, int local_id, int to, const std::string& reason);
  void note_gauges();
  void close_finished_spans();
  std::size_t effective_calibration_slots() const;
  /// Stamps the fleet clock and forwards to the sink (no-op without one).
  void emit(FleetEvent event);

  Config config_;
  Rng* rng_;
  EventLog* log_;
  obs::Tracer* tracer_ = nullptr;
  JournalSink* journal_ = nullptr;
  Seconds now_ = 0.0;
  int next_id_ = 1;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unique_ptr<mqss::CompileFarm> farm_;
  std::map<int, FleetJobRecord> records_;
  std::map<int, obs::SpanHandle> open_spans_;  ///< fleet root span per job

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_migrations_ = nullptr;
  obs::Counter* m_migration_dead_letters_ = nullptr;
  obs::Gauge* m_devices_online_ = nullptr;
  obs::Gauge* m_devices_calibrating_ = nullptr;
};

}  // namespace hpcqc::sched
