#pragma once

#include <cstddef>
#include <string_view>

#include "hpcqc/common/units.hpp"

namespace hpcqc::sched {

struct QuantumJob;
struct QuantumJobRecord;
enum class JobPriority;
enum class QuantumJobState;

/// One journal-worthy lifecycle transition inside a Qrm. Events are emitted
/// synchronously at the moment the in-memory state changes (write-ahead of
/// any externally visible effect), carry pointers into the QRM's live state
/// that are valid only for the duration of the sink call, and reference the
/// QRM's simulated clock — never wall time — so a journal replays
/// bit-identically.
struct JobEvent {
  enum class Kind {
    kSubmitted,      ///< record created; payload attached (pre-admission)
    kAdmitted,       ///< entered the queue; carries class-bucket state
    kRejected,       ///< terminal refusal at submit (record has the state)
    kDispatched,     ///< queue -> running; an execution attempt started
    kCompleted,      ///< terminal success
    kRetrying,       ///< failed attempt; waiting out its backoff
    kRetryRequeued,  ///< backoff expired; re-entered at the queue head
    kInterrupted,    ///< outage aborted the attempt; requeued at head
    kCancelled,      ///< withdrawn before completion
    kShed,           ///< brownout victim
    kDeadLettered,   ///< retry budget exhausted (or forced); DLQ entry made
    kDlqDropped,     ///< DLQ overflow dropped its oldest record
    kDlqDrained,     ///< dead letters handed out for replay
    kMigratedOut,    ///< extracted for re-placement on a peer device
    kTenantDelta,    ///< tenant token-bucket state after an admission take
    kOffline,        ///< the QPU left service
    kOnline,         ///< the QPU returned to service
  };

  Kind kind{};
  int device = -1;  ///< fleet device tag (set by the QRM; -1 standalone)
  int id = 0;       ///< local job id (0 for kOffline/kOnline)
  Seconds at = 0.0;

  /// Live payload / record at the moment of the event; sinks must copy
  /// what they keep. `job` is set for kSubmitted, `record` whenever the
  /// event concerns a job.
  const QuantumJob* job = nullptr;
  const QuantumJobRecord* record = nullptr;

  std::string_view reason{};
  std::size_t count = 0;  ///< kDlqDrained: records handed out

  /// kAdmitted: per-priority class bucket after the take;
  /// kTenantDelta: the tenant's bucket after the take (with `project`).
  JobPriority priority{};
  double bucket_tokens = 0.0;
  Seconds bucket_refill = 0.0;
  std::string_view project{};
};

/// One fleet-level transition (placement or migration hop). The per-device
/// lifecycle is journaled by the owning QRM; these events carry only the
/// fleet's own record state.
struct FleetEvent {
  enum class Kind {
    kSubmitted,  ///< fleet record created (device == -1: refused fleet-wide)
    kMigrated,   ///< job hopped between devices
  };

  Kind kind{};
  int id = 0;  ///< fleet job id
  Seconds at = 0.0;
  std::string_view name{};
  int device = -1;    ///< owner after the event
  int local_id = -1;  ///< id on the owning QRM after the event
  int width = 0;
  JobPriority priority{};
  QuantumJobState refused_state{};
  std::string_view reason{};
  int from = -1;  ///< kMigrated: source device
};

/// Receiver of journal events (store::Journal encodes them into the WAL;
/// tests plug in recording fakes). A null sink is the disabled path — every
/// emission site guards on the pointer, so durability off costs one test.
class JournalSink {
public:
  virtual ~JournalSink() = default;
  virtual void on_event(const JobEvent& event) = 0;
  virtual void on_fleet_event(const FleetEvent& event) { (void)event; }
};

/// Optional durability wiring carried inside Qrm::Config / Fleet::Config.
/// The sink must outlive the component. `device_tag` labels this QRM's
/// events inside a shared fleet journal (the Fleet overrides it per slot).
struct DurabilityConfig {
  JournalSink* sink = nullptr;
  int device_tag = -1;
};

}  // namespace hpcqc::sched
