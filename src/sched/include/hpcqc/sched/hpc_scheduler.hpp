#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::sched {

/// One classical batch job (nodes x walltime rectangle).
struct HpcJob {
  std::string name;
  int nodes = 1;
  Seconds walltime = hours(1.0);
};

enum class JobState { kQueued, kRunning, kCompleted };

/// Lifecycle record of a submitted job.
struct JobRecord {
  int id = 0;
  HpcJob job;
  JobState state = JobState::kQueued;
  Seconds submit_time = 0.0;
  Seconds start_time = -1.0;
  Seconds end_time = -1.0;

  Seconds wait_time() const {
    return start_time < 0.0 ? -1.0 : start_time - submit_time;
  }
};

/// Classical cluster batch scheduler: FCFS with EASY backfilling. This is
/// the "existing resource management framework" the QPU must live inside —
/// the QRM (second-level scheduler) requests calibration slots from it and
/// hybrid jobs co-allocate classical nodes here.
class HpcScheduler {
public:
  explicit HpcScheduler(int total_nodes);

  int total_nodes() const { return total_nodes_; }
  int free_nodes() const { return free_nodes_; }
  Seconds now() const { return now_; }

  /// Submits at the current simulated time; returns the job id.
  int submit(HpcJob job);

  /// Advances simulated time, completing and starting jobs along the way.
  void advance_to(Seconds t);

  /// Runs the event loop until every submitted job has completed.
  void drain();

  const JobRecord& record(int id) const;
  std::vector<int> queued_ids() const;
  std::vector<int> running_ids() const;
  std::size_t completed_count() const;

  /// Mean wait of completed jobs; 0 when none completed.
  Seconds mean_wait() const;

  /// Node-hours used / node-hours available over [t0, t1], from records.
  double utilization(Seconds t0, Seconds t1) const;

  /// Earliest time at which `nodes` nodes will be simultaneously free,
  /// assuming running jobs end at their walltime and nothing else starts.
  /// Used by the QRM to place deferrable calibration slots.
  Seconds earliest_slot(int nodes) const;

private:
  void schedule();  ///< FCFS head + EASY backfill pass
  void complete_due_jobs(Seconds until);
  void start(JobRecord& record);

  int total_nodes_;
  int free_nodes_;
  Seconds now_ = 0.0;
  int next_id_ = 1;
  std::map<int, JobRecord> records_;
  std::vector<int> queue_;    ///< FCFS order
  std::vector<int> running_;  ///< ids of running jobs
};

}  // namespace hpcqc::sched
