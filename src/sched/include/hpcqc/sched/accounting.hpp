#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "hpcqc/common/units.hpp"

namespace hpcqc::sched {

/// Per-project QPU usage ledger. §4's FAQ ends with the categories users
/// actually asked about — "Resource Usage; and Budgeting" — because early-
/// user programs hand out QPU-time allocations per project and need to
/// meter them. Budgets are in QPU-seconds (wall time the job occupies the
/// machine, which the 300 µs shot period makes roughly proportional to
/// shots).
class Accounting {
public:
  struct ProjectStatus {
    std::string project;
    Seconds budget = 0.0;
    Seconds used = 0.0;
    std::size_t jobs = 0;
    std::uint64_t shots = 0;

    Seconds remaining() const { return budget - used; }
    double utilization() const { return budget > 0.0 ? used / budget : 0.0; }
  };

  /// Creates a project with a QPU-time budget; re-registering tops the
  /// budget up by `budget`.
  void register_project(const std::string& project, Seconds budget);

  bool has_project(const std::string& project) const;

  /// True when the project can start a job of the estimated duration.
  /// Unknown projects are always rejected.
  bool can_afford(const std::string& project, Seconds estimated) const;

  /// Records completed usage (also charges overruns — the estimate gate
  /// happens before execution, the charge after).
  void charge(const std::string& project, Seconds used,
              std::uint64_t shots);

  ProjectStatus status(const std::string& project) const;
  std::vector<ProjectStatus> all_projects() const;

  /// Fraction of the total granted budget that has been consumed.
  double total_utilization() const;

  void print(std::ostream& os) const;

private:
  std::map<std::string, ProjectStatus> projects_;
};

}  // namespace hpcqc::sched
