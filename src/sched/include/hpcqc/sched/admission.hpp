#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hpcqc/sched/qrm.hpp"

namespace hpcqc::sched {

/// Polite spin hint for lock-free retry loops (PAUSE / YIELD).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// A job stamped with its deterministic admission ticket. Tickets are
/// assigned by the workload generator (or the submitting client) *before*
/// ingestion, so the scheduler can restore one canonical order no matter
/// how real ingestion threads interleave: sort by ticket, admit in ticket
/// order, and the campaign replays bit-identically at any thread count.
struct StampedJob {
  std::uint64_t ticket = 0;
  Seconds arrival = 0.0;  ///< simulated arrival time (informational)
  QuantumJob job;
};

/// Bounded lock-free MPMC ring (Vyukov per-cell sequence protocol): both
/// push and pop are a CAS on a position counter plus one acquire/release
/// pair on the cell's sequence number — no locks, no unbounded spinning
/// (full/empty return false immediately). Capacity is rounded up to a
/// power of two.
template <typename T>
class MpmcRing {
public:
  explicit MpmcRing(std::size_t min_capacity) {
    std::size_t capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    cells_ = std::make_unique<Cell[]>(capacity);
    mask_ = capacity - 1;
    for (std::size_t i = 0; i < capacity; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// False when the ring is full (the caller decides how to back off).
  bool try_push(T&& value) {
    Cell* cell = nullptr;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
        cpu_relax();
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
        cpu_relax();
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (monitoring only).
  std::size_t size_estimate() const {
    const std::uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

private:
  struct Cell {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
};

/// Lock-free token bucket: take is a CAS loop on an atomic token count
/// (O(1), no locks), refill is driven by the scheduler thread from
/// simulated time. Used as the ingest-side overload guard: thousands of
/// concurrent producers can check "may this tenant submit now" without
/// serializing on the admission path.
class AtomicTokenBucket {
public:
  AtomicTokenBucket(double rate_per_hour, double burst)
      : rate_per_hour_(rate_per_hour), burst_(burst), tokens_(burst) {}

  /// Takes one token; false when dry. Safe from any thread.
  bool try_take() {
    double current = tokens_.load(std::memory_order_relaxed);
    while (current >= 1.0) {
      if (tokens_.compare_exchange_weak(current, current - 1.0,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        return true;
      cpu_relax();
    }
    return false;
  }

  /// Adds `elapsed` seconds worth of tokens (clamped to the burst depth).
  /// Called by the drain thread at slice boundaries.
  void refill(Seconds elapsed) {
    const double add = elapsed * rate_per_hour_ / 3600.0;
    double current = tokens_.load(std::memory_order_relaxed);
    double next = 0.0;
    do {
      next = current + add;
      if (next > burst_) next = burst_;
    } while (!tokens_.compare_exchange_weak(current, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  }

  double tokens() const { return tokens_.load(std::memory_order_relaxed); }
  double burst() const { return burst_; }

private:
  double rate_per_hour_;
  double burst_;
  std::atomic<double> tokens_;
};

/// N independent MPMC rings; a push lands on shard `ticket % shards`, so
/// shard choice is deterministic (no racy round-robin) while concurrent
/// producers spread across rings instead of contending on one pair of
/// position counters.
class ShardedAdmissionQueue {
public:
  ShardedAdmissionQueue(std::size_t shards, std::size_t shard_capacity);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_capacity() const { return shards_[0]->capacity(); }

  /// Lock-free; false when the target shard is full.
  bool try_push(StampedJob&& item);

  /// Pops everything currently visible into `out` (unordered across
  /// shards — callers sort by ticket). Returns the number popped.
  std::size_t drain(std::vector<StampedJob>& out);

  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }
  /// Racy depth estimate across all shards (gauge material).
  std::size_t depth_estimate() const;

private:
  std::vector<std::unique_ptr<MpmcRing<StampedJob>>> shards_;
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  alignas(64) std::atomic<std::uint64_t> popped_{0};
};

/// The QRM's multi-producer front door: real ingestion threads offer()
/// stamped jobs through the lock-free sharded queue, and the scheduler
/// thread periodically drains them — sorted back into ticket order — into
/// Qrm::submit_batch on the simulated clock.
///
/// Determinism contract: admission *decisions* (token buckets, tenant
/// quotas, brownout, capacity) all happen on the scheduler thread in
/// ticket order, so the outcome of a campaign is a pure function of the
/// stamped schedule and the drain times — never of thread interleaving.
/// The lock-free structures only move payloads.
///
/// Conservation: when a shard is momentarily full the offer falls back to
/// a mutex-protected side queue (counted as backpressure) instead of
/// dropping — every offered job reaches exactly one admission decision.
class AdmissionGateway {
public:
  struct Config {
    std::size_t shards = 8;
    std::size_t shard_capacity = 4096;
  };

  AdmissionGateway(Qrm& qrm, Config config);

  /// Lock-free fast path (any thread). Falls back to the locked overflow
  /// queue when the shard is full; always succeeds.
  void offer(StampedJob item);

  /// Scheduler thread: drains all shards plus the overflow queue, sorts
  /// by ticket, and submits at the QRM's current simulated time. Returns
  /// (ticket, job id) pairs in ticket order — ids point at QRM records,
  /// including refused ones (refusals are terminal records, not drops).
  std::vector<std::pair<std::uint64_t, int>> drain_and_admit();

  std::uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted_calls() const { return drained_; }
  std::uint64_t backpressure_events() const {
    return backpressure_.load(std::memory_order_relaxed);
  }
  std::size_t depth_estimate() const { return queue_.depth_estimate(); }

private:
  Qrm* qrm_;
  ShardedAdmissionQueue queue_;
  alignas(64) std::atomic<std::uint64_t> offered_{0};
  alignas(64) std::atomic<std::uint64_t> backpressure_{0};
  std::uint64_t drained_ = 0;
  std::mutex overflow_mutex_;
  std::vector<StampedJob> overflow_;
  std::vector<StampedJob> scratch_;  ///< drain buffer, reused across calls
  obs::Gauge* m_depth_ = nullptr;
  obs::Counter* m_ingested_ = nullptr;
  obs::Counter* m_backpressure_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
};

}  // namespace hpcqc::sched
