#pragma once

#include <utility>
#include <vector>

#include "hpcqc/common/rng.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/sched/hpc_scheduler.hpp"
#include "hpcqc/sched/qrm.hpp"

namespace hpcqc::sched {

/// Synthetic quantum job stream: Poisson arrivals of topology-legal
/// circuits (GHZ chains and PRX/CZ brickwork on the device serpentine) —
/// the shape of the early-user workloads of §4.
struct QuantumWorkloadParams {
  Seconds duration = hours(24.0);
  double jobs_per_hour = 6.0;
  int min_qubits = 4;
  int max_qubits = 20;
  std::size_t min_shots = 500;
  std::size_t max_shots = 4000;
  int max_layers = 6;
};

/// (arrival time, job) pairs in arrival order.
std::vector<std::pair<Seconds, QuantumJob>> generate_quantum_workload(
    const device::DeviceModel& device, const QuantumWorkloadParams& params,
    Rng& rng);

/// Builds a topology-legal layered circuit on the device serpentine:
/// `layers` alternating PRX layers and CZ brickwork over `qubits` chain
/// qubits, terminated by a measurement of the chain.
circuit::Circuit chain_brickwork_circuit(const device::DeviceModel& device,
                                         int qubits, int layers, Rng& rng);

/// Synthetic classical batch stream with lognormal-ish sizes/walltimes.
struct ClassicalWorkloadParams {
  Seconds duration = hours(24.0);
  double jobs_per_hour = 12.0;
  int max_nodes = 64;
  Seconds min_walltime = minutes(10.0);
  Seconds max_walltime = hours(8.0);
};

std::vector<std::pair<Seconds, HpcJob>> generate_classical_workload(
    const ClassicalWorkloadParams& params, Rng& rng);

}  // namespace hpcqc::sched
