#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpcqc/calibration/benchmark.hpp"
#include "hpcqc/calibration/controller.hpp"
#include "hpcqc/calibration/routines.hpp"
#include "hpcqc/circuit/circuit.hpp"
#include "hpcqc/common/log.hpp"
#include "hpcqc/device/device_model.hpp"
#include "hpcqc/fault/injector.hpp"
#include "hpcqc/qdmi/qdmi.hpp"
#include "hpcqc/sched/accounting.hpp"

namespace hpcqc::sched {

/// One quantum job: a compiled (topology-legal) circuit and a shot budget.
struct QuantumJob {
  std::string name;
  circuit::Circuit circuit{1};  ///< trivial placeholder until assigned
  std::size_t shots = 1000;
  /// Accounting project; empty = unmetered (system/benchmark jobs).
  std::string project;
};

enum class QuantumJobState {
  kQueued,
  kRunning,
  kCompleted,
  kRetrying,   ///< failed an attempt, waiting out its backoff
  kFailed,     ///< retry budget exhausted; dead-lettered
  kCancelled,  ///< withdrawn before completion
};

const char* to_string(QuantumJobState state);

/// Per-job retry policy: attempts are spent on transient execution faults
/// (not on outages — an offline QPU requeues the job without charging an
/// attempt), with exponential backoff in simulated time between attempts.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< total attempts, including the first
  Seconds initial_backoff = seconds(30.0);
  double backoff_factor = 2.0;
  Seconds max_backoff = hours(2.0);

  /// Backoff after the `failures`-th failed attempt (1-based).
  Seconds backoff(std::size_t failures) const;
};

/// Lifecycle + result record of a quantum job.
struct QuantumJobRecord {
  int id = 0;
  std::string name;
  std::size_t shots = 0;
  QuantumJobState state = QuantumJobState::kQueued;
  Seconds submit_time = 0.0;
  Seconds start_time = -1.0;
  Seconds end_time = -1.0;
  device::ExecutionResult result;  ///< valid when completed

  std::size_t attempts = 0;       ///< execution attempts started
  std::size_t interruptions = 0;  ///< outage requeues (no attempt charged)
  Seconds next_retry_at = -1.0;   ///< valid while kRetrying
  std::string failure_reason;     ///< last failure / cancellation reason

  Seconds wait_time() const {
    return start_time < 0.0 ? -1.0 : start_time - submit_time;
  }
};

/// Terminal record of a job whose retry budget ran out — the §4 "robust
/// job restart" story's other half: exhausted jobs land here instead of
/// silently vanishing, so operators (and tests) can audit what was lost.
struct DeadLetterRecord {
  int id = 0;
  std::string name;
  std::size_t attempts = 0;
  std::string reason;
  Seconds failed_at = 0.0;
};

/// Aggregate throughput / quality metrics of a QRM run.
struct QrmMetrics {
  std::size_t jobs_completed = 0;
  std::size_t total_shots = 0;
  /// Fidelity-weighted shots: sum over jobs of shots x estimated circuit
  /// fidelity — the "useful work" measure the calibration-policy ablation
  /// compares.
  double good_shots = 0.0;
  Seconds busy_time = 0.0;
  Seconds calibration_time = 0.0;
  Seconds benchmark_time = 0.0;
  Seconds mean_wait = 0.0;

  std::size_t jobs_failed = 0;      ///< dead-lettered (budget exhausted)
  std::size_t jobs_cancelled = 0;
  std::size_t retries = 0;          ///< failed attempts that were rescheduled
  std::size_t execution_faults = 0;  ///< injected device faults observed
  std::size_t calibrations_failed = 0;

  bool operator==(const QrmMetrics&) const = default;
};

/// The Quantum Resource Manager: the second-level scheduler of the MQSS
/// architecture (Fig. 2). It serializes access to the single QPU, runs the
/// periodic health benchmarks, and starts the automated recalibrations at
/// times chosen by its trigger policy — including the scheduler-controlled
/// policy that aligns calibration slots with the user workload (Lesson 2).
class Qrm {
public:
  struct Config {
    calibration::AutoCalibrationController::Config controller;
    calibration::GhzBenchmark::Params benchmark;
    /// Compile + queue + transfer overhead added to every execution.
    Seconds job_overhead = seconds(2.0);
    /// Fixed overhead of a benchmark run (control-software setup).
    Seconds benchmark_overhead = minutes(2.0);
    /// A scheduler-controlled policy may defer calibration at most this
    /// factor past max_calibration_age before forcing a slot.
    double max_defer_factor = 1.5;
    /// How user jobs are executed on the device model; multi-month
    /// simulations use kEstimateOnly.
    device::ExecutionMode execution_mode =
        device::ExecutionMode::kGlobalDepolarizing;
    /// Retry budget + backoff for transient execution faults.
    RetryPolicy retry;
  };

  Qrm(device::DeviceModel& device, Config config, Rng& rng,
      EventLog* log = nullptr);

  Seconds now() const { return now_; }
  qdmi::DeviceStatus status() const { return status_; }
  bool queue_empty() const { return queue_.empty(); }
  std::size_t queue_length() const { return queue_.size(); }
  /// Jobs waiting out their retry backoff (not yet requeued).
  std::size_t retry_backlog() const { return retry_queue_.size(); }

  /// Submits a compiled job at the current time; returns its id. With
  /// accounting attached, metered jobs are admission-checked against the
  /// project budget (StateError when it cannot afford the estimate).
  int submit(QuantumJob job);

  /// Cancels a job that has not started (queued or awaiting retry).
  /// Returns false when the job is running or already terminal.
  bool cancel(int id, const std::string& reason = "cancelled by user");

  /// Attaches a usage ledger (§4: "Resource Usage; and Budgeting"). The
  /// ledger must outlive the QRM; pass nullptr to detach.
  void set_accounting(Accounting* accounting) { accounting_ = accounting; }

  /// Attaches a fault injector: execution attempts and calibrations that
  /// fall inside one of its windows fail (and retry per the policy). The
  /// injector must outlive the QRM; pass nullptr to detach.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Advances simulated time, executing jobs / benchmarks / calibrations
  /// and applying calibration drift along the way.
  void advance_to(Seconds t);

  /// Runs until the queue (including retry backlog) drains and the device
  /// is idle.
  void drain();

  /// Marks the QPU unavailable (outage); queued jobs are retained. An
  /// in-flight job returns to the queue head with an interruption recorded
  /// (no retry attempt is charged — the outage is not the job's fault); an
  /// in-flight forced/recovery calibration is re-armed so it runs when the
  /// QPU returns. While offline, time advances but nothing executes.
  void set_offline(const std::string& reason);
  /// Returns the QPU to service.
  void set_online();
  bool online() const { return online_; }

  /// Enqueues a forced calibration (used by recovery procedures).
  void request_calibration(calibration::CalibrationKind kind);

  const QuantumJobRecord& record(int id) const;
  QrmMetrics metrics() const;
  const std::vector<DeadLetterRecord>& dead_letters() const {
    return dead_letters_;
  }

  const calibration::AutoCalibrationController& controller() const {
    return controller_;
  }

private:
  enum class Phase { kIdle, kJob, kBenchmark, kCalibration };

  void finish_phase(Rng& rng);
  void begin_next_work();
  void apply_drift_until(Seconds t);
  void promote_due_retries();
  void fail_active_job();

  device::DeviceModel* device_;
  Config config_;
  Rng* rng_;
  EventLog* log_;

  Seconds now_ = 0.0;
  Seconds drifted_until_ = 0.0;
  bool online_ = true;
  qdmi::DeviceStatus status_ = qdmi::DeviceStatus::kIdle;

  Phase phase_ = Phase::kIdle;
  Seconds phase_start_ = 0.0;
  Seconds phase_end_ = 0.0;
  int active_job_ = -1;
  bool active_job_faulted_ = false;
  std::optional<calibration::CalibrationKind> active_calibration_;
  std::optional<calibration::CalibrationKind> forced_calibration_;

  Accounting* accounting_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  int next_id_ = 1;
  std::vector<int> queue_;
  std::vector<int> retry_queue_;  ///< ids waiting out next_retry_at
  std::map<int, QuantumJobRecord> records_;
  std::map<int, QuantumJob> pending_jobs_;
  std::vector<DeadLetterRecord> dead_letters_;

  calibration::AutoCalibrationController controller_;
  calibration::GhzBenchmark benchmark_;
  calibration::CalibrationEngine engine_;

  QrmMetrics metrics_;
};

}  // namespace hpcqc::sched
